"""Legacy setup shim.

The canonical build configuration lives in ``pyproject.toml``.  This file
exists so that environments with an older setuptools/pip tool-chain (no
``bdist_wheel`` support) can still perform an editable install via
``pip install -e . --no-use-pep517`` or ``python setup.py develop``.
"""

from setuptools import setup

setup()
