"""Legacy setup shim.

The canonical build configuration lives in ``pyproject.toml``.  This file
exists so that environments with an older setuptools/pip tool-chain (no
``bdist_wheel`` support) can still perform an editable install via
``pip install -e . --no-use-pep517`` or ``python setup.py develop``.

The optional execution backends are exposed as extras so a host can opt
into the compiled kernel paths (``pip install -e ".[numba]"`` /
``".[cupy]"``); without them the library runs everywhere on the NumPy
reference backend with bit-identical results.
"""

from setuptools import setup

setup(
    extras_require={
        "numba": ["numba>=0.57"],
        "cupy": ["cupy-cuda12x>=12.0"],
        "backends": ["numba>=0.57", "cupy-cuda12x>=12.0"],
    }
)
