"""Core k-way epistasis detection engine — the paper's contribution,
generalised to any interaction order 2-5 (the paper's study is the
third-order instance).

The engine is organised as:

* :mod:`repro.core.combinations` — enumeration, ranking and chunking of the
  exhaustive SNP k-tuple search space, including the triangular block
  schedule of Algorithm 1 and the vectorised order-dispatched unranking.
* :mod:`repro.core.contingency` — ``3^k x 2`` genotype/phenotype frequency
  tables and the direct (non-binarised) oracle construction used for
  validation.
* :mod:`repro.core.scoring` — objective functions over frequency tables:
  the Bayesian K2 score of the paper plus additional criteria (mutual
  information, Gini impurity, chi-squared) offered as extensions.
* :mod:`repro.core.approaches` — the four CPU approaches and four GPU
  approaches of §IV, all instrumented with operation counters.
* :mod:`repro.core.detector` — the :class:`EpistasisDetector` public API,
  which combines an approach, an objective function, an interaction order
  and the heterogeneous execution engine (:mod:`repro.engine`) into a
  single ``detect()`` call.
* :mod:`repro.core.pairwise` — deprecation shims of the retired dedicated
  pairwise stack (use ``EpistasisDetector(order=2)`` instead).
* :mod:`repro.core.result` — result containers (best interaction, top-k
  ranking, execution statistics).
"""

from repro.core.combinations import (
    combination_count,
    combination_from_rank,
    combination_rank,
    combinations_from_ranks,
    generate_combinations,
    iter_combination_chunks,
    iter_triangular_blocks,
)
from repro.core.contingency import (
    N_GENOTYPE_COMBINATIONS,
    cell_index_to_genotypes,
    combination_cell_index,
    contingency_oracle,
    contingency_oracle_many,
    table_totals,
    validate_tables,
)
from repro.core.scoring import (
    K2Score,
    ChiSquaredScore,
    GiniScore,
    MutualInformationScore,
    ObjectiveFunction,
    get_objective,
)
from repro.core.result import ApproachStats, DetectionResult, Interaction
from repro.core.detector import DetectorConfig, EpistasisDetector
from repro.core.pairwise import PairwiseEpistasisDetector
from repro.core.approaches import get_approach, list_approaches

__all__ = [
    "combination_count",
    "combination_rank",
    "combination_from_rank",
    "combinations_from_ranks",
    "generate_combinations",
    "iter_combination_chunks",
    "iter_triangular_blocks",
    "N_GENOTYPE_COMBINATIONS",
    "combination_cell_index",
    "cell_index_to_genotypes",
    "contingency_oracle",
    "contingency_oracle_many",
    "table_totals",
    "validate_tables",
    "ObjectiveFunction",
    "K2Score",
    "MutualInformationScore",
    "GiniScore",
    "ChiSquaredScore",
    "get_objective",
    "Interaction",
    "ApproachStats",
    "DetectionResult",
    "EpistasisDetector",
    "DetectorConfig",
    "PairwiseEpistasisDetector",
    "get_approach",
    "list_approaches",
]
