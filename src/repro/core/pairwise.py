"""Second-order (pairwise) epistasis detection.

The paper's study targets third-order interactions, but most of the related
work it positions against (GBOOST, epiSNP, multiEpistSearch, GWIS_FI) is
pairwise, and a practical screening pipeline often runs a cheap exhaustive
pairwise pass before committing to the cubic three-way search.  This module
provides that capability on top of the same substrates: the phenotype-split
binarised encoding, the NOR-inferred genotype-2 plane and the Bayesian K2
score, with 9x2 frequency tables instead of 27x2.

The implementation mirrors the three-way split kernel (and is validated
against the same contingency oracle, which supports any order), so results
are directly comparable with the pairwise literature while reusing the
library's data model.  Like the three-way detector, the exhaustive pass
executes through the unified execution engine (:mod:`repro.engine`):
chunked evaluation, multi-worker scheduling policies and the streaming
bounded-memory top-k reduction.
"""

from __future__ import annotations

from math import comb
from typing import Callable, Dict

import numpy as np

from repro.bitops.popcount import popcount32
from repro.core.combinations import combination_count
from repro.core.result import ApproachStats, DetectionResult
from repro.core.scoring import ObjectiveFunction, get_objective
from repro.datasets.binarization import PhenotypeSplitDataset
from repro.datasets.dataset import GenotypeDataset
from repro.engine import (
    CancellationToken,
    EngineDevice,
    ExecutionPlan,
    HeterogeneousExecutor,
    SchedulingPolicy,
    get_policy,
)

__all__ = [
    "pairwise_combinations",
    "pairwise_split_tables",
    "PairwiseEpistasisDetector",
]


def pairwise_combinations(n_snps: int, start_rank: int = 0, count: int | None = None) -> np.ndarray:
    """Materialise a contiguous range of SNP pairs in lexicographic order.

    Pairs are unranked in closed form (no per-row Python loop): with
    ``offset(i) = i*(n-1) - i*(i-1)/2`` pairs preceding first index ``i``,
    the first index of rank ``r`` is the largest ``i`` with
    ``offset(i) <= r`` (a vectorised ``searchsorted``) and the second index
    follows as ``r - offset(i) + i + 1`` — the order-2 instance of the
    combinatorial-number-system unranking used by
    :func:`repro.core.combinations.combination_from_rank`.
    """
    total = combination_count(n_snps, 2)
    if count is None:
        count = total - start_rank
    if start_rank < 0 or count < 0 or start_rank + count > total:
        raise ValueError(f"invalid range [{start_rank}, {start_rank + count}) of {total} pairs")
    if count == 0:
        return np.empty((0, 2), dtype=np.int64)
    ranks = np.arange(start_rank, start_rank + count, dtype=np.int64)
    firsts = np.arange(n_snps - 1, dtype=np.int64)
    offsets = firsts * (n_snps - 1) - (firsts * (firsts - 1)) // 2
    i = np.searchsorted(offsets, ranks, side="right") - 1
    j = ranks - offsets[i] + i + 1
    return np.stack([i, j], axis=1)


def _class_pair_counts(
    class_planes: np.ndarray, padding_mask: np.ndarray, pairs: np.ndarray
) -> np.ndarray:
    """Per-class 9-cell counts for a batch of SNP pairs."""
    mask = np.asarray(padding_mask, dtype=np.uint32)

    def expand(sel: np.ndarray) -> np.ndarray:
        g2 = np.bitwise_and(np.bitwise_not(np.bitwise_or(sel[:, 0], sel[:, 1])), mask)
        return np.concatenate([sel, g2[:, None, :]], axis=1)

    x = expand(class_planes[pairs[:, 0]])
    y = expand(class_planes[pairs[:, 1]])
    combined = np.bitwise_and(x[:, :, None, :], y[:, None, :, :])  # (P, 3, 3, W)
    return popcount32(combined).sum(axis=-1).reshape(pairs.shape[0], 9)


def pairwise_split_tables(split: PhenotypeSplitDataset, pairs: np.ndarray) -> np.ndarray:
    """9x2 frequency tables of a batch of SNP pairs (phenotype-split kernel)."""
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"pairs must have shape (n_pairs, 2); got {pairs.shape}")
    if pairs.size and not (pairs[:, 0] < pairs[:, 1]).all():
        raise ValueError("every pair must be strictly increasing")
    if pairs.size and pairs.max() >= split.n_snps:
        raise IndexError("pair index exceeds the number of SNPs")
    controls = _class_pair_counts(split.control_planes, split.padding_mask(0), pairs)
    cases = _class_pair_counts(split.case_planes, split.padding_mask(1), pairs)
    return np.stack([controls, cases], axis=-1)


class PairwiseEpistasisDetector:
    """Exhaustive second-order epistasis detector.

    Parameters
    ----------
    objective:
        Objective-function name or instance ("lower is better", as for the
        three-way detector).
    chunk_size:
        Pairs evaluated per kernel batch.
    top_k:
        Number of best pairs kept.
    n_workers:
        Host threads draining the pair space through the execution engine.
    schedule:
        Scheduling policy name (``"dynamic"``, ``"static"``, ``"guided"``,
        ``"carm"``) or a policy instance.

    Example
    -------
    >>> from repro.datasets import generate_null_dataset
    >>> from repro.core.pairwise import PairwiseEpistasisDetector
    >>> result = PairwiseEpistasisDetector().detect(generate_null_dataset(20, 256, seed=0))
    >>> len(result.best_snps)
    2
    """

    def __init__(
        self,
        objective: str | ObjectiveFunction = "k2",
        chunk_size: int = 8192,
        top_k: int = 10,
        n_workers: int = 1,
        schedule: str | SchedulingPolicy = "dynamic",
    ) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if top_k < 1:
            raise ValueError("top_k must be positive")
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        self.objective = get_objective(objective)
        self.chunk_size = chunk_size
        self.top_k = top_k
        self.n_workers = n_workers
        self.schedule = schedule

    def score_pairs(self, dataset: GenotypeDataset, pairs: np.ndarray) -> np.ndarray:
        """Objective scores of explicit SNP pairs."""
        split = PhenotypeSplitDataset.from_dataset(dataset)
        return self.objective.score(pairwise_split_tables(split, pairs))

    def detect(
        self,
        dataset: GenotypeDataset,
        *,
        cancel: CancellationToken | None = None,
        progress: Callable[[int, int], None] | None = None,
    ) -> DetectionResult:
        """Exhaustively evaluate every SNP pair of the dataset.

        The pair-rank space is executed through
        :class:`~repro.engine.executor.HeterogeneousExecutor` on a CPU lane:
        each worker streams chunks of pairs through the phenotype-split
        kernel into a bounded top-k heap, so memory stays O(top_k) however
        large the pair space grows.
        """
        if dataset.n_snps < 2:
            raise ValueError("pairwise detection needs at least two SNPs")
        split = PhenotypeSplitDataset.from_dataset(dataset)
        n_snps = dataset.n_snps
        total = comb(n_snps, 2)
        snp_names = list(dataset.snp_names)

        policy = get_policy(self.schedule)
        policy.configure(n_snps=n_snps, n_samples=dataset.n_samples)
        plan = ExecutionPlan(
            total=total,
            devices=[
                EngineDevice(
                    kind="cpu", n_workers=self.n_workers, chunk_size=self.chunk_size
                )
            ],
            policy=policy,
            top_k=self.top_k,
        )

        def evaluate(worker, start: int, stop: int):
            pairs = pairwise_combinations(n_snps, start, stop - start)
            scores = self.objective.score(pairwise_split_tables(split, pairs))
            return pairs, scores

        executor = HeterogeneousExecutor(plan, cancel=cancel)
        run = executor.run(
            lambda device, worker_id: split,
            evaluate,
            snp_names=snp_names,
            progress=progress,
        )
        if run.cancelled:
            raise RuntimeError(
                f"pairwise detection cancelled after {run.n_items} of {total} pairs"
            )
        if not run.top:
            raise RuntimeError("pairwise search produced no interactions")

        extra: Dict[str, object] = {
            "order": 2,
            "schedule": policy.name,
            "devices": run.device_stats,
        }
        stats = ApproachStats(
            approach="cpu-pairwise",
            n_combinations=total,
            n_samples=dataset.n_samples,
            elapsed_seconds=run.elapsed_seconds,
            n_workers=self.n_workers,
            extra=extra,
        )
        return DetectionResult(best=run.top[0], top=list(run.top), stats=stats)
