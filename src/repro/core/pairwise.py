"""Second-order (pairwise) epistasis detection — deprecation shims.

The dedicated pairwise stack of the early repo is gone: the order-generic
search core (:class:`repro.core.detector.EpistasisDetector` with
``DetectorConfig(order=2)``) now runs the pairwise screen through exactly
the same kernels, engine lanes and scheduling policies as the third-order
(and higher) searches, so this module only keeps the historical entry
points alive:

* :class:`PairwiseEpistasisDetector` — a thin shim over
  ``EpistasisDetector(approach="cpu-v2", order=2)``; results are identical
  (same split kernel, same engine top-k reduction).
* :func:`pairwise_combinations` — the closed-form pair unranking, now the
  order-2 dispatch of
  :func:`repro.core.combinations.combinations_from_ranks`.
* :func:`pairwise_split_tables` — the 9x2 table construction, now the
  order-2 instance of the shared phenotype-split kernel.

All three emit :class:`DeprecationWarning`; new code should use the
order-parametric APIs directly.
"""

from __future__ import annotations

import warnings
from typing import Callable

import numpy as np

from repro.core.approaches._kernels import split_tables
from repro.core.combinations import combination_count, combinations_from_ranks
from repro.core.detector import EpistasisDetector
from repro.core.result import DetectionResult
from repro.core.scoring import ObjectiveFunction
from repro.datasets.binarization import PhenotypeSplitDataset
from repro.datasets.dataset import GenotypeDataset
from repro.engine import CancellationToken, SchedulingPolicy

__all__ = [
    "pairwise_combinations",
    "pairwise_split_tables",
    "PairwiseEpistasisDetector",
]


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def pairwise_combinations(
    n_snps: int, start_rank: int = 0, count: int | None = None
) -> np.ndarray:
    """Materialise a contiguous range of SNP pairs in lexicographic order.

    .. deprecated::
        Use :func:`repro.core.combinations.generate_combinations` (or
        :func:`~repro.core.combinations.combinations_from_ranks`) with
        ``order=2``; the closed-form pair unranking lives there as the
        order-2 fast path.
    """
    _deprecated(
        "pairwise_combinations", "repro.core.combinations.generate_combinations"
    )
    total = combination_count(n_snps, 2)
    if count is None:
        count = total - start_rank
    if start_rank < 0 or count < 0 or start_rank + count > total:
        raise ValueError(
            f"invalid range [{start_rank}, {start_rank + count}) of {total} pairs"
        )
    if count == 0:
        return np.empty((0, 2), dtype=np.int64)
    ranks = np.arange(start_rank, start_rank + count, dtype=np.int64)
    return combinations_from_ranks(ranks, n_snps, 2)


def pairwise_split_tables(
    split: PhenotypeSplitDataset, pairs: np.ndarray
) -> np.ndarray:
    """9x2 frequency tables of a batch of SNP pairs (phenotype-split kernel).

    .. deprecated::
        Use the order-generic split kernel through any approach's
        ``build_tables`` (``(n, 2)`` combination batches) instead.
    """
    _deprecated(
        "pairwise_split_tables",
        "Approach.build_tables with (n, 2) combination batches",
    )
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"pairs must have shape (n_pairs, 2); got {pairs.shape}")
    if pairs.size and not (pairs[:, 0] < pairs[:, 1]).all():
        raise ValueError("every pair must be strictly increasing")
    if pairs.size and pairs.max() >= split.n_snps:
        raise IndexError("pair index exceeds the number of SNPs")
    return split_tables(
        split.control_planes,
        split.case_planes,
        split.padding_mask(0),
        split.padding_mask(1),
        pairs,
    )


class PairwiseEpistasisDetector:
    """Exhaustive second-order epistasis detector (deprecation shim).

    .. deprecated::
        Use ``EpistasisDetector(approach="cpu-v2", order=2, ...)``; this
        shim merely forwards to it and is kept so existing pipelines keep
        running.  Results are identical bit for bit.

    Parameters
    ----------
    objective:
        Objective-function name or instance ("lower is better").
    chunk_size:
        Pairs evaluated per kernel batch.
    top_k:
        Number of best pairs kept.
    n_workers:
        Host threads draining the pair space through the execution engine.
    schedule:
        Scheduling policy name (``"dynamic"``, ``"static"``, ``"guided"``,
        ``"carm"``) or a policy instance.
    """

    def __init__(
        self,
        objective: str | ObjectiveFunction = "k2",
        chunk_size: int = 8192,
        top_k: int = 10,
        n_workers: int = 1,
        schedule: str | SchedulingPolicy = "dynamic",
    ) -> None:
        _deprecated(
            "PairwiseEpistasisDetector",
            'EpistasisDetector(approach="cpu-v2", order=2)',
        )
        self._detector = EpistasisDetector(
            approach="cpu-v2",
            objective=objective,
            order=2,
            n_workers=n_workers,
            chunk_size=chunk_size,
            top_k=top_k,
            schedule=schedule,
        )

    @property
    def objective(self) -> ObjectiveFunction:
        """The resolved objective function (as on the unified detector)."""
        return self._detector.objective

    @property
    def chunk_size(self) -> int:
        return self._detector.config.chunk_size

    @property
    def top_k(self) -> int:
        return self._detector.config.top_k

    @property
    def n_workers(self) -> int:
        return self._detector.config.n_workers

    @property
    def schedule(self) -> "str | SchedulingPolicy":
        return self._detector.config.schedule

    def score_pairs(self, dataset: GenotypeDataset, pairs: np.ndarray) -> np.ndarray:
        """Objective scores of explicit SNP pairs."""
        pairs = np.asarray(pairs)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(f"pairs must have shape (n_pairs, 2); got {pairs.shape}")
        return self._detector.score_combinations(dataset, pairs)

    def detect(
        self,
        dataset: GenotypeDataset,
        *,
        cancel: CancellationToken | None = None,
        progress: Callable[[int, int], None] | None = None,
    ) -> DetectionResult:
        """Exhaustively evaluate every SNP pair of the dataset."""
        if dataset.n_snps < 2:
            raise ValueError("pairwise detection needs at least two SNPs")
        return self._detector.detect(dataset, cancel=cancel, progress=progress)
