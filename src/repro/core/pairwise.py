"""Second-order (pairwise) epistasis detection.

The paper's study targets third-order interactions, but most of the related
work it positions against (GBOOST, epiSNP, multiEpistSearch, GWIS_FI) is
pairwise, and a practical screening pipeline often runs a cheap exhaustive
pairwise pass before committing to the cubic three-way search.  This module
provides that capability on top of the same substrates: the phenotype-split
binarised encoding, the NOR-inferred genotype-2 plane and the Bayesian K2
score, with 9x2 frequency tables instead of 27x2.

The implementation mirrors the three-way split kernel (and is validated
against the same contingency oracle, which supports any order), so results
are directly comparable with the pairwise literature while reusing the
library's data model.
"""

from __future__ import annotations

import time
from math import comb
from typing import List

import numpy as np

from repro.bitops.popcount import popcount32
from repro.core.combinations import combination_count, combination_from_rank
from repro.core.result import ApproachStats, DetectionResult, Interaction
from repro.core.scoring import ObjectiveFunction, get_objective
from repro.datasets.binarization import PhenotypeSplitDataset
from repro.datasets.dataset import GenotypeDataset

__all__ = [
    "pairwise_combinations",
    "pairwise_split_tables",
    "PairwiseEpistasisDetector",
]


def pairwise_combinations(n_snps: int, start_rank: int = 0, count: int | None = None) -> np.ndarray:
    """Materialise a contiguous range of SNP pairs in lexicographic order."""
    total = combination_count(n_snps, 2)
    if count is None:
        count = total - start_rank
    if start_rank < 0 or count < 0 or start_rank + count > total:
        raise ValueError(f"invalid range [{start_rank}, {start_rank + count}) of {total} pairs")
    if count == 0:
        return np.empty((0, 2), dtype=np.int64)
    out = np.empty((count, 2), dtype=np.int64)
    i, j = combination_from_rank(start_rank, n_snps, 2)
    for row in range(count):
        out[row] = (i, j)
        j += 1
        if j == n_snps:
            i += 1
            j = i + 1
    return out


def _class_pair_counts(
    class_planes: np.ndarray, padding_mask: np.ndarray, pairs: np.ndarray
) -> np.ndarray:
    """Per-class 9-cell counts for a batch of SNP pairs."""
    mask = np.asarray(padding_mask, dtype=np.uint32)

    def expand(sel: np.ndarray) -> np.ndarray:
        g2 = np.bitwise_and(np.bitwise_not(np.bitwise_or(sel[:, 0], sel[:, 1])), mask)
        return np.concatenate([sel, g2[:, None, :]], axis=1)

    x = expand(class_planes[pairs[:, 0]])
    y = expand(class_planes[pairs[:, 1]])
    combined = np.bitwise_and(x[:, :, None, :], y[:, None, :, :])  # (P, 3, 3, W)
    return popcount32(combined).sum(axis=-1).reshape(pairs.shape[0], 9)


def pairwise_split_tables(split: PhenotypeSplitDataset, pairs: np.ndarray) -> np.ndarray:
    """9x2 frequency tables of a batch of SNP pairs (phenotype-split kernel)."""
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"pairs must have shape (n_pairs, 2); got {pairs.shape}")
    if pairs.size and not (pairs[:, 0] < pairs[:, 1]).all():
        raise ValueError("every pair must be strictly increasing")
    if pairs.size and pairs.max() >= split.n_snps:
        raise IndexError("pair index exceeds the number of SNPs")
    controls = _class_pair_counts(split.control_planes, split.padding_mask(0), pairs)
    cases = _class_pair_counts(split.case_planes, split.padding_mask(1), pairs)
    return np.stack([controls, cases], axis=-1)


class PairwiseEpistasisDetector:
    """Exhaustive second-order epistasis detector.

    Parameters
    ----------
    objective:
        Objective-function name or instance ("lower is better", as for the
        three-way detector).
    chunk_size:
        Pairs evaluated per kernel batch.
    top_k:
        Number of best pairs kept.

    Example
    -------
    >>> from repro.datasets import generate_null_dataset
    >>> from repro.core.pairwise import PairwiseEpistasisDetector
    >>> result = PairwiseEpistasisDetector().detect(generate_null_dataset(20, 256, seed=0))
    >>> len(result.best_snps)
    2
    """

    def __init__(
        self,
        objective: str | ObjectiveFunction = "k2",
        chunk_size: int = 8192,
        top_k: int = 10,
    ) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if top_k < 1:
            raise ValueError("top_k must be positive")
        self.objective = get_objective(objective)
        self.chunk_size = chunk_size
        self.top_k = top_k

    def score_pairs(self, dataset: GenotypeDataset, pairs: np.ndarray) -> np.ndarray:
        """Objective scores of explicit SNP pairs."""
        split = PhenotypeSplitDataset.from_dataset(dataset)
        return self.objective.score(pairwise_split_tables(split, pairs))

    def detect(self, dataset: GenotypeDataset) -> DetectionResult:
        """Exhaustively evaluate every SNP pair of the dataset."""
        if dataset.n_snps < 2:
            raise ValueError("pairwise detection needs at least two SNPs")
        started = time.perf_counter()
        split = PhenotypeSplitDataset.from_dataset(dataset)
        total = comb(dataset.n_snps, 2)
        snp_names = list(dataset.snp_names)
        best: List[Interaction] = []
        rank = 0
        while rank < total:
            count = min(self.chunk_size, total - rank)
            pairs = pairwise_combinations(dataset.n_snps, rank, count)
            scores = self.objective.score(pairwise_split_tables(split, pairs))
            order = np.argsort(scores, kind="stable")[: self.top_k]
            best.extend(
                Interaction(
                    snps=tuple(int(s) for s in pairs[i]),
                    score=float(scores[i]),
                    snp_names=tuple(snp_names[s] for s in pairs[i]),
                )
                for i in order
            )
            best = sorted(best)[: self.top_k]
            rank += count
        elapsed = time.perf_counter() - started
        stats = ApproachStats(
            approach="cpu-pairwise",
            n_combinations=total,
            n_samples=dataset.n_samples,
            elapsed_seconds=elapsed,
            extra={"order": 2},
        )
        return DetectionResult(best=best[0], top=best, stats=stats)
