"""GPU approach V2 — case/control split, genotype-2 elision (SNP-major).

Applies the CPU V2 optimisations on the GPU: the dataset is split into cases
and controls and the genotype-2 plane is recomputed with a NOR.  The memory
layout is still SNP-major, so warp-wide loads remain uncoalesced; the
arithmetic intensity drops (47.5% fewer bytes but 2.11x fewer operations,
§V-A) and the kernel stays DRAM bound.
"""

from __future__ import annotations

import numpy as np

from repro.core.approaches._kernels import (
    SPLIT_OPS_PER_COMBO_WORD,
    split_ops_per_combo_word,
    split_tables,
)
from repro.core.approaches.gpu_base import GpuApproachBase
from repro.datasets.binarization import PhenotypeSplitDataset
from repro.datasets.dataset import GenotypeDataset
from repro.datasets.layouts import GpuLayout, snp_major_layout

__all__ = ["GpuNoPhenotypeApproach"]


class GpuNoPhenotypeApproach(GpuApproachBase):
    """Split-dataset GPU kernel on the SNP-major layout (GPU V2)."""

    name = "gpu-v2"
    version = 2
    description = "case/control split + NOR-inferred genotype 2 (still uncoalesced)"
    coalescing_factor = 32.0

    OPS_PER_COMBO_WORD = SPLIT_OPS_PER_COMBO_WORD

    def prepare(self, dataset: GenotypeDataset) -> GpuLayout:
        """Split by phenotype and upload in SNP-major order."""
        return snp_major_layout(
            PhenotypeSplitDataset.from_dataset(dataset, layout=self.word_layout)
        )

    def _class_planes(self, layout: GpuLayout, phenotype_class: int) -> np.ndarray:
        """Gather the ``(n_snps, 2, n_words)`` planes from the layout."""
        return layout.words(phenotype_class)

    def _padding_mask(self, layout: GpuLayout, phenotype_class: int) -> np.ndarray:
        from repro.bitops.packing import layout_of

        n_valid = layout.samples(phenotype_class)
        return layout_of(layout.words(phenotype_class)).padding_mask(n_valid)

    def build_tables(self, encoded: GpuLayout, combos: np.ndarray) -> np.ndarray:
        """One thread per combination over the split, SNP-major planes."""
        combos = self._check_combos(combos)
        if combos.size and combos.max() >= encoded.n_snps:
            raise IndexError("combination index exceeds the number of SNPs")
        ctrl = self._class_planes(encoded, 0)
        case = self._class_planes(encoded, 1)
        tables = split_tables(
            ctrl,
            case,
            self._padding_mask(encoded, 0),
            self._padding_mask(encoded, 1),
            combos,
            counter=self.counter,
        )
        # The warp/transaction model is per paper (32-bit) word: convert the
        # machine-word count at the charging boundary.
        from repro.bitops.packing import paper_word_ratio

        n_words_total = (ctrl.shape[-1] + case.shape[-1]) * paper_word_ratio(ctrl)
        self._charge_warp_loads(
            combos.shape[0],
            loads_per_combo_word=split_ops_per_combo_word(combos.shape[1])["LOAD"]
            / 2.0,
            n_words=n_words_total,
        )
        return tables

    def extra_stats(self) -> dict:
        stats = super().extra_stats()
        stats.update({"layout": "snp-major", "encoding": "case/control split"})
        return stats
