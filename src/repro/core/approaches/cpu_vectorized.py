"""CPU approach V4 — SIMD vectorisation of the blocked kernel.

The final CPU approach vectorises every LOAD / NOR / AND / POPCNT of the
blocked kernel with AVX or AVX-512 intrinsics.  Which intrinsics are
available is the deciding factor for performance (§IV-A, §V-B):

* **AVX / AVX2** (Skylake client, Zen, Zen2): 256-bit logical operations,
  but population counts require extracting each 64-bit lane
  (``_mm256_extract_epi64``) and using the scalar ``POPCNT``.
* **AVX-512 on Skylake-SP**: 512-bit logical operations but *two* extract
  instructions per 64-bit lane for the scalar POPCNT path — which is why
  AVX-512 on Skylake-SP underperforms plain AVX for this workload.
* **AVX-512 with VPOPCNTDQ** (Ice Lake SP): vector population count plus a
  vector reduce-add; the kernel finally becomes bound by the integer vector
  ADD peak.

This class executes the same word-level arithmetic as approach V3 (results
are bit-identical) but charges *vector* instruction counts according to the
selected :class:`~repro.bitops.simd.VectorISA`, including the extract
overhead of the scalar-POPCNT path.  A per-combination reference path using
the :class:`~repro.bitops.simd.VectorRegisterFile` is provided for
validation of the accounting model.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.bitops.simd import VectorISA, VectorRegisterFile, isa_for_name
from repro.core.approaches.cpu_blocked import CpuBlockedApproach, _BlockedEncoding
from repro.devices.specs import CpuSpec

__all__ = ["CpuVectorizedApproach"]


class CpuVectorizedApproach(CpuBlockedApproach):
    """Vectorised blocked kernel (CPU V4) with ISA-aware accounting.

    Parameters
    ----------
    isa:
        A :class:`VectorISA` instance or preset name
        (``"avx2-256"``, ``"avx512-skx"``, ``"avx512-vpopcnt"``, …).
    block_snps / block_samples / cpu_spec:
        As in :class:`CpuBlockedApproach`; when a ``cpu_spec`` is given and
        ``isa`` is not, the CPU's widest ISA is used.
    """

    name = "cpu-v4"
    device = "cpu"
    version = 4
    description = "SIMD vectorisation (AVX / AVX-512, vector or scalar POPCNT)"

    def __init__(
        self,
        isa: VectorISA | str | None = None,
        block_snps: int | None = None,
        block_samples: int | None = None,
        cpu_spec: CpuSpec | None = None,
        word_layout=None,
        backend=None,
    ) -> None:
        super().__init__(
            block_snps=block_snps,
            block_samples=block_samples,
            cpu_spec=cpu_spec,
            word_layout=word_layout,
            backend=backend,
        )
        if isa is None:
            self.isa = self.cpu_spec.vector_isa
        elif isinstance(isa, str):
            self.isa = isa_for_name(isa)
        else:
            self.isa = isa

    # -- kernel ----------------------------------------------------------------
    def build_tables(self, encoded: _BlockedEncoding, combos: np.ndarray) -> np.ndarray:
        """Blocked + vectorised construction.

        The numerical work is identical to the blocked kernel; on top of the
        word-level counters inherited from it, vector-instruction counts are
        charged according to the configured ISA (``VLOAD``, ``VAND``,
        ``VPOPCNT`` / ``EXTRACT`` + scalar ``POPCNT``, …).
        """
        combos = self._check_combos(combos)
        tables = super().build_tables(encoded, combos)
        split = encoded.split
        n_combos, order = combos.shape
        # Vector accounting is in 32-bit lanes: convert machine words to
        # paper words at the charging boundary so register occupancy is
        # identical for the uint32 and uint64 execution layouts.
        word_ratio = split.layout.paper_words
        for phenotype_class in (0, 1):
            planes, _ = split.planes_for_class(phenotype_class)
            self._charge_vector_ops(n_combos, planes.shape[2] * word_ratio, order)
        return tables

    def score_combinations(
        self, encoded: _BlockedEncoding, combos: np.ndarray, objective
    ) -> np.ndarray:
        """Fused build+score with the full V4 accounting.

        On top of the blocked fused path's word-level charge, the
        ISA-aware vector-instruction mix is charged exactly as on the
        :meth:`build_tables` path — fusion never changes what §IV models.
        """
        combos = self._check_combos(combos)
        scores = super().score_combinations(encoded, combos, objective)
        split = encoded.split
        n_combos, order = combos.shape
        word_ratio = split.layout.paper_words
        for phenotype_class in (0, 1):
            planes, _ = split.planes_for_class(phenotype_class)
            self._charge_vector_ops(n_combos, planes.shape[2] * word_ratio, order)
        return scores

    def _charge_vector_ops(self, n_combos: int, n_words: int, order: int = 3) -> None:
        """Charge the vector-instruction mix for ``n_combos`` over ``n_words``.

        The mix is parametric in the interaction order ``k``: ``2k`` loads
        and ``k`` emulated NORs per register, then ``k - 1`` ANDs and one
        population-count sequence per genotype cell (``3^k`` cells).
        """
        lanes = self.isa.lanes32
        cells = 3**order
        n_registers = (n_words + lanes - 1) // lanes
        scale = n_combos * n_registers
        self.counter.add("VLOAD", 2 * order * scale)
        self.counter.add("VOR", order * scale)   # NOR = OR + XOR(all-ones)
        self.counter.add("VXOR", order * scale)
        self.counter.add("VAND", (order - 1) * cells * scale)
        popcnt_cost = self.isa.popcount_instruction_cost()
        for mnemonic, per_register in popcnt_cost.items():
            self.counter.add(mnemonic, cells * per_register * scale)

    # -- reference path ---------------------------------------------------------
    def reference_single_combination(
        self, encoded: _BlockedEncoding, combo: tuple[int, ...]
    ) -> np.ndarray:
        """Evaluate one k-tuple through the software register file.

        This path exercises :class:`VectorRegisterFile` end-to-end (loads,
        NORs, chained ANDs and the ISA-specific population-count path) and
        is used by the test-suite to check that the fast batched kernel and
        the register-level model agree bit-for-bit, at any supported order.
        """
        from itertools import product

        split = encoded.split
        combo = tuple(int(c) for c in combo)
        order = len(combo)
        table = np.zeros((3**order, 2), dtype=np.int64)
        for phenotype_class in (0, 1):
            planes, _ = split.planes_for_class(phenotype_class)
            mask = split.padding_mask(phenotype_class)
            rf = VectorRegisterFile(self.isa, self.counter)
            snp_planes = []
            for snp in combo:
                p0 = rf.load(planes[snp, 0])
                p1 = rf.load(planes[snp, 1])
                snp_planes.append((p0, p1, rf.vand(rf.vnor(p0, p1), mask)))
            for cell, genotypes in enumerate(product(range(3), repeat=order)):
                combined = snp_planes[0][genotypes[0]]
                for t in range(1, order):
                    combined = rf.vand(combined, snp_planes[t][genotypes[t]])
                table[cell, phenotype_class] = rf.vpopcount_accumulate(combined)
        return table

    def vector_instruction_mix(self) -> Dict[str, int]:
        """Vector-instruction counts accumulated so far (for the perf model)."""
        vector_keys = (
            "VLOAD",
            "VAND",
            "VOR",
            "VXOR",
            "VPOPCNT",
            "VREDUCE_ADD",
            "EXTRACT",
            "POPCNT",
            "ADD",
        )
        return {k: self.counter.ops.get(k, 0) for k in vector_keys}

    def extra_stats(self) -> dict:
        stats = super().extra_stats()
        stats.update(
            {
                "isa": self.isa.name,
                "vector_width_bits": self.isa.width_bits,
                "vector_popcnt": self.isa.has_vector_popcnt,
            }
        )
        return stats
