"""CPU approach V3 — cache blocking (Algorithm 1).

On top of the phenotype-split kernel, the SNP triplet loop is tiled: each
core works on three blocks of ``BS`` SNPs and walks the samples in chunks of
``BP``, so that the ``BS^3`` partial frequency tables and the three
``BS x BP`` data blocks fit in the L1 data cache (§IV-A derives
``BS^3 * 4B * 2 * 27 <= sizeFT`` and ``BS * BP * 4B * 2 <= sizeBlock``,
giving ``<5, 400>`` on Ice Lake SP and ``<5, 96>`` on the other CPUs).

Blocking does not change the amount of computation or the result; it changes
*where* the loads hit.  The functional kernel below therefore produces
bit-identical tables to approach V2 while walking the data in the blocked
order, and additionally records the blocking geometry and the number of
sample-chunk passes so the CARM/performance models can attribute traffic to
the correct cache level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.approaches.base import Approach
from repro.core.approaches._kernels import (
    SPLIT_OPS_PER_COMBO_WORD,
    charge_split_ops,
    split_class_counts,
)
from repro.datasets.binarization import PhenotypeSplitDataset
from repro.datasets.dataset import GenotypeDataset
from repro.devices.specs import CpuSpec

__all__ = ["CpuBlockedApproach"]


@dataclass
class _BlockedEncoding:
    """Phenotype-split encoding annotated with the blocking parameters."""

    split: PhenotypeSplitDataset
    block_snps: int
    block_samples: int


class CpuBlockedApproach(Approach):
    """Loop-tiled kernel with L1-resident frequency tables (CPU V3).

    Parameters
    ----------
    block_snps / block_samples:
        The tiling parameters ``<BS, BP>``.  If omitted they are derived from
        ``cpu_spec`` (default: the paper's Ice Lake SP platform, yielding
        ``<5, 400>``).
    cpu_spec:
        The CPU whose L1 geometry sizes the blocks.
    """

    name = "cpu-v3"
    device = "cpu"
    version = 3
    description = "loop tiling <BS, BP> sized to the L1 data cache"

    OPS_PER_COMBO_WORD = SPLIT_OPS_PER_COMBO_WORD

    def __init__(
        self,
        block_snps: int | None = None,
        block_samples: int | None = None,
        cpu_spec: CpuSpec | None = None,
    ) -> None:
        super().__init__()
        if cpu_spec is None:
            from repro.devices.catalog import cpu as _cpu

            cpu_spec = _cpu("CI3")
        self.cpu_spec = cpu_spec
        derived_bs, derived_bp = cpu_spec.blocking_parameters()
        self.block_snps = int(block_snps) if block_snps is not None else derived_bs
        self.block_samples = (
            int(block_samples) if block_samples is not None else derived_bp
        )
        if self.block_snps < 1 or self.block_samples < 1:
            raise ValueError("blocking parameters must be positive")
        self._sample_passes = 0
        self._last_order = 3

    # -- encoding -------------------------------------------------------------
    def prepare(self, dataset: GenotypeDataset) -> _BlockedEncoding:
        """Phenotype-split encoding plus the blocking geometry."""
        return _BlockedEncoding(
            split=PhenotypeSplitDataset.from_dataset(dataset),
            block_snps=self.block_snps,
            block_samples=self.block_samples,
        )

    # -- kernel ----------------------------------------------------------------
    def build_tables(self, encoded: _BlockedEncoding, combos: np.ndarray) -> np.ndarray:
        """Blocked construction: accumulate tables over sample chunks.

        The caller supplies an arbitrary batch of combinations (the detector
        already groups them); the sample dimension is walked in chunks of
        ``BP`` samples (``BP / 32`` packed words), accumulating the per-chunk
        counts — the same partial-sum structure as Algorithm 1.
        """
        combos = self._check_combos(combos)
        split = encoded.split
        if combos.size and combos.max() >= split.n_snps:
            raise IndexError("combination index exceeds the number of SNPs")
        n_combos, order = combos.shape
        self._last_order = order
        words_per_chunk = max(1, encoded.block_samples // 32)

        tables = np.zeros((n_combos, 3**order, 2), dtype=np.int64)
        total_words = 0
        for phenotype_class in (0, 1):
            planes, _ = split.planes_for_class(phenotype_class)
            mask = split.padding_mask(phenotype_class)
            n_words = planes.shape[2]
            total_words += n_words
            for start in range(0, n_words, words_per_chunk):
                stop = min(start + words_per_chunk, n_words)
                chunk_planes = planes[:, :, start:stop]
                chunk_mask = mask[start:stop]
                tables[:, :, phenotype_class] += split_class_counts(
                    chunk_planes, chunk_mask, combos
                )
                self._sample_passes += 1
        charge_split_ops(self.counter, n_combos, total_words, order)
        return tables

    def extra_stats(self) -> dict:
        # Per-core working set of Algorithm 1 at the most recent order k:
        # BS^k partial tables of 3^k x 2 int32 cells.
        order = self._last_order
        return {
            "block_snps": self.block_snps,
            "block_samples": self.block_samples,
            "cpu": self.cpu_spec.key,
            "sample_chunk_passes": self._sample_passes,
            "frequency_table_bytes": self.block_snps**order * 2 * 3**order * 4,
        }
