"""CPU approach V3 — cache blocking (Algorithm 1).

On top of the phenotype-split kernel, the SNP triplet loop is tiled: each
core works on three blocks of ``BS`` SNPs and walks the samples in chunks of
``BP``, so that the ``BS^3`` partial frequency tables and the three
``BS x BP`` data blocks fit in the L1 data cache (§IV-A derives
``BS^3 * 4B * 2 * 27 <= sizeFT`` and ``BS * BP * 4B * 2 <= sizeBlock``,
giving ``<5, 400>`` on Ice Lake SP and ``<5, 96>`` on the other CPUs).

Blocking does not change the amount of computation or the result; it changes
*where* the loads hit.  The functional kernel below therefore produces
bit-identical tables to approach V2 while walking the data in the blocked
order, and additionally records the blocking geometry and the number of
sample-chunk passes so the CARM/performance models can attribute traffic to
the correct cache level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.approaches.base import Approach
from repro.core.approaches._fused import fused_split_scores
from repro.core.approaches._kernels import (
    SPLIT_OPS_PER_COMBO_WORD,
    charge_split_ops,
    expand_split_planes,
    split_counts_from_planes,
)
from repro.datasets.binarization import PhenotypeSplitDataset
from repro.datasets.dataset import GenotypeDataset
from repro.devices.specs import CpuSpec

__all__ = ["CpuBlockedApproach"]


@dataclass
class _BlockedEncoding:
    """Phenotype-split encoding annotated with the blocking parameters."""

    split: PhenotypeSplitDataset
    block_snps: int
    block_samples: int


class CpuBlockedApproach(Approach):
    """Loop-tiled kernel with L1-resident frequency tables (CPU V3).

    Parameters
    ----------
    block_snps / block_samples:
        The tiling parameters ``<BS, BP>``.  If omitted they are derived from
        ``cpu_spec`` (default: the paper's Ice Lake SP platform, yielding
        ``<5, 400>``).
    cpu_spec:
        The CPU whose L1 geometry sizes the blocks.
    """

    name = "cpu-v3"
    device = "cpu"
    version = 3
    description = "loop tiling <BS, BP> sized to the L1 data cache"

    OPS_PER_COMBO_WORD = SPLIT_OPS_PER_COMBO_WORD

    def __init__(
        self,
        block_snps: int | None = None,
        block_samples: int | None = None,
        cpu_spec: CpuSpec | None = None,
        word_layout=None,
        backend=None,
    ) -> None:
        super().__init__(word_layout=word_layout, backend=backend)
        if cpu_spec is None:
            from repro.devices.catalog import cpu as _cpu

            cpu_spec = _cpu("CI3")
        self.cpu_spec = cpu_spec
        derived_bs, derived_bp = cpu_spec.blocking_parameters()
        self.block_snps = int(block_snps) if block_snps is not None else derived_bs
        self.block_samples = (
            int(block_samples) if block_samples is not None else derived_bp
        )
        if self.block_snps < 1 or self.block_samples < 1:
            raise ValueError("blocking parameters must be positive")
        self._sample_passes = 0
        self._last_order = 3

    # -- encoding -------------------------------------------------------------
    def prepare(self, dataset: GenotypeDataset) -> _BlockedEncoding:
        """Phenotype-split encoding plus the blocking geometry."""
        return _BlockedEncoding(
            split=PhenotypeSplitDataset.from_dataset(dataset, layout=self.word_layout),
            block_snps=self.block_snps,
            block_samples=self.block_samples,
        )

    def encoding_key(self) -> tuple:
        # cpu-v3 and cpu-v4 share the blocked split encoding, so the key is
        # family-level (the vectorised subclass inherits it unchanged).
        return (
            "split-blocked",
            self.word_layout.name,
            self.block_snps,
            self.block_samples,
        )

    # -- kernel ----------------------------------------------------------------
    #: Ceiling on the transient AND-grid a single execution pass may
    #: materialise (two ``n_combos x 3^(k-1) x words`` intermediates live
    #: at once).  Execution passes are sized to this budget, keeping memory
    #: bounded at whole-genome sample counts without the per-pass overhead
    #: of the (much smaller) modelled BP blocks.
    EXEC_GRID_BUDGET_BYTES: int = 64 * 1024 * 1024

    def _exec_words_per_pass(self, n_combos: int, order: int, itemsize: int) -> int:
        per_word_bytes = max(1, n_combos) * 3 ** (order - 1) * itemsize
        return max(1, self.EXEC_GRID_BUDGET_BYTES // per_word_bytes)

    def build_tables(self, encoded: _BlockedEncoding, combos: np.ndarray) -> np.ndarray:
        """Blocked construction over a batch of combinations.

        Blocking is a statement about *where loads hit*, not about the
        arithmetic: the modelled kernel walks the samples in chunks of
        ``BP`` (``BP / word_bits`` packed words), and that walk is recorded
        in ``sample_chunk_passes`` for the CARM/performance models.  The
        NumPy execution, whose array ops never reproduced L1 residency in
        the first place, gathers + NOR-expands each batch **once** and then
        walks word *views* in passes sized to a fixed grid-memory budget —
        a handful of MB-scale passes instead of hundreds of BP-sized ones,
        while transient memory stays bounded at any sample count.  The
        result is bit-identical to any other pass split (integer sums
        reassociate exactly).
        """
        combos = self._check_combos(combos)
        split = encoded.split
        if combos.size and combos.max() >= split.n_snps:
            raise IndexError("combination index exceeds the number of SNPs")
        n_combos, order = combos.shape
        self._last_order = order
        words_per_chunk = max(1, encoded.block_samples // encoded.split.layout.bits)
        exec_words = self._exec_words_per_pass(
            n_combos, order, split.layout.dtype().itemsize
        )

        tables = np.zeros((n_combos, 3**order, 2), dtype=np.int64)
        total_words = 0
        word_ratio = split.layout.paper_words
        for phenotype_class in (0, 1):
            planes, _ = split.planes_for_class(phenotype_class)
            mask = split.padding_mask(phenotype_class)
            n_words = planes.shape[2]
            total_words += n_words
            if not self.backend.is_reference:
                # Compiled backends stream the words inside their kernel
                # with O(1) transients per thread — the budgeted pass split
                # below exists only to bound the NumPy broadcast grids.
                tables[:, :, phenotype_class] = self.backend.split_class_counts(
                    planes, mask, combos
                )
            elif n_words <= exec_words:
                # Common case: gather + NOR-expand once, one fused pass.
                selected = expand_split_planes(planes, mask, combos)
                tables[:, :, phenotype_class] = split_counts_from_planes(selected)
            else:
                # Whole-genome sample counts: gather within each
                # budget-sized word slice so the expanded selection and the
                # AND-grid both stay bounded, whatever n_samples is.
                for start in range(0, n_words, exec_words):
                    stop = min(start + exec_words, n_words)
                    selected = expand_split_planes(
                        planes[:, :, start:stop], mask[start:stop], combos
                    )
                    tables[:, :, phenotype_class] += split_counts_from_planes(
                        selected
                    )
            # Modelled Algorithm 1 walk: ceil(n_words / (BP / word_bits))
            # sample-chunk passes per class.
            self._sample_passes += -(-n_words // words_per_chunk)
        charge_split_ops(
            self.counter, n_combos, total_words, order, word_ratio=word_ratio
        )
        return tables

    def score_combinations(
        self, encoded: _BlockedEncoding, combos: np.ndarray, objective
    ) -> np.ndarray:
        """Fused build+score over SNP tiles of the blocked split encoding.

        The modelled bookkeeping is identical to :meth:`build_tables`: the
        same §IV per-paper-word charge over the full encoding and the same
        Algorithm 1 ``sample_chunk_passes`` record — blocking and fusion
        both describe *where* real loads hit, never the modelled counts.
        """
        combos = self._check_combos(combos)
        split = encoded.split
        if combos.size and combos.max() >= split.n_snps:
            raise IndexError("combination index exceeds the number of SNPs")
        n_combos, order = combos.shape
        self._last_order = order
        scores = fused_split_scores(self.backend, split, combos, objective)
        words_per_chunk = max(1, encoded.block_samples // split.layout.bits)
        total_words = 0
        for phenotype_class in (0, 1):
            planes, _ = split.planes_for_class(phenotype_class)
            total_words += planes.shape[2]
            self._sample_passes += -(-planes.shape[2] // words_per_chunk)
        charge_split_ops(
            self.counter,
            n_combos,
            total_words,
            order,
            word_ratio=split.layout.paper_words,
        )
        return scores

    def extra_stats(self) -> dict:
        # Per-core working set of Algorithm 1 at the most recent order k:
        # BS^k partial tables of 3^k x 2 int32 cells.
        order = self._last_order
        return {
            "block_snps": self.block_snps,
            "block_samples": self.block_samples,
            "cpu": self.cpu_spec.key,
            "sample_chunk_passes": self._sample_passes,
            "frequency_table_bytes": self.block_snps**order * 2 * 3**order * 4,
        }
