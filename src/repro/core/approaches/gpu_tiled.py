"""GPU approach V4 — SNP-tiled layout (the paper's best GPU variant).

For large data sets the transposed layout still separates consecutive words
of the *same* SNP by ``M`` words (one full SNP row of the transposed
matrix).  Tiling the SNPs into blocks of ``BS`` — placing the ``BS`` words of
a block for the same sample-word index adjacently — keeps the warp's loads
coalesced *and* shortens the stride between a thread's consecutive words to
``BS``, improving cache-line reuse (§IV-B).  Work-groups are sized to ``BS``
and the host enqueues blocks of ``BSched^3`` combinations per kernel launch;
the preferred values per device are catalogued in Table II's companion
(``GpuSpec.preferred_bs`` / ``preferred_bsched``).
"""

from __future__ import annotations

import numpy as np

from repro.core.approaches.gpu_nophen import GpuNoPhenotypeApproach
from repro.datasets.binarization import PhenotypeSplitDataset
from repro.datasets.dataset import GenotypeDataset
from repro.datasets.layouts import GpuLayout, tiled_layout

__all__ = ["GpuTiledApproach"]


class GpuTiledApproach(GpuNoPhenotypeApproach):
    """Split-dataset GPU kernel on the SNP-tiled layout (GPU V4).

    Parameters
    ----------
    block_size:
        SNP-block size ``BS`` (a multiple of 32 or 64 on real devices; any
        positive value is accepted for functional runs).
    bsched:
        Combinations-per-launch parameter ``BSched`` recorded for the
        performance model (the functional kernel receives its combination
        batches from the detector and does not need it).
    """

    name = "gpu-v4"
    version = 4
    description = "SNP-tiled layout (blocks of BS SNPs): coalescing + locality"
    coalescing_factor = 1.0

    def __init__(
        self, block_size: int = 32, bsched: int = 256, word_layout=None, backend=None
    ) -> None:
        super().__init__(word_layout=word_layout, backend=backend)
        if block_size < 1:
            raise ValueError("block_size must be positive")
        if bsched < 1:
            raise ValueError("bsched must be positive")
        self.block_size = int(block_size)
        self.bsched = int(bsched)

    def prepare(self, dataset: GenotypeDataset) -> GpuLayout:
        """Split by phenotype and upload in SNP-tiled order."""
        return tiled_layout(
            PhenotypeSplitDataset.from_dataset(dataset, layout=self.word_layout),
            block_size=self.block_size,
        )

    def encoding_key(self) -> tuple:
        return super().encoding_key() + ("tiled", self.block_size)

    def _class_planes(self, layout: GpuLayout, phenotype_class: int) -> np.ndarray:
        """Gather ``(n_snps, 2, n_words)`` planes from the tiled array."""
        arr = layout.words(phenotype_class)  # (n_blocks, n_words, 2, BS)
        n_blocks, n_words, _, bs = arr.shape
        # (blocks, words, 2, BS) -> (blocks, BS, 2, words) -> (blocks*BS, 2, words)
        planes = np.transpose(arr, (0, 3, 2, 1)).reshape(n_blocks * bs, 2, n_words)
        return np.ascontiguousarray(planes[: layout.n_snps])

    def extra_stats(self) -> dict:
        stats = super().extra_stats()
        stats.update(
            {"layout": "tiled", "block_size": self.block_size, "bsched": self.bsched}
        )
        return stats
