"""GPU approach V3 — transposed (sample-major) layout for coalesced loads.

The SNP-major layout separates consecutive SNPs' words by the whole sample
stream, so the threads of a warp (each assigned to a different SNP triplet)
load from addresses that are megabytes apart.  Transposing the data set —
SNPs in columns, consecutive samples in rows — makes consecutive threads
load consecutive words, "leading to coalesced memory accesses loads instead
of memory gather and scatter operations" (§IV-B).  This is the single
largest GPU performance step in the paper's CARM characterisation
(Figure 2b).
"""

from __future__ import annotations

import numpy as np

from repro.core.approaches.gpu_nophen import GpuNoPhenotypeApproach
from repro.datasets.binarization import PhenotypeSplitDataset
from repro.datasets.dataset import GenotypeDataset
from repro.datasets.layouts import GpuLayout, transposed_layout

__all__ = ["GpuTransposedApproach"]


class GpuTransposedApproach(GpuNoPhenotypeApproach):
    """Split-dataset GPU kernel on the transposed layout (GPU V3)."""

    name = "gpu-v3"
    version = 3
    description = "transposed (sample-major) layout -> coalesced memory accesses"
    coalescing_factor = 1.0

    def prepare(self, dataset: GenotypeDataset) -> GpuLayout:
        """Split by phenotype and upload in transposed (sample-major) order."""
        return transposed_layout(
            PhenotypeSplitDataset.from_dataset(dataset, layout=self.word_layout)
        )

    def _class_planes(self, layout: GpuLayout, phenotype_class: int) -> np.ndarray:
        """Gather ``(n_snps, 2, n_words)`` planes from the transposed array.

        The gather mirrors what each GPU thread does when walking the
        transposed layout: for its SNP it reads word ``w`` at address
        ``w * (2 * n_snps) + g * n_snps + snp`` — the reproduction gathers the
        same elements back into the canonical plane order so the shared split
        kernel can be reused; the access-pattern difference is captured by
        ``coalescing_factor``.
        """
        arr = layout.words(phenotype_class)  # (n_words, 2, n_snps)
        return np.ascontiguousarray(np.transpose(arr, (2, 1, 0)))

    def extra_stats(self) -> dict:
        stats = super().extra_stats()
        stats["layout"] = "transposed"
        return stats
