"""GPU approach V1 — naïve kernel, SNP-major layout, phenotype mask.

Identical arithmetic to the CPU naïve kernel; on the GPU it is "completely
limited by the main memory of the GPU" (§IV-B): the SNP-major layout makes
every warp-wide load fully uncoalesced, and the phenotype masks double the
population-count work.
"""

from __future__ import annotations

import numpy as np

from repro.core.approaches._kernels import (
    NAIVE_OPS_PER_COMBO_WORD,
    naive_ops_per_combo_word,
    naive_tables,
)
from repro.core.approaches.gpu_base import GpuApproachBase
from repro.datasets.binarization import BinarizedDataset
from repro.datasets.dataset import GenotypeDataset

__all__ = ["GpuNaiveApproach"]


class GpuNaiveApproach(GpuApproachBase):
    """Naïve GPU kernel (GPU V1): three planes + phenotype, uncoalesced."""

    name = "gpu-v1"
    version = 1
    description = "naive kernel, SNP-major layout, phenotype mask (uncoalesced)"
    coalescing_factor = 32.0

    OPS_PER_COMBO_WORD = NAIVE_OPS_PER_COMBO_WORD

    def prepare(self, dataset: GenotypeDataset) -> BinarizedDataset:
        """Device-resident copy of the naïve three-plane encoding."""
        return BinarizedDataset.from_dataset(dataset, layout=self.word_layout)

    def build_tables(self, encoded: BinarizedDataset, combos: np.ndarray) -> np.ndarray:
        """One thread per combination; tables accumulated in private memory."""
        combos = self._check_combos(combos)
        if combos.size and combos.max() >= encoded.n_snps:
            raise IndexError("combination index exceeds the number of SNPs")
        tables = naive_tables(
            encoded.planes, encoded.phenotype_words, combos, counter=self.counter
        )
        # The warp/transaction model is per paper (32-bit) word: convert the
        # machine-word count at the charging boundary.
        self._charge_warp_loads(
            combos.shape[0],
            loads_per_combo_word=naive_ops_per_combo_word(combos.shape[1])["LOAD"],
            n_words=encoded.n_words * encoded.layout.paper_words,
        )
        return tables

    def extra_stats(self) -> dict:
        stats = super().extra_stats()
        stats.update({"layout": "snp-major", "encoding": "3-plane + phenotype"})
        return stats
