"""Shared word-level kernels of the CPU/GPU approaches.

Two families of kernels build the ``3^k x 2`` frequency tables of a k-way
interaction (``k`` between :data:`MIN_ORDER` and :data:`MAX_ORDER`):

* the **naïve** kernel (approach V1 on both devices): three genotype planes
  per SNP over *all* samples, with the phenotype bit-vector (and its
  negation) used to split every genotype-combination count into cases and
  controls;
* the **phenotype-split** kernel (approaches V2–V4): per-class planes with
  the genotype-2 plane inferred by ``NOR`` on the fly.

The kernels are fully vectorised over a batch of SNP k-tuples: the inner
``3^k``-combination loop is expressed as a broadcast over a k-dimensional
``(3, ..., 3)`` genotype grid, and the per-word population counts are
reduced with the width-generic :func:`repro.bitops.popcount.popcount` — the
kernels accept planes in either machine-word layout (``uint32`` or
``uint64``; the wide layout halves the element count of every AND/POPCNT).
Both kernels are bit-exact with the
:func:`repro.core.contingency.contingency_oracle` construction (property
tested at several orders and both layouts), and both charge their dynamic
instruction counts to an :class:`~repro.bitops.ops.OpCounter` using
order-parametric instruction mixes.

Charging is always per **paper** (32-bit) word: the ``charge_*`` helpers
convert machine words through the layout's
:attr:`~repro.bitops.packing.WordLayout.paper_words` ratio at the charging
boundary, so at the paper's ``k = 3`` the mixes reduce to the §IV
accounting — 162 instructions per word for the naïve kernel, 57 for the
split kernel — regardless of the execution word width.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.bitops.ops import OpCounter
from repro.bitops.packing import paper_word_ratio as _paper_word_ratio
from repro.bitops.popcount import popcount_sum

__all__ = [
    "MIN_ORDER",
    "MAX_ORDER",
    "check_order",
    "n_cells",
    "naive_ops_per_combo_word",
    "split_ops_per_combo_word",
    "NAIVE_OPS_PER_COMBO_WORD",
    "SPLIT_OPS_PER_COMBO_WORD",
    "naive_tables",
    "expand_split_planes",
    "split_counts_from_planes",
    "split_class_counts",
    "split_tables",
    "charge_naive_ops",
    "charge_split_ops",
]

#: Smallest interaction order the kernels support (pairwise).
MIN_ORDER: int = 2

#: Largest interaction order the kernels support.  The ``3^k`` genotype grid
#: and the ``nCr(M, k)`` rank space both explode beyond this; 5 keeps the
#: intermediate broadcast arrays within sane memory bounds.
MAX_ORDER: int = 5


def check_order(order: int) -> int:
    """Validate an interaction order and return it as a plain ``int``."""
    order = int(order)
    if not MIN_ORDER <= order <= MAX_ORDER:
        raise ValueError(
            f"interaction order must be in [{MIN_ORDER}, {MAX_ORDER}]; got {order}"
        )
    return order


def n_cells(order: int) -> int:
    """Number of genotype-combination cells of a k-way table: ``3^k``."""
    return 3 ** check_order(order)


def naive_ops_per_combo_word(order: int = 3) -> Dict[str, float]:
    """Dynamic instruction mix of the naïve kernel, per combination per word.

    Per packed word each combination loads the 3 planes of its ``k`` SNPs
    plus the phenotype word, and each of the ``3^k`` genotype cells costs
    ``k - 1`` ANDs to combine the planes, 2 ANDs for the case/control masks,
    2 POPCNTs and 2 ADDs.  At ``k = 3`` this is the paper's
    "27 x 6 = 162 compute instructions" accounting.
    """
    order = check_order(order)
    cells = float(3**order)
    return {
        "LOAD": 3.0 * order + 1.0,
        "AND": (order + 1.0) * cells,
        "POPCNT": 2.0 * cells,
        "ADD": 2.0 * cells,
    }


def split_ops_per_combo_word(order: int = 3) -> Dict[str, float]:
    """Dynamic instruction mix of the phenotype-split kernel.

    Per combination and per packed word *of one phenotype class*: ``2k``
    loads, ``k`` NORs (each emulated as OR + XOR) to infer the genotype-2
    planes, and per genotype cell ``k - 1`` ANDs, one POPCNT and one ADD.
    At ``k = 3`` this matches the paper's "(3 NOR + 1 AND + 1 POPCNT) per
    combination -> 57 instructions" count.
    """
    order = check_order(order)
    cells = float(3**order)
    return {
        "LOAD": 2.0 * order,
        "NOR": float(order),
        "OR": float(order),
        "XOR": float(order),
        "AND": (order - 1.0) * cells,
        "POPCNT": 1.0 * cells,
        "ADD": 1.0 * cells,
    }


#: The paper's third-order instances of the order-parametric mixes, kept as
#: module constants for the performance models and the test-suite pins.
NAIVE_OPS_PER_COMBO_WORD: Dict[str, float] = naive_ops_per_combo_word(3)
SPLIT_OPS_PER_COMBO_WORD: Dict[str, float] = split_ops_per_combo_word(3)


def charge_naive_ops(
    counter: OpCounter,
    n_combos: int,
    n_words: int,
    order: int = 3,
    word_ratio: int = 1,
) -> None:
    """Charge the naïve-kernel instruction mix for a batch to ``counter``.

    ``n_words`` counts *machine* words; ``word_ratio`` is the layout's
    paper-words-per-machine-word conversion applied at this charging
    boundary.  Each mnemonic's total is rounded once at the end (not
    truncated per term), so fractional per-word mixes charge exactly.
    """
    scale = n_combos * n_words * word_ratio
    for mnemonic, per in naive_ops_per_combo_word(order).items():
        if mnemonic == "LOAD":
            counter.add_load(int(round(per * scale)))
        else:
            counter.add(mnemonic, int(round(per * scale)))


def charge_split_ops(
    counter: OpCounter,
    n_combos: int,
    n_words_total: int,
    order: int = 3,
    word_ratio: int = 1,
) -> None:
    """Charge the split-kernel mix; ``n_words_total`` sums both classes.

    Machine words are converted to paper words through ``word_ratio``, and
    each mnemonic's total is rounded once at the end (not truncated).
    """
    scale = n_combos * n_words_total * word_ratio
    for mnemonic, per in split_ops_per_combo_word(order).items():
        if mnemonic == "LOAD":
            counter.add_load(int(round(per * scale)))
        else:
            counter.add(mnemonic, int(round(per * scale)))


def _genotype_grid(selected: list[np.ndarray]) -> np.ndarray:
    """Broadcast k per-SNP ``(T, 3, W)`` plane stacks into ``(T, 3^k, W)``.

    The cell order is the canonical big-endian radix-3 convention of
    :func:`repro.core.contingency.combination_cell_index`: the first SNP of
    the combination is the most significant genotype digit.
    """
    n_combos, _, n_words = selected[0].shape
    grid = selected[0]
    cells = 3
    for planes in selected[1:]:
        grid = np.bitwise_and(grid[:, :, None, :], planes[:, None, :, :])
        cells *= 3
        grid = grid.reshape(n_combos, cells, n_words)
    return grid


def naive_tables(
    planes: np.ndarray,
    phenotype_words: np.ndarray,
    combos: np.ndarray,
    counter: OpCounter | None = None,
) -> np.ndarray:
    """Naïve frequency-table construction (approach V1), any order k.

    Parameters
    ----------
    planes:
        ``(n_snps, 3, n_words)`` packed bit-planes over all samples
        (``uint32`` or ``uint64``).
    phenotype_words:
        ``(n_words,)`` packed phenotype (bit set = case) in the same layout
        as ``planes``.  Padding bits are zero, so the case/control masks
        never count padding samples.
    combos:
        ``(n_combos, k)`` strictly increasing SNP index tuples.

    Returns
    -------
    numpy.ndarray
        ``(n_combos, 3^k, 2)`` frequency tables.
    """
    combos = np.asarray(combos, dtype=np.int64)
    order = check_order(combos.shape[1])
    n_combos = combos.shape[0]
    n_words = planes.shape[2]
    cells = 3**order
    phen = np.asarray(phenotype_words, dtype=planes.dtype)
    # The padding bits of the planes are zero, so AND-ing with ~phenotype is
    # safe even though ~phenotype has the padding bits set.
    notphen = np.bitwise_not(phen)

    selected = [planes[combos[:, t]] for t in range(order)]  # each (T, 3, W)

    tables = np.empty((n_combos, cells, 2), dtype=np.int64)
    # Walk the most-significant genotype digit to cap the broadcast at
    # (T, 3^(k-1), W) intermediates; the tail sub-grid is g0-invariant.
    sub_cells = cells // 3
    sub_grid = _genotype_grid(selected[1:])
    for g0 in range(3):
        head = selected[0][:, g0, :]
        grid = np.bitwise_and(head[:, None, :], sub_grid)
        span = slice(g0 * sub_cells, (g0 + 1) * sub_cells)
        tables[:, span, 1] = popcount_sum(np.bitwise_and(grid, phen))
        tables[:, span, 0] = popcount_sum(np.bitwise_and(grid, notphen))
    if counter is not None:
        charge_naive_ops(
            counter, n_combos, n_words, order, word_ratio=_paper_word_ratio(planes)
        )
    return tables


def expand_split_planes(
    class_planes: np.ndarray,
    padding_mask: np.ndarray,
    combos: np.ndarray,
) -> list[np.ndarray]:
    """Gather and NOR-expand one class's planes for a combination batch.

    Returns one ``(n_combos, 3, n_words)`` stack per combination position:
    the two stored planes of each selected SNP plus the genotype-2 plane
    inferred by ``NOR`` (padding masked off).  This is the gather half of
    the split kernel, factored out so callers that walk the samples in
    word chunks (the cache-blocked kernel) gather and expand **once** per
    batch and slice word views per pass instead of re-gathering.
    """
    combos = np.asarray(combos, dtype=np.int64)
    order = check_order(combos.shape[1])
    mask = np.asarray(padding_mask, dtype=class_planes.dtype)

    def expand(planes_sel: np.ndarray) -> np.ndarray:
        """(T, 2, W) stored planes -> (T, 3, W) with the inferred plane."""
        g2 = np.bitwise_and(
            np.bitwise_not(np.bitwise_or(planes_sel[:, 0], planes_sel[:, 1])), mask
        )
        return np.concatenate([planes_sel, g2[:, None, :]], axis=1)

    return [expand(class_planes[combos[:, t]]) for t in range(order)]


def split_counts_from_planes(selected: list[np.ndarray]) -> np.ndarray:
    """``3^k`` counts from pre-expanded per-position plane stacks.

    ``selected`` holds k ``(n_combos, 3, n_words)`` stacks (word views are
    fine — the blocked kernel passes slices of one expanded batch).
    """
    n_combos = selected[0].shape[0]
    order = len(selected)
    cells = 3**order
    sub_cells = cells // 3
    counts = np.empty((n_combos, cells), dtype=np.int64)
    sub_grid = _genotype_grid(selected[1:])
    for g0 in range(3):
        head = selected[0][:, g0, :]
        grid = np.bitwise_and(head[:, None, :], sub_grid)
        span = slice(g0 * sub_cells, (g0 + 1) * sub_cells)
        counts[:, span] = popcount_sum(grid)
    return counts


def split_class_counts(
    class_planes: np.ndarray,
    padding_mask: np.ndarray,
    combos: np.ndarray,
) -> np.ndarray:
    """Per-class ``3^k`` counts with the genotype-2 plane inferred by NOR.

    Parameters
    ----------
    class_planes:
        ``(n_snps, 2, n_words)`` planes of one phenotype class (``uint32``
        or ``uint64``).
    padding_mask:
        ``(n_words,)`` mask of valid sample bits for the class (clears the
        padding bits that the NOR would otherwise set), same layout as the
        planes.
    combos:
        ``(n_combos, k)`` strictly increasing SNP index tuples.

    Returns
    -------
    numpy.ndarray
        ``(n_combos, 3^k)`` counts for this class.
    """
    return split_counts_from_planes(
        expand_split_planes(class_planes, padding_mask, combos)
    )


def split_tables(
    control_planes: np.ndarray,
    case_planes: np.ndarray,
    control_mask: np.ndarray,
    case_mask: np.ndarray,
    combos: np.ndarray,
    counter: OpCounter | None = None,
) -> np.ndarray:
    """Phenotype-split frequency-table construction (approaches V2–V4).

    Returns ``(n_combos, 3^k, 2)`` tables: column 0 from the control planes,
    column 1 from the case planes.
    """
    combos = np.asarray(combos, dtype=np.int64)
    controls = split_class_counts(control_planes, control_mask, combos)
    cases = split_class_counts(case_planes, case_mask, combos)
    if counter is not None:
        n_words_total = control_planes.shape[2] + case_planes.shape[2]
        charge_split_ops(
            counter,
            combos.shape[0],
            n_words_total,
            combos.shape[1],
            word_ratio=_paper_word_ratio(control_planes),
        )
    return np.stack([controls, cases], axis=-1)
