"""Shared word-level kernels of the CPU/GPU approaches.

Two families of kernels build the 27x2 frequency tables:

* the **naïve** kernel (approach V1 on both devices): three genotype planes
  per SNP over *all* samples, with the phenotype bit-vector (and its
  negation) used to split every genotype-combination count into cases and
  controls;
* the **phenotype-split** kernel (approaches V2–V4): per-class planes with
  the genotype-2 plane inferred by ``NOR`` on the fly.

The kernels are fully vectorised over a batch of SNP triplets: the inner
27-combination loop is expressed as a broadcast over a ``(3, 3, 3)`` genotype
grid, and the per-word population counts are reduced with
:func:`repro.bitops.popcount.popcount32`.  Both kernels are bit-exact with the
:func:`repro.core.contingency.contingency_oracle` construction (property
tested), and both charge their dynamic instruction counts to an
:class:`~repro.bitops.ops.OpCounter` using the per-combination instruction
mixes the paper derives in §IV (162 instructions per word for the naïve
kernel, 57 for the split kernel).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.bitops.ops import OpCounter
from repro.bitops.popcount import popcount32

__all__ = [
    "NAIVE_OPS_PER_COMBO_WORD",
    "SPLIT_OPS_PER_COMBO_WORD",
    "naive_tables",
    "split_class_counts",
    "split_tables",
    "charge_naive_ops",
    "charge_split_ops",
]

#: Dynamic instruction mix of the naïve kernel, per SNP combination and per
#: packed word (phenotype negation precomputed once and amortised away).
#: Matches the paper's "27 x 6 = 162 compute instructions" accounting.
NAIVE_OPS_PER_COMBO_WORD: Dict[str, float] = {
    "LOAD": 9.0 + 1.0,  # 3 planes x 3 SNPs + the phenotype word
    "AND": 4.0 * 27,    # 2 (three-input AND) + 1 (cases mask) + 1 (controls mask)
    "POPCNT": 2.0 * 27,
    "ADD": 2.0 * 27,
}

#: Dynamic instruction mix of the phenotype-split kernel, per combination and
#: per packed word *of one phenotype class*.  Matches the paper's
#: "(3 NOR + 1 AND + 1 POPCNT) per combination -> 57 instructions" count
#: (the 3 NORs are amortised over the 27 combinations).
SPLIT_OPS_PER_COMBO_WORD: Dict[str, float] = {
    "LOAD": 6.0,
    "NOR": 3.0,
    "OR": 3.0,
    "XOR": 3.0,
    "AND": 2.0 * 27,
    "POPCNT": 1.0 * 27,
    "ADD": 1.0 * 27,
}


def charge_naive_ops(counter: OpCounter, n_combos: int, n_words: int) -> None:
    """Charge the naïve-kernel instruction mix for a batch to ``counter``."""
    scale = n_combos * n_words
    for mnemonic, per in NAIVE_OPS_PER_COMBO_WORD.items():
        if mnemonic == "LOAD":
            counter.add_load(int(per * scale))
        else:
            counter.add(mnemonic, int(per * scale))


def charge_split_ops(counter: OpCounter, n_combos: int, n_words_total: int) -> None:
    """Charge the split-kernel mix; ``n_words_total`` sums both classes."""
    scale = n_combos * n_words_total
    for mnemonic, per in SPLIT_OPS_PER_COMBO_WORD.items():
        if mnemonic == "LOAD":
            counter.add_load(int(per * scale))
        else:
            counter.add(mnemonic, int(per * scale))


def naive_tables(
    planes: np.ndarray,
    phenotype_words: np.ndarray,
    combos: np.ndarray,
    counter: OpCounter | None = None,
) -> np.ndarray:
    """Naïve frequency-table construction (approach V1).

    Parameters
    ----------
    planes:
        ``(n_snps, 3, n_words)`` ``uint32`` bit-planes over all samples.
    phenotype_words:
        ``(n_words,)`` packed phenotype (bit set = case).  Padding bits are
        zero, so the case/control masks never count padding samples.
    combos:
        ``(n_combos, 3)`` SNP triplets.

    Returns
    -------
    numpy.ndarray
        ``(n_combos, 27, 2)`` frequency tables.
    """
    combos = np.asarray(combos, dtype=np.int64)
    n_combos = combos.shape[0]
    n_words = planes.shape[2]
    phen = np.asarray(phenotype_words, dtype=np.uint32)
    # The padding bits of the planes are zero, so AND-ing with ~phenotype is
    # safe even though ~phenotype has the padding bits set.
    notphen = np.bitwise_not(phen)

    x = planes[combos[:, 0]]  # (T, 3, W)
    y = planes[combos[:, 1]]
    z = planes[combos[:, 2]]

    tables = np.empty((n_combos, 3, 3, 3, 2), dtype=np.int64)
    for gx in range(3):
        # (T, 1, 1, W) & (T, 3, 1, W) & (T, 1, 3, W) -> (T, 3, 3, W)
        pair = np.bitwise_and(y[:, :, None, :], z[:, None, :, :])
        triple = np.bitwise_and(x[:, gx, None, None, :], pair)
        tables[:, gx, :, :, 1] = popcount32(np.bitwise_and(triple, phen)).sum(axis=-1)
        tables[:, gx, :, :, 0] = popcount32(np.bitwise_and(triple, notphen)).sum(axis=-1)
    if counter is not None:
        charge_naive_ops(counter, n_combos, n_words)
    return tables.reshape(n_combos, 27, 2)


def split_class_counts(
    class_planes: np.ndarray,
    padding_mask: np.ndarray,
    combos: np.ndarray,
) -> np.ndarray:
    """Per-class 27-cell counts with the genotype-2 plane inferred by NOR.

    Parameters
    ----------
    class_planes:
        ``(n_snps, 2, n_words)`` planes of one phenotype class.
    padding_mask:
        ``(n_words,)`` mask of valid sample bits for the class (clears the
        padding bits that the NOR would otherwise set).
    combos:
        ``(n_combos, 3)`` SNP triplets.

    Returns
    -------
    numpy.ndarray
        ``(n_combos, 27)`` counts for this class.
    """
    combos = np.asarray(combos, dtype=np.int64)
    n_combos = combos.shape[0]
    mask = np.asarray(padding_mask, dtype=np.uint32)

    def expand(planes_sel: np.ndarray) -> np.ndarray:
        """(T, 2, W) stored planes -> (T, 3, W) with the inferred plane."""
        g2 = np.bitwise_and(
            np.bitwise_not(np.bitwise_or(planes_sel[:, 0], planes_sel[:, 1])), mask
        )
        return np.concatenate([planes_sel, g2[:, None, :]], axis=1)

    x = expand(class_planes[combos[:, 0]])
    y = expand(class_planes[combos[:, 1]])
    z = expand(class_planes[combos[:, 2]])

    counts = np.empty((n_combos, 3, 3, 3), dtype=np.int64)
    for gx in range(3):
        pair = np.bitwise_and(y[:, :, None, :], z[:, None, :, :])
        triple = np.bitwise_and(x[:, gx, None, None, :], pair)
        counts[:, gx] = popcount32(triple).sum(axis=-1)
    return counts.reshape(n_combos, 27)


def split_tables(
    control_planes: np.ndarray,
    case_planes: np.ndarray,
    control_mask: np.ndarray,
    case_mask: np.ndarray,
    combos: np.ndarray,
    counter: OpCounter | None = None,
) -> np.ndarray:
    """Phenotype-split frequency-table construction (approaches V2–V4).

    Returns ``(n_combos, 27, 2)`` tables: column 0 from the control planes,
    column 1 from the case planes.
    """
    combos = np.asarray(combos, dtype=np.int64)
    controls = split_class_counts(control_planes, control_mask, combos)
    cases = split_class_counts(case_planes, case_mask, combos)
    if counter is not None:
        n_words_total = control_planes.shape[2] + case_planes.shape[2]
        charge_split_ops(counter, combos.shape[0], n_words_total)
    return np.stack([controls, cases], axis=-1)
