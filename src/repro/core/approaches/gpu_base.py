"""Shared machinery of the GPU approaches.

The GPU approaches assign one thread per SNP triplet (Algorithm 2) and keep
each thread's 27x2 frequency table in private memory (registers), so no
inter-thread synchronisation is needed.  What distinguishes the four variants
is *how the packed words are laid out in device memory* and therefore how
many memory transactions a warp's worth of loads generates:

* SNP-major layouts (V1, V2) put consecutive words of the *same* SNP next to
  each other, so the 32 threads of a warp (each working on a different SNP
  triplet) hit 32 different cache lines — fully uncoalesced, 32 transactions
  per warp load.
* The transposed layout (V3) puts the same word index of consecutive SNPs
  next to each other — one coalesced transaction per warp load.
* The tiled layout (V4) additionally keeps a block of ``BS`` SNPs adjacent
  per word index, preserving coalescing while shrinking the reuse distance
  of each loaded line.

The functional results of all variants are identical; the classes record the
coalescing factor and per-warp transaction counts that the GPU performance
model and the CARM characterisation consume.
"""

from __future__ import annotations

from typing import ClassVar


from repro.core.approaches.base import Approach

__all__ = ["GpuApproachBase", "WARP_SIZE"]

#: Threads per warp/wavefront used for the coalescing accounting.  NVIDIA
#: warps have 32 threads, Intel SIMD32 dispatches 32 work-items and AMD
#: RDNA wavefronts are 32 wide (GCN/CDNA use 64); 32 is the common
#: denominator used by the model.
WARP_SIZE: int = 32


class GpuApproachBase(Approach):
    """Base class for GPU approaches: adds coalescing accounting."""

    device = "gpu"
    #: Number of 32-byte memory transactions issued per warp-wide 4-byte
    #: load.  1.0 means perfectly coalesced (the warp's 128 bytes are served
    #: by 4 consecutive 32-byte transactions counted as one "request" unit);
    #: ``WARP_SIZE`` means one transaction per thread.
    coalescing_factor: ClassVar[float] = float(WARP_SIZE)

    def __init__(self, word_layout=None, backend=None) -> None:
        super().__init__(word_layout=word_layout, backend=backend)
        self._warp_load_requests = 0
        self._memory_transactions = 0.0

    @property
    def backend_name(self) -> str:
        # GPU approaches execute on the functional simulator whatever
        # backend is configured: gpusim is the modelled twin that owns the
        # coalescing/transaction accounting of §IV.
        return "gpusim"

    def _charge_warp_loads(self, n_combos: int, loads_per_combo_word: float,
                           n_words: int) -> None:
        """Record global-memory transactions for a batch of combinations.

        ``loads_per_combo_word`` is the number of 4-byte loads each thread
        issues per packed word of its combination (6 for the split kernels,
        10 for the naïve kernel).  Threads are grouped into warps of
        :data:`WARP_SIZE`; each warp-wide load becomes
        ``coalescing_factor`` transactions.
        """
        n_warps = (n_combos + WARP_SIZE - 1) // WARP_SIZE
        requests = n_warps * loads_per_combo_word * n_words
        self._warp_load_requests += int(requests)
        self._memory_transactions += requests * self.coalescing_factor

    def extra_stats(self) -> dict:
        return {
            "coalescing_factor": self.coalescing_factor,
            "warp_load_requests": self._warp_load_requests,
            "memory_transactions": self._memory_transactions,
            "warp_size": WARP_SIZE,
        }
