"""CPU approach V1 — the naïve binarised kernel (Figure 1).

Every SNP keeps its three genotype bit-planes over *all* samples and the
frequency table is split into cases and controls by masking with the packed
phenotype vector and its negation.  This is the baseline the paper
characterises as completely memory bound (its working set per combination is
``3 x 3`` planes plus the phenotype, and 162 instructions per word are spent
per combination).
"""

from __future__ import annotations

import numpy as np

from repro.bitops.packing import paper_word_ratio
from repro.core.approaches.base import Approach
from repro.core.approaches._fused import fused_naive_scores
from repro.core.approaches._kernels import NAIVE_OPS_PER_COMBO_WORD, charge_naive_ops
from repro.datasets.binarization import BinarizedDataset
from repro.datasets.dataset import GenotypeDataset

__all__ = ["CpuNaiveApproach"]


class CpuNaiveApproach(Approach):
    """Naïve three-plane + phenotype-mask kernel (CPU V1)."""

    name = "cpu-v1"
    device = "cpu"
    version = 1
    description = "naive binarised kernel: 3 planes/SNP + phenotype mask"

    #: Per-combination, per-word instruction mix (consumed by the models).
    OPS_PER_COMBO_WORD = NAIVE_OPS_PER_COMBO_WORD

    def prepare(self, dataset: GenotypeDataset) -> BinarizedDataset:
        """Encode the dataset in the naïve three-plane representation."""
        return BinarizedDataset.from_dataset(dataset, layout=self.word_layout)

    def build_tables(self, encoded: BinarizedDataset, combos: np.ndarray) -> np.ndarray:
        """Build 27x2 tables by AND-ing planes with the phenotype masks."""
        combos = self._check_combos(combos)
        if combos.size and combos.max() >= encoded.n_snps:
            raise IndexError("combination index exceeds the number of SNPs")
        tables = self.backend.naive_tables(
            encoded.planes, encoded.phenotype_words, combos
        )
        # Charging is modelled per paper word and backend-independent: the
        # same §IV mix whichever backend produced the (bit-identical) tables.
        charge_naive_ops(
            self.counter,
            combos.shape[0],
            encoded.planes.shape[2],
            combos.shape[1],
            word_ratio=paper_word_ratio(encoded.planes),
        )
        return tables

    def score_combinations(
        self, encoded: BinarizedDataset, combos: np.ndarray, objective
    ) -> np.ndarray:
        """Fused build+score over SNP tiles (bit-identical to build+score).

        Charges exactly what :meth:`build_tables` charges — the modelled
        §IV mix is per paper word over the *full* encoding, unchanged by
        fusion or tiling.
        """
        combos = self._check_combos(combos)
        if combos.size and combos.max() >= encoded.n_snps:
            raise IndexError("combination index exceeds the number of SNPs")
        scores = fused_naive_scores(self.backend, encoded, combos, objective)
        charge_naive_ops(
            self.counter,
            combos.shape[0],
            encoded.planes.shape[2],
            combos.shape[1],
            word_ratio=paper_word_ratio(encoded.planes),
        )
        return scores

    def extra_stats(self) -> dict:
        return {"encoding": "3-plane + phenotype", "ops_per_combo_word": 162}
