"""Shared fused build+score execution over SNP tiles (approach layer).

These helpers drive :meth:`repro.backends.base.ExecutionBackend.
score_combinations` over the SNP-block tiles of
:func:`repro.engine.tiling.iter_snp_tiles`: each tile's distinct SNP
planes are gathered once into a compact contiguous block that every
combination in the tile reuses, and the backend folds the per-combination
tables straight into objective scores.  No chunk-wide ``(n_combos, 3^k,
2)`` table array exists on this path — a backend without true in-kernel
fusion materializes at most one tile's worth of tables at a time.

The helpers perform **no §IV charging**: the calling approach charges the
identical modelled per-paper-word mix it charges on the build_tables
path, because fusion changes the machine's real traffic, not the paper's
modelled instruction/traffic counts (see :mod:`repro.perfmodel.counters`).
"""

from __future__ import annotations

import numpy as np

from repro.engine.tiling import DEFAULT_TILE_COMBOS, iter_snp_tiles

__all__ = ["fused_naive_scores", "fused_split_scores"]

#: Ceiling on the transient AND-grid a reference-backend tile may
#: materialise, mirroring ``CpuBlockedApproach.EXEC_GRID_BUDGET_BYTES``:
#: tiles shrink below :data:`DEFAULT_TILE_COMBOS` when the word count is
#: whole-genome large, so per-tile memory stays bounded at any
#: sample count.
TILE_GRID_BUDGET_BYTES: int = 64 * 1024 * 1024


def _tile_combos_for(order: int, n_words: int, itemsize: int) -> int:
    """Tile size honouring the per-tile transient-grid budget."""
    per_combo = 3 ** (order - 1) * max(1, n_words) * itemsize * 2
    cap = max(1, TILE_GRID_BUDGET_BYTES // per_combo)
    return min(DEFAULT_TILE_COMBOS, cap)


def fused_naive_scores(
    backend, encoded, combos: np.ndarray, objective
) -> np.ndarray:
    """Fused scores over the naïve three-plane encoding, tile by tile."""
    combos = np.asarray(combos, dtype=np.int64)
    order = int(combos.shape[1])
    planes = encoded.planes
    scores = np.empty(combos.shape[0], dtype=np.float64)
    tile_combos = _tile_combos_for(order, planes.shape[2], planes.dtype.itemsize)
    phenotype_words = np.ascontiguousarray(encoded.phenotype_words)
    for tile_slice, unique_snps, local in iter_snp_tiles(combos, tile_combos):
        gathered = np.ascontiguousarray(planes[unique_snps])
        scores[tile_slice] = backend.score_combinations(
            "naive",
            local,
            objective,
            planes=gathered,
            phenotype_words=phenotype_words,
        )
    return scores


def fused_split_scores(
    backend, split, combos: np.ndarray, objective
) -> np.ndarray:
    """Fused scores over the phenotype-split encoding, tile by tile."""
    combos = np.asarray(combos, dtype=np.int64)
    order = int(combos.shape[1])
    control_planes = split.control_planes
    case_planes = split.case_planes
    n_words = control_planes.shape[2] + case_planes.shape[2]
    scores = np.empty(combos.shape[0], dtype=np.float64)
    tile_combos = _tile_combos_for(order, n_words, control_planes.dtype.itemsize)
    control_mask = np.ascontiguousarray(split.padding_mask(0))
    case_mask = np.ascontiguousarray(split.padding_mask(1))
    for tile_slice, unique_snps, local in iter_snp_tiles(combos, tile_combos):
        scores[tile_slice] = backend.score_combinations(
            "split",
            local,
            objective,
            control_planes=np.ascontiguousarray(control_planes[unique_snps]),
            case_planes=np.ascontiguousarray(case_planes[unique_snps]),
            control_mask=control_mask,
            case_mask=case_mask,
        )
    return scores
