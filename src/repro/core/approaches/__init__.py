"""The CPU and GPU epistasis-detection approaches of §IV.

Four CPU approaches and four GPU approaches are implemented, each one adding
one optimisation on top of the previous one, exactly as the paper builds
them.  All approaches expose the same interface (:class:`~repro.core.approaches.base.Approach`):
``prepare()`` encodes a dataset, ``build_tables()`` produces the 27x2
frequency tables of a batch of SNP triplets, and every run charges its
dynamic instruction counts and memory traffic to an operation counter so the
CARM and performance models can characterise it.

========  =======================================================================
name      optimisation added
========  =======================================================================
cpu-v1    naïve binarised kernel: 3 planes/SNP + phenotype mask
cpu-v2    genotype-2 inferred with NOR; dataset split into cases/controls
cpu-v3    loop tiling ``<BS, BP>`` sized to the L1 data cache
cpu-v4    SIMD vectorisation (AVX / AVX-512, vector or scalar POPCNT)
gpu-v1    naïve kernel, SNP-major layout, phenotype mask
gpu-v2    genotype-2 inferred with NOR; case/control split (SNP-major layout)
gpu-v3    transposed (sample-major) layout -> coalesced accesses
gpu-v4    SNP-tiled layout (blocks of ``BS`` SNPs) -> coalescing + locality
========  =======================================================================
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.core.approaches.base import Approach
from repro.core.approaches.cpu_naive import CpuNaiveApproach
from repro.core.approaches.cpu_nophen import CpuNoPhenotypeApproach
from repro.core.approaches.cpu_blocked import CpuBlockedApproach
from repro.core.approaches.cpu_vectorized import CpuVectorizedApproach
from repro.core.approaches.gpu_naive import GpuNaiveApproach
from repro.core.approaches.gpu_nophen import GpuNoPhenotypeApproach
from repro.core.approaches.gpu_transposed import GpuTransposedApproach
from repro.core.approaches.gpu_tiled import GpuTiledApproach

__all__ = [
    "Approach",
    "CpuNaiveApproach",
    "CpuNoPhenotypeApproach",
    "CpuBlockedApproach",
    "CpuVectorizedApproach",
    "GpuNaiveApproach",
    "GpuNoPhenotypeApproach",
    "GpuTransposedApproach",
    "GpuTiledApproach",
    "APPROACHES",
    "get_approach",
    "list_approaches",
]

#: Registry of approach classes by canonical name.
APPROACHES: Dict[str, Type[Approach]] = {
    cls.name: cls
    for cls in (
        CpuNaiveApproach,
        CpuNoPhenotypeApproach,
        CpuBlockedApproach,
        CpuVectorizedApproach,
        GpuNaiveApproach,
        GpuNoPhenotypeApproach,
        GpuTransposedApproach,
        GpuTiledApproach,
    )
}

#: Aliases accepted by :func:`get_approach`.
_ALIASES: Dict[str, str] = {
    "cpu": "cpu-v4",
    "gpu": "gpu-v4",
    "cpu-best": "cpu-v4",
    "gpu-best": "gpu-v4",
    "naive": "cpu-v1",
}


def get_approach(name: str, **kwargs) -> Approach:
    """Instantiate an approach by name (``cpu-v1`` … ``gpu-v4``).

    Keyword arguments are forwarded to the approach constructor (e.g.
    ``isa=`` for ``cpu-v4``, ``block_size=`` for ``gpu-v4``).
    """
    key = name.lower()
    key = _ALIASES.get(key, key)
    if key not in APPROACHES:
        raise KeyError(
            f"unknown approach {name!r}; available: {sorted(APPROACHES)} "
            f"(aliases: {sorted(_ALIASES)})"
        )
    return APPROACHES[key](**kwargs)


def list_approaches(
    device: str | None = None, include_aliases: bool = False
) -> List[str]:
    """List registered approach names, optionally filtered by device kind.

    ``include_aliases`` appends the accepted alias names (``"cpu"``,
    ``"gpu-best"``, ...) — the full vocabulary of :func:`get_approach`, used
    by the CLI's argument validation.
    """
    names = sorted(APPROACHES)
    if device is not None:
        names = [n for n in names if APPROACHES[n].device == device]
    if include_aliases:
        aliases = sorted(
            a for a, target in _ALIASES.items()
            if device is None or APPROACHES[target].device == device
        )
        names = names + aliases
    return names
