"""Common interface of all detection approaches."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, ClassVar, Dict, Mapping

import numpy as np

from repro.bitops.ops import OpCounter
from repro.bitops.packing import WordLayout, get_layout
from repro.core.approaches._kernels import MAX_ORDER, MIN_ORDER
from repro.datasets.dataset import GenotypeDataset

__all__ = ["Approach"]


class Approach(ABC):
    """Base class of the CPU/GPU epistasis detection approaches.

    An approach encapsulates one of the paper's algorithm variants: how the
    dataset is encoded (``prepare``), how the ``3^k x 2`` frequency tables
    of a batch of SNP k-tuples are constructed (``build_tables``) and which
    dynamic instruction/traffic counts that construction charges to the
    operation counter.  Every approach is *order-generic*: the interaction
    order ``k`` is carried by the width of the combination batch
    (``combos.shape[1]``) and may be anything in
    ``[MIN_ORDER, MAX_ORDER]`` — the paper's third-order study is the
    ``k = 3`` instance.

    Subclasses must define the class attributes ``name`` (registry key),
    ``device`` (``"cpu"`` or ``"gpu"``) and ``version`` (1–4) and implement
    :meth:`prepare` and :meth:`build_tables`.

    Approaches are *stateless with respect to results*: the encoded dataset
    returned by :meth:`prepare` is an explicit argument of
    :meth:`build_tables` so that a single approach instance can serve many
    datasets (and many host threads) concurrently.  The operation counter is
    the only mutable state and is documented as not thread-safe; the
    detector keeps one approach instance per worker.
    """

    #: Registry name, e.g. ``"cpu-v3"``.
    name: ClassVar[str] = "abstract"
    #: Device family the approach targets: ``"cpu"`` or ``"gpu"``.
    device: ClassVar[str] = "cpu"
    #: Optimisation level, 1 (naïve) to 4 (best).
    version: ClassVar[int] = 0
    #: One-line description used by the CLI and reports.
    description: ClassVar[str] = ""
    #: Interaction orders the approach supports (inclusive bounds).  All
    #: built-in approaches share the kernel-wide range; specialised
    #: subclasses may narrow it.
    min_order: ClassVar[int] = MIN_ORDER
    max_order: ClassVar[int] = MAX_ORDER

    def __init__(
        self,
        word_layout: WordLayout | str | None = None,
        backend: str | None = None,
    ) -> None:
        # Deferred import: repro.backends imports the reference kernels from
        # this package, so the registry must not be touched at module level.
        from repro.backends import get_backend

        self.counter = OpCounter()
        #: Machine-word layout the encodings are packed with (``uint32`` or
        #: ``uint64``; the default follows
        #: :func:`repro.bitops.packing.default_layout`).  Charging stays per
        #: paper word whichever layout runs.
        self.word_layout: WordLayout = get_layout(word_layout)
        #: Execution backend of the table-construction hot loop (``numpy``,
        #: ``numba`` or ``cupy``; resolved through
        #: :func:`repro.backends.get_backend`, so an unavailable optional
        #: backend degrades to the NumPy reference).  Backends are pure
        #: execution: op/traffic charging stays in the approach layer, per
        #: paper word, whichever backend runs.
        self.backend = get_backend(backend)

    # -- encoding -------------------------------------------------------------
    @abstractmethod
    def prepare(self, dataset: GenotypeDataset) -> Any:
        """Encode ``dataset`` into the representation this approach consumes.

        The returned object is opaque to callers; it is passed back to
        :meth:`build_tables`.  Encodings are pure data (NumPy arrays and
        dataclasses) and safe to share between threads.
        """

    def encoding_key(self) -> tuple:
        """Cache identity of :meth:`prepare`'s output for one dataset.

        Two approach instances whose keys are equal produce interchangeable
        encodings for the same dataset, so the detector-level encoding cache
        can reuse one prepared object across runs, stages and workers.
        Subclasses whose encoding depends on extra parameters (blocking
        geometry, GPU tile size) must extend the tuple.
        """
        return (type(self).__name__, self.word_layout.name)

    # -- kernel ----------------------------------------------------------------
    @abstractmethod
    def build_tables(self, encoded: Any, combos: np.ndarray) -> np.ndarray:
        """Construct frequency tables for a batch of SNP combinations.

        Parameters
        ----------
        encoded:
            Object returned by :meth:`prepare`.
        combos:
            ``(n_combos, k)`` array of strictly increasing SNP index
            k-tuples, ``min_order <= k <= max_order``.

        Returns
        -------
        numpy.ndarray
            ``(n_combos, 3^k, 2)`` ``int64`` frequency tables (column 0 =
            controls, column 1 = cases).
        """

    def score_combinations(
        self, encoded: Any, combos: np.ndarray, objective
    ) -> np.ndarray | None:
        """Fused build+score over a combination batch, or ``None``.

        Approaches that support the fused path fold each combination's
        frequency table straight into its objective score (through the
        execution backend's ``score_combinations`` capability, tiled over
        SNP blocks) and return the ``(n_combos,)`` float64 score vector —
        bit-identical to ``objective.score(self.build_tables(...))``, and
        charged with the *identical* §IV per-paper-word mix (fusion changes
        real traffic, never the modelled accounting).  The default returns
        ``None``: callers must fall back to build-then-score.
        """
        return None

    @property
    def backend_name(self) -> str:
        """The execution backend actually running the hot loop.

        GPU approaches override this: they execute on the
        :mod:`repro.gpusim` modelled twin regardless of the configured
        backend.
        """
        return self.backend.name

    # -- bookkeeping ------------------------------------------------------------
    def reset_counter(self) -> None:
        """Clear the operation counter (e.g. between benchmark repetitions)."""
        self.counter = OpCounter()

    def op_counts(self) -> Mapping[str, int]:
        """Snapshot of the accumulated instruction counts."""
        return self.counter.as_dict()

    def extra_stats(self) -> Dict[str, object]:
        """Approach-specific metadata recorded into the run statistics."""
        return {}

    # -- helpers ----------------------------------------------------------------
    @classmethod
    def _check_combos(cls, combos: np.ndarray) -> np.ndarray:
        combos = np.asarray(combos, dtype=np.int64)
        if combos.ndim != 2 or not cls.min_order <= combos.shape[1] <= cls.max_order:
            raise ValueError(
                f"combos must have shape (n_combos, k) with "
                f"{cls.min_order} <= k <= {cls.max_order}; got {combos.shape}"
            )
        if combos.size and not (combos[:, :-1] < combos[:, 1:]).all():
            raise ValueError("every combination must be strictly increasing")
        return combos

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, device={self.device!r})"
