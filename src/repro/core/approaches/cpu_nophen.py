"""CPU approach V2 — genotype-2 elision and case/control split.

Two observations reduce the memory footprint of the naïve kernel by roughly
one third and its instruction count from 162 to 57 per word (§IV-A):

* a sample has genotype 2 at a SNP iff it has neither genotype 0 nor 1, so
  the third plane can be recomputed with a single ``NOR``;
* if the samples are split into controls and cases up front, the phenotype
  masks disappear from the inner loop entirely.

The arithmetic intensity *drops* (computation shrinks faster than traffic),
which is why this approach alone does not improve CARM placement — it is the
stepping stone for the cache-blocked and vectorised variants.
"""

from __future__ import annotations

import numpy as np

from repro.bitops.packing import paper_word_ratio
from repro.core.approaches.base import Approach
from repro.core.approaches._fused import fused_split_scores
from repro.core.approaches._kernels import SPLIT_OPS_PER_COMBO_WORD, charge_split_ops
from repro.datasets.binarization import PhenotypeSplitDataset
from repro.datasets.dataset import GenotypeDataset

__all__ = ["CpuNoPhenotypeApproach"]


class CpuNoPhenotypeApproach(Approach):
    """Case/control-split kernel with the genotype-2 plane inferred (CPU V2)."""

    name = "cpu-v2"
    device = "cpu"
    version = 2
    description = "genotype-2 inferred with NOR; dataset split into cases/controls"

    OPS_PER_COMBO_WORD = SPLIT_OPS_PER_COMBO_WORD

    def prepare(self, dataset: GenotypeDataset) -> PhenotypeSplitDataset:
        """Split the dataset by phenotype and keep only planes 0 and 1."""
        return PhenotypeSplitDataset.from_dataset(dataset, layout=self.word_layout)

    def build_tables(
        self, encoded: PhenotypeSplitDataset, combos: np.ndarray
    ) -> np.ndarray:
        """Build 27x2 tables from the per-class planes."""
        combos = self._check_combos(combos)
        if combos.size and combos.max() >= encoded.n_snps:
            raise IndexError("combination index exceeds the number of SNPs")
        tables = self.backend.split_tables(
            encoded.control_planes,
            encoded.case_planes,
            encoded.padding_mask(0),
            encoded.padding_mask(1),
            combos,
        )
        # Modelled per-paper-word charging, identical whichever backend ran.
        charge_split_ops(
            self.counter,
            combos.shape[0],
            encoded.control_planes.shape[2] + encoded.case_planes.shape[2],
            combos.shape[1],
            word_ratio=paper_word_ratio(encoded.control_planes),
        )
        return tables

    def score_combinations(
        self, encoded: PhenotypeSplitDataset, combos: np.ndarray, objective
    ) -> np.ndarray:
        """Fused build+score over SNP tiles; §IV charging as in build_tables."""
        combos = self._check_combos(combos)
        if combos.size and combos.max() >= encoded.n_snps:
            raise IndexError("combination index exceeds the number of SNPs")
        scores = fused_split_scores(self.backend, encoded, combos, objective)
        charge_split_ops(
            self.counter,
            combos.shape[0],
            encoded.control_planes.shape[2] + encoded.case_planes.shape[2],
            combos.shape[1],
            word_ratio=paper_word_ratio(encoded.control_planes),
        )
        return scores

    def extra_stats(self) -> dict:
        return {"encoding": "case/control split, 2 planes", "ops_per_combo_word": 57}
