"""Enumeration of the exhaustive SNP-combination search space.

Exhaustive k-way epistasis detection evaluates every ``nCr(M, k)``
combination of distinct SNPs.  For the paper's three-way study the space
grows cubically with the SNP count — 2048 SNPs already yield ~1.4 x 10^9
triplets — so the enumeration layer matters: it must

* stream combinations without materialising the whole space,
* support *chunking* so the host scheduler can hand work to threads
  (OpenMP dynamic scheduling in the paper) or to GPU kernel launches
  (blocks of ``BSched^3`` combinations), and
* support the *triangular block* iteration of Algorithm 1, where each CPU
  core works on three blocks of ``BS`` SNPs at a time and only evaluates
  the ``ii2 > ii1 > ii0`` combinations inside them.

The combinatorial-number-system rank/unrank functions allow any contiguous
range of the (lexicographic) combination sequence to be reconstructed from
its starting rank, which is how distributed baselines (MPI3SNP-style static
partitioning) and the GPU launch scheduler carve the space.
"""

from __future__ import annotations

from math import comb
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "combination_count",
    "combination_rank",
    "combination_ranks",
    "combination_from_rank",
    "combinations_from_ranks",
    "generate_combinations",
    "subset_combinations",
    "iter_combination_chunks",
    "iter_triangular_blocks",
    "block_combination_count",
]

#: Largest combination-space size the vectorised ``int64`` unranking can
#: address; larger spaces fall back to the arbitrary-precision scalar path.
_INT64_MAX = np.iinfo(np.int64).max


def combination_count(n_snps: int, order: int = 3) -> int:
    """Number of SNP combinations: ``nCr(n_snps, order)``."""
    if n_snps < 0 or order < 1:
        raise ValueError("n_snps must be >= 0 and order >= 1")
    return comb(n_snps, order)


def combination_rank(combo: Sequence[int], n_snps: int | None = None) -> int:
    """Lexicographic rank of a strictly increasing combination.

    The rank is the index of ``combo`` in the sequence produced by
    :func:`generate_combinations` (0-based).  Uses the combinatorial number
    system: for ``combo = (c0 < c1 < ... < c_{k-1})`` drawn from ``M`` items,

    ``rank = C(M,k) - sum_{t} C(M - c_t - 1, k - t)`` adjusted for the
    lexicographic order on increasing tuples.
    """
    combo = tuple(combo)
    k = len(combo)
    if any(combo[i] >= combo[i + 1] for i in range(k - 1)):
        raise ValueError(f"combination must be strictly increasing, got {combo}")
    if combo and combo[0] < 0:
        raise ValueError("combination indices must be non-negative")
    if n_snps is None:
        n_snps = combo[-1] + 1 if combo else 0
    if combo and combo[-1] >= n_snps:
        raise ValueError(f"combination {combo} out of range for n_snps={n_snps}")
    rank = 0
    prev = -1
    for t, c in enumerate(combo):
        for skipped in range(prev + 1, c):
            rank += comb(n_snps - skipped - 1, k - t - 1)
        prev = c
    return rank


def combination_from_rank(rank: int, n_snps: int, order: int = 3) -> tuple[int, ...]:
    """Inverse of :func:`combination_rank` (lexicographic unranking)."""
    total = combination_count(n_snps, order)
    if not 0 <= rank < total:
        raise ValueError(f"rank {rank} out of range [0, {total})")
    combo: list[int] = []
    prev = -1
    remaining_rank = rank
    for t in range(order):
        c = prev + 1
        while True:
            block = comb(n_snps - c - 1, order - t - 1)
            if remaining_rank < block:
                break
            remaining_rank -= block
            c += 1
        combo.append(c)
        prev = c
    return tuple(combo)


def combination_ranks(combos: np.ndarray, n_snps: int) -> np.ndarray:
    """Vectorised lexicographic ranking of many combinations at once.

    The inverse of :func:`combinations_from_ranks`: for each strictly
    increasing row of ``combos`` the rank is accumulated level by level from
    the same suffix-count tables the unranking walks — the items skipped
    before position ``t`` contribute ``C(M - prev - 1, k - t) - C(M - c_t,
    k - t)`` (a telescoped hockey-stick sum), so the cost is ``O(k · (n +
    M))`` NumPy work.

    Parameters
    ----------
    combos:
        ``(n, k)`` array of strictly increasing combinations.
    n_snps:
        Number of SNPs ``M`` the ranks are relative to.

    Returns
    -------
    numpy.ndarray
        ``(n,)`` ``int64`` lexicographic ranks.
    """
    combos = np.asarray(combos)
    if combos.ndim != 2:
        raise ValueError(f"combos must be 2-D (n, k); got shape {combos.shape}")
    n, order = combos.shape
    if order < 1:
        raise ValueError("combinations must have at least one element")
    if combination_count(n_snps, order) > _INT64_MAX:
        return np.array(
            [combination_rank(tuple(int(c) for c in row), n_snps) for row in combos],
            dtype=object,
        )
    combos = combos.astype(np.int64, copy=False)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if combos.min(initial=0) < 0 or combos.max(initial=-1) >= n_snps:
        raise ValueError(f"combination indices must lie in [0, {n_snps})")
    if order > 1 and not (combos[:, 1:] > combos[:, :-1]).all():
        raise ValueError("combinations must be strictly increasing along rows")
    ranks = np.zeros(n, dtype=np.int64)
    prev = np.full(n, -1, dtype=np.int64)
    for t in range(order):
        slots = order - t
        suffix = np.array(
            [comb(max(n_snps - c, 0), slots) for c in range(n_snps + 2)],
            dtype=np.int64,
        )
        c = combos[:, t]
        ranks += suffix[prev + 1] - suffix[c]
        prev = c
    return ranks


def _pairs_from_ranks(ranks: np.ndarray, n_snps: int) -> np.ndarray:
    """Closed-form order-2 unranking (no searchsorted over binomial tables).

    With ``offset(i) = i*(n-1) - i*(i-1)/2`` pairs preceding first index
    ``i``, the first index of rank ``r`` is the largest ``i`` with
    ``offset(i) <= r`` and the second follows as ``r - offset(i) + i + 1``.
    """
    firsts = np.arange(n_snps - 1, dtype=np.int64)
    offsets = firsts * (n_snps - 1) - (firsts * (firsts - 1)) // 2
    i = np.searchsorted(offsets, ranks, side="right") - 1
    j = ranks - offsets[i] + i + 1
    return np.stack([i, j], axis=1)


def combinations_from_ranks(
    ranks: np.ndarray, n_snps: int, order: int = 3
) -> np.ndarray:
    """Vectorised lexicographic unranking of many ranks at once.

    The order-dispatched fast path of the enumeration layer:

    * ``order == 2`` uses the closed-form pair unranking (one
      ``searchsorted`` over a triangular offset table);
    * any other order runs the combinatorial-number-system unranking
      level-by-level — one ``searchsorted`` per combination position over a
      precomputed suffix-count table ``C(M - c, k - t)`` — so the cost is
      ``O(k · n · log M)`` NumPy work instead of ``O(n · k · M)`` Python
      loop iterations;
    * combination spaces larger than ``int64`` fall back to the exact
      arbitrary-precision scalar :func:`combination_from_rank`.

    Parameters
    ----------
    ranks:
        1-D array of lexicographic ranks (any order, duplicates allowed).
    n_snps / order:
        Number of SNPs ``M`` and interaction order ``k``.

    Returns
    -------
    numpy.ndarray
        ``(len(ranks), order)`` ``int64`` combinations.
    """
    ranks = np.asarray(ranks)
    if ranks.ndim != 1:
        raise ValueError(f"ranks must be 1-D; got shape {ranks.shape}")
    total = combination_count(n_snps, order)
    if total > _INT64_MAX:
        return np.array(
            [combination_from_rank(int(r), n_snps, order) for r in ranks],
            dtype=object,
        )
    ranks = ranks.astype(np.int64, copy=False)
    if ranks.size == 0:
        return np.empty((0, order), dtype=np.int64)
    if ranks.min() < 0 or ranks.max() >= total:
        raise ValueError(f"ranks must lie in [0, {total})")
    if order == 2:
        return _pairs_from_ranks(ranks, n_snps)

    out = np.empty((ranks.size, order), dtype=np.int64)
    prev = np.full(ranks.size, -1, dtype=np.int64)
    remaining = ranks.copy()
    for t in range(order):
        slots = order - t  # positions still to fill, including this one
        # suffix[c] = C(M - c, slots): combinations of the remaining slots
        # drawn entirely from {c, ..., M-1}.  Non-increasing in c.
        suffix = np.array(
            [comb(max(n_snps - c, 0), slots) for c in range(n_snps + 2)],
            dtype=np.int64,
        )
        target = suffix[prev + 1] - remaining
        # Largest c with suffix[c] >= target  <=>  last index of the
        # non-decreasing array -suffix that is <= -target.
        c = np.searchsorted(-suffix, -target, side="right") - 1
        remaining -= suffix[prev + 1] - suffix[c]
        out[:, t] = c
        prev = c
    return out


def generate_combinations(
    n_snps: int,
    order: int = 3,
    start_rank: int = 0,
    count: int | None = None,
) -> np.ndarray:
    """Materialise a contiguous range of combinations as an ``(n, order)`` array.

    Parameters
    ----------
    n_snps:
        Number of SNPs ``M``.
    order:
        Interaction order ``k``.
    start_rank / count:
        Range of lexicographic ranks to produce; by default the whole space.
        Intended for test/benchmark-scale problems — production runs stream
        chunks with :func:`iter_combination_chunks` instead.

    Notes
    -----
    Dispatches to the vectorised :func:`combinations_from_ranks` (closed
    form at order 2, per-level unranking otherwise); the scalar
    next-combination walk is kept only for spaces too large for ``int64``
    rank arithmetic.
    """
    total = combination_count(n_snps, order)
    if count is None:
        count = total - start_rank
    if count < 0 or start_rank < 0 or start_rank + count > total:
        raise ValueError(
            f"invalid range [{start_rank}, {start_rank + count}) for {total} combinations"
        )
    if count == 0:
        return np.empty((0, order), dtype=np.int64)
    if total <= _INT64_MAX:
        ranks = np.arange(start_rank, start_rank + count, dtype=np.int64)
        return combinations_from_ranks(ranks, n_snps, order)
    out = np.empty((count, order), dtype=np.int64)
    combo = list(combination_from_rank(start_rank, n_snps, order))
    for row in range(count):
        out[row] = combo
        # Advance to the next combination in lexicographic order.
        i = order - 1
        while i >= 0 and combo[i] == n_snps - order + i:
            i -= 1
        if i < 0:
            break
        combo[i] += 1
        for j in range(i + 1, order):
            combo[j] = combo[j - 1] + 1
    return out


def subset_combinations(
    subset: np.ndarray,
    order: int = 3,
    start_rank: int = 0,
    count: int | None = None,
) -> np.ndarray:
    """Combinations over a retained SNP subset, mapped back to global indices.

    The staged search evaluates its expensive high-order sweep only over the
    SNPs a cheaper screening pass retained.  This helper enumerates the
    ``nCr(len(subset), order)`` local combinations (lexicographic, like
    :func:`generate_combinations`) and translates every local position
    through the sorted ``subset`` array, so the produced rows are valid
    global k-tuples that any approach kernel (and the result reporting) can
    consume unchanged.

    Parameters
    ----------
    subset:
        1-D array of retained *global* SNP indices, strictly increasing (a
        sorted subset keeps the global rows strictly increasing too).
    order:
        Interaction order ``k``.
    start_rank / count:
        Range of local lexicographic ranks to produce; the whole local
        space by default.

    Returns
    -------
    numpy.ndarray
        ``(count, order)`` ``int64`` global SNP combinations.
    """
    subset = np.asarray(subset, dtype=np.int64)
    if subset.ndim != 1:
        raise ValueError(f"subset must be 1-D; got shape {subset.shape}")
    if subset.size and subset[0] < 0:
        raise ValueError("subset indices must be non-negative")
    if subset.size > 1 and not (subset[1:] > subset[:-1]).all():
        raise ValueError("subset must be strictly increasing (sorted, no duplicates)")
    local = generate_combinations(
        int(subset.size), order, start_rank=start_rank, count=count
    )
    return subset[local]


def iter_combination_chunks(
    n_snps: int,
    order: int = 3,
    chunk_size: int = 4096,
    start_rank: int = 0,
    stop_rank: int | None = None,
) -> Iterator[np.ndarray]:
    """Yield the combination space as ``(<=chunk_size, order)`` arrays.

    This is the work-unit stream consumed by the host scheduler; chunks are
    produced lazily so arbitrarily large search spaces can be traversed.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    total = combination_count(n_snps, order)
    stop = total if stop_rank is None else min(stop_rank, total)
    rank = start_rank
    while rank < stop:
        n = min(chunk_size, stop - rank)
        yield generate_combinations(n_snps, order, start_rank=rank, count=n)
        rank += n


def block_combination_count(n_snps: int, block_size: int) -> int:
    """Number of triangular SNP-block triples visited by Algorithm 1."""
    n_blocks = (n_snps + block_size - 1) // block_size
    # blocks (b0 <= b1 <= b2): combinations with repetition.
    return comb(n_blocks + 2, 3)


def iter_triangular_blocks(
    n_snps: int,
    block_size: int,
) -> Iterator[tuple[tuple[int, int], tuple[int, int], tuple[int, int]]]:
    """Iterate SNP-block triples ``(b0 <= b1 <= b2)`` as index ranges.

    Each yielded element is a triple of ``(start, stop)`` half-open SNP index
    ranges, one per loop variable ``i0, i1, i2`` of Algorithm 1.  The caller
    is responsible for the intra-block ``ii2 > ii1 > ii0`` filter (which the
    blocked kernels apply), so every SNP triplet is visited exactly once
    across all yielded block triples.
    """
    if block_size < 1:
        raise ValueError("block_size must be positive")
    n_blocks = (n_snps + block_size - 1) // block_size

    def block_range(b: int) -> tuple[int, int]:
        return b * block_size, min((b + 1) * block_size, n_snps)

    for b0 in range(n_blocks):
        for b1 in range(b0, n_blocks):
            for b2 in range(b1, n_blocks):
                yield block_range(b0), block_range(b1), block_range(b2)


def combinations_in_block_triple(
    ranges: tuple[tuple[int, int], tuple[int, int], tuple[int, int]],
) -> np.ndarray:
    """All valid (strictly increasing) triplets within one block triple.

    The intra-block filter ``i2 > i1 > i0`` of Algorithm 1 is applied here,
    so the union over all block triples yielded by
    :func:`iter_triangular_blocks` is exactly the combination space.
    """
    (s0, e0), (s1, e1), (s2, e2) = ranges
    i0 = np.arange(s0, e0, dtype=np.int64)
    i1 = np.arange(s1, e1, dtype=np.int64)
    i2 = np.arange(s2, e2, dtype=np.int64)
    g0, g1, g2 = np.meshgrid(i0, i1, i2, indexing="ij")
    mask = (g1 > g0) & (g2 > g1)
    return np.stack([g0[mask], g1[mask], g2[mask]], axis=1)
