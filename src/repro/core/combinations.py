"""Enumeration of the exhaustive SNP-combination search space.

Exhaustive k-way epistasis detection evaluates every ``nCr(M, k)``
combination of distinct SNPs.  For the paper's three-way study the space
grows cubically with the SNP count — 2048 SNPs already yield ~1.4 x 10^9
triplets — so the enumeration layer matters: it must

* stream combinations without materialising the whole space,
* support *chunking* so the host scheduler can hand work to threads
  (OpenMP dynamic scheduling in the paper) or to GPU kernel launches
  (blocks of ``BSched^3`` combinations), and
* support the *triangular block* iteration of Algorithm 1, where each CPU
  core works on three blocks of ``BS`` SNPs at a time and only evaluates
  the ``ii2 > ii1 > ii0`` combinations inside them.

The combinatorial-number-system rank/unrank functions allow any contiguous
range of the (lexicographic) combination sequence to be reconstructed from
its starting rank, which is how distributed baselines (MPI3SNP-style static
partitioning) and the GPU launch scheduler carve the space.
"""

from __future__ import annotations

from math import comb
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "combination_count",
    "combination_rank",
    "combination_from_rank",
    "generate_combinations",
    "iter_combination_chunks",
    "iter_triangular_blocks",
    "block_combination_count",
]


def combination_count(n_snps: int, order: int = 3) -> int:
    """Number of SNP combinations: ``nCr(n_snps, order)``."""
    if n_snps < 0 or order < 1:
        raise ValueError("n_snps must be >= 0 and order >= 1")
    return comb(n_snps, order)


def combination_rank(combo: Sequence[int], n_snps: int | None = None) -> int:
    """Lexicographic rank of a strictly increasing combination.

    The rank is the index of ``combo`` in the sequence produced by
    :func:`generate_combinations` (0-based).  Uses the combinatorial number
    system: for ``combo = (c0 < c1 < ... < c_{k-1})`` drawn from ``M`` items,

    ``rank = C(M,k) - sum_{t} C(M - c_t - 1, k - t)`` adjusted for the
    lexicographic order on increasing tuples.
    """
    combo = tuple(combo)
    k = len(combo)
    if any(combo[i] >= combo[i + 1] for i in range(k - 1)):
        raise ValueError(f"combination must be strictly increasing, got {combo}")
    if combo and combo[0] < 0:
        raise ValueError("combination indices must be non-negative")
    if n_snps is None:
        n_snps = combo[-1] + 1 if combo else 0
    if combo and combo[-1] >= n_snps:
        raise ValueError(f"combination {combo} out of range for n_snps={n_snps}")
    rank = 0
    prev = -1
    for t, c in enumerate(combo):
        for skipped in range(prev + 1, c):
            rank += comb(n_snps - skipped - 1, k - t - 1)
        prev = c
    return rank


def combination_from_rank(rank: int, n_snps: int, order: int = 3) -> tuple[int, ...]:
    """Inverse of :func:`combination_rank` (lexicographic unranking)."""
    total = combination_count(n_snps, order)
    if not 0 <= rank < total:
        raise ValueError(f"rank {rank} out of range [0, {total})")
    combo: list[int] = []
    prev = -1
    remaining_rank = rank
    for t in range(order):
        c = prev + 1
        while True:
            block = comb(n_snps - c - 1, order - t - 1)
            if remaining_rank < block:
                break
            remaining_rank -= block
            c += 1
        combo.append(c)
        prev = c
    return tuple(combo)


def generate_combinations(
    n_snps: int,
    order: int = 3,
    start_rank: int = 0,
    count: int | None = None,
) -> np.ndarray:
    """Materialise a contiguous range of combinations as an ``(n, order)`` array.

    Parameters
    ----------
    n_snps:
        Number of SNPs ``M``.
    order:
        Interaction order ``k``.
    start_rank / count:
        Range of lexicographic ranks to produce; by default the whole space.
        Intended for test/benchmark-scale problems — production runs stream
        chunks with :func:`iter_combination_chunks` instead.
    """
    total = combination_count(n_snps, order)
    if count is None:
        count = total - start_rank
    if count < 0 or start_rank < 0 or start_rank + count > total:
        raise ValueError(
            f"invalid range [{start_rank}, {start_rank + count}) for {total} combinations"
        )
    if count == 0:
        return np.empty((0, order), dtype=np.int64)
    out = np.empty((count, order), dtype=np.int64)
    combo = list(combination_from_rank(start_rank, n_snps, order))
    for row in range(count):
        out[row] = combo
        # Advance to the next combination in lexicographic order.
        i = order - 1
        while i >= 0 and combo[i] == n_snps - order + i:
            i -= 1
        if i < 0:
            break
        combo[i] += 1
        for j in range(i + 1, order):
            combo[j] = combo[j - 1] + 1
    return out


def iter_combination_chunks(
    n_snps: int,
    order: int = 3,
    chunk_size: int = 4096,
    start_rank: int = 0,
    stop_rank: int | None = None,
) -> Iterator[np.ndarray]:
    """Yield the combination space as ``(<=chunk_size, order)`` arrays.

    This is the work-unit stream consumed by the host scheduler; chunks are
    produced lazily so arbitrarily large search spaces can be traversed.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    total = combination_count(n_snps, order)
    stop = total if stop_rank is None else min(stop_rank, total)
    rank = start_rank
    while rank < stop:
        n = min(chunk_size, stop - rank)
        yield generate_combinations(n_snps, order, start_rank=rank, count=n)
        rank += n


def block_combination_count(n_snps: int, block_size: int) -> int:
    """Number of triangular SNP-block triples visited by Algorithm 1."""
    n_blocks = (n_snps + block_size - 1) // block_size
    # blocks (b0 <= b1 <= b2): combinations with repetition.
    return comb(n_blocks + 2, 3)


def iter_triangular_blocks(
    n_snps: int,
    block_size: int,
) -> Iterator[tuple[tuple[int, int], tuple[int, int], tuple[int, int]]]:
    """Iterate SNP-block triples ``(b0 <= b1 <= b2)`` as index ranges.

    Each yielded element is a triple of ``(start, stop)`` half-open SNP index
    ranges, one per loop variable ``i0, i1, i2`` of Algorithm 1.  The caller
    is responsible for the intra-block ``ii2 > ii1 > ii0`` filter (which the
    blocked kernels apply), so every SNP triplet is visited exactly once
    across all yielded block triples.
    """
    if block_size < 1:
        raise ValueError("block_size must be positive")
    n_blocks = (n_snps + block_size - 1) // block_size

    def block_range(b: int) -> tuple[int, int]:
        return b * block_size, min((b + 1) * block_size, n_snps)

    for b0 in range(n_blocks):
        for b1 in range(b0, n_blocks):
            for b2 in range(b1, n_blocks):
                yield block_range(b0), block_range(b1), block_range(b2)


def combinations_in_block_triple(
    ranges: tuple[tuple[int, int], tuple[int, int], tuple[int, int]],
) -> np.ndarray:
    """All valid (strictly increasing) triplets within one block triple.

    The intra-block filter ``i2 > i1 > i0`` of Algorithm 1 is applied here,
    so the union over all block triples yielded by
    :func:`iter_triangular_blocks` is exactly the combination space.
    """
    (s0, e0), (s1, e1), (s2, e2) = ranges
    i0 = np.arange(s0, e0, dtype=np.int64)
    i1 = np.arange(s1, e1, dtype=np.int64)
    i2 = np.arange(s2, e2, dtype=np.int64)
    g0, g1, g2 = np.meshgrid(i0, i1, i2, indexing="ij")
    mask = (g1 > g0) & (g2 > g1)
    return np.stack([g0[mask], g1[mask], g2[mask]], axis=1)
