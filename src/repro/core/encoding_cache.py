"""Process-wide cache of prepared dataset encodings.

Packing a dataset into bit-planes (``Approach.prepare``) is pure and
deterministic: the result depends only on the dataset's content and the
approach's encoding parameters (encoding family, word layout, blocking /
tile geometry).  Yet before this cache every ``detect()`` call, every
pipeline stage and every distributed shard re-packed the same dataset —
for a staged screen→expand→permutation run that is four identical packs of
the same genotype matrix.

:data:`ENCODING_CACHE` memoises prepared encodings under the key

``(dataset.content_digest(), n_snps, n_samples, *approach.encoding_key())``

so repeated runs over the same dataset reuse one immutable encoding.
Encodings are read-only by contract (they are already shared across worker
threads within a run), which is what makes cross-run sharing safe.  The
cache is bounded (LRU) and keyed by content, so mutating a dataset — which
the dataset API never does in place — yields a different digest rather than
a stale hit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Tuple

__all__ = ["EncodingCache", "ENCODING_CACHE"]


class EncodingCache:
    """A small thread-safe LRU mapping encoding keys to prepared encodings.

    Parameters
    ----------
    max_entries:
        Retained encodings; the least recently used entry is evicted first.
        Encodings are a few bytes per SNP-sample, so a handful of entries
        covers every realistic multi-stage or benchmark workload without
        holding stale datasets alive forever.
    """

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get_or_build(self, key: Tuple, builder: Callable[[], object]) -> object:
        """Return the cached encoding for ``key``, building it on a miss.

        The builder runs under the cache lock so concurrent workers of one
        run never pack the same dataset twice; the encodings themselves are
        immutable, so handing the same object to every caller is safe.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            encoded = builder()
            self._entries[key] = encoded
            self.misses += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return encoded

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: The process-wide cache used by the detector (one per worker process in a
#: distributed run, where it also persists across that worker's shards).
ENCODING_CACHE = EncodingCache()
