"""Process-wide cache of prepared dataset encodings.

Packing a dataset into bit-planes (``Approach.prepare``) is pure and
deterministic: the result depends only on the dataset's content and the
approach's encoding parameters (encoding family, word layout, blocking /
tile geometry).  Yet before this cache every ``detect()`` call, every
pipeline stage and every distributed shard re-packed the same dataset —
for a staged screen→expand→permutation run that is four identical packs of
the same genotype matrix.

:data:`ENCODING_CACHE` memoises prepared encodings under the key

``(dataset.content_digest(), n_snps, n_samples, *approach.encoding_key())``

so repeated runs over the same dataset reuse one immutable encoding.
Encodings are read-only by contract (they are already shared across worker
threads within a run), which is what makes cross-run sharing safe.  The
cache is bounded (LRU) and keyed by content, so mutating a dataset — which
the dataset API never does in place — yields a different digest rather than
a stale hit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Tuple

__all__ = ["EncodingCache", "ENCODING_CACHE", "encoding_cache_key"]


def encoding_cache_key(dataset, approach) -> Tuple | None:
    """The cache key of ``approach``'s encoding of ``dataset``.

    ``None`` for duck-typed approaches without an ``encoding_key`` (their
    encodings have no cache identity and are prepared directly).  The same
    key addresses the local LRU tier and the shared-memory segment, which
    is what lets the coordinator and every worker resolve one published
    encoding.
    """
    encoding_key = getattr(approach, "encoding_key", None)
    if encoding_key is None:
        return None
    return (
        dataset.content_digest(),
        dataset.n_snps,
        dataset.n_samples,
    ) + tuple(encoding_key())


class EncodingCache:
    """A small thread-safe LRU mapping encoding keys to prepared encodings.

    Parameters
    ----------
    max_entries:
        Retained encodings; the least recently used entry is evicted first.
        Encodings are a few bytes per SNP-sample, so a handful of entries
        covers every realistic multi-stage or benchmark workload without
        holding stale datasets alive forever.
    """

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.shm_hits = 0
        self._shared_loader: Callable[[Tuple], object | None] | None = None

    def attach_shared_tier(self, loader: Callable[[Tuple], object | None]) -> None:
        """Install a shared-memory resolver consulted on local misses.

        ``loader(key)`` returns a decoded encoding attached from a
        :class:`~repro.distributed.shm.SharedEncodingStore` segment, or
        ``None`` when nothing is published under the key.  Worker
        processes of a distributed run install
        :func:`repro.distributed.shm.load_encoding` here, so a dataset the
        coordinator packed once is never re-packed fleet-wide.
        """
        with self._lock:
            self._shared_loader = loader

    def detach_shared_tier(self) -> None:
        """Remove the shared-memory tier (local-only resolution)."""
        with self._lock:
            self._shared_loader = None

    def get_or_build(self, key: Tuple, builder: Callable[[], object]) -> object:
        """Return the cached encoding for ``key``, building it on a miss.

        Resolution order: local LRU, then the shared-memory tier (when
        attached), then the builder.  The builder runs under the cache
        lock so concurrent workers of one run never pack the same dataset
        twice; the encodings themselves are immutable, so handing the same
        object to every caller is safe.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            if self._shared_loader is not None:
                try:
                    encoded = self._shared_loader(key)
                except Exception:
                    encoded = None
                if encoded is not None:
                    self._entries[key] = encoded
                    self.shm_hits += 1
                    self._evict()
                    return encoded
            encoded = builder()
            self._entries[key] = encoded
            self.misses += 1
            self._evict()
            return encoded

    def _evict(self) -> None:
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.shm_hits = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: The process-wide cache used by the detector (one per worker process in a
#: distributed run, where it also persists across that worker's shards).
ENCODING_CACHE = EncodingCache()
