"""The :class:`EpistasisDetector` public API.

A detector combines

* one of the CPU/GPU approaches of §IV (frequency-table construction),
* an objective function (Bayesian K2 score by default), and
* the host parallel runtime (dynamic chunk scheduling over worker threads)

into a single ``detect(dataset)`` call that exhaustively evaluates every SNP
combination of the requested order and returns the best-scoring interaction
together with execution statistics.  Smaller entry points
(:meth:`EpistasisDetector.score_combinations`,
:meth:`EpistasisDetector.build_tables`) expose the intermediate results for
testing, ablation studies and the benchmark harness.

Example
-------
>>> from repro.datasets import SyntheticConfig, PlantedInteraction, generate_dataset
>>> from repro.core import EpistasisDetector
>>> cfg = SyntheticConfig(n_snps=32, n_samples=512,
...                       interaction=PlantedInteraction(snps=(3, 11, 17)), seed=7)
>>> result = EpistasisDetector(approach="cpu-v4").detect(generate_dataset(cfg))
>>> result.best_snps
(3, 11, 17)
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.core.approaches import Approach, get_approach
from repro.core.combinations import combination_count, generate_combinations
from repro.core.contingency import validate_tables
from repro.core.result import ApproachStats, DetectionResult, Interaction
from repro.core.scoring import ObjectiveFunction, get_objective
from repro.datasets.dataset import GenotypeDataset
from repro.parallel.executor import parallel_map_reduce
from repro.parallel.scheduler import DynamicScheduler

__all__ = ["DetectorConfig", "EpistasisDetector"]


@dataclass
class DetectorConfig:
    """Configuration of an exhaustive detection run.

    Attributes
    ----------
    approach:
        Approach name (``"cpu-v1"`` … ``"gpu-v4"``) or a pre-built
        :class:`~repro.core.approaches.base.Approach` instance.
    objective:
        Objective-function name or instance (default: Bayesian K2 score).
    order:
        Interaction order; the engine is written for ``order=3`` (27-cell
        tables) which is what every approach kernel implements.
    n_workers:
        Host threads for the CPU-side search.
    chunk_size:
        Combinations per scheduler chunk (the unit of dynamic scheduling and
        of the vectorised kernel batch).
    top_k:
        Number of best interactions kept in the result.
    validate:
        If ``True``, every produced table batch is checked against the
        column-sum invariants (costs a few percent, useful in tests).
    """

    approach: str | Approach = "cpu-v4"
    objective: str | ObjectiveFunction = "k2"
    order: int = 3
    n_workers: int = 1
    chunk_size: int = 2048
    top_k: int = 10
    validate: bool = False

    def __post_init__(self) -> None:
        if self.order != 3:
            raise ValueError(
                "the detection kernels implement third-order interactions only"
            )
        if self.n_workers < 1:
            raise ValueError("n_workers must be positive")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if self.top_k < 1:
            raise ValueError("top_k must be positive")


class EpistasisDetector:
    """Exhaustive three-way epistasis detector (public API).

    Parameters mirror :class:`DetectorConfig`; either pass a config object or
    the individual keyword arguments.
    """

    def __init__(
        self,
        approach: str | Approach = "cpu-v4",
        objective: str | ObjectiveFunction = "k2",
        *,
        order: int = 3,
        n_workers: int = 1,
        chunk_size: int = 2048,
        top_k: int = 10,
        validate: bool = False,
        config: DetectorConfig | None = None,
        **approach_kwargs,
    ) -> None:
        if config is None:
            config = DetectorConfig(
                approach=approach,
                objective=objective,
                order=order,
                n_workers=n_workers,
                chunk_size=chunk_size,
                top_k=top_k,
                validate=validate,
            )
        self.config = config
        self._approach_kwargs = dict(approach_kwargs)
        if isinstance(config.approach, Approach):
            self._prototype = config.approach
        else:
            self._prototype = get_approach(config.approach, **approach_kwargs)
        self.objective = get_objective(config.objective)

    # -- approach management -----------------------------------------------------
    @property
    def approach(self) -> Approach:
        """The prototype approach instance (shared, used for single-threaded runs)."""
        return self._prototype

    def _worker_approach(self) -> Approach:
        """A fresh approach instance for one worker thread.

        Counters are per-instance, so every worker gets its own approach to
        avoid false sharing of the accounting state (results are unaffected).
        """
        if isinstance(self.config.approach, Approach):
            # A user-provided instance cannot be cloned generically; reuse it
            # (documented: custom instances imply single-threaded accounting).
            return self.config.approach
        return get_approach(
            self.config.approach
            if isinstance(self.config.approach, str)
            else self._prototype.name,
            **self._approach_kwargs,
        )

    # -- low-level entry points ----------------------------------------------------
    def build_tables(
        self, dataset: GenotypeDataset, combos: np.ndarray
    ) -> np.ndarray:
        """Frequency tables for explicit combinations (single-threaded)."""
        encoded = self._prototype.prepare(dataset)
        tables = self._prototype.build_tables(encoded, np.asarray(combos))
        if self.config.validate:
            validate_tables(tables, dataset.n_controls, dataset.n_cases)
        return tables

    def score_combinations(
        self, dataset: GenotypeDataset, combos: np.ndarray
    ) -> np.ndarray:
        """Objective scores for explicit combinations (single-threaded)."""
        tables = self.build_tables(dataset, combos)
        return self.objective.score(tables)

    # -- exhaustive search -----------------------------------------------------------
    def detect(self, dataset: GenotypeDataset) -> DetectionResult:
        """Exhaustively evaluate every SNP combination of the dataset.

        Returns
        -------
        DetectionResult
            Best interaction, top-k ranking and execution statistics
            (throughput in the paper's combinations x samples unit, dynamic
            instruction counts, memory traffic).
        """
        cfg = self.config
        n_snps = dataset.n_snps
        if n_snps < cfg.order:
            raise ValueError(
                f"dataset has {n_snps} SNPs; at least {cfg.order} are required"
            )
        total = combination_count(n_snps, cfg.order)
        encoded = self._prototype.prepare(dataset)
        scheduler = DynamicScheduler(total, chunk_size=cfg.chunk_size)

        # One approach instance per worker; worker 0 reuses the prototype so
        # single-threaded runs have a single counter to inspect.
        approaches: List[Approach] = [self._prototype]
        approaches += [self._worker_approach() for _ in range(cfg.n_workers - 1)]

        snp_names = list(dataset.snp_names)
        top_k = cfg.top_k
        n_cases, n_controls = dataset.n_cases, dataset.n_controls

        def worker(worker_id: int, start: int, stop: int) -> List[Interaction]:
            approach = approaches[worker_id]
            combos = generate_combinations(
                n_snps, cfg.order, start_rank=start, count=stop - start
            )
            tables = approach.build_tables(encoded, combos)
            if cfg.validate:
                validate_tables(tables, n_controls, n_cases)
            scores = self.objective.score(tables)
            order_idx = np.argsort(scores, kind="stable")[:top_k]
            return [
                Interaction(
                    snps=tuple(int(s) for s in combos[i]),
                    score=float(scores[i]),
                    snp_names=tuple(snp_names[s] for s in combos[i]),
                )
                for i in order_idx
            ]

        def reduce_fn(partials: Sequence[List[Interaction]]) -> List[Interaction]:
            merged: List[Interaction] = [it for part in partials for it in part]
            return heapq.nsmallest(top_k, merged)

        started = time.perf_counter()
        top, _worker_stats = parallel_map_reduce(
            scheduler, worker, reduce_fn, n_workers=cfg.n_workers
        )
        elapsed = time.perf_counter() - started

        # Merge the per-worker counters into the prototype's statistics.
        merged_counter = approaches[0].counter
        for extra in approaches[1:]:
            merged_counter.merge(extra.counter)

        stats = ApproachStats(
            approach=self._prototype.name,
            n_combinations=total,
            n_samples=dataset.n_samples,
            elapsed_seconds=elapsed,
            op_counts=merged_counter.as_dict(),
            bytes_loaded=merged_counter.bytes_loaded,
            bytes_stored=merged_counter.bytes_stored,
            n_workers=cfg.n_workers,
            extra=self._prototype.extra_stats(),
        )
        if not top:
            raise RuntimeError("exhaustive search produced no interactions")
        return DetectionResult(best=top[0], top=list(top), stats=stats)
