"""The :class:`EpistasisDetector` public API.

A detector combines

* one of the CPU/GPU approaches of §IV (frequency-table construction) —
  every approach is order-generic, building ``3^k x 2`` tables for any
  interaction order ``k`` between 2 (pairwise) and 5,
* an objective function (Bayesian K2 score by default), and
* the unified heterogeneous execution engine (:mod:`repro.engine`): device
  lanes, a pluggable scheduling policy (``dynamic``, ``static``, ``guided``
  or the CARM-ratio heterogeneous splitter) and a streaming bounded-memory
  top-k reduction

into a single ``detect(dataset)`` call that exhaustively evaluates every SNP
combination of the requested order and returns the best-scoring interaction
together with execution statistics (including per-device chunk counts and
utilization in ``stats.extra["devices"]``).

Beyond the dense sweep, :meth:`EpistasisDetector.detect_candidates` runs the
same engine over any :class:`~repro.engine.CandidateSource` (explicit ranks,
pre-materialised tuples, subset-restricted enumeration), and
:meth:`EpistasisDetector.detect_staged` composes those into the staged
screen→expand(→refine→permutation) pipeline of :mod:`repro.pipeline`.
Smaller entry points (:meth:`EpistasisDetector.score_combinations`,
:meth:`EpistasisDetector.build_tables`) expose the intermediate results for
testing, ablation studies and the benchmark harness.

Example
-------
>>> from repro.datasets import SyntheticConfig, PlantedInteraction, generate_dataset
>>> from repro.core import EpistasisDetector
>>> cfg = SyntheticConfig(n_snps=32, n_samples=512,
...                       interaction=PlantedInteraction(snps=(3, 11, 17)), seed=7)
>>> result = EpistasisDetector(approach="cpu-v4").detect(generate_dataset(cfg))
>>> result.best_snps
(3, 11, 17)

A pairwise (order-2) screen on the same engine:

>>> pairs = EpistasisDetector(approach="cpu-v2", order=2).detect(generate_dataset(cfg))

A heterogeneous CPU+GPU run with the CARM-ratio splitter:

>>> detector = EpistasisDetector(approach="cpu-v4", devices="cpu+gpu",
...                              schedule="carm", n_workers=2)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.core.approaches import APPROACHES, Approach, get_approach
from repro.core.approaches._kernels import check_order
from repro.core.contingency import validate_tables
from repro.core.encoding_cache import ENCODING_CACHE, encoding_cache_key
from repro.core.result import ApproachStats, DetectionResult
from repro.core.scoring import ObjectiveFunction, get_objective
from repro.datasets.dataset import GenotypeDataset
from repro.engine import (
    CancellationToken,
    CandidateSource,
    DenseRangeSource,
    DeviceWorker,
    EngineDevice,
    ExecutionPlan,
    HeterogeneousExecutor,
    SchedulingPolicy,
    get_policy,
    parse_devices,
)

__all__ = ["DetectorConfig", "EpistasisDetector"]


@dataclass
class _WorkerState:
    """Per-worker kernel state: an approach instance plus its encoding."""

    approach: Approach
    encoded: object


@dataclass
class DetectorConfig:
    """Configuration of an exhaustive detection run.

    Attributes
    ----------
    approach:
        Approach name (``"cpu-v1"`` … ``"gpu-v4"``) or a pre-built
        :class:`~repro.core.approaches.base.Approach` instance.
    objective:
        Objective-function name or instance (default: Bayesian K2 score).
    order:
        Interaction order ``k`` (``2 <= k <= 5``); every approach kernel
        builds the matching ``3^k``-cell tables.  ``order=3`` is the
        paper's exhaustive third-order study, ``order=2`` the pairwise
        screen of the related work.
    n_workers:
        Host threads for the search.  In a multi-lane ``devices``
        expression the CPU lane receives all ``n_workers`` threads and GPU
        lanes a single launch-stream thread; a default (``devices=None``)
        plan keeps ``n_workers`` on whatever lane the approach targets.
    chunk_size:
        Combinations per scheduler chunk (the unit of dynamic scheduling and
        of the vectorised kernel batch), or ``"auto"``: each worker then
        tunes its own claim size from measured per-chunk throughput within
        per-device-lane bounds (:mod:`repro.engine.autotune`).
    top_k:
        Number of best interactions kept in the result.
    word_layout:
        Machine-word layout of the packed encodings: ``"u32"`` (the paper's
        32-bit word), ``"u64"`` (halves the element count of every kernel
        operation; bit-identical results) or ``None``/``"auto"`` for the
        NumPy-version-dependent default
        (:func:`repro.bitops.packing.default_layout`).  All instruction and
        traffic accounting stays per 32-bit paper word either way.
    backend:
        Execution backend of the table-construction hot loop: ``"numpy"``
        (reference), ``"numba"`` (JIT-compiled CPU kernels), ``"cupy"``
        (real CUDA device) or ``"auto"``/``None`` for the registry default
        (:func:`repro.backends.get_backend`; the ``REPRO_BACKEND``
        environment variable supplies it when unset).  All backends are
        bit-exact, and the §IV op/traffic accounting is backend-independent;
        an unavailable optional backend degrades to ``numpy`` with a
        warning.  The selection reaches every approach instance the
        detector builds — both lanes of a heterogeneous plan and the
        distributed worker processes.
    fused:
        Fused build+score path: ``"auto"`` (default) folds each
        combination's table straight into its objective score whenever the
        approach/backend/objective supports it bit-identically (SNP-block
        tiled, no chunk-wide table array; compiled backends score K2/Gini
        inside the kernel), ``"on"`` requires it (rejecting
        ``validate=True``, which needs materialized tables), ``"off"``
        pins the classic build-then-score path.  ``None`` defers to the
        ``REPRO_FUSED`` environment variable, else ``auto``.  Top-k
        results and §IV op/traffic accounting are bit-identical whichever
        path runs.
    validate:
        If ``True``, every produced table batch is checked against the
        column-sum invariants (costs a few percent, useful in tests).
        Validation implies the unfused path (``fused="auto"`` falls back
        silently; ``fused="on"`` raises).
    devices:
        Device expression for the execution engine: ``None`` (default) runs
        on a single lane matching the approach's device kind; ``"cpu+gpu"``
        co-executes the search on a CPU lane and a simulated-GPU lane, each
        running its own approach variant of the same optimisation level.
    schedule:
        Scheduling policy name (``"dynamic"``, ``"static"``, ``"guided"``,
        ``"carm"``) or a :class:`~repro.engine.policies.SchedulingPolicy`
        instance.
    telemetry:
        Telemetry mode of the run (:mod:`repro.telemetry`): ``"off"``
        (default — zero recording, zero hot-path cost), ``"minimal"``
        (run/plan/lane/stage/shard spans plus the metrics registry) or
        ``"full"`` (adds per-chunk ``kernel`` samples).  ``None`` defers
        to the ``REPRO_TELEMETRY`` environment variable, else ``off``.
        Results are bit-identical whatever the mode; every run carries a
        ``run_id`` in ``stats.extra`` either way.
    """

    approach: str | Approach = "cpu-v4"
    objective: str | ObjectiveFunction = "k2"
    order: int = 3
    n_workers: int = 1
    chunk_size: int | str = 2048
    top_k: int = 10
    validate: bool = False
    devices: str | None = None
    schedule: str | SchedulingPolicy = "dynamic"
    word_layout: str | None = None
    backend: str | None = None
    fused: str | None = None
    telemetry: str | None = None

    def __post_init__(self) -> None:
        from repro.engine.autotune import is_auto_chunk

        self.order = check_order(self.order)
        if self.backend is not None:
            from repro.backends import check_backend_name

            self.backend = check_backend_name(self.backend)
        if self.fused is not None:
            from repro.core.fusion import check_fused_mode

            self.fused = check_fused_mode(self.fused)
            if self.fused == "on" and self.validate:
                raise ValueError(
                    "fused='on' is incompatible with validate=True: table "
                    "validation needs the materialized tables the fused "
                    "path never builds (use fused='auto' or drop validate)"
                )
        if self.telemetry is not None:
            from repro.telemetry import check_telemetry_mode

            self.telemetry = check_telemetry_mode(self.telemetry)
        if self.n_workers < 1:
            raise ValueError("n_workers must be positive")
        if isinstance(self.chunk_size, str):
            if not is_auto_chunk(self.chunk_size):
                raise ValueError(
                    f"chunk_size must be a positive integer or 'auto'; "
                    f"got {self.chunk_size!r}"
                )
        elif self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if self.top_k < 1:
            raise ValueError("top_k must be positive")


class EpistasisDetector:
    """Exhaustive k-way epistasis detector (public API).

    The interaction order is part of the configuration
    (``DetectorConfig(order=k)``, ``2 <= k <= 5``) and drives the engine's
    :class:`~repro.engine.plan.ExecutionPlan` sizing, the CARM-policy
    split and the result reporting; the default ``order=3`` reproduces the
    paper's third-order study.  Parameters mirror :class:`DetectorConfig`;
    either pass a config object or the individual keyword arguments.
    """

    def __init__(
        self,
        approach: str | Approach = "cpu-v4",
        objective: str | ObjectiveFunction = "k2",
        *,
        order: int = 3,
        n_workers: int = 1,
        chunk_size: int | str = 2048,
        top_k: int = 10,
        validate: bool = False,
        devices: str | None = None,
        schedule: str | SchedulingPolicy = "dynamic",
        word_layout: str | None = None,
        backend: str | None = None,
        fused: str | None = None,
        telemetry: str | None = None,
        config: DetectorConfig | None = None,
        **approach_kwargs,
    ) -> None:
        if config is None:
            config = DetectorConfig(
                approach=approach,
                objective=objective,
                order=order,
                n_workers=n_workers,
                chunk_size=chunk_size,
                top_k=top_k,
                validate=validate,
                devices=devices,
                schedule=schedule,
                word_layout=word_layout,
                backend=backend,
                fused=fused,
                telemetry=telemetry,
            )
        self.config = config
        self._approach_kwargs = dict(approach_kwargs)
        if config.word_layout is not None:
            # The execution word width applies to every approach instance
            # this detector builds (both lanes of a heterogeneous plan, and
            # — through approach_kwargs — the distributed worker processes).
            self._approach_kwargs.setdefault("word_layout", config.word_layout)
        if config.backend is not None:
            # The execution backend rides the same channel as the word
            # layout: every lane and every worker process selects the same
            # backend (graceful fallback included).
            self._approach_kwargs.setdefault("backend", config.backend)
        if isinstance(config.approach, Approach):
            self._prototype = config.approach
        else:
            self._prototype = get_approach(config.approach, **self._approach_kwargs)
        self.objective = get_objective(config.objective)

    # -- approach management -----------------------------------------------------
    @property
    def approach(self) -> Approach:
        """The prototype approach instance (shared, used for single-threaded runs)."""
        return self._prototype

    def _approach_name_for_kind(self, kind: str) -> str:
        """Approach registry name to run on a device lane of ``kind``.

        A lane matching the prototype's device kind runs the configured
        approach; the other kind runs its counterpart of the same
        optimisation level (``cpu-v4`` pairs with ``gpu-v4``, ...).
        """
        if kind == self._prototype.device:
            return self._prototype.name
        counterpart = f"{kind}-v{self._prototype.version}"
        if counterpart not in APPROACHES:
            counterpart = f"{kind}-v4"
        return counterpart

    def _worker_approach(self, kind: str | None = None) -> Approach:
        """A fresh approach instance for one worker thread.

        Counters are per-instance, so every worker gets its own approach to
        avoid false sharing of the accounting state (results are unaffected).
        """
        kind = kind or self._prototype.device
        if isinstance(self.config.approach, Approach):
            # A user-provided instance cannot be cloned generically; reuse it
            # (documented: custom instances imply single-threaded accounting).
            if kind != self._prototype.device:
                raise ValueError(
                    "heterogeneous device plans require an approach name, "
                    "not a pre-built Approach instance"
                )
            return self.config.approach
        name = self._approach_name_for_kind(kind)
        # Constructor kwargs (isa=, block_size=, ...) only apply to the
        # approach family they were written for; the word layout is
        # family-agnostic and applies to every lane.
        if name == self._prototype.name:
            kwargs = self._approach_kwargs
        else:
            kwargs = {
                key: value
                for key, value in (
                    ("word_layout", self.config.word_layout),
                    ("backend", self.config.backend),
                )
                if value is not None
            }
        return get_approach(name, **kwargs)

    @staticmethod
    def _prepare_cached(approach: Approach, dataset: GenotypeDataset) -> object:
        """Encode ``dataset`` for ``approach`` through the process-wide cache.

        Keyed by dataset content digest plus the approach's encoding
        identity, so repeated ``detect`` calls, pipeline stages and
        distributed shards over the same dataset never re-pack it.
        """
        key = encoding_cache_key(dataset, approach)
        if key is None:
            # Duck-typed approaches without a cache identity are prepared
            # directly (correct, just uncached).
            return approach.prepare(dataset)
        return ENCODING_CACHE.get_or_build(key, lambda: approach.prepare(dataset))

    # -- low-level entry points ----------------------------------------------------
    def build_tables(
        self, dataset: GenotypeDataset, combos: np.ndarray, *, cache: bool = True
    ) -> np.ndarray:
        """Frequency tables for explicit combinations (single-threaded).

        ``cache=False`` bypasses the process-wide encoding cache — for
        throw-away datasets that are scored exactly once (the permutation
        null relabels the phenotype every iteration), where caching would
        pay the content digest and evict reusable encodings for nothing.
        """
        if cache:
            encoded = self._prepare_cached(self._prototype, dataset)
        else:
            encoded = self._prototype.prepare(dataset)
        tables = self._prototype.build_tables(encoded, np.asarray(combos))
        if self.config.validate:
            validate_tables(tables, dataset.n_controls, dataset.n_cases)
        return tables

    def score_combinations(
        self, dataset: GenotypeDataset, combos: np.ndarray, *, cache: bool = True
    ) -> np.ndarray:
        """Objective scores for explicit combinations (single-threaded).

        Honours the ``fused`` knob: under ``auto``/``on`` the scores come
        from the fused build+score path when the approach supports it
        (bit-identical; this also speeds the permutation null, which calls
        here once per relabelled phenotype).
        """
        if self._fused_active():
            self._prepare_objective(dataset)
            if cache:
                encoded = self._prepare_cached(self._prototype, dataset)
            else:
                encoded = self._prototype.prepare(dataset)
            scores = self._prototype.score_combinations(
                encoded, np.asarray(combos), self.objective
            )
            if scores is not None:
                return scores
        tables = self.build_tables(dataset, combos, cache=cache)
        self._prepare_objective(dataset)
        return self.objective.score(tables)

    def _fused_mode(self) -> str:
        """The resolved fused tri-state (config, else ``REPRO_FUSED``)."""
        from repro.core.fusion import resolve_fused_mode

        mode = resolve_fused_mode(self.config.fused)
        if mode == "on" and self.config.validate:
            # Reachable via REPRO_FUSED=on (explicit config pairs are
            # rejected at construction time): requiring fusion while
            # requiring table validation is a contradiction either way.
            raise ValueError(
                "fused='on' is incompatible with validate=True: table "
                "validation needs the materialized tables the fused path "
                "never builds (use fused='auto' or drop validate)"
            )
        return mode

    def _fused_active(self) -> bool:
        """Whether chunk scoring should try the fused path first."""
        return self._fused_mode() != "off" and not self.config.validate

    def _prepare_objective(self, dataset: GenotypeDataset) -> None:
        """Give the objective its per-dataset precomputation hook.

        Idempotent and cheap (the K2 log-factorial table is O(n_samples));
        custom objective instances without a ``prepare`` method are fine.
        """
        prepare = getattr(self.objective, "prepare", None)
        if prepare is not None:
            prepare(dataset)

    # -- execution-plan assembly ---------------------------------------------------
    def engine_devices(self) -> List[EngineDevice]:
        """The resolved engine device lanes this detector's plans run on.

        Public so orchestration layers (the staged pipeline's per-stage cost
        reports) can price work against the same lanes the executor uses.
        """
        cfg = self.config
        if cfg.devices is None:
            return [
                EngineDevice(
                    kind=self._prototype.device,
                    n_workers=cfg.n_workers,
                    chunk_size=cfg.chunk_size,
                )
            ]
        return parse_devices(
            cfg.devices, n_workers=cfg.n_workers, chunk_size=cfg.chunk_size
        )

    def _build_policy(
        self, dataset: GenotypeDataset, source: CandidateSource
    ) -> SchedulingPolicy:
        policy = get_policy(self.config.schedule)
        policy.configure_source(
            source, n_samples=dataset.n_samples, default_snps=dataset.n_snps
        )
        # Model-driven policies consult the per-host calibration store for
        # *measured* throughput; tell them which backend/layout is running
        # so the lookup fingerprints match the actual execution.
        policy.configure_execution(
            backend=getattr(self._prototype, "backend_name", None),
            word_layout=self._prototype.word_layout.name
            if hasattr(self._prototype, "word_layout")
            else None,
        )
        return policy

    # -- exhaustive search -----------------------------------------------------------
    def detect(
        self,
        dataset: GenotypeDataset,
        *,
        cancel: CancellationToken | None = None,
        progress: Callable[[int, int], None] | None = None,
        workers: int | None = None,
        checkpoint: str | None = None,
        resume: bool = False,
        pool: str = "keep",
        shm: object = None,
        retry: object = None,
        faults: object = None,
    ) -> DetectionResult:
        """Exhaustively evaluate every SNP combination of the dataset.

        Parameters
        ----------
        dataset:
            The case/control dataset to search.
        cancel:
            Optional cooperative cancellation token; when set mid-run the
            engine stops at the next chunk boundary and the call raises
            :class:`RuntimeError` (no complete result exists).
        progress:
            Optional callback invoked after every chunk with
            ``(combinations_done, combinations_total)``.
        workers:
            Number of sharded OS worker *processes* (``repro.distributed``):
            ``None``/``1`` runs in-process with ``config.n_workers`` host
            threads; ``N > 1`` cuts the combination space into shards
            executed across ``N`` spawn-safe processes, each running this
            detector's full device/schedule configuration, with a
            deterministic merge (the top-k is bit-identical for any worker
            count).
        checkpoint:
            Optional path of an atomic shard ledger written after every
            completed shard (crash-safe; forces the sharded execution path
            even for one worker).
        resume:
            Restore completed shards from an existing ``checkpoint`` ledger
            instead of re-evaluating them.
        pool:
            ``"keep"`` (default) reuses the process-wide warm worker fleet
            across calls; ``"fresh"`` spawns (and tears down) a dedicated
            pool for this call.
        shm:
            Shared-memory data plane: ``"on"``/``True`` publishes the
            dataset and encodings for workers to attach, ``"off"``/``False``
            pickles them, ``None``/``"auto"`` enables it whenever worker
            processes exist.
        retry:
            Fault-tolerance policy of the sharded path — a
            :class:`~repro.distributed.resilience.RetryPolicy` bounding
            per-shard retries, the heartbeat-watchdog deadline and the
            pool-break budget (``None`` uses the defaults).
        faults:
            Deterministic fault injection (chaos testing): a
            :class:`~repro.faults.FaultPlan`, a compact spec string such as
            ``"shard.run:crash"``, or ``None`` (the ``REPRO_FAULTS``
            environment variable still applies).

        Returns
        -------
        DetectionResult
            Best interaction, top-k ranking and execution statistics
            (throughput in the paper's combinations x samples unit, dynamic
            instruction counts, memory traffic, per-device utilization).
        """
        cfg = self.config
        n_snps = dataset.n_snps
        if n_snps < cfg.order:
            raise ValueError(
                f"dataset has {n_snps} SNPs; at least {cfg.order} are required"
            )
        return self.detect_candidates(
            dataset,
            DenseRangeSource(n_snps, cfg.order),
            cancel=cancel,
            progress=progress,
            workers=workers,
            checkpoint=checkpoint,
            resume=resume,
            pool=pool,
            shm=shm,
            retry=retry,
            faults=faults,
        )

    def detect_candidates(
        self,
        dataset: GenotypeDataset,
        source: CandidateSource,
        *,
        cancel: CancellationToken | None = None,
        progress: Callable[[int, int], None] | None = None,
        observe: Callable[[DeviceWorker, np.ndarray, np.ndarray], None] | None = None,
        workers: int | None = None,
        checkpoint: str | None = None,
        resume: bool = False,
        pool: str = "keep",
        shm: object = None,
        retry: object = None,
        faults: object = None,
    ) -> DetectionResult:
        """Evaluate an arbitrary candidate stream on the execution engine.

        This is the engine entry point of the staged search pipeline:
        :meth:`detect` is the dense instance
        (``source = DenseRangeSource(n_snps, order)``), a screen-then-expand
        stage passes a :class:`~repro.engine.SubsetSource` over its retained
        SNPs, and finalist re-scoring passes an
        :class:`~repro.engine.ExplicitCombinationSource`.  The interaction
        order is taken from the source (not from the detector config), so
        one configured detector can serve every stage of a pipeline.

        Parameters
        ----------
        dataset:
            The case/control dataset to score against.
        source:
            Candidate k-tuples to evaluate
            (:class:`~repro.engine.CandidateSource`).
        cancel / progress:
            As in :meth:`detect`.
        observe:
            Optional per-chunk tap ``observe(worker, combos, scores)``
            invoked after scoring, before the top-k fold.  Used by the
            screening stage to aggregate per-SNP statistics without keeping
            the full score stream; called concurrently from worker threads.
        workers / checkpoint / resume:
            Sharded multi-process execution as in :meth:`detect`; ``observe``
            is not supported on that path (per-chunk taps cannot cross the
            process boundary — the distributed screening stage uses
            :func:`repro.distributed.run_distributed` directly).

        Returns
        -------
        DetectionResult
            Best interaction, top-k ranking and execution statistics;
            ``stats.extra["candidates"]`` describes the evaluated source,
            and ``stats.extra["distributed"]`` the shard bookkeeping of a
            multi-process run.
        """
        from repro.telemetry import (
            current_run,
            finish_run,
            new_run_id,
            resolve_telemetry_mode,
            span_or_null,
            start_run,
        )

        cfg = self.config
        if workers is not None and workers < 1:
            raise ValueError("workers must be positive")
        # Join the ambient telemetry run (pipeline stage, distributed
        # worker) when one is active; otherwise this call owns the run.
        mode = resolve_telemetry_mode(cfg.telemetry)
        session = current_run()
        owns_session = False
        if session is None and mode != "off":
            session = start_run(mode)
            owns_session = True
        run_id = session.run_id if session is not None else new_run_id()
        try:
            with span_or_null(
                "detect",
                order=source.order,
                total=source.total,
                approach=str(cfg.approach),
            ):
                result = self._detect_candidates(
                    dataset,
                    source,
                    cancel=cancel,
                    progress=progress,
                    observe=observe,
                    workers=workers,
                    checkpoint=checkpoint,
                    resume=resume,
                    pool=pool,
                    shm=shm,
                    retry=retry,
                    faults=faults,
                    session=session,
                    run_id=run_id,
                )
        finally:
            if owns_session:
                finish_run(session)
        return result

    def _detect_candidates(
        self,
        dataset: GenotypeDataset,
        source: CandidateSource,
        *,
        cancel,
        progress,
        observe,
        workers,
        checkpoint,
        resume,
        pool,
        shm,
        retry,
        faults,
        session,
        run_id,
    ) -> DetectionResult:
        from repro.telemetry import span_or_null

        cfg = self.config
        if (workers is not None and workers > 1) or checkpoint is not None:
            if observe is not None:
                raise ValueError(
                    "observe= is not supported with multi-process execution; "
                    "use repro.distributed.run_distributed(collect_snp_minima=...)"
                )
            from repro.distributed import run_distributed

            outcome = run_distributed(
                dataset,
                source,
                config=cfg,
                workers=workers or 1,
                checkpoint=checkpoint,
                resume=resume,
                progress=progress,
                cancel=cancel,
                approach_kwargs=self._approach_kwargs,
                pool=pool,
                shm=shm,
                run_id=run_id,
                retry=retry,
                faults=faults,
            )
            if outcome.cancelled or not outcome.completed:
                raise RuntimeError(
                    f"detection cancelled after "
                    f"{outcome.items_restored + outcome.items_evaluated} of "
                    f"{source.total} combinations"
                )
            return outcome.result
        total = source.total
        with span_or_null("plan", total=total):
            self._prepare_objective(dataset)
            devices = self.engine_devices()
            policy = self._build_policy(dataset, source)
            plan = ExecutionPlan(
                source=source, devices=devices, policy=policy, top_k=cfg.top_k
            )

        # Encode the dataset once per device lane (CPU and GPU approaches
        # consume different layouts); workers of a lane share the read-only
        # encoding but own their approach instance.  The first worker whose
        # lane matches the prototype's kind reuses the prototype so
        # single-lane runs keep a single counter to inspect.
        encodings: Dict[str, object] = {}
        prototype_assigned = False

        def worker_factory(device: EngineDevice, worker_id: int) -> _WorkerState:
            nonlocal prototype_assigned
            if device.kind == self._prototype.device and not prototype_assigned:
                prototype_assigned = True
                approach = self._prototype
            else:
                approach = self._worker_approach(device.kind)
            if device.kind not in encodings:
                encodings[device.kind] = self._prepare_cached(approach, dataset)
            return _WorkerState(approach=approach, encoded=encodings[device.kind])

        snp_names = list(dataset.snp_names)
        n_cases, n_controls = dataset.n_cases, dataset.n_controls
        fused_active = self._fused_active()

        def scorer(worker: DeviceWorker, combos: np.ndarray) -> np.ndarray:
            state: _WorkerState = worker.state
            if fused_active:
                scores = state.approach.score_combinations(
                    state.encoded, combos, self.objective
                )
                if scores is not None:
                    if observe is not None:
                        observe(worker, combos, scores)
                    return scores
            tables = state.approach.build_tables(state.encoded, combos)
            if cfg.validate:
                validate_tables(tables, n_controls, n_cases)
            scores = self.objective.score(tables)
            if observe is not None:
                observe(worker, combos, scores)
            return scores

        executor = HeterogeneousExecutor(plan, cancel=cancel)
        run = executor.run(
            worker_factory, scorer=scorer, snp_names=snp_names, progress=progress
        )
        if run.cancelled:
            raise RuntimeError(
                f"detection cancelled after {run.n_items} of {total} combinations"
            )
        if not run.top:
            raise RuntimeError("exhaustive search produced no interactions")

        stats = self._build_stats(run, plan, total, dataset, policy, source)
        stats.extra["run_id"] = run_id
        if session is not None:
            from repro.telemetry import absorb_stats

            absorb_stats(session, stats)
            stats.extra["telemetry"] = session.summary()
        return DetectionResult(best=run.top[0], top=list(run.top), stats=stats)

    # -- staged search --------------------------------------------------------------
    def detect_staged(
        self,
        dataset: GenotypeDataset,
        *,
        screen_order: int = 2,
        keep_snps: int | None = None,
        refine_objective: str | ObjectiveFunction | None = None,
        n_permutations: int = 0,
        permutation_seed: int = 0,
        stages: List | None = None,
        cancel: CancellationToken | None = None,
        progress: Callable[[str, int, int], None] | None = None,
        workers: int | None = None,
        checkpoint: str | None = None,
        resume: bool = False,
        pool: str = "keep",
        shm: object = None,
        retry: object = None,
        faults: object = None,
    ):
        """Run a staged screen-then-expand search instead of the dense sweep.

        A cheap order-``screen_order`` scan first retains the ``keep_snps``
        SNPs with the best participating score; the expensive
        order-``config.order`` sweep then evaluates only ``nCr(keep_snps,
        order)`` combinations instead of ``nCr(n_snps, order)`` — the
        retention budget is the knob trading recall for cost.  Optional
        refine (second objective) and permutation (empirical p-values)
        stages harden the finalists.  Every stage runs on the execution
        engine with this detector's approach/devices/schedule configuration.

        Parameters
        ----------
        dataset:
            The case/control dataset to search.
        screen_order:
            Interaction order of the screening scan (must be below the
            configured detection order).
        keep_snps:
            Retention budget of the screen; defaults to a quarter of the
            SNP universe (at least the detection order).  ``keep_snps =
            n_snps`` (full retention) makes the staged run bit-identical to
            :meth:`detect`.
        refine_objective:
            Optional second objective re-scoring the finalists.
        n_permutations:
            When positive, append a phenotype-permutation stage computing
            empirical p-values over the finalists.
        permutation_seed:
            Seed of the permutation null.
        stages:
            Explicit stage list overriding the standard construction (the
            other staging arguments are then ignored).
        cancel / progress:
            Cooperative cancellation token and per-stage progress callback
            ``progress(stage_name, done, total)``.
        workers / checkpoint / resume:
            Sharded multi-process execution of the sweep stages
            (:mod:`repro.distributed`): each screen/expand stage shards its
            candidate space across ``workers`` OS processes; ``checkpoint``
            names a *directory* holding one atomic ledger per stage plus
            the pipeline-level stage-output ledger, and ``resume`` restores
            completed stages and shards after a kill.

        Returns
        -------
        repro.pipeline.PipelineResult
            Finalists, per-stage reports and the evaluated fraction.

        Example
        -------
        >>> from repro.datasets import SyntheticConfig, PlantedInteraction, generate_dataset
        >>> from repro.core import EpistasisDetector
        >>> cfg = SyntheticConfig(n_snps=32, n_samples=2048,
        ...                       interaction=PlantedInteraction(snps=(3, 11, 17), effect=0.9),
        ...                       seed=7)
        >>> detector = EpistasisDetector(approach="cpu-v4", order=3)
        >>> staged = detector.detect_staged(generate_dataset(cfg),
        ...                                 screen_order=2, keep_snps=12)
        >>> staged.best_snps
        (3, 11, 17)
        >>> staged.evaluated_fraction < 0.2
        True
        """
        from repro.pipeline import (
            ExpandStage,
            PermutationStage,
            RefineStage,
            ScreenStage,
            SearchPipeline,
        )

        cfg = self.config
        if stages is None:
            if keep_snps is None:
                keep_snps = max(cfg.order, dataset.n_snps // 4)
            if screen_order >= cfg.order:
                raise ValueError(
                    f"screen_order={screen_order} must be below the detection "
                    f"order {cfg.order}"
                )
            stages = [
                ScreenStage(order=screen_order, keep=keep_snps),
                ExpandStage(order=cfg.order),
            ]
            if refine_objective is not None:
                stages.append(RefineStage(objective=refine_objective))
            if n_permutations > 0:
                # The null must test the statistic the finalists are ranked
                # (and displayed) under — the refine objective when present.
                stages.append(
                    PermutationStage(
                        n_permutations=n_permutations,
                        seed=permutation_seed,
                        objective=refine_objective,
                    )
                )
        pipeline = SearchPipeline(
            stages,
            approach=cfg.approach,
            objective=cfg.objective,
            devices=cfg.devices,
            schedule=cfg.schedule,
            n_workers=cfg.n_workers,
            chunk_size=cfg.chunk_size,
            top_k=cfg.top_k,
            validate=cfg.validate,
            word_layout=cfg.word_layout,
            backend=cfg.backend,
            fused=cfg.fused,
            telemetry=cfg.telemetry,
            workers=workers or 1,
            checkpoint=checkpoint,
            resume=resume,
            pool=pool,
            shm=shm,
            retry=retry,
            faults=faults,
        )
        return pipeline.run(dataset, cancel=cancel, progress=progress)

    def _build_stats(self, run, plan, total, dataset, policy, source) -> ApproachStats:
        """Merge worker counters and engine bookkeeping into run statistics."""
        # Snapshot every distinct approach counter before mutating anything:
        # the prototype is itself a worker, so merging into its counter
        # mid-iteration would contaminate lanes read after the merge.
        # Deduplication is by instance identity (a shared custom approach is
        # only counted once).
        device_stats = {label: dict(entry) for label, entry in run.device_stats.items()}
        snapshots: Dict[int, Dict[str, int]] = {}
        for worker in run.workers:
            approach = worker.state.approach
            if id(approach) not in snapshots:
                snapshots[id(approach)] = dict(approach.counter.as_dict())

        for label in device_stats:
            lane_workers = [w for w in run.workers if w.label == label]
            lane_ops: Dict[str, int] = {}
            lane_seen: set[int] = set()
            for worker in lane_workers:
                approach_id = id(worker.state.approach)
                if approach_id in lane_seen:
                    continue
                lane_seen.add(approach_id)
                for mnemonic, count in snapshots[approach_id].items():
                    lane_ops[mnemonic] = lane_ops.get(mnemonic, 0) + count
            if lane_workers:
                lane_approach = lane_workers[0].state.approach
                device_stats[label]["approach"] = lane_approach.name
                device_stats[label]["backend"] = getattr(
                    lane_approach, "backend_name", None
                )
            device_stats[label]["op_counts"] = lane_ops

        # Global merge into the prototype's counter, after every lane has
        # read its (pre-merge) snapshot.
        merged_counter = self._prototype.counter
        seen_ids = {id(self._prototype)}
        for worker in run.workers:
            approach = worker.state.approach
            if id(approach) not in seen_ids:
                seen_ids.add(id(approach))
                merged_counter.merge(approach.counter)

        extra: Dict[str, object] = dict(self._prototype.extra_stats())
        extra["order"] = source.order
        extra["schedule"] = policy.name
        # The backend that actually ran (post-fallback), not the requested
        # name — surfaced by the CLI summary line.
        extra["backend"] = getattr(self._prototype, "backend_name", None)
        extra["fused"] = self._fused_mode()
        extra["candidates"] = source.describe()
        extra["devices"] = device_stats

        # Single-lane plans report the approach that actually ran (a
        # ``devices="gpu"`` plan with a CPU-named config runs the GPU
        # counterpart); heterogeneous plans keep the configured name and
        # detail per-lane approaches in ``extra["devices"]``.
        approach_name = self._prototype.name
        if len(device_stats) == 1:
            (entry,) = device_stats.values()
            approach_name = entry.get("approach", approach_name)

        return ApproachStats(
            approach=approach_name,
            n_combinations=total,
            n_samples=dataset.n_samples,
            elapsed_seconds=run.elapsed_seconds,
            op_counts=merged_counter.as_dict(),
            bytes_loaded=merged_counter.bytes_loaded,
            bytes_stored=merged_counter.bytes_stored,
            n_workers=plan.total_workers,
            extra=extra,
        )
