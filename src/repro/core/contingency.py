"""Genotype/phenotype frequency (contingency) tables.

For a k-way interaction the frequency table has ``3^k`` rows (one per
genotype combination) and 2 columns (controls, cases); for the paper's
three-way study that is the 27 x 2 table of Figure 1.  Every approach in
:mod:`repro.core.approaches` produces these tables from the binarised
encodings; this module provides

* the canonical *cell index* convention shared by all kernels,
* :func:`contingency_oracle` — a direct construction from the uncompressed
  genotype matrix (``numpy.bincount`` over radix-3 codes) used as the
  correctness oracle in tests and by the pure-Python baseline, and
* validation helpers (row/column totals, non-negativity).

Table conventions
-----------------
Tables are stored as ``int64`` arrays of shape ``(..., 27, 2)``; cell
``[..., c, j]`` holds the number of samples with phenotype ``j`` (0=control,
1=case) whose genotype combination index is ``c``.  The combination index of
genotypes ``(gX, gY, gZ)`` is ``9*gX + 3*gY + gZ`` (big-endian radix 3, SNP
``X`` most significant), matching the row order of Figure 1.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "N_GENOTYPE_COMBINATIONS",
    "combination_cell_index",
    "cell_index_to_genotypes",
    "contingency_oracle",
    "contingency_oracle_many",
    "table_totals",
    "validate_tables",
]

#: Number of genotype combinations for a three-way interaction.
N_GENOTYPE_COMBINATIONS: int = 27


def combination_cell_index(genotypes: Sequence[int]) -> int:
    """Radix-3 cell index of a genotype combination ``(gX, gY, gZ, ...)``."""
    idx = 0
    for g in genotypes:
        if not 0 <= g <= 2:
            raise ValueError(f"genotype values must be 0, 1 or 2; got {g}")
        idx = idx * 3 + int(g)
    return idx


def cell_index_to_genotypes(index: int, order: int = 3) -> tuple[int, ...]:
    """Inverse of :func:`combination_cell_index`."""
    if not 0 <= index < 3**order:
        raise ValueError(f"cell index {index} out of range for order {order}")
    out = []
    for _ in range(order):
        out.append(index % 3)
        index //= 3
    return tuple(reversed(out))


def contingency_oracle(
    genotypes: np.ndarray,
    phenotypes: np.ndarray,
    combo: Sequence[int],
) -> np.ndarray:
    """Frequency table of one SNP combination, straight from the genotypes.

    Parameters
    ----------
    genotypes:
        ``(n_snps, n_samples)`` genotype matrix.
    phenotypes:
        ``(n_samples,)`` 0/1 phenotype vector.
    combo:
        SNP indices of the combination (any order >= 1).

    Returns
    -------
    numpy.ndarray
        ``(3**k, 2)`` ``int64`` frequency table.
    """
    combo = tuple(combo)
    order = len(combo)
    n_cells = 3**order
    codes = np.zeros(genotypes.shape[1], dtype=np.int64)
    for snp in combo:
        codes = codes * 3 + genotypes[snp].astype(np.int64)
    phen = np.asarray(phenotypes, dtype=np.int64)
    joint = codes * 2 + phen
    counts = np.bincount(joint, minlength=n_cells * 2)
    return counts.reshape(n_cells, 2)


def contingency_oracle_many(
    genotypes: np.ndarray,
    phenotypes: np.ndarray,
    combos: np.ndarray,
) -> np.ndarray:
    """Frequency tables for many combinations at once.

    Parameters
    ----------
    combos:
        ``(n_combos, k)`` integer array of SNP index combinations.

    Returns
    -------
    numpy.ndarray
        ``(n_combos, 3**k, 2)`` ``int64`` tables.
    """
    combos = np.asarray(combos, dtype=np.int64)
    if combos.ndim != 2:
        raise ValueError("combos must be a 2-D (n_combos, k) array")
    n_combos, order = combos.shape
    n_cells = 3**order
    out = np.empty((n_combos, n_cells, 2), dtype=np.int64)
    for row in range(n_combos):
        out[row] = contingency_oracle(genotypes, phenotypes, combos[row])
    return out


def table_totals(tables: np.ndarray) -> np.ndarray:
    """Total sample count per table: sum over cells and phenotype classes."""
    tables = np.asarray(tables)
    return tables.sum(axis=(-1, -2))


def validate_tables(
    tables: np.ndarray,
    n_controls: int | None = None,
    n_cases: int | None = None,
) -> None:
    """Check structural invariants of a batch of frequency tables.

    * all counts non-negative;
    * if ``n_controls``/``n_cases`` are given, every table's column sums
      equal them (each sample lands in exactly one genotype-combination
      cell).

    Raises
    ------
    ValueError
        If an invariant is violated.
    """
    tables = np.asarray(tables)
    if tables.shape[-1] != 2:
        raise ValueError(f"last axis must have size 2 (controls, cases); got {tables.shape}")
    if (tables < 0).any():
        raise ValueError("frequency tables contain negative counts")
    if n_controls is not None:
        col = tables[..., 0].sum(axis=-1)
        if not np.all(col == n_controls):
            raise ValueError(
                f"control column sums {np.unique(col)} do not all equal {n_controls}"
            )
    if n_cases is not None:
        col = tables[..., 1].sum(axis=-1)
        if not np.all(col == n_cases):
            raise ValueError(
                f"case column sums {np.unique(col)} do not all equal {n_cases}"
            )
