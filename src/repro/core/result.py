"""Result containers for epistasis detection runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Sequence

import numpy as np

__all__ = ["Interaction", "ApproachStats", "DetectionResult", "interaction_row"]


@dataclass(frozen=True)
class Interaction:
    """One scored SNP combination.

    Attributes
    ----------
    snps:
        SNP indices, strictly increasing.
    score:
        Objective-function value (lower is better for every objective in
        :mod:`repro.core.scoring`).
    snp_names:
        Optional resolved SNP names for reporting.
    """

    snps: tuple[int, ...]
    score: float
    snp_names: tuple[str, ...] | None = None

    def __lt__(self, other: "Interaction") -> bool:
        # Deterministic ordering: by score, ties broken by SNP indices.
        return (self.score, self.snps) < (other.score, other.snps)

    def __str__(self) -> str:
        names = (
            "(" + ", ".join(self.snp_names) + ")"
            if self.snp_names
            else str(tuple(self.snps))
        )
        return f"{names}: score={self.score:.6f}"


def interaction_row(interaction: "Interaction", rank: int) -> dict:
    """JSON-ready record of one ranked interaction.

    The shared export shape of ``DetectionResult.to_dict`` and the staged
    pipeline's ``PipelineResult.to_dict`` — keep both CLI ``--output``
    formats in lockstep.
    """
    return {
        "rank": rank,
        "snps": [int(s) for s in interaction.snps],
        "snp_names": (
            list(interaction.snp_names) if interaction.snp_names else None
        ),
        "score": float(interaction.score),
    }


@dataclass
class ApproachStats:
    """Execution statistics of one detection run.

    Attributes
    ----------
    approach:
        Registry name of the approach that produced the result.
    n_combinations:
        Number of SNP combinations evaluated.
    n_samples:
        Samples per combination (so ``elements = n_combinations * n_samples``).
    elapsed_seconds:
        Wall-clock time of the table-construction + scoring phase.
    op_counts:
        Dynamic instruction counters recorded by the approach (word-level
        mnemonics; see :class:`repro.bitops.ops.OpCounter`).
    bytes_loaded / bytes_stored:
        Memory traffic recorded by the approach.
    n_workers:
        Host threads/processes used.
    extra:
        Approach-specific metadata (blocking parameters, layout, ISA, ...).
    """

    approach: str
    n_combinations: int
    n_samples: int
    elapsed_seconds: float
    op_counts: Mapping[str, int] = field(default_factory=dict)
    bytes_loaded: int = 0
    bytes_stored: int = 0
    n_workers: int = 1
    extra: Mapping[str, object] = field(default_factory=dict)

    @property
    def elements(self) -> int:
        """Paper's throughput unit: combinations x samples."""
        return self.n_combinations * self.n_samples

    @property
    def elements_per_second(self) -> float:
        """Measured throughput in elements per second."""
        if self.elapsed_seconds <= 0:
            return float("nan")
        return self.elements / self.elapsed_seconds

    @property
    def total_ops(self) -> int:
        """Total compute operations (excluding loads/stores)."""
        return sum(v for k, v in self.op_counts.items() if k not in ("LOAD", "STORE"))

    @property
    def arithmetic_intensity(self) -> float:
        """Operations per byte of traffic (CARM x-axis)."""
        total_bytes = self.bytes_loaded + self.bytes_stored
        if total_bytes == 0:
            return float("nan")
        return self.total_ops / total_bytes


@dataclass
class DetectionResult:
    """Outcome of an exhaustive detection run.

    Attributes
    ----------
    best:
        The lowest-scoring interaction.
    top:
        The ``k`` best interactions in ascending score order (including
        ``best``).
    stats:
        Execution statistics.
    """

    best: Interaction
    top: List[Interaction]
    stats: ApproachStats

    @property
    def best_snps(self) -> tuple[int, ...]:
        """SNP indices of the best interaction."""
        return self.best.snps

    @property
    def best_score(self) -> float:
        """Score of the best interaction."""
        return self.best.score

    def contains(self, snps: Sequence[int]) -> bool:
        """Whether a given combination appears in the top list."""
        target = tuple(sorted(int(s) for s in snps))
        return any(tuple(sorted(i.snps)) == target for i in self.top)

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"approach          : {self.stats.approach}",
            f"combinations      : {self.stats.n_combinations}",
            f"samples           : {self.stats.n_samples}",
            f"elapsed           : {self.stats.elapsed_seconds:.4f} s",
            f"throughput        : {self.stats.elements_per_second:.3e} elems/s",
            f"best interaction  : {self.best}",
        ]
        if len(self.top) > 1:
            lines.append("top interactions  :")
            lines.extend(f"  {i + 1}. {inter}" for i, inter in enumerate(self.top))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready representation (CLI ``--output`` export).

        Contains the run configuration, the top-k table (rank, SNP indices
        and names, score) and the per-device engine statistics, so detect
        runs compose with downstream tooling without scraping the text
        summary.
        """
        devices = self.stats.extra.get("devices", {})
        return {
            "run_id": self.stats.extra.get("run_id"),
            "approach": self.stats.approach,
            "order": self.stats.extra.get("order"),
            "schedule": self.stats.extra.get("schedule"),
            "candidates": self.stats.extra.get("candidates"),
            "n_combinations": int(self.stats.n_combinations),
            "n_samples": int(self.stats.n_samples),
            "n_workers": int(self.stats.n_workers),
            "elapsed_seconds": float(self.stats.elapsed_seconds),
            "elements_per_second": float(self.stats.elements_per_second),
            "devices": {
                label: {k: v for k, v in entry.items()}
                for label, entry in devices.items()
            },
            "top": [
                interaction_row(inter, i + 1) for i, inter in enumerate(self.top)
            ],
        }

    @staticmethod
    def from_scores(
        combos: np.ndarray,
        scores: np.ndarray,
        stats: ApproachStats,
        top_k: int = 10,
        snp_names: Sequence[str] | None = None,
    ) -> "DetectionResult":
        """Build a result from parallel arrays of combinations and scores."""
        combos = np.asarray(combos)
        scores = np.asarray(scores, dtype=np.float64)
        if combos.shape[0] != scores.shape[0]:
            raise ValueError("combos and scores must have the same length")
        if combos.shape[0] == 0:
            raise ValueError("cannot build a DetectionResult from zero combinations")
        top_k = min(top_k, scores.shape[0])
        order = np.argsort(scores, kind="stable")[:top_k]

        def _interaction(idx: int) -> Interaction:
            snps = tuple(int(s) for s in combos[idx])
            names = (
                tuple(snp_names[s] for s in snps) if snp_names is not None else None
            )
            return Interaction(snps=snps, score=float(scores[idx]), snp_names=names)

        top = [_interaction(i) for i in order]
        return DetectionResult(best=top[0], top=top, stats=stats)
