"""Objective functions over genotype/phenotype frequency tables.

The paper uses the **Bayesian K2 score** (Equation 1): for a combination of
``k`` SNPs with frequency table ``r`` (``I = 3^k`` genotype combinations,
``J = 2`` phenotype classes),

.. math::

    K2 = \\sum_{i=1}^{I}\\Big(\\sum_{b=1}^{r_i + 1}\\log b
          \\;-\\; \\sum_{j=1}^{J}\\sum_{d=1}^{r_{ij}}\\log d\\Big)

where ``r_i`` is the total count of genotype combination ``i`` and ``r_ij``
the count restricted to phenotype ``j``.  The SNP combination with the
*lowest* score is reported.  Using ``sum_{b=1}^{n} log b = log(n!) =
gammaln(n + 1)`` the score is evaluated in closed form with
:func:`scipy.special.gammaln`, fully vectorised over batches of tables.

Additional objective functions (mutual information, Gini impurity,
chi-squared) are provided as drop-in alternatives; they follow the same
"lower is better" convention so the detector can minimise uniformly
(information-style criteria are negated).
"""

from __future__ import annotations

from typing import Dict, Protocol, Type

import numpy as np
from scipy.special import gammaln

__all__ = [
    "ObjectiveFunction",
    "K2Score",
    "MutualInformationScore",
    "GiniScore",
    "ChiSquaredScore",
    "get_objective",
    "OBJECTIVES",
]


class ObjectiveFunction(Protocol):
    """Protocol implemented by every objective function.

    Objective functions are stateless callables over batches of frequency
    tables; ``lower is better`` for all of them.
    """

    #: Registry name.
    name: str

    def score(self, tables: np.ndarray) -> np.ndarray:
        """Score a batch of tables.

        Parameters
        ----------
        tables:
            ``(..., n_cells, 2)`` frequency tables.

        Returns
        -------
        numpy.ndarray
            ``(...)`` float64 scores (lower = more likely epistatic).
        """
        ...


class _TableObjective:
    """Shared input validation for the concrete objective functions."""

    name = "abstract"

    @staticmethod
    def _check(tables: np.ndarray) -> np.ndarray:
        arr = np.asarray(tables, dtype=np.float64)
        if arr.ndim < 2 or arr.shape[-1] != 2:
            raise ValueError(
                f"tables must have shape (..., n_cells, 2); got {arr.shape}"
            )
        if (arr < 0).any():
            raise ValueError("frequency tables contain negative counts")
        return arr

    def __call__(self, tables: np.ndarray) -> np.ndarray:
        return self.score(tables)

    def score(self, tables: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class K2Score(_TableObjective):
    """Bayesian K2 score (Equation 1 of the paper); lower is better."""

    name = "k2"

    def score(self, tables: np.ndarray) -> np.ndarray:
        arr = self._check(tables)
        row_totals = arr.sum(axis=-1)  # r_i
        # sum_{b=1}^{r_i+1} log b = gammaln(r_i + 2)
        first = gammaln(row_totals + 2.0)
        # sum_j sum_{d=1}^{r_ij} log d = sum_j gammaln(r_ij + 1)
        second = gammaln(arr + 1.0).sum(axis=-1)
        return (first - second).sum(axis=-1)


class MutualInformationScore(_TableObjective):
    """Negative mutual information between genotype combination and phenotype.

    ``I(G; P) = H(G) + H(P) - H(G, P)`` in nats; the *negative* value is
    returned so that, like K2, lower scores indicate stronger association.
    """

    name = "mutual-information"

    def score(self, tables: np.ndarray) -> np.ndarray:
        arr = self._check(tables)
        total = arr.sum(axis=(-1, -2), keepdims=True)
        total = np.where(total == 0, 1.0, total)
        p_joint = arr / total
        p_geno = p_joint.sum(axis=-1, keepdims=True)
        p_phen = p_joint.sum(axis=-2, keepdims=True)

        def _entropy(p: np.ndarray, axes: tuple[int, ...]) -> np.ndarray:
            with np.errstate(divide="ignore", invalid="ignore"):
                terms = np.where(p > 0, p * np.log(p), 0.0)
            return -terms.sum(axis=axes)

        h_joint = _entropy(p_joint, (-1, -2))
        h_geno = _entropy(p_geno, (-1, -2))
        h_phen = _entropy(p_phen, (-1, -2))
        return -(h_geno + h_phen - h_joint)


class GiniScore(_TableObjective):
    """Weighted Gini impurity of the phenotype within genotype cells.

    Lower impurity means the genotype combination separates cases from
    controls more cleanly.
    """

    name = "gini"

    def score(self, tables: np.ndarray) -> np.ndarray:
        arr = self._check(tables)
        cell_totals = arr.sum(axis=-1)
        total = cell_totals.sum(axis=-1, keepdims=True)
        total = np.where(total == 0, 1.0, total)
        safe_cells = np.where(cell_totals == 0, 1.0, cell_totals)
        p_case = arr[..., 1] / safe_cells
        gini_cell = 2.0 * p_case * (1.0 - p_case)
        weights = cell_totals / total
        return (weights * gini_cell).sum(axis=-1)


class ChiSquaredScore(_TableObjective):
    """Negative chi-squared statistic of the genotype/phenotype table.

    The statistic grows with association strength, so its negation follows
    the "lower is better" convention.
    """

    name = "chi2"

    def score(self, tables: np.ndarray) -> np.ndarray:
        arr = self._check(tables)
        total = arr.sum(axis=(-1, -2), keepdims=True)
        total = np.where(total == 0, 1.0, total)
        row = arr.sum(axis=-1, keepdims=True)
        col = arr.sum(axis=-2, keepdims=True)
        expected = row * col / total
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = np.where(expected > 0, (arr - expected) ** 2 / expected, 0.0)
        return -terms.sum(axis=(-1, -2))


#: Registry of objective functions by name.
OBJECTIVES: Dict[str, Type[_TableObjective]] = {
    cls.name: cls
    for cls in (K2Score, MutualInformationScore, GiniScore, ChiSquaredScore)
}


def get_objective(name: str | ObjectiveFunction) -> ObjectiveFunction:
    """Resolve an objective function by name (or pass through an instance)."""
    if not isinstance(name, str):
        return name
    key = name.lower()
    if key not in OBJECTIVES:
        raise KeyError(
            f"unknown objective {name!r}; available: {sorted(OBJECTIVES)}"
        )
    return OBJECTIVES[key]()
