"""Objective functions over genotype/phenotype frequency tables.

The paper uses the **Bayesian K2 score** (Equation 1): for a combination of
``k`` SNPs with frequency table ``r`` (``I = 3^k`` genotype combinations,
``J = 2`` phenotype classes),

.. math::

    K2 = \\sum_{i=1}^{I}\\Big(\\sum_{b=1}^{r_i + 1}\\log b
          \\;-\\; \\sum_{j=1}^{J}\\sum_{d=1}^{r_{ij}}\\log d\\Big)

where ``r_i`` is the total count of genotype combination ``i`` and ``r_ij``
the count restricted to phenotype ``j``.  The SNP combination with the
*lowest* score is reported.  Using ``sum_{b=1}^{n} log b = log(n!) =
gammaln(n + 1)`` the score is evaluated in closed form with
:func:`scipy.special.gammaln`, fully vectorised over batches of tables.

Because every table cell is an integer in ``[0, n_samples]``, the gammaln
evaluations are drawn from a tiny domain — yet the closed form recomputes
them for every ``(T, 3^k, 2)`` batch.  :meth:`K2Score.prepare` therefore
precomputes a per-dataset **log-factorial table** (``n_samples + 2``
float64 entries) once, and :meth:`K2Score.score` indexes it with the
integer counts: bit-identical results (the table *is* ``gammaln`` evaluated
at the same integer abscissae, summed in the same order) at a fraction of
the cost.  Non-integer or out-of-range input transparently falls back to
the scipy path.  The ``prepare`` hook is objective-level, so the other
criteria can precompute per-dataset state the same way.

Additional objective functions (mutual information, Gini impurity,
chi-squared) are provided as drop-in alternatives; they follow the same
"lower is better" convention so the detector can minimise uniformly
(information-style criteria are negated).
"""

from __future__ import annotations

from typing import Dict, Protocol, Type

import numpy as np

try:
    from scipy.special import gammaln
except ImportError:  # pragma: no cover - scipy-less environments
    import math

    # C-library lgamma agrees with scipy's gammaln on the integer abscissae
    # the scores evaluate; vectorised here so the call sites stay identical.
    gammaln = np.vectorize(math.lgamma, otypes=[np.float64])

__all__ = [
    "ObjectiveFunction",
    "K2Score",
    "MutualInformationScore",
    "GiniScore",
    "ChiSquaredScore",
    "get_objective",
    "OBJECTIVES",
]


class ObjectiveFunction(Protocol):
    """Protocol implemented by every objective function.

    Objective functions are stateless callables over batches of frequency
    tables; ``lower is better`` for all of them.
    """

    #: Registry name.
    name: str

    def prepare(self, dataset) -> None:
        """Precompute per-dataset state (optional, see ``_TableObjective``)."""
        ...

    def score(self, tables: np.ndarray) -> np.ndarray:
        """Score a batch of tables.

        Parameters
        ----------
        tables:
            ``(..., n_cells, 2)`` frequency tables.

        Returns
        -------
        numpy.ndarray
            ``(...)`` float64 scores (lower = more likely epistatic).
        """
        ...


class _TableObjective:
    """Shared input validation for the concrete objective functions."""

    name = "abstract"

    def prepare(self, dataset) -> None:
        """Hook: precompute per-dataset state before a run.

        The detector calls this once per ``detect``/stage run with the
        dataset about to be scored; objectives that can exploit the bounded
        integer count domain (``K2Score``'s log-factorial table) override
        it.  The default is a no-op, and objectives must stay correct when
        it was never called (direct ``score`` use, gpusim kernels).
        """

    def fused_spec(self) -> dict | None:
        """Kernel-fusable description of this objective, or ``None``.

        The fused execution path (``ExecutionBackend.score_combinations``)
        folds the objective into the counting kernel instead of scoring a
        materialized table batch.  Only objectives whose in-kernel
        evaluation is *bit-identical* to :meth:`score` may advertise a
        spec: K2 (pure table lookups plus a fixed-order summation) and
        Gini (exact rational cell arithmetic).  Objectives built on
        transcendental ``np.log`` evaluations (mutual information,
        chi-squared) return ``None`` — a compiled kernel's ``log`` is not
        guaranteed to match numpy's SIMD ``log`` bit for bit, so they run
        through the tiled materialize-then-score path instead.
        """
        return None

    @staticmethod
    def _check(tables: np.ndarray) -> np.ndarray:
        arr = np.asarray(tables, dtype=np.float64)
        if arr.ndim < 2 or arr.shape[-1] != 2:
            raise ValueError(
                f"tables must have shape (..., n_cells, 2); got {arr.shape}"
            )
        if (arr < 0).any():
            raise ValueError("frequency tables contain negative counts")
        return arr

    def __call__(self, tables: np.ndarray) -> np.ndarray:
        return self.score(tables)

    def score(self, tables: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class K2Score(_TableObjective):
    """Bayesian K2 score (Equation 1 of the paper); lower is better.

    Parameters
    ----------
    precompute:
        When ``True`` (default), :meth:`prepare` builds the per-dataset
        log-factorial lookup table and :meth:`score` indexes it with the
        integer counts — bit-identical to the closed-form ``gammaln`` path.
        ``False`` pins the scipy path (used by the hot-path benchmark to
        measure the pre-table baseline).
    """

    name = "k2"

    def __init__(self, precompute: bool = True) -> None:
        self.precompute = bool(precompute)
        #: ``logfact[c] == gammaln(c + 1) == log(c!)`` for integer counts
        #: ``c`` up to ``n_samples + 1``; built by :meth:`prepare`.
        self._logfact: np.ndarray | None = None

    def prepare(self, dataset) -> None:
        """Build (or extend) the log-factorial table for ``dataset``.

        The table covers counts ``0 .. n_samples + 1`` — every row total
        ``r_i`` is at most ``n_samples`` and the score needs
        ``log((r_i + 1)!)``.  Idempotent: an already-large-enough table is
        kept, so one objective instance can serve many datasets.
        """
        if not self.precompute:
            return
        needed = int(dataset.n_samples) + 2
        if self._logfact is None or self._logfact.size < needed:
            # gammaln evaluated at the exact integer abscissae — any lookup
            # is bit-identical to computing gammaln on the count directly.
            self._logfact = gammaln(np.arange(needed, dtype=np.float64) + 1.0)

    def fused_spec(self) -> dict | None:
        """K2 fuses via the per-dataset log-factorial table.

        Only available after :meth:`prepare` populated the table (the
        kernel indexes it with integer counts, exactly like the table
        branch of :meth:`score`); ``precompute=False`` instances never
        fuse — they exist to measure the pre-table scipy baseline.
        """
        if self._logfact is None:
            return None
        return {"kind": "k2", "logfact": self._logfact}

    def score(self, tables: np.ndarray) -> np.ndarray:
        arr = np.asarray(tables)
        logfact = self._logfact
        if (
            logfact is not None
            and arr.dtype.kind in "iu"
            and arr.ndim >= 2
            and arr.shape[-1] == 2
            and arr.size
        ):
            row_totals = arr.sum(axis=-1)  # r_i
            if int(arr.min()) >= 0 and int(row_totals.max()) + 1 < logfact.size:
                # sum_{b=1}^{r_i+1} log b = log((r_i + 1)!) — one table probe
                first = logfact[row_totals + 1]
                # sum_j sum_{d=1}^{r_ij} log d = sum_j log(r_ij!)
                second = logfact[arr].sum(axis=-1)
                return (first - second).sum(axis=-1)
        arr = self._check(tables)
        row_totals = arr.sum(axis=-1)  # r_i
        # sum_{b=1}^{r_i+1} log b = gammaln(r_i + 2)
        first = gammaln(row_totals + 2.0)
        # sum_j sum_{d=1}^{r_ij} log d = sum_j gammaln(r_ij + 1)
        second = gammaln(arr + 1.0).sum(axis=-1)
        return (first - second).sum(axis=-1)


class MutualInformationScore(_TableObjective):
    """Negative mutual information between genotype combination and phenotype.

    ``I(G; P) = H(G) + H(P) - H(G, P)`` in nats; the *negative* value is
    returned so that, like K2, lower scores indicate stronger association.
    """

    name = "mutual-information"

    def score(self, tables: np.ndarray) -> np.ndarray:
        arr = self._check(tables)
        total = arr.sum(axis=(-1, -2), keepdims=True)
        total = np.where(total == 0, 1.0, total)
        p_joint = arr / total
        p_geno = p_joint.sum(axis=-1, keepdims=True)
        p_phen = p_joint.sum(axis=-2, keepdims=True)

        def _entropy(p: np.ndarray, axes: tuple[int, ...]) -> np.ndarray:
            with np.errstate(divide="ignore", invalid="ignore"):
                terms = np.where(p > 0, p * np.log(p), 0.0)
            return -terms.sum(axis=axes)

        h_joint = _entropy(p_joint, (-1, -2))
        h_geno = _entropy(p_geno, (-1, -2))
        h_phen = _entropy(p_phen, (-1, -2))
        return -(h_geno + h_phen - h_joint)


class GiniScore(_TableObjective):
    """Weighted Gini impurity of the phenotype within genotype cells.

    Lower impurity means the genotype combination separates cases from
    controls more cleanly.
    """

    name = "gini"

    def fused_spec(self) -> dict | None:
        """Gini fuses statelessly: exact rational arithmetic per cell."""
        return {"kind": "gini"}

    def score(self, tables: np.ndarray) -> np.ndarray:
        arr = self._check(tables)
        cell_totals = arr.sum(axis=-1)
        total = cell_totals.sum(axis=-1, keepdims=True)
        total = np.where(total == 0, 1.0, total)
        safe_cells = np.where(cell_totals == 0, 1.0, cell_totals)
        p_case = arr[..., 1] / safe_cells
        gini_cell = 2.0 * p_case * (1.0 - p_case)
        weights = cell_totals / total
        return (weights * gini_cell).sum(axis=-1)


class ChiSquaredScore(_TableObjective):
    """Negative chi-squared statistic of the genotype/phenotype table.

    The statistic grows with association strength, so its negation follows
    the "lower is better" convention.
    """

    name = "chi2"

    def score(self, tables: np.ndarray) -> np.ndarray:
        arr = self._check(tables)
        total = arr.sum(axis=(-1, -2), keepdims=True)
        total = np.where(total == 0, 1.0, total)
        row = arr.sum(axis=-1, keepdims=True)
        col = arr.sum(axis=-2, keepdims=True)
        expected = row * col / total
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = np.where(expected > 0, (arr - expected) ** 2 / expected, 0.0)
        return -terms.sum(axis=(-1, -2))


#: Registry of objective functions by name.
OBJECTIVES: Dict[str, Type[_TableObjective]] = {
    cls.name: cls
    for cls in (K2Score, MutualInformationScore, GiniScore, ChiSquaredScore)
}


def get_objective(name: str | ObjectiveFunction) -> ObjectiveFunction:
    """Resolve an objective function by name (or pass through an instance)."""
    if not isinstance(name, str):
        return name
    key = name.lower()
    if key not in OBJECTIVES:
        raise KeyError(
            f"unknown objective {name!r}; available: {sorted(OBJECTIVES)}"
        )
    return OBJECTIVES[key]()
