"""Fused-path mode resolution (``fused="auto"|"on"|"off"``).

The fused scoring path builds each combination's contingency table in
registers/locals and folds it straight into the objective, skipping the
chunk-wide ``(n_combos, 3^k, 2)`` table array that the classic
build-then-score path materializes.  This module owns the *mode knob*
only: the tri-state requested through ``DetectorConfig(fused=...)``,
the ``--fused`` CLI flag, or the ``REPRO_FUSED`` environment variable.

* ``"auto"`` (the default) — use the fused path whenever the active
  approach/backend/objective combination supports it bit-identically,
  fall back to build+score silently otherwise (e.g. when table
  validation is requested, which needs the materialized tables);
* ``"on"`` — require the fused path; configurations that cannot honor
  it (``validate=True``) fail fast with a ``ValueError``;
* ``"off"`` — always run the classic build+score path.

Results are bit-identical either way; the knob trades DRAM traffic,
not answers.
"""

from __future__ import annotations

import os

__all__ = [
    "FUSED_ENV",
    "VALID_FUSED_MODES",
    "check_fused_mode",
    "default_fused_mode",
    "resolve_fused_mode",
]

#: Environment variable overriding the default fused mode.
FUSED_ENV = "REPRO_FUSED"

#: Accepted values of the fused knob (config, CLI and environment).
VALID_FUSED_MODES = ("auto", "on", "off")


def check_fused_mode(mode: str) -> str:
    """Validate a fused mode string; returns it normalized (lower-case)."""
    normalized = str(mode).strip().lower()
    if normalized not in VALID_FUSED_MODES:
        raise ValueError(
            f"unknown fused mode {mode!r}; valid values: "
            + ", ".join(VALID_FUSED_MODES)
        )
    return normalized


def default_fused_mode() -> str:
    """The session default: ``REPRO_FUSED`` when set, else ``auto``."""
    forced = os.environ.get(FUSED_ENV)
    if forced is None:
        return "auto"
    normalized = forced.strip().lower()
    if normalized not in VALID_FUSED_MODES:
        raise ValueError(
            f"{FUSED_ENV}={forced!r} is not a known fused mode; "
            "valid values: " + ", ".join(VALID_FUSED_MODES)
        )
    return normalized


def resolve_fused_mode(mode: str | None = None) -> str:
    """Resolve an explicit mode (or ``None``) to a concrete tri-state."""
    if mode is None:
        return default_fused_mode()
    return check_fused_mode(mode)
