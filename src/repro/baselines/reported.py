"""Published state-of-the-art throughputs used by the Table III comparison.

The paper compares against three works.  MPI3SNP was *measured* by the
authors on their own platforms; [29] was likewise measured; the numbers for
[30] were taken from its manuscript.  This module records all of the
published values of Table III so the comparison harness can print the
paper's rows next to this reproduction's model/measurement, and so tests can
check the reproduced speedups against the reported ones.

All throughputs are in **Giga (combinations x samples) per second**.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["ReportedResult", "REPORTED_RESULTS", "reported_throughput", "paper_speedup"]


@dataclass(frozen=True)
class ReportedResult:
    """One row of Table III.

    Attributes
    ----------
    baseline:
        ``"mpi3snp"``, ``"nobre2020"`` ([29]) or ``"campos2020"`` ([30]).
    n_snps / n_samples:
        Dataset dimensions of the comparison.
    device:
        Catalogued device key the comparison ran on.
    baseline_gelements_per_s:
        Published throughput of the baseline (``None`` when the paper could
        not run it, e.g. [29] on AMD MI100 or the estimated CPU rows).
    this_work_gelements_per_s:
        Throughput of the paper's best approach on the same device.
    speedup:
        Published speedup (this work / baseline), when stated.
    estimated:
        ``True`` for the rows the paper extrapolated rather than measured.
    """

    baseline: str
    n_snps: int
    n_samples: int
    device: str
    baseline_gelements_per_s: Optional[float]
    this_work_gelements_per_s: Optional[float]
    speedup: Optional[float]
    estimated: bool = False


#: Table III of the paper, transcribed.
REPORTED_RESULTS: List[ReportedResult] = [
    # --- MPI3SNP, 10000 SNPs x 1600 samples ---------------------------------
    ReportedResult("mpi3snp", 10000, 1600, "GN2", 663.4, 1085.7, 1.64),
    ReportedResult("mpi3snp", 10000, 1600, "GN3", 716.9, 1069.9, 1.49),
    ReportedResult("mpi3snp", 10000, 1600, "CI3", 38.8, 224.4, 5.78),
    ReportedResult("mpi3snp", 10000, 1600, "CA2", 11.7, 67.1, 5.74),
    # --- MPI3SNP, 40000 SNPs x 6400 samples ----------------------------------
    ReportedResult("mpi3snp", 40000, 6400, "GN2", 570.7, 1892.1, 3.31),
    ReportedResult("mpi3snp", 40000, 6400, "GN3", 573.6, 2170.3, 3.78),
    ReportedResult("mpi3snp", 40000, 6400, "CI3", None, 818.3, 21.09, estimated=True),
    ReportedResult("mpi3snp", 40000, 6400, "CA2", None, None, 6.70, estimated=True),
    # --- Nobre et al. [29], 8000 SNPs x 8000 samples --------------------------
    ReportedResult("nobre2020", 8000, 8000, "GN1", 1443.0, 1279.9, 0.89),
    ReportedResult("nobre2020", 8000, 8000, "GN2", 1876.0, 1936.0, 1.03),
    ReportedResult("nobre2020", 8000, 8000, "GN3", 2140.0, 2239.0, 1.05),
    ReportedResult("nobre2020", 8000, 8000, "GN4", 2694.0, 2732.0, 1.01),
    ReportedResult("nobre2020", 8000, 8000, "GA2", None, 2249.0, None),
    # --- Campos et al. [30], 1000 SNPs x 4000 samples --------------------------
    ReportedResult("campos2020", 1000, 4000, "GI1", 5.9, 62.3, 10.56),
    ReportedResult("campos2020", 1000, 4000, "CI1", 2.9, 30.3, 10.45),
]


def reported_throughput(
    baseline: str, device: str, n_snps: int, n_samples: int
) -> Optional[ReportedResult]:
    """Find the Table III row for a given baseline/device/dataset, if any."""
    for row in REPORTED_RESULTS:
        if (
            row.baseline == baseline
            and row.device == device
            and row.n_snps == n_snps
            and row.n_samples == n_samples
        ):
            return row
    return None


def paper_speedup(baseline: str, device: str, n_snps: int, n_samples: int) -> Optional[float]:
    """The speedup the paper reports for one Table III cell (or ``None``)."""
    row = reported_throughput(baseline, device, n_snps, n_samples)
    return row.speedup if row is not None else None
