"""Brute-force reference detector (correctness oracle).

The reference works directly on the uncompressed genotype matrix with
:func:`repro.core.contingency.contingency_oracle` — no binarisation, no
bitwise tricks — so any disagreement with the optimised approaches points at
a bug in the binarised kernels rather than in the oracle.  It is only usable
for small SNP counts (the combination space is walked one combination at a
time) and is used by tests, examples and the ablation benchmarks.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.core.combinations import generate_combinations
from repro.core.contingency import contingency_oracle
from repro.core.result import ApproachStats, DetectionResult
from repro.core.scoring import ObjectiveFunction, get_objective
from repro.datasets.dataset import GenotypeDataset

__all__ = ["BruteForceReference"]


class BruteForceReference:
    """Exhaustive detector over the raw genotype matrix.

    Parameters
    ----------
    objective:
        Objective-function name or instance (default K2).
    order:
        Interaction order (any ``k >= 2`` is supported here, unlike the
        optimised kernels which are specialised for ``k = 3``).
    top_k:
        Number of best interactions to keep.
    """

    def __init__(
        self,
        objective: str | ObjectiveFunction = "k2",
        order: int = 3,
        top_k: int = 10,
    ) -> None:
        if order < 2:
            raise ValueError("order must be at least 2")
        self.objective = get_objective(objective)
        self.order = order
        self.top_k = top_k

    def score_combination(self, dataset: GenotypeDataset, combo: Sequence[int]) -> float:
        """Score a single SNP combination."""
        table = contingency_oracle(dataset.genotypes, dataset.phenotypes, combo)
        return float(self.objective.score(table[None, :, :])[0])

    def detect(self, dataset: GenotypeDataset) -> DetectionResult:
        """Exhaustively score every combination (small datasets only)."""
        started = time.perf_counter()
        combos = generate_combinations(dataset.n_snps, self.order)
        scores = np.empty(combos.shape[0], dtype=np.float64)
        for i, combo in enumerate(combos):
            scores[i] = self.score_combination(dataset, combo)
        elapsed = time.perf_counter() - started
        stats = ApproachStats(
            approach="brute-force-reference",
            n_combinations=combos.shape[0],
            n_samples=dataset.n_samples,
            elapsed_seconds=elapsed,
            n_workers=1,
            extra={"order": self.order},
        )
        return DetectionResult.from_scores(
            combos, scores, stats, top_k=self.top_k, snp_names=list(dataset.snp_names)
        )
