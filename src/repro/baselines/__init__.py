"""Baseline and comparator implementations.

Table III of the paper compares the best proposed approach against three
state-of-the-art third-order detectors:

* **MPI3SNP** (Ponte-Fernández et al.) — re-implemented here at the
  algorithmic level (:mod:`repro.baselines.mpi3snp`): static partitioning of
  the combination space across ranks of a simulated cluster, binarised
  kernel without cache blocking or layout tiling, scalar (64-bit) population
  counts on the CPU.  A companion analytical model predicts its throughput
  on the catalogued devices.
* **Nobre et al. [29]** (CPU+GPU CUDA) and **Campos et al. [30]**
  (CPU+iGPU) — no source is available to re-implement faithfully, so their
  *published/measured throughputs* on the relevant devices are recorded as
  data (:mod:`repro.baselines.reported`) and used verbatim in the Table III
  harness, exactly as the paper itself does for [30].
* A **pure-Python/NumPy brute-force reference**
  (:mod:`repro.baselines.reference`) used as the correctness oracle for all
  optimised kernels.
"""

from repro.baselines.reference import BruteForceReference
from repro.baselines.mpi3snp import Mpi3snpBaseline, estimate_mpi3snp_throughput
from repro.baselines.reported import REPORTED_RESULTS, ReportedResult, reported_throughput

__all__ = [
    "BruteForceReference",
    "Mpi3snpBaseline",
    "estimate_mpi3snp_throughput",
    "ReportedResult",
    "REPORTED_RESULTS",
    "reported_throughput",
]
