"""MPI3SNP-style baseline.

MPI3SNP (Ponte-Fernández et al., IJHPCA 2020) is the reference third-order
exhaustive detector the paper measures against; the same family of tools is
routinely compared at second order, so the functional baseline here is
order-parametric (``order=2..5``) like the rest of the search stack.  Algorithmically it shares
the binarised representation and the AND/POPCNT frequency-table construction
but differs from the paper's best approach in the points that matter for
performance:

* the combination space is **statically partitioned** across MPI ranks
  (one process per core or per GPU) instead of dynamically scheduled;
* the CPU kernel uses **64-bit scalar population counts** — no cache
  blocking and no SIMD;
* the GPU kernel is not layout-tiled, so its effective cache reuse degrades
  as the SNP count grows.

The functional re-implementation here (:class:`Mpi3snpBaseline`) runs the
split kernel over statically partitioned ranks and produces results
identical to the optimised approaches (same tables, same best triplet) —
the difference is captured by the execution statistics and by the
analytical throughput model (:func:`estimate_mpi3snp_throughput`) used for
the Table III comparison.

Rank execution goes through :mod:`repro.distributed`: with
``processes=True`` every rank is a real OS process (one shard per rank,
static partition, deterministic rank-0 merge — the honest analogue of
MPI3SNP's ``MPI_Comm_size`` decomposition); the default ``processes=False``
runs the same static per-rank spans on host threads through the engine,
which is cheaper to launch and bit-identical in its results.  Broadcast and
gather traffic plus the static-partition load imbalance are accounted by
:class:`repro.distributed.cluster.RankAccounting` in both modes (the
removed ``repro.parallel.SimulatedCluster`` is no longer involved).
"""

from __future__ import annotations

from typing import Union


from repro.core.approaches._kernels import check_order
from repro.core.approaches.cpu_nophen import CpuNoPhenotypeApproach
from repro.core.combinations import combination_count, generate_combinations
from repro.core.result import ApproachStats, DetectionResult
from repro.core.scoring import ObjectiveFunction, get_objective
from repro.datasets.dataset import GenotypeDataset
from repro.devices.specs import CpuSpec, GpuSpec
from repro.engine import (
    DenseRangeSource,
    EngineDevice,
    ExecutionPlan,
    HeterogeneousExecutor,
    StaticPolicy,
)
from repro.distributed import RankAccounting, ShardPlanner, run_distributed
from repro.perfmodel.cpu_model import estimate_cpu
from repro.perfmodel.gpu_model import estimate_gpu

__all__ = ["Mpi3snpBaseline", "estimate_mpi3snp_throughput"]

#: Tiling-free GPU kernels lose cache reuse as the SNP count grows; the
#: paper's measurements show MPI3SNP falling from ~0.65x of this work's
#: throughput at 10000 SNPs to ~0.27x at 40000 SNPs on the same GPUs.  The
#: degradation is modelled as a slowdown growing linearly with the SNP count.
GPU_SLOWDOWN_PER_SNP: float = 1.0 / 15000.0
GPU_BASE_SLOWDOWN: float = 0.85

#: MPI3SNP's CPU path also pays a static-partition load imbalance.
CPU_IMBALANCE: float = 1.05


class Mpi3snpBaseline:
    """Functional MPI3SNP-style detector over statically partitioned ranks.

    Parameters
    ----------
    n_ranks:
        Number of MPI-style ranks.
    objective:
        Objective-function name or instance.
    top_k:
        Number of best interactions gathered on rank 0.
    order:
        Interaction order ``k`` (2–5); MPI3SNP itself is third-order, the
        second-order setting mirrors the pairwise tools it descends from.
    processes:
        ``True`` executes every rank as a real OS process through
        :func:`repro.distributed.run_distributed` (one shard per rank);
        ``False`` (default) runs the same static rank spans on host
        threads — results are bit-identical, process startup is saved.
    """

    name = "mpi3snp"

    def __init__(
        self,
        n_ranks: int = 2,
        objective: str | ObjectiveFunction = "k2",
        top_k: int = 10,
        chunk_size: int = 2048,
        order: int = 3,
        processes: bool = False,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be positive")
        self.n_ranks = n_ranks
        self.objective = get_objective(objective)
        self.top_k = top_k
        self.chunk_size = chunk_size
        self.order = check_order(order)
        self.processes = processes
        # The rank-local kernel: split dataset, no blocking, no SIMD.
        self.approach = CpuNoPhenotypeApproach()

    def detect(self, dataset: GenotypeDataset) -> DetectionResult:
        """Run the statically partitioned exhaustive search.

        Every rank sweeps its contiguous span of the combination space; the
        partial top-k lists are merged rank-0-style under the engine's
        deterministic ``(score, combination-rank)`` order.  The
        :class:`~repro.distributed.cluster.RankAccounting` tracks the
        dataset broadcast, the result gather and the load imbalance the
        static decomposition incurs.
        """
        total = combination_count(dataset.n_snps, self.order)
        accounting = RankAccounting(self.n_ranks)
        accounting.scatter_work(total)
        encoded = self.approach.prepare(dataset)
        accounting.broadcast_dataset(encoded.nbytes())

        if self.processes:
            result, per_rank_items = self._detect_processes(dataset)
        else:
            result, per_rank_items = self._detect_threads(dataset, encoded, total)

        for rank in accounting.ranks:
            rank.items_processed = per_rank_items.get(rank.rank, 0)
        accounting.account_gather(bytes_per_partial=self.top_k * 32)

        extra = dict(result.stats.extra)
        extra.update(
            {
                "order": self.order,
                "partitioning": "static",
                "schedule": "static",
                "load_imbalance": accounting.load_imbalance(),
                "ranks": self.n_ranks,
                "rank_mode": "processes" if self.processes else "threads",
            }
        )
        stats = ApproachStats(
            approach=self.name,
            n_combinations=total,
            n_samples=dataset.n_samples,
            elapsed_seconds=result.stats.elapsed_seconds,
            op_counts=result.stats.op_counts,
            bytes_loaded=result.stats.bytes_loaded,
            bytes_stored=result.stats.bytes_stored,
            n_workers=self.n_ranks,
            extra=extra,
        )
        if not result.top:
            raise RuntimeError("MPI3SNP baseline produced no interactions")
        return DetectionResult(best=result.top[0], top=list(result.top), stats=stats)

    def _detect_processes(self, dataset: GenotypeDataset):
        """Real ranks: one OS process per rank, one static shard per rank."""
        from repro.core.detector import DetectorConfig

        config = DetectorConfig(
            approach=self.approach.name,
            objective=self.objective,
            order=self.order,
            n_workers=1,
            chunk_size=self.chunk_size,
            top_k=self.top_k,
            schedule="static",
        )
        outcome = run_distributed(
            dataset,
            DenseRangeSource(dataset.n_snps, self.order),
            config=config,
            workers=self.n_ranks,
            planner=ShardPlanner(n_shards=self.n_ranks, strategy="static"),
        )
        # The planner's n_ranks-way static cut produces exactly the rank
        # spans of RankAccounting.scatter_work, so shard id == rank id.
        return outcome.result, dict(outcome.shard_items)

    def _detect_threads(self, dataset: GenotypeDataset, encoded, total: int):
        """Thread-backed ranks: the same static spans on engine workers."""
        snp_names = list(dataset.snp_names)

        # One kernel instance per rank (operation counters are not shared);
        # rank 0 reuses the baseline's own approach object.
        approaches = [self.approach] + [
            CpuNoPhenotypeApproach() for _ in range(self.n_ranks - 1)
        ]

        plan = ExecutionPlan(
            total=total,
            devices=[
                EngineDevice(
                    kind="cpu", n_workers=self.n_ranks, chunk_size=self.chunk_size
                )
            ],
            policy=StaticPolicy(),
            top_k=self.top_k,
        )

        def evaluate(worker, start: int, stop: int):
            combos = generate_combinations(
                dataset.n_snps, self.order, start_rank=start, count=stop - start
            )
            tables = worker.state.build_tables(encoded, combos)
            return combos, self.objective.score(tables)

        run = HeterogeneousExecutor(plan).run(
            lambda device, worker_id: approaches[worker_id],
            evaluate,
            snp_names=snp_names,
        )

        # Static partitioning assigns worker i exactly rank i's span.
        per_rank_items = {worker.worker_id: worker.items for worker in run.workers}

        for extra_approach in approaches[1:]:
            self.approach.counter.merge(extra_approach.counter)

        stats = ApproachStats(
            approach=self.name,
            n_combinations=total,
            n_samples=dataset.n_samples,
            elapsed_seconds=run.elapsed_seconds,
            op_counts=self.approach.op_counts(),
            bytes_loaded=self.approach.counter.bytes_loaded,
            bytes_stored=self.approach.counter.bytes_stored,
            n_workers=self.n_ranks,
            extra={"devices": run.device_stats},
        )
        if not run.top:
            raise RuntimeError("MPI3SNP baseline produced no interactions")
        result = DetectionResult(best=run.top[0], top=list(run.top), stats=stats)
        return result, per_rank_items


def estimate_mpi3snp_throughput(
    spec: Union[CpuSpec, GpuSpec],
    n_snps: int,
    n_samples: int,
    order: int = 3,
) -> float:
    """Analytical MPI3SNP throughput (elements/s) on a catalogued device.

    * CPU: the scalar phenotype-split kernel (no blocking, 64-bit scalar
      POPCNT) with a static-partition imbalance penalty — equivalent to this
      work's approach V2 executed without vectorisation.
    * GPU: the coalesced-but-untiled kernel (this work's V3) degraded by a
      slowdown that grows with the SNP count (loss of cache reuse), matching
      the measured gap widening from ~1.5x at 10000 SNPs to ~3.5x at 40000.
    """
    if isinstance(spec, CpuSpec):
        estimate = estimate_cpu(
            spec, approach_version=2, n_snps=n_snps, n_samples=n_samples, order=order
        )
        return estimate.elements_per_second_total / CPU_IMBALANCE
    estimate = estimate_gpu(
        spec, approach_version=3, n_snps=n_snps, n_samples=n_samples, order=order
    )
    slowdown = GPU_BASE_SLOWDOWN + n_snps * GPU_SLOWDOWN_PER_SNP
    return estimate.elements_per_second_total / max(1.0, slowdown)
