"""MPI3SNP-style baseline.

MPI3SNP (Ponte-Fernández et al., IJHPCA 2020) is the reference third-order
exhaustive detector the paper measures against.  Algorithmically it shares
the binarised representation and the AND/POPCNT frequency-table construction
but differs from the paper's best approach in the points that matter for
performance:

* the combination space is **statically partitioned** across MPI ranks
  (one process per core or per GPU) instead of dynamically scheduled;
* the CPU kernel uses **64-bit scalar population counts** — no cache
  blocking and no SIMD;
* the GPU kernel is not layout-tiled, so its effective cache reuse degrades
  as the SNP count grows.

The functional re-implementation here (:class:`Mpi3snpBaseline`) runs the
split kernel over a simulated cluster with static partitioning and produces
results identical to the optimised approaches (same tables, same best
triplet) — the difference is captured by the execution statistics and by the
analytical throughput model (:func:`estimate_mpi3snp_throughput`) used for
the Table III comparison.
"""

from __future__ import annotations

import time
from typing import List, Union

import numpy as np

from repro.core.approaches.cpu_nophen import CpuNoPhenotypeApproach
from repro.core.combinations import combination_count, generate_combinations
from repro.core.result import ApproachStats, DetectionResult, Interaction
from repro.core.scoring import ObjectiveFunction, get_objective
from repro.datasets.dataset import GenotypeDataset
from repro.devices.specs import CpuSpec, GpuSpec
from repro.parallel.cluster import SimulatedCluster
from repro.perfmodel.cpu_model import estimate_cpu
from repro.perfmodel.gpu_model import estimate_gpu

__all__ = ["Mpi3snpBaseline", "estimate_mpi3snp_throughput"]

#: Tiling-free GPU kernels lose cache reuse as the SNP count grows; the
#: paper's measurements show MPI3SNP falling from ~0.65x of this work's
#: throughput at 10000 SNPs to ~0.27x at 40000 SNPs on the same GPUs.  The
#: degradation is modelled as a slowdown growing linearly with the SNP count.
GPU_SLOWDOWN_PER_SNP: float = 1.0 / 15000.0
GPU_BASE_SLOWDOWN: float = 0.85

#: MPI3SNP's CPU path also pays a static-partition load imbalance.
CPU_IMBALANCE: float = 1.05


class Mpi3snpBaseline:
    """Functional MPI3SNP-style detector over a simulated cluster.

    Parameters
    ----------
    n_ranks:
        Number of simulated MPI ranks.
    objective:
        Objective-function name or instance.
    top_k:
        Number of best interactions gathered on rank 0.
    """

    name = "mpi3snp"

    def __init__(
        self,
        n_ranks: int = 2,
        objective: str | ObjectiveFunction = "k2",
        top_k: int = 10,
        chunk_size: int = 2048,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be positive")
        self.n_ranks = n_ranks
        self.objective = get_objective(objective)
        self.top_k = top_k
        self.chunk_size = chunk_size
        # The rank-local kernel: split dataset, no blocking, no SIMD.
        self.approach = CpuNoPhenotypeApproach()

    def detect(self, dataset: GenotypeDataset) -> DetectionResult:
        """Run the statically partitioned exhaustive search."""
        started = time.perf_counter()
        total = combination_count(dataset.n_snps, 3)
        cluster: SimulatedCluster[List[Interaction]] = SimulatedCluster(self.n_ranks)
        cluster.scatter_work(total)
        encoded = self.approach.prepare(dataset)
        cluster.broadcast_dataset(encoded.nbytes())
        snp_names = list(dataset.snp_names)

        def rank_fn(rank) -> List[Interaction]:
            best: List[Interaction] = []
            start, stop = rank.work_range
            cursor = start
            while cursor < stop:
                count = min(self.chunk_size, stop - cursor)
                combos = generate_combinations(
                    dataset.n_snps, 3, start_rank=cursor, count=count
                )
                tables = self.approach.build_tables(encoded, combos)
                scores = self.objective.score(tables)
                order = np.argsort(scores, kind="stable")[: self.top_k]
                best.extend(
                    Interaction(
                        snps=tuple(int(s) for s in combos[i]),
                        score=float(scores[i]),
                        snp_names=tuple(snp_names[s] for s in combos[i]),
                    )
                    for i in order
                )
                best = sorted(best)[: self.top_k]
                rank.items_processed += count
                cursor += count
            return best

        partials = cluster.run(rank_fn)
        gathered = cluster.gather(partials, bytes_per_partial=self.top_k * 32)
        merged = sorted(it for part in gathered for it in part)[: self.top_k]
        elapsed = time.perf_counter() - started

        stats = ApproachStats(
            approach=self.name,
            n_combinations=total,
            n_samples=dataset.n_samples,
            elapsed_seconds=elapsed,
            op_counts=self.approach.op_counts(),
            bytes_loaded=self.approach.counter.bytes_loaded,
            bytes_stored=self.approach.counter.bytes_stored,
            n_workers=self.n_ranks,
            extra={
                "partitioning": "static",
                "load_imbalance": cluster.load_imbalance(),
                "ranks": self.n_ranks,
            },
        )
        if not merged:
            raise RuntimeError("MPI3SNP baseline produced no interactions")
        return DetectionResult(best=merged[0], top=merged, stats=stats)


def estimate_mpi3snp_throughput(
    spec: Union[CpuSpec, GpuSpec],
    n_snps: int,
    n_samples: int,
) -> float:
    """Analytical MPI3SNP throughput (elements/s) on a catalogued device.

    * CPU: the scalar phenotype-split kernel (no blocking, 64-bit scalar
      POPCNT) with a static-partition imbalance penalty — equivalent to this
      work's approach V2 executed without vectorisation.
    * GPU: the coalesced-but-untiled kernel (this work's V3) degraded by a
      slowdown that grows with the SNP count (loss of cache reuse), matching
      the measured gap widening from ~1.5x at 10000 SNPs to ~3.5x at 40000.
    """
    if isinstance(spec, CpuSpec):
        estimate = estimate_cpu(spec, approach_version=2, n_snps=n_snps, n_samples=n_samples)
        return estimate.elements_per_second_total / CPU_IMBALANCE
    estimate = estimate_gpu(spec, approach_version=3, n_snps=n_snps, n_samples=n_samples)
    slowdown = GPU_BASE_SLOWDOWN + n_snps * GPU_SLOWDOWN_PER_SNP
    return estimate.elements_per_second_total / max(1.0, slowdown)
