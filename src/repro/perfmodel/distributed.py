"""Analytical scaling model for sharded multi-process runs.

A distributed sweep pays three costs on top of the per-process compute:

* the **broadcast** of the (encoded) dataset to every worker process — at
  pool start each spawn-context worker receives its own copy;
* the **gather** of per-shard partial top-k results back to the
  coordinator (tiny: ``top_k`` rows per shard);
* **imbalance**: with pull-based shard scheduling the run ends when the
  last worker drains its final shard, so the makespan is the greedy
  list-scheduling makespan of the shard sizes rather than ``total / W``.

:func:`estimate_distributed_run` combines these with the per-process
device throughput of the existing CARM models
(:func:`repro.perfmodel.efficiency.device_throughput`) into a modelled
wall-clock, throughput and parallel efficiency per worker count — the
reference curve ``benchmarks/bench_distributed.py`` plots measured process
scaling against.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.engine.plan import EngineDevice
from repro.perfmodel.efficiency import (
    HETEROGENEOUS_EFFICIENCY,
    device_throughput,
)

__all__ = [
    "DEFAULT_LINK_BYTES_PER_SECOND",
    "DEFAULT_SPAWN_SECONDS_PER_WORKER",
    "DEFAULT_ATTACH_SECONDS",
    "estimate_broadcast_seconds",
    "estimate_gather_seconds",
    "estimate_spawn_seconds",
    "estimate_recovery_seconds",
    "shard_imbalance",
    "estimate_distributed_run",
]

#: Modelled coordinator↔worker link bandwidth.  Worker processes on one
#: host receive their payload through pipes backed by memory copies; 2 GB/s
#: is a conservative figure for pickled-ndarray transfer on commodity DDR4
#: (and close to a 25 GbE fabric if ranks were spread across nodes).
DEFAULT_LINK_BYTES_PER_SECOND: float = 2e9

#: Modelled cost of starting one spawn-context worker process: fork+exec of
#: a fresh interpreter plus importing numpy and the package — ~0.3-0.5 s on
#: commodity hardware.  Paid per run with ``pool="fresh"``; a warm fleet
#: (``pool="keep"``) amortises it across every later run, which the model
#: prices as zero marginal spawn cost.
DEFAULT_SPAWN_SECONDS_PER_WORKER: float = 0.35

#: Modelled cost of a worker attaching one shared-memory segment: an
#: ``shm_open`` + ``mmap`` + manifest parse — milliseconds, independent of
#: the segment size (the pages are mapped, not copied).
DEFAULT_ATTACH_SECONDS: float = 0.002


def estimate_broadcast_seconds(
    dataset_bytes: int,
    n_workers: int,
    link_bytes_per_second: float = DEFAULT_LINK_BYTES_PER_SECOND,
) -> float:
    """Modelled cost of shipping the dataset to every worker process.

    The coordinator serialises one copy per worker (spawn-context pools
    cannot share pages), so the cost grows linearly with the worker count.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    if link_bytes_per_second <= 0:
        raise ValueError("link bandwidth must be positive")
    return n_workers * max(0, int(dataset_bytes)) / link_bytes_per_second


def estimate_gather_seconds(
    n_shards: int,
    top_k: int,
    n_workers: int,
    bytes_per_row: int = 64,
    link_bytes_per_second: float = DEFAULT_LINK_BYTES_PER_SECOND,
) -> float:
    """Modelled cost of streaming per-shard partial top-k results back.

    Every shard returns ``top_k`` rows of roughly ``bytes_per_row`` bytes
    (score + SNP tuple + names); the gather is serialised on the
    coordinator regardless of the worker count.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    return max(0, n_shards) * max(1, top_k) * bytes_per_row / link_bytes_per_second


def estimate_spawn_seconds(
    n_workers: int,
    pool: str = "fresh",
    spawn_seconds_per_worker: float = DEFAULT_SPAWN_SECONDS_PER_WORKER,
) -> float:
    """Modelled process-startup cost of one run.

    ``pool="fresh"`` pays one interpreter spawn per worker (spawns proceed
    concurrently but contend for the same cores and page cache, so the cost
    is modelled linear, matching measurements on 2-8 worker pools);
    ``pool="keep"`` runs on the process-wide warm fleet whose spawn was paid
    by an earlier run — zero marginal cost.  One worker always runs inline
    (no pool at all).
    """
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    if pool not in ("keep", "fresh"):
        raise ValueError(f"pool must be 'keep' or 'fresh', got {pool!r}")
    if n_workers == 1 or pool == "keep":
        return 0.0
    return n_workers * max(0.0, spawn_seconds_per_worker)


def estimate_recovery_seconds(
    n_failures: int,
    shard_seconds: float,
    n_workers: int,
    *,
    backoff_seconds: float = 0.05,
    backoff_factor: float = 2.0,
    max_backoff_seconds: float = 2.0,
    pool_break_every: int = 1,
    spawn_seconds_per_worker: float = DEFAULT_SPAWN_SECONDS_PER_WORKER,
) -> float:
    """Modelled wall-clock cost of recovering from ``n_failures`` crashes.

    Each failure re-executes its shard (one ``shard_seconds`` of lost
    compute), waits out the runner's exponential backoff (mirroring
    :class:`repro.distributed.resilience.RetryPolicy` — capped at
    ``max_backoff_seconds``), and, when the crash broke the process pool
    (every ``pool_break_every``-th failure; SIGKILL always does, an
    in-worker exception never does), pays one pool respawn of
    ``n_workers`` interpreter starts.
    """
    if n_failures < 0:
        raise ValueError("n_failures must be non-negative")
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    total = 0.0
    for attempt in range(n_failures):
        total += max(0.0, shard_seconds)
        total += min(
            max_backoff_seconds, backoff_seconds * backoff_factor**attempt
        )
        if pool_break_every > 0 and (attempt + 1) % pool_break_every == 0:
            total += n_workers * max(0.0, spawn_seconds_per_worker)
    return total


def shard_imbalance(shard_sizes: Sequence[int], n_workers: int) -> float:
    """Makespan inflation of pull-based shard scheduling (``>= 1.0``).

    Greedy list scheduling (each idle worker claims the next shard, in plan
    order — exactly what the process pool does) is simulated over the shard
    sizes; the result is the makespan divided by the perfectly balanced
    ``total / n_workers``.  Equal-size shards with ``n_shards %% n_workers
    == 0`` give 1.0; a single shard gives ``n_workers``.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    sizes = [int(s) for s in shard_sizes if int(s) > 0]
    total = sum(sizes)
    if total == 0:
        return 1.0
    loads = [0] * n_workers
    for size in sizes:
        loads[loads.index(min(loads))] += size
    return max(loads) / (total / n_workers)


def estimate_distributed_run(
    n_candidates: int,
    n_samples: int,
    n_snps: int,
    *,
    order: int = 3,
    n_workers: int = 1,
    devices: Sequence[EngineDevice] | None = None,
    approach_version: int = 4,
    dataset_bytes: int | None = None,
    n_shards: int = 32,
    shard_sizes: Sequence[int] | None = None,
    top_k: int = 10,
    link_bytes_per_second: float = DEFAULT_LINK_BYTES_PER_SECOND,
    pool: str = "keep",
    shm: bool = False,
    spawn_seconds_per_worker: float = DEFAULT_SPAWN_SECONDS_PER_WORKER,
    attach_seconds: float = DEFAULT_ATTACH_SECONDS,
    n_failures: int = 0,
) -> Dict[str, object]:
    """Modelled wall-clock and scaling of a sharded multi-process sweep.

    Parameters
    ----------
    n_candidates / n_samples / n_snps / order:
        Shape of the sweep (``elements = n_candidates * n_samples``, the
        paper's throughput unit).
    n_workers:
        Worker process count.
    devices:
        Engine device lanes *per worker process* (default: one catalogued
        CPU lane); heterogeneous lanes aggregate like the in-process
        engine, degraded by the §V-D coordination efficiency.
    dataset_bytes:
        Broadcast payload size; defaults to the raw genotype+phenotype
        matrix (``n_snps * n_samples + n_samples`` bytes).
    n_shards / shard_sizes:
        The shard plan: explicit sizes win, otherwise ``n_shards``
        near-equal shards (the planner's static default).
    pool / shm:
        The data-plane configuration (mirrors ``run_distributed``):
        ``pool="fresh"`` adds :func:`estimate_spawn_seconds` (per-run
        process startup), ``pool="keep"`` (default) models the warm fleet
        — zero marginal spawn cost.  ``shm=True`` replaces the per-worker
        broadcast with *one* shared-memory publish copy plus a per-worker
        ``attach_seconds`` map — the term that turns the linear-in-workers
        broadcast cost into a constant.
    n_failures:
        Expected worker crashes over the run; each adds one shard
        re-execution, the retry backoff and a pool respawn
        (:func:`estimate_recovery_seconds`).  The fault-free model is
        ``n_failures=0`` (the default): detection is passive (the pool
        break surfaces the failure), so resilience costs nothing until a
        fault actually happens.

    Returns
    -------
    dict
        JSON-ready document with the per-worker throughput, the
        communication and imbalance components, the modelled wall-clock and
        effective elements/s, and ``speedup`` / ``efficiency`` relative to
        one worker of the same configuration.
    """
    if n_candidates < 0:
        raise ValueError("n_candidates must be non-negative")
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    lanes = list(devices) if devices else [EngineDevice(kind="cpu")]
    throughputs = [
        device_throughput(
            lane.spec(),
            n_snps=max(n_snps, order),
            n_samples=n_samples,
            approach_version=approach_version,
            order=order,
        )
        for lane in lanes
    ]
    per_worker = sum(throughputs)
    if len(throughputs) > 1:
        per_worker = max(per_worker * HETEROGENEOUS_EFFICIENCY, max(throughputs))

    if dataset_bytes is None:
        dataset_bytes = n_snps * n_samples + n_samples
    sizes: List[int]
    if shard_sizes is not None:
        sizes = [int(s) for s in shard_sizes]
    else:
        count = max(1, min(n_shards, n_candidates or 1))
        base, extra = divmod(n_candidates, count)
        sizes = [base + (1 if i < extra else 0) for i in range(count)]

    elements = n_candidates * n_samples
    imbalance = shard_imbalance(sizes, n_workers)
    compute_seconds = (
        elements / (per_worker * n_workers) * imbalance if elements else 0.0
    )
    if shm and n_workers > 1:
        # One publish copy into shared memory, then every worker maps the
        # pages — transfer no longer scales with the worker count.
        broadcast_seconds = estimate_broadcast_seconds(
            dataset_bytes, 1, link_bytes_per_second
        )
        attach_total = n_workers * max(0.0, attach_seconds)
    else:
        broadcast_seconds = estimate_broadcast_seconds(
            dataset_bytes, n_workers, link_bytes_per_second
        )
        attach_total = 0.0
    gather_seconds = estimate_gather_seconds(
        len(sizes), top_k, n_workers, link_bytes_per_second=link_bytes_per_second
    )
    spawn_seconds = estimate_spawn_seconds(
        n_workers, pool, spawn_seconds_per_worker
    )
    shard_seconds = (
        max(sizes) * n_samples / per_worker if sizes and elements else 0.0
    )
    recovery_seconds = estimate_recovery_seconds(
        n_failures,
        shard_seconds,
        n_workers,
        spawn_seconds_per_worker=spawn_seconds_per_worker,
    )
    total_seconds = (
        compute_seconds
        + broadcast_seconds
        + attach_total
        + gather_seconds
        + spawn_seconds
        + recovery_seconds
    )

    ideal_single = elements / per_worker if elements else 0.0
    single_seconds = (
        ideal_single
        + estimate_broadcast_seconds(dataset_bytes, 1, link_bytes_per_second)
        + gather_seconds
    )
    speedup = single_seconds / total_seconds if total_seconds > 0 else 1.0
    return {
        "n_workers": n_workers,
        "n_shards": len(sizes),
        "per_worker_elements_per_second": per_worker,
        "imbalance": imbalance,
        "pool": pool,
        "shm": bool(shm and n_workers > 1),
        "compute_seconds": compute_seconds,
        "broadcast_seconds": broadcast_seconds,
        "attach_seconds": attach_total,
        "spawn_seconds": spawn_seconds,
        "gather_seconds": gather_seconds,
        "n_failures": int(n_failures),
        "recovery_seconds": recovery_seconds,
        "estimated_seconds": total_seconds,
        "elements_per_second": (
            elements / total_seconds if total_seconds > 0 else float("inf")
        ),
        "speedup_vs_single": speedup,
        "parallel_efficiency": speedup / n_workers,
    }
