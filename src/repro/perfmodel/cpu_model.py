"""Analytical CPU performance model.

The model translates the per-combination instruction mix of an approach into
issue cycles on a given CPU and ISA, following the structure the paper uses
to explain its CPU results (§V-B):

* the vectorised kernel spends, per vector register of packed words and per
  combination, 6 vector loads, 3 emulated NORs (OR + XOR), 54 vector ANDs
  and one population-count sequence per genotype cell;
* with **vector POPCNT** (Ice Lake SP) that sequence is a ``VPOPCNT`` plus a
  reduce-add; without it every 64-bit lane must be extracted (once on AVX,
  twice on Skylake-SP AVX-512) and counted with the scalar ``POPCNT`` — the
  extract/scalar path dominates and makes performance largely independent of
  the vector width, which is exactly what Figure 3b shows;
* the non-blocked approaches additionally stall on loads served by L3/DRAM,
  and every combination pays a fixed overhead for the score computation
  (~4% of the runtime according to Intel Advisor, §V-A);
* Skylake-SP reduces its clock when executing AVX-512 instructions.

A single calibration constant (``CALIBRATION``) scales the absolute
throughput; every *relative* quantity in Figures 3a–3c and Table III follows
from the mix and the device parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.bitops.packing import WORD_BITS
from repro.bitops.simd import ISA_PRESETS, VectorISA, isa_for_name
from repro.devices.specs import CpuSpec
from repro.perfmodel.counters import approach_counts

__all__ = [
    "CpuPerformanceEstimate",
    "estimate_cpu",
    "vector_cycles_per_register",
    "scalar_cycles_per_word",
    "CALIBRATION",
    "SLOT_COSTS",
]

#: Issue-slot cost of each vector-instruction mnemonic (micro-ops on the
#: relevant ports).  The reduce-add of a vector register is a short sequence
#: rather than a single instruction.
SLOT_COSTS: Dict[str, float] = {
    "VLOAD": 1.0,
    "VAND": 1.0,
    "VOR": 1.0,
    "VXOR": 1.0,
    "VPOPCNT": 1.0,
    "VREDUCE_ADD": 3.0,
    "EXTRACT": 1.0,
    "POPCNT": 1.0,
    "ADD": 1.0,
}

#: Global calibration of the absolute throughput scale (dimensionless).
CALIBRATION: float = 1.25

#: Fixed per-combination overhead (score computation, loop control) in cycles.
SCORE_OVERHEAD_CYCLES: float = 120.0

#: Dataset-size efficiency: throughput saturates as the SNP count grows
#: (threading and cache warm-up overheads amortise), modelled as
#: ``M / (M + M_HALF)``.
M_HALF: float = 800.0

#: Clock reduction while executing 512-bit instructions on Skylake-SP.
AVX512_FREQUENCY_SCALE_SKX: float = 0.85


def vector_cycles_per_register(
    isa: VectorISA, issue_width: float = 2.0, order: int = 3
) -> float:
    """Issue cycles to evaluate one combination over one vector register.

    Covers one phenotype class of a k-way combination: ``2k`` loads, ``k``
    NORs (2 instructions each), ``k - 1`` ANDs per genotype cell and the
    ISA-specific population-count sequence per cell (``3^k`` cells).  The
    paper's third-order kernel is the ``k = 3`` instance (6 loads, 3 NORs,
    54 ANDs, 27 popcount sequences).
    """
    cells = float(3**order)
    slots = 2.0 * order * SLOT_COSTS["VLOAD"]
    slots += float(order) * (SLOT_COSTS["VOR"] + SLOT_COSTS["VXOR"])
    slots += cells * (order - 1.0) * SLOT_COSTS["VAND"]
    popcost = isa.popcount_instruction_cost()
    slots += cells * sum(SLOT_COSTS[m] * c for m, c in popcost.items())
    return slots / issue_width


def scalar_cycles_per_word(
    version: int, issue_width: float = 2.0, order: int = 3
) -> float:
    """Issue cycles per packed word per combination for the scalar kernels.

    Version 1 is the naïve kernel (at order 3: 162 compute instructions +
    10 loads per word), versions 2 and 3 the phenotype-split kernel (57
    nominal instructions, 114 once the multi-input ANDs and NOR emulation
    are expanded, + 6 loads).  Both mixes scale with the ``3^k`` genotype
    cells of a k-way interaction.
    """
    cells = float(3**order)
    if version == 1:
        # loads, AND (k-1 combine + 2 masks), POPCNT, ADD
        slots = (3.0 * order + 1.0) + (order + 1.0) * cells + 2.0 * cells + 2.0 * cells
    elif version in (2, 3):
        # loads, NOR (x2 expansion), AND, POPCNT, ADD
        slots = 2.0 * order + 2.0 * order + (order - 1.0) * cells + cells + cells
    else:
        raise ValueError("scalar model covers versions 1-3 only")
    return slots / issue_width


@dataclass(frozen=True)
class CpuPerformanceEstimate:
    """Predicted CPU throughput for one (device, approach, ISA, dataset).

    All ``elements`` figures use the paper's unit: combinations x samples.
    """

    device: str
    approach_version: int
    isa: str
    n_snps: int
    n_samples: int
    cores: int
    frequency_ghz: float
    cycles_per_combination: float
    elements_per_cycle_per_core: float
    bound: str
    order: int = 3

    # -- the three normalisations of Figure 3 -------------------------------
    @property
    def elements_per_second_per_core(self) -> float:
        """Figure 3a: Giga (combinations x samples) / s / core * 1e9."""
        return self.elements_per_cycle_per_core * self.frequency_ghz * 1e9

    @property
    def elements_per_cycle_per_core_per_lane(self) -> float:
        """Figure 3c: per cycle per (core x vector width in 32-bit lanes)."""
        lanes = ISA_PRESETS[self.isa].lanes32
        return self.elements_per_cycle_per_core / lanes

    @property
    def elements_per_second_total(self) -> float:
        """Whole-device throughput in elements per second."""
        return self.elements_per_second_per_core * self.cores

    @property
    def giga_elements_per_second_per_core(self) -> float:
        """Figure 3a in the paper's printed unit (Giga elements / s / core)."""
        return self.elements_per_second_per_core / 1e9

    @property
    def giga_elements_per_second_total(self) -> float:
        """Whole-device throughput in Giga elements per second."""
        return self.elements_per_second_total / 1e9

    def time_seconds(self, n_combinations: int) -> float:
        """Wall-clock estimate for an exhaustive run of ``n_combinations``."""
        return n_combinations * self.n_samples / self.elements_per_second_total


def _effective_frequency(spec: CpuSpec, isa: VectorISA) -> float:
    """Clock frequency while running the kernel with the given ISA."""
    freq = spec.base_freq_ghz
    if (
        isa.width_bits == 512
        and not isa.has_vector_popcnt
        and spec.microarchitecture == "Skylake-SP"
    ):
        freq *= AVX512_FREQUENCY_SCALE_SKX
    return freq


def estimate_cpu(
    spec: CpuSpec,
    approach_version: int = 4,
    isa: VectorISA | str | None = None,
    n_snps: int = 8192,
    n_samples: int = 16384,
    calibration: float = CALIBRATION,
    order: int = 3,
) -> CpuPerformanceEstimate:
    """Estimate the throughput of one CPU approach on one device.

    Parameters
    ----------
    spec:
        Catalogued CPU (Table I).
    approach_version:
        1–4; version 4 uses the vector model, 1–3 the scalar model.
    isa:
        ISA preset for version 4 (defaults to the CPU's widest); pass
        ``spec.avx_vector_isa`` to reproduce the paper's "AVX" bars on
        AVX-512 machines.
    n_snps / n_samples:
        Dataset dimensions (throughput depends mildly on both).
    calibration:
        Absolute-scale constant; relative results are calibration-free.
    order:
        Interaction order ``k`` of the search; the per-combination
        instruction mix scales with the ``3^k`` genotype cells.
    """
    if approach_version not in (1, 2, 3, 4):
        raise ValueError("approach_version must be in 1..4")
    if isa is None:
        isa_obj = spec.vector_isa
    elif isinstance(isa, str):
        isa_obj = isa_for_name(isa)
    else:
        isa_obj = isa

    counts = approach_counts(approach_version, device="cpu", order=order)
    words_per_class = max(1, (n_samples // 2 + WORD_BITS - 1) // WORD_BITS)
    words_full = max(1, (n_samples + WORD_BITS - 1) // WORD_BITS)

    if approach_version == 4:
        lanes = isa_obj.lanes32
        registers_per_class = (words_per_class + lanes - 1) // lanes
        compute_cycles = 2.0 * registers_per_class * vector_cycles_per_register(
            isa_obj, spec.issue_width, order
        )
        effective_isa = isa_obj.name
    else:
        effective_isa = "scalar64"
        if approach_version == 1:
            compute_cycles = words_full * scalar_cycles_per_word(
                1, spec.scalar_issue_width, order
            )
        else:
            compute_cycles = 2.0 * words_per_class * scalar_cycles_per_word(
                approach_version, spec.scalar_issue_width, order
            )

    # Memory stalls for the approaches whose loads are served by L3/DRAM.
    bytes_per_combination = counts.bytes_per_element * n_samples
    stall_cycles = 0.0
    bound = "compute"
    if counts.serving_level in ("L3", "DRAM") and approach_version < 4:
        level = spec.cache("L3") if counts.serving_level == "L3" else None
        level_bw = level.bytes_per_cycle if level is not None else 4.0
        # Scalar streaming from a far level sustains roughly one load per
        # cycle per core; take the smaller of that and the level bandwidth.
        effective_bw = min(level_bw, spec.scalar_issue_width * 4.0)
        stall_cycles = bytes_per_combination / effective_bw
        if stall_cycles > compute_cycles:
            bound = "memory"

    cycles_per_combination = compute_cycles + stall_cycles + SCORE_OVERHEAD_CYCLES
    size_factor = n_snps / (n_snps + M_HALF)
    elements_per_cycle = (
        n_samples / cycles_per_combination * size_factor * calibration
    )

    freq = _effective_frequency(spec, isa_obj) if approach_version == 4 else spec.base_freq_ghz
    return CpuPerformanceEstimate(
        device=spec.key,
        approach_version=approach_version,
        isa=effective_isa if approach_version < 4 else isa_obj.name,
        n_snps=n_snps,
        n_samples=n_samples,
        cores=spec.cores,
        frequency_ghz=freq,
        cycles_per_combination=cycles_per_combination,
        elements_per_cycle_per_core=elements_per_cycle,
        bound=bound,
        order=order,
    )
