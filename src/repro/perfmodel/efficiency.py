"""Energy efficiency and heterogeneous (CPU+GPU) projections (§V-D).

The paper closes its evaluation with two derived analyses:

* **energy efficiency** — Giga (combinations x samples) per Joule, obtained
  by dividing the device throughput by its TDP.  The Intel Iris Xe MAX wins
  this metric (11.3 G elements/J at 25 W) even though the big NVIDIA/AMD
  parts win raw throughput, motivating the "personalised screening on a thin
  client" scenario.
* **heterogeneous CPU+GPU throughput** — the projection that a CPU
  contributes usefully only when its throughput is a sizeable fraction of the
  GPU's (Ice Lake SP + Titan Xp ≈ 3300 G elements/s).  Work is split
  proportionally to device throughput (the optimal static split for
  independent combinations), so the aggregate is simply the sum of the
  device throughputs, degraded by a small coordination overhead.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.devices.specs import CpuSpec, GpuSpec
from repro.perfmodel.cpu_model import estimate_cpu
from repro.perfmodel.gpu_model import estimate_gpu

__all__ = [
    "device_throughput",
    "calibrated_device_throughput",
    "energy_efficiency",
    "heterogeneous_throughput",
]

DeviceSpec = Union[CpuSpec, GpuSpec]

#: Fraction of the summed throughput retained by a CPU+GPU configuration
#: (host thread contention, transfer of combination blocks).
HETEROGENEOUS_EFFICIENCY: float = 0.97


def device_throughput(
    spec: DeviceSpec,
    n_snps: int = 8192,
    n_samples: int = 16384,
    approach_version: int = 4,
    order: int = 3,
) -> float:
    """Whole-device throughput (elements/s) using the best approach."""
    if isinstance(spec, CpuSpec):
        return estimate_cpu(
            spec, approach_version, n_snps=n_snps, n_samples=n_samples, order=order
        ).elements_per_second_total
    return estimate_gpu(
        spec, approach_version, n_snps=n_snps, n_samples=n_samples, order=order
    ).elements_per_second_total


def calibrated_device_throughput(
    spec: DeviceSpec,
    n_snps: int = 8192,
    n_samples: int = 16384,
    approach_version: int = 4,
    order: int = 3,
    *,
    backend: str | None = None,
    layout: str | None = None,
) -> tuple[float, str]:
    """Device throughput preferring a measured calibration record.

    Returns ``(elements_per_second, source)``: when the per-host
    calibration store holds a fingerprint-matched record for this lane
    (CPU lanes look up the executing backend, GPU lanes the ``cupy``
    backend — gpusim is modelled, never measured), the measured
    throughput is used and ``source`` is ``"measured"``; otherwise the
    analytical model prices the catalogued hardware and ``source`` is
    ``"model"``.
    """
    from repro.backends.calibrate import measured_throughput

    kind = "cpu" if isinstance(spec, CpuSpec) else "gpu"
    try:
        measured = measured_throughput(
            kind,
            backend if kind == "cpu" else None,
            order=order,
            layout=layout,
        )
    except ValueError:
        # An execution identity the registry cannot price (e.g. the
        # modelled "gpusim" twin reported for GPU-only plans).
        measured = None
    if measured is not None:
        return measured, "measured"
    return (
        device_throughput(spec, n_snps, n_samples, approach_version, order),
        "model",
    )


def energy_efficiency(
    spec: DeviceSpec,
    n_snps: int = 8192,
    n_samples: int = 16384,
    approach_version: int = 4,
    order: int = 3,
) -> float:
    """Energy efficiency in Giga elements per Joule (throughput / TDP)."""
    throughput = device_throughput(spec, n_snps, n_samples, approach_version, order)
    if spec.tdp_w <= 0:
        raise ValueError(f"{spec.key}: TDP must be positive")
    return throughput / spec.tdp_w / 1e9


def heterogeneous_throughput(
    devices: Iterable[DeviceSpec],
    n_snps: int = 8192,
    n_samples: int = 16384,
    efficiency: float = HETEROGENEOUS_EFFICIENCY,
    order: int = 3,
) -> float:
    """Aggregate throughput (elements/s) of a CPU+GPU (or multi-device) system.

    Combinations are independent, so the optimal static split assigns work
    proportionally to device throughput and the aggregate approaches the sum
    of the individual throughputs; ``efficiency`` models the residual
    coordination cost.  The result is never below the fastest single device —
    a scheduler can always leave a device idle.
    """
    individual = [device_throughput(d, n_snps, n_samples, order=order) for d in devices]
    if not individual:
        raise ValueError("heterogeneous_throughput needs at least one device")
    return max(sum(individual) * efficiency, max(individual))
