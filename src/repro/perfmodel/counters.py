"""Per-approach operation and traffic characterisation.

For every approach version this module derives, per *evaluated element*
(one combination x one sample, the paper's throughput unit):

* the number of integer operations executed (the CARM y-axis is GINTOPS),
* the number of bytes moved from memory (the CARM x-axis is intops/byte),
* and which memory level predominantly serves those bytes (the blocked and
  tiled approaches hit L1/L2; the naïve ones stream from L3/DRAM).

The counts use the same per-word instruction mixes as the functional kernels
(:mod:`repro.core.approaches._kernels`), so the analytical characterisation
and the measured counters agree by construction; tests assert this.

All figures here are per **paper word** — the 32-bit word
(:data:`~repro.bitops.packing.WORD_BITS`) the §IV accounting is expressed
in.  The kernels may execute in a wider machine-word layout
(:class:`~repro.bitops.packing.WordLayout`, ``uint64`` by default on
NumPy >= 2); they convert machine words to paper words at the charging
boundary, so every count that reaches this model is already in paper-word
units and the CARM placement is layout-independent.

The same boundary covers the fused build+score path: fusing the table
construction into the objective changes *where* real intermediate values
live (registers instead of a materialised table array), never the §IV
modelled work — exactly as cache blocking "does not affect the amount of
memory transfers and performed computations" (§IV-A).  The approach layer
charges the identical per-paper-word mixes whether a chunk was scored
through ``build_tables`` + ``objective.score`` or through the fused
``score_combinations`` capability, so op counts, modelled traffic and the
CARM placement are bit-identical with fusion on or off; tests assert this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.bitops.packing import WORD_BITS
from repro.core.approaches._kernels import (
    naive_ops_per_combo_word,
    split_ops_per_combo_word,
)

__all__ = ["ApproachCounts", "approach_counts", "CPU_SERVING_LEVEL", "GPU_SERVING_LEVEL"]

#: Memory level that predominantly serves each CPU approach's loads.
CPU_SERVING_LEVEL: Dict[int, str] = {1: "L3", 2: "L3", 3: "L2", 4: "L1"}

#: Memory level that predominantly serves each GPU approach's loads.
GPU_SERVING_LEVEL: Dict[int, str] = {1: "DRAM", 2: "DRAM", 3: "L3", 4: "SLM"}


@dataclass(frozen=True)
class ApproachCounts:
    """Operation/traffic characterisation of one approach on one dataset.

    Attributes
    ----------
    version:
        Approach version 1–4.
    ops_per_element:
        Integer operations per (combination x sample) element.
    bytes_per_element:
        Bytes loaded per element.
    serving_level:
        Cache/memory level that serves the loads (for roof selection).
    ops_per_combo_word / loads_per_combo_word:
        The underlying per-word mix (operations exclude the loads).
    """

    version: int
    ops_per_element: float
    bytes_per_element: float
    serving_level: str
    ops_per_combo_word: float
    loads_per_combo_word: float
    order: int = 3

    @property
    def arithmetic_intensity(self) -> float:
        """Integer operations per byte (CARM x-axis)."""
        return self.ops_per_element / self.bytes_per_element

    def total_ops(self, n_combinations: int, n_samples: int) -> float:
        """Total integer operations of an exhaustive run."""
        return self.ops_per_element * n_combinations * n_samples

    def total_bytes(self, n_combinations: int, n_samples: int) -> float:
        """Total bytes moved by an exhaustive run."""
        return self.bytes_per_element * n_combinations * n_samples


def _mix_totals(mix: Dict[str, float]) -> tuple[float, float]:
    """(compute ops, loads) per combination per word from a mnemonic mix."""
    loads = mix.get("LOAD", 0.0)
    # NOR is the semantic count; OR/XOR are its expansion — avoid counting
    # both (the paper counts NOR as a single instruction).
    ops = sum(v for k, v in mix.items() if k not in ("LOAD", "STORE", "OR", "XOR"))
    return ops, loads


def approach_counts(
    version: int, device: str = "cpu", order: int = 3
) -> ApproachCounts:
    """Characterise approach ``version`` (1–4) on ``device`` ("cpu" or "gpu").

    Versions 1 uses the naïve mix (3 planes + phenotype over all samples);
    versions 2–4 use the phenotype-split mix (per-class planes, genotype-2
    inferred).  Versions only differ in *where* their bytes come from — the
    key property the paper exploits: "cache blocking techniques do not affect
    the amount of memory transfers and performed computations" (§IV-A).

    ``order`` selects the interaction order ``k`` of the characterised
    search: compute grows with the ``3^k`` genotype cells while traffic
    grows only linearly in ``k``, so arithmetic intensity rises steeply
    with the order.
    """
    if version not in (1, 2, 3, 4):
        raise ValueError("approach version must be 1, 2, 3 or 4")
    if device not in ("cpu", "gpu"):
        raise ValueError("device must be 'cpu' or 'gpu'")

    if version == 1:
        ops_word, loads_word = _mix_totals(naive_ops_per_combo_word(order))
        # One word covers WORD_BITS samples of the full (unsplit) stream.
        ops_per_element = ops_word / WORD_BITS
        bytes_per_element = loads_word * 4.0 / WORD_BITS
    else:
        ops_word, loads_word = _mix_totals(split_ops_per_combo_word(order))
        # One word covers WORD_BITS samples of one phenotype class; summing
        # the two classes covers every sample exactly once, so the
        # per-element figures are identical to the single-class ones.
        ops_per_element = ops_word / WORD_BITS
        bytes_per_element = loads_word * 4.0 / WORD_BITS

    serving = (CPU_SERVING_LEVEL if device == "cpu" else GPU_SERVING_LEVEL)[version]
    return ApproachCounts(
        version=version,
        ops_per_element=ops_per_element,
        bytes_per_element=bytes_per_element,
        serving_level=serving,
        ops_per_combo_word=ops_word,
        loads_per_combo_word=loads_word,
        order=order,
    )
