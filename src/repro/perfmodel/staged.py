"""Analytical cost estimates for staged search plans.

A staged search replaces one dense ``nCr(M, k)`` sweep with a sequence of
engine runs over different candidate geometries (screen → expand → refine →
permutation).  Each stage has its own interaction order, candidate count and
effective SNP universe, so the per-stage cost must be estimated from the
stage's *own* shape — reusing the whole-dataset shape would misprice a
subset-restricted expand stage by orders of magnitude and skew the
CARM-ratio CPU/GPU split.

Two entry points:

* :func:`estimate_stage_seconds` — modelled wall-clock of one stage on a
  set of engine device lanes (the same catalogued throughput estimates the
  CARM-ratio policy splits by);
* :func:`estimate_staged_search` — end-to-end screen+expand projection
  against the exhaustive baseline, returning the modelled table counts and
  speedup for a retention budget (the screen-budget knob the pipeline
  exposes).
"""

from __future__ import annotations

from math import comb
from typing import Dict, List, Sequence

from repro.engine.plan import EngineDevice
from repro.perfmodel.efficiency import (
    HETEROGENEOUS_EFFICIENCY,
    device_throughput,
)

__all__ = ["estimate_stage_seconds", "estimate_staged_search"]


def estimate_stage_seconds(
    devices: Sequence[EngineDevice],
    n_candidates: int,
    n_samples: int,
    order: int,
    effective_snps: int,
    approach_version: int = 4,
) -> float:
    """Modelled wall-clock seconds of one pipeline stage.

    Parameters
    ----------
    devices:
        Engine device lanes of the stage's execution plan; each lane's
        catalogued hardware contributes its analytical throughput.
    n_candidates:
        Candidate combinations the stage evaluates.
    n_samples:
        Samples per combination.
    order:
        Interaction order of the stage's candidates.
    effective_snps:
        The stage's SNP-universe size (the retained subset for an expand
        stage) — the ``n_snps`` the analytic models see.
    approach_version:
        Optimisation level of the approaches driving the lanes (1–4).
    """
    if n_candidates < 0:
        raise ValueError("n_candidates must be non-negative")
    if not devices:
        raise ValueError("estimate_stage_seconds needs at least one device lane")
    throughputs = [
        device_throughput(
            lane.spec(),
            n_snps=max(effective_snps, order),
            n_samples=n_samples,
            approach_version=approach_version,
            order=order,
        )
        for lane in devices
    ]
    aggregate = sum(throughputs)
    if len(throughputs) > 1:
        aggregate = max(aggregate * HETEROGENEOUS_EFFICIENCY, max(throughputs))
    return n_candidates * n_samples / aggregate


def estimate_staged_search(
    n_snps: int,
    n_samples: int,
    keep_snps: int,
    *,
    screen_order: int = 2,
    expand_order: int = 3,
    devices: Sequence[EngineDevice] | None = None,
    approach_version: int = 4,
) -> Dict[str, object]:
    """Project a screen-then-expand plan against the exhaustive baseline.

    Returns a JSON-ready document with per-stage table counts and modelled
    seconds, the exhaustive ``nCr(n_snps, expand_order)`` cost, and the
    modelled speedup — the planning view of the retention-budget knob
    (``keep_snps``) before anything is executed.
    """
    if not 0 < keep_snps <= n_snps:
        raise ValueError(f"keep_snps must lie in (0, {n_snps}]")
    if keep_snps < expand_order:
        raise ValueError(
            f"keep_snps={keep_snps} cannot form order-{expand_order} combinations"
        )
    lanes = list(devices) if devices else [EngineDevice(kind="cpu")]
    screen_tables = comb(n_snps, screen_order)
    expand_tables = comb(keep_snps, expand_order)
    exhaustive_tables = comb(n_snps, expand_order)
    stages: List[Dict[str, object]] = [
        {
            "stage": "screen",
            "order": screen_order,
            "tables": screen_tables,
            "effective_snps": n_snps,
            "estimated_seconds": estimate_stage_seconds(
                lanes, screen_tables, n_samples, screen_order, n_snps,
                approach_version,
            ),
        },
        {
            "stage": "expand",
            "order": expand_order,
            "tables": expand_tables,
            "effective_snps": keep_snps,
            "estimated_seconds": estimate_stage_seconds(
                lanes, expand_tables, n_samples, expand_order, keep_snps,
                approach_version,
            ),
        },
    ]
    staged_seconds = sum(s["estimated_seconds"] for s in stages)
    exhaustive_seconds = estimate_stage_seconds(
        lanes, exhaustive_tables, n_samples, expand_order, n_snps, approach_version
    )
    return {
        "n_snps": n_snps,
        "n_samples": n_samples,
        "keep_snps": keep_snps,
        "stages": stages,
        "staged_seconds": staged_seconds,
        "exhaustive_tables": exhaustive_tables,
        "exhaustive_seconds": exhaustive_seconds,
        "expand_fraction": expand_tables / exhaustive_tables,
        "modelled_speedup": (
            exhaustive_seconds / staged_seconds if staged_seconds > 0 else float("inf")
        ),
    }
