"""Analytical GPU performance model.

Throughput of the GPU kernels is bounded by three resources per compute unit
(§V-C / §V-D):

* the **POPCNT issue rate** — Table II's "POPCNT per CU per cycle", the
  dominant limit of the best (tiled, coalesced) kernel: one population count
  per genotype cell per packed word;
* the **generic integer issue rate** (ANDs, NOR emulation, address math);
* the **DRAM bandwidth**, scaled by the coalescing factor of the memory
  layout — this is what ruins the naïve and SNP-major variants (32
  transactions per warp load) and what the transposed/tiled layouts fix.

``elements/cycle/CU = WORD_BITS / max(popcnt_cycles, int_cycles, memory_cycles)``,
multiplied by an occupancy/efficiency factor that saturates with the dataset
size (larger combination spaces keep more warps in flight).  Per-second,
per-stream-core and whole-device numbers follow by multiplying with the
catalogued frequency, stream-core and CU counts — the three normalisations
of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.bitops.packing import WORD_BITS
from repro.devices.specs import GpuSpec
from repro.perfmodel.counters import approach_counts

__all__ = ["GpuPerformanceEstimate", "estimate_gpu", "GPU_EFFICIENCY", "COALESCING_FACTORS"]

#: Peak fraction of the POPCNT issue rate sustained by the tiled kernel.
GPU_EFFICIENCY: float = 0.88

#: Dataset-size half-saturation constant (SNPs) for the occupancy factor.
M_HALF_GPU: float = 500.0

#: Memory-transactions-per-warp-request factor of each approach version.
COALESCING_FACTORS: Dict[int, float] = {1: 32.0, 2: 32.0, 3: 1.0, 4: 1.0}

#: Data reuse factor of each version: how many combinations effectively share
#: one loaded word thanks to caching (the tiled layout keeps a block of
#: ``BS`` SNPs hot in the L1/L2 of the compute unit).  With a factor of 4 the
#: bandwidth-starved Intel Iris Xe MAX remains DRAM bound even for the tiled
#: kernel — reproducing its measured ~280 G elements/s — while the
#: high-bandwidth NVIDIA/AMD parts are POPCNT bound.
REUSE_FACTORS: Dict[int, float] = {1: 1.0, 2: 1.0, 3: 2.0, 4: 4.0}


@dataclass(frozen=True)
class GpuPerformanceEstimate:
    """Predicted GPU throughput for one (device, approach, dataset)."""

    device: str
    approach_version: int
    n_snps: int
    n_samples: int
    compute_units: int
    stream_cores: int
    frequency_ghz: float
    elements_per_cycle_per_cu: float
    bound: str
    order: int = 3

    # -- the three normalisations of Figure 4 --------------------------------
    @property
    def elements_per_second_per_cu(self) -> float:
        """Figure 4a: elements / s / compute unit."""
        return self.elements_per_cycle_per_cu * self.frequency_ghz * 1e9

    @property
    def elements_per_cycle_per_stream_core(self) -> float:
        """Figure 4c: elements / cycle / stream core."""
        cores_per_cu = self.stream_cores / self.compute_units
        return self.elements_per_cycle_per_cu / cores_per_cu

    @property
    def elements_per_second_total(self) -> float:
        """Whole-device throughput in elements per second."""
        return self.elements_per_second_per_cu * self.compute_units

    @property
    def giga_elements_per_second_per_cu(self) -> float:
        """Figure 4a in the paper's printed unit."""
        return self.elements_per_second_per_cu / 1e9

    @property
    def giga_elements_per_second_total(self) -> float:
        """Whole-device throughput in Giga elements per second."""
        return self.elements_per_second_total / 1e9

    def time_seconds(self, n_combinations: int) -> float:
        """Wall-clock estimate for an exhaustive run of ``n_combinations``."""
        return n_combinations * self.n_samples / self.elements_per_second_total


def estimate_gpu(
    spec: GpuSpec,
    approach_version: int = 4,
    n_snps: int = 8192,
    n_samples: int = 16384,
    efficiency: float = GPU_EFFICIENCY,
    order: int = 3,
) -> GpuPerformanceEstimate:
    """Estimate the throughput of one GPU approach on one device.

    Parameters
    ----------
    spec:
        Catalogued GPU (Table II).
    approach_version:
        1–4 (naïve, split, transposed/coalesced, tiled).
    n_snps / n_samples:
        Dataset dimensions.
    efficiency:
        Sustained fraction of the binding issue rate (calibration constant).
    order:
        Interaction order ``k``; compute scales with the ``3^k`` genotype
        cells while per-word traffic grows only linearly in ``k``, so
        higher orders push every kernel toward the compute roofs.
    """
    if approach_version not in (1, 2, 3, 4):
        raise ValueError("approach_version must be in 1..4")

    counts = approach_counts(approach_version, device="gpu", order=order)

    # Instruction counts per combination per packed word (one class for the
    # split kernels, the full stream for the naïve kernel; in both cases one
    # word covers WORD_BITS evaluated elements).  At order 3 these reduce to
    # the paper's per-word figures (54 POPCNT + 172 int for the naïve
    # kernel, 27 POPCNT + 93 int for the split kernels).
    cells = float(3**order)
    if approach_version == 1:
        popcnt_per_word = 2.0 * cells
        # AND, ADD, address/loads
        int_per_word = (order + 1.0) * cells + 2.0 * cells + (3.0 * order + 1.0)
    else:
        popcnt_per_word = cells
        # AND, ADD, NOR(x2), loads
        int_per_word = (order - 1.0) * cells + cells + 2.0 * order + 2.0 * order

    popcnt_cycles = popcnt_per_word / spec.popcnt_per_cu
    int_cycles = int_per_word / spec.int_ops_per_cu_per_cycle

    # Memory cycles per combination-word: bytes moved, inflated by the
    # coalescing factor, deflated by cross-thread reuse, divided by the
    # per-CU DRAM bandwidth.
    bytes_per_word = counts.loads_per_combo_word * 4.0
    dram_bytes_per_cycle_per_cu = spec.dram_bandwidth_gbps / (
        spec.boost_freq_ghz * spec.compute_units
    )
    memory_cycles = (
        bytes_per_word
        * COALESCING_FACTORS[approach_version]
        / REUSE_FACTORS[approach_version]
        / dram_bytes_per_cycle_per_cu
    )

    limiter = max(popcnt_cycles, int_cycles, memory_cycles)
    if limiter == memory_cycles and memory_cycles > popcnt_cycles:
        bound = "memory"
    elif limiter == popcnt_cycles:
        bound = "popcnt"
    else:
        bound = "integer"

    occupancy = n_snps / (n_snps + M_HALF_GPU)
    elements_per_cycle_per_cu = WORD_BITS / limiter * efficiency * occupancy

    return GpuPerformanceEstimate(
        device=spec.key,
        approach_version=approach_version,
        n_snps=n_snps,
        n_samples=n_samples,
        compute_units=spec.compute_units,
        stream_cores=spec.stream_cores,
        frequency_ghz=spec.boost_freq_ghz,
        elements_per_cycle_per_cu=elements_per_cycle_per_cu,
        bound=bound,
        order=order,
    )
