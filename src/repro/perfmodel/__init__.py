"""Analytical performance models of the CPU and GPU approaches.

The paper's evaluation (Figures 3 and 4, Table III) reports throughput in
"combinations x samples per second" normalised by cores, cycles, vector
width, compute units and stream cores across 13 devices.  Real hardware of
all three vendors is obviously not available to a Python reproduction, so
this package provides the analytical models that regenerate those figures
from two ingredients:

* the *instruction and traffic mix* of every approach, taken from the same
  per-word accounting the functional kernels charge to their operation
  counters (:mod:`repro.perfmodel.counters`), and
* the *architectural parameters* of the catalogued devices
  (:mod:`repro.devices`): vector width, vector-POPCNT support and extract
  costs for CPUs; per-CU POPCNT throughput, stream cores, frequency and
  memory bandwidth for GPUs.

The CPU model (:mod:`repro.perfmodel.cpu_model`) converts the vector
instruction mix into issue cycles per combination, adds memory-stall terms
for the non-blocked approaches and a fixed per-combination overhead for the
score computation.  The GPU model (:mod:`repro.perfmodel.gpu_model`) bounds
throughput by the per-CU POPCNT issue rate, the generic integer issue rate
and the (coalescing-dependent) DRAM traffic.  A single calibration constant
per model aligns the absolute scale; all *relative* results (who wins, by
what factor, where the cross-overs are) follow from the mixes and the device
parameters alone.
"""

from repro.perfmodel.counters import ApproachCounts, approach_counts
from repro.perfmodel.cpu_model import CpuPerformanceEstimate, estimate_cpu
from repro.perfmodel.gpu_model import GpuPerformanceEstimate, estimate_gpu
from repro.perfmodel.efficiency import energy_efficiency, heterogeneous_throughput
from repro.perfmodel.staged import estimate_stage_seconds, estimate_staged_search
from repro.perfmodel.distributed import (
    estimate_broadcast_seconds,
    estimate_distributed_run,
    estimate_gather_seconds,
    estimate_recovery_seconds,
    shard_imbalance,
)

__all__ = [
    "ApproachCounts",
    "approach_counts",
    "CpuPerformanceEstimate",
    "estimate_cpu",
    "GpuPerformanceEstimate",
    "estimate_gpu",
    "energy_efficiency",
    "heterogeneous_throughput",
    "estimate_stage_seconds",
    "estimate_staged_search",
    "estimate_broadcast_seconds",
    "estimate_gather_seconds",
    "estimate_recovery_seconds",
    "shard_imbalance",
    "estimate_distributed_run",
]
