"""Experiment harness: one module per table/figure of the paper.

Every module exposes a ``run_*`` function returning structured rows and a
``format_*`` function rendering them as text; the benchmark suite under
``benchmarks/`` wraps these with ``pytest-benchmark`` so that
``pytest benchmarks/ --benchmark-only`` both regenerates the paper's
tables/figures (printed to stdout / saved as CSV) and times the underlying
kernels.

========================  =====================================================
module                    reproduces
========================  =====================================================
``tables``                Table I (CPU devices), Table II (GPU devices)
``figure2``               Figure 2a/2b — CARM characterisation of V1–V4
``figure3``               Figure 3a/3b/3c — CPU throughput normalisations
``figure4``               Figure 4a/4b/4c — GPU throughput normalisations
``table3``                Table III — comparison with the state of the art
``comparison``            §V-D — CPU vs GPU, heterogeneous and energy analysis
``ablations``             design-choice ablations called out in DESIGN.md
========================  =====================================================
"""

from repro.experiments import ablations, comparison, figure2, figure3, figure4, table3, tables
from repro.experiments.report import format_table

__all__ = [
    "tables",
    "figure2",
    "figure3",
    "figure4",
    "table3",
    "comparison",
    "ablations",
    "format_table",
]
