"""Figure 3 — CPU evaluation across devices, ISAs and dataset sizes.

The paper reports, for 2048/4096/8192 SNPs and 16384 samples, the throughput
of the best CPU approach on the five CPUs of Table I under three
normalisations:

* Figure 3a — Giga (combinations x samples) per second per core,
* Figure 3b — elements per cycle per core,
* Figure 3c — elements per cycle per (core x vector width).

The AVX-512 machines (CI2, CI3) are additionally run with the 256-bit AVX
variant to isolate the effect of the wider registers and of the vector
POPCNT.  The rows below come from the analytical CPU model; the benchmark
harness pairs them with measured runs of the functional kernel at reduced
scale.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.devices.catalog import ALL_CPUS
from repro.devices.specs import CpuSpec
from repro.experiments.report import format_table
from repro.perfmodel.cpu_model import estimate_cpu

__all__ = ["run_figure3", "format_figure3", "SNP_SIZES", "N_SAMPLES"]

#: Dataset sizes evaluated by the paper.
SNP_SIZES: tuple[int, ...] = (2048, 4096, 8192)
N_SAMPLES: int = 16384


def _variants(spec: CpuSpec) -> List[tuple[str, object]]:
    """ISA variants run on one CPU: the native widest ISA, plus AVX on AVX-512 parts."""
    variants: List[tuple[str, object]] = [(spec.isa, spec.vector_isa)]
    if spec.vector_width_bits == 512:
        variants.append((f"{spec.avx_isa} (AVX run)", spec.avx_vector_isa))
    return variants


def run_figure3(
    snp_sizes: Sequence[int] = SNP_SIZES,
    n_samples: int = N_SAMPLES,
    cpus: Sequence[CpuSpec] | None = None,
) -> List[Dict[str, object]]:
    """Rows for Figures 3a/3b/3c (one row per device x ISA x dataset size)."""
    cpus = list(cpus) if cpus is not None else list(ALL_CPUS)
    rows: List[Dict[str, object]] = []
    for spec in cpus:
        for isa_label, isa in _variants(spec):
            for n_snps in snp_sizes:
                est = estimate_cpu(spec, 4, isa=isa, n_snps=n_snps, n_samples=n_samples)
                rows.append(
                    {
                        "device": spec.key,
                        "isa": isa_label,
                        "n_snps": n_snps,
                        "n_samples": n_samples,
                        # Figure 3a
                        "gelements_per_s_per_core": round(
                            est.giga_elements_per_second_per_core, 3
                        ),
                        # Figure 3b
                        "elements_per_cycle_per_core": round(
                            est.elements_per_cycle_per_core, 3
                        ),
                        # Figure 3c
                        "elements_per_cycle_per_core_per_lane": round(
                            est.elements_per_cycle_per_core_per_lane, 4
                        ),
                        "total_gelements_per_s": round(
                            est.giga_elements_per_second_total, 1
                        ),
                        "bound": est.bound,
                    }
                )
    return rows


def format_figure3(**kwargs) -> str:
    """Figure 3 as a text table."""
    return format_table(
        run_figure3(**kwargs),
        title="Figure 3: CPU performance (model) for 2048/4096/8192 SNPs, 16384 samples",
    )
