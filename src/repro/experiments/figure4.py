"""Figure 4 — GPU evaluation across devices and dataset sizes.

For the eight GPUs of Table II and datasets of 2048/4096/8192 SNPs with
16384 samples the paper reports the throughput of the best GPU approach as

* Figure 4a — Giga (combinations x samples) per second per compute unit,
* Figure 4b — elements per cycle per compute unit,
* Figure 4c — elements per cycle per stream core.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.devices.catalog import ALL_GPUS
from repro.devices.specs import GpuSpec
from repro.experiments.report import format_table
from repro.perfmodel.gpu_model import estimate_gpu

__all__ = ["run_figure4", "format_figure4", "SNP_SIZES", "N_SAMPLES"]

#: Dataset sizes evaluated by the paper.
SNP_SIZES: tuple[int, ...] = (2048, 4096, 8192)
N_SAMPLES: int = 16384


def run_figure4(
    snp_sizes: Sequence[int] = SNP_SIZES,
    n_samples: int = N_SAMPLES,
    gpus: Sequence[GpuSpec] | None = None,
) -> List[Dict[str, object]]:
    """Rows for Figures 4a/4b/4c (one row per device x dataset size)."""
    gpus = list(gpus) if gpus is not None else list(ALL_GPUS)
    rows: List[Dict[str, object]] = []
    for spec in gpus:
        for n_snps in snp_sizes:
            est = estimate_gpu(spec, 4, n_snps=n_snps, n_samples=n_samples)
            rows.append(
                {
                    "device": spec.key,
                    "n_snps": n_snps,
                    "n_samples": n_samples,
                    # Figure 4a
                    "gelements_per_s_per_cu": round(
                        est.giga_elements_per_second_per_cu, 3
                    ),
                    # Figure 4b
                    "elements_per_cycle_per_cu": round(
                        est.elements_per_cycle_per_cu, 3
                    ),
                    # Figure 4c
                    "elements_per_cycle_per_stream_core": round(
                        est.elements_per_cycle_per_stream_core, 4
                    ),
                    "total_gelements_per_s": round(
                        est.giga_elements_per_second_total, 1
                    ),
                    "popcnt_per_cu": spec.popcnt_per_cu,
                    "bound": est.bound,
                }
            )
    return rows


def format_figure4(**kwargs) -> str:
    """Figure 4 as a text table."""
    return format_table(
        run_figure4(**kwargs),
        title="Figure 4: GPU performance (model) for 2048/4096/8192 SNPs, 16384 samples",
    )
