"""Table III — comparison with the state of the art.

For every row of the paper's Table III the harness reports four quantities:

* the baseline throughput **published** by the paper (measured MPI3SNP /
  [29] runs or the values quoted from [30]),
* the "this work" throughput **published** by the paper,
* the baseline and best-approach throughputs **reproduced** by this
  repository's models (MPI3SNP model for MPI3SNP; published numbers are
  reused verbatim for [29]/[30], exactly as the paper does for [30]),
* the resulting speedups — paper vs reproduction — so the *shape* of the
  comparison (who wins, by roughly what factor) can be checked directly.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.mpi3snp import estimate_mpi3snp_throughput
from repro.baselines.reported import REPORTED_RESULTS, ReportedResult
from repro.devices.catalog import device
from repro.devices.specs import CpuSpec
from repro.experiments.report import format_table
from repro.perfmodel.cpu_model import estimate_cpu
from repro.perfmodel.gpu_model import estimate_gpu

__all__ = ["run_table3", "format_table3"]


def _this_work_throughput(spec, n_snps: int, n_samples: int) -> float:
    """Model throughput (G elements/s) of the best approach on a device."""
    if isinstance(spec, CpuSpec):
        est = estimate_cpu(spec, 4, n_snps=n_snps, n_samples=n_samples)
    else:
        est = estimate_gpu(spec, 4, n_snps=n_snps, n_samples=n_samples)
    return est.elements_per_second_total / 1e9


def _baseline_throughput(row: ReportedResult, spec) -> float | None:
    """Reproduced baseline throughput (G elements/s) for one Table III row."""
    if row.baseline == "mpi3snp":
        return estimate_mpi3snp_throughput(spec, row.n_snps, row.n_samples) / 1e9
    # [29] and [30] are represented by their published figures.
    return row.baseline_gelements_per_s


def run_table3() -> List[Dict[str, object]]:
    """One output row per Table III row, paper vs reproduction."""
    rows: List[Dict[str, object]] = []
    for row in REPORTED_RESULTS:
        spec = device(row.device)
        ours = _this_work_throughput(spec, row.n_snps, row.n_samples)
        base = _baseline_throughput(row, spec)
        speedup = (ours / base) if base else None
        rows.append(
            {
                "baseline": row.baseline,
                "device": row.device,
                "n_snps": row.n_snps,
                "n_samples": row.n_samples,
                "paper_baseline_G/s": row.baseline_gelements_per_s,
                "paper_this_work_G/s": row.this_work_gelements_per_s,
                "paper_speedup": row.speedup,
                "repro_baseline_G/s": round(base, 1) if base else None,
                "repro_this_work_G/s": round(ours, 1),
                "repro_speedup": round(speedup, 2) if speedup else None,
                "estimated_by_paper": row.estimated,
            }
        )
    return rows


def summary_speedups() -> Dict[str, float]:
    """Aggregate reproduction speedups (mirrors the abstract's 3.9x average).

    Only the rows with a defined reproduction speedup participate; CPU and
    GPU averages are reported separately like the abstract does.
    """
    rows = run_table3()
    cpu_speedups = [
        r["repro_speedup"]
        for r in rows
        if r["repro_speedup"] and isinstance(device(r["device"]), CpuSpec)
    ]
    gpu_speedups = [
        r["repro_speedup"]
        for r in rows
        if r["repro_speedup"] and not isinstance(device(r["device"]), CpuSpec)
    ]
    all_speedups = cpu_speedups + gpu_speedups

    def _mean(values):
        return sum(values) / len(values) if values else float("nan")

    return {
        "cpu_mean_speedup": _mean(cpu_speedups),
        "gpu_mean_speedup": _mean(gpu_speedups),
        "overall_mean_speedup": _mean(all_speedups),
        "max_speedup": max(all_speedups) if all_speedups else float("nan"),
    }


def format_table3() -> str:
    """Table III as text, followed by the aggregate speedups."""
    table = format_table(
        run_table3(), title="Table III: comparison with state-of-the-art approaches"
    )
    agg = summary_speedups()
    summary = (
        f"\nAggregate reproduction speedups: CPU {agg['cpu_mean_speedup']:.2f}x, "
        f"GPU {agg['gpu_mean_speedup']:.2f}x, overall {agg['overall_mean_speedup']:.2f}x, "
        f"max {agg['max_speedup']:.2f}x "
        "(paper: 7.3x CPU, 2.8x GPU, 3.9x average, 10.6x max)"
    )
    return table + summary
