"""Ablation studies of the design choices called out in DESIGN.md.

These experiments run the *functional* kernels on small datasets (so they
execute in seconds under pytest-benchmark) and isolate one design decision
each:

* ``phenotype_elision`` — instruction/traffic counts of the naïve vs the
  phenotype-split kernel (the 162 -> 57 instructions and -1/3 bytes claims);
* ``blocking_sweep`` — the ``<BS, BP>`` derivation for every catalogued CPU
  plus the L1-capacity constraint check;
* ``isa_sweep`` — vector-instruction counts and modelled throughput of the
  vectorised kernel under every ISA preset (scalar POPCNT vs vector POPCNT,
  one vs two extracts);
* ``coalescing`` — memory transactions per warp load measured by the GPU
  simulator under the three layouts;
* ``tiling_sweep`` — modelled GPU throughput as a function of the SNP-block
  size and of the approach version.
"""

from __future__ import annotations

from typing import Dict, List


from repro.bitops.simd import ISA_PRESETS
from repro.core.approaches import get_approach
from repro.core.combinations import generate_combinations
from repro.datasets.binarization import PhenotypeSplitDataset
from repro.datasets.synthetic import generate_null_dataset
from repro.devices.catalog import ALL_CPUS, gpu
from repro.experiments.report import format_table
from repro.gpusim import NDRange, SimulatedGpu, epistasis_kernel_split, make_split_kernel_args
from repro.perfmodel.counters import approach_counts
from repro.perfmodel.cpu_model import estimate_cpu
from repro.perfmodel.gpu_model import estimate_gpu

__all__ = [
    "run_phenotype_elision",
    "run_blocking_sweep",
    "run_isa_sweep",
    "run_coalescing",
    "run_tiling_sweep",
    "format_ablations",
]


def run_phenotype_elision(
    n_snps: int = 24, n_samples: int = 512, n_combos: int = 200
) -> List[Dict[str, object]]:
    """Measured instruction/traffic counts: naïve vs phenotype-split kernel."""
    dataset = generate_null_dataset(n_snps, n_samples, seed=11)
    combos = generate_combinations(n_snps, 3)[:n_combos]
    rows: List[Dict[str, object]] = []
    for name in ("cpu-v1", "cpu-v2"):
        approach = get_approach(name)
        encoded = approach.prepare(dataset)
        approach.build_tables(encoded, combos)
        counter = approach.counter
        counts = approach_counts(approach.version, "cpu")
        rows.append(
            {
                "approach": name,
                "ops_measured": counter.total_ops,
                "bytes_measured": counter.total_bytes,
                "ops_per_combo_word_model": counts.ops_per_combo_word,
                "bytes_per_element_model": counts.bytes_per_element,
                "arithmetic_intensity": round(counter.arithmetic_intensity, 3),
            }
        )
    return rows


def run_blocking_sweep() -> List[Dict[str, object]]:
    """Blocking parameters and L1 occupancy for every catalogued CPU."""
    rows: List[Dict[str, object]] = []
    for spec in ALL_CPUS:
        bs, bp = spec.blocking_parameters()
        ft_bytes = bs**3 * 2 * 27 * 4
        block_bytes = bs * bp * 2 * 4
        l1_bytes = spec.l1d.size_kib * 1024
        rows.append(
            {
                "device": spec.key,
                "l1d_kib": spec.l1d.size_kib,
                "l1_ways": spec.l1d.ways,
                "bs": bs,
                "bp": bp,
                "freq_table_bytes": ft_bytes,
                "block_bytes": block_bytes,
                "l1_occupancy_pct": round(100.0 * (ft_bytes + block_bytes) / l1_bytes, 1),
                "fits_l1": ft_bytes + block_bytes <= l1_bytes,
            }
        )
    return rows


def run_isa_sweep(
    n_snps: int = 2048, n_samples: int = 16384
) -> List[Dict[str, object]]:
    """Modelled throughput of the vectorised kernel under every ISA preset."""
    from repro.devices.catalog import cpu as _cpu

    spec = _cpu("CI3")
    rows: List[Dict[str, object]] = []
    for name, isa in sorted(ISA_PRESETS.items()):
        if isa.is_scalar:
            continue
        est = estimate_cpu(spec, 4, isa=isa, n_snps=n_snps, n_samples=n_samples)
        rows.append(
            {
                "isa": name,
                "width_bits": isa.width_bits,
                "vector_popcnt": isa.has_vector_popcnt,
                "extracts_per_lane": isa.extracts_per_lane,
                "elements_per_cycle_per_core": round(est.elements_per_cycle_per_core, 3),
                "per_lane": round(est.elements_per_cycle_per_core_per_lane, 4),
            }
        )
    return rows


def run_coalescing(
    n_snps: int = 48, n_samples: int = 96, block_size: int = 8
) -> List[Dict[str, object]]:
    """Memory transactions per warp load under the three GPU layouts.

    A single warp's worth of combinations with consecutive last SNP indices
    is simulated so the coalescing behaviour of adjacent threads is exposed
    exactly as on hardware.
    """
    dataset = generate_null_dataset(n_snps, n_samples, seed=5)
    # The reported transaction geometry is the paper's 32-bit word analysis,
    # so the encoding is pinned to the paper layout regardless of the
    # execution-width default.
    split = PhenotypeSplitDataset.from_dataset(dataset, layout="u32")
    sim = SimulatedGpu(gpu("GN3"))
    rows: List[Dict[str, object]] = []
    for layout in ("snp-major", "transposed", "tiled"):
        args = make_split_kernel_args(split, layout=layout, block_size=block_size)
        kernel = epistasis_kernel_split(args)
        # Threads (0, 1, k) for k = 2..n_snps-1: one warp of consecutive
        # combinations, the dominant access pattern of Algorithm 2.
        ndrange = NDRange((1, 2, n_snps), subgroup_size=32)
        _, stats = sim.launch(kernel, ndrange)
        rows.append(
            {
                "layout": layout,
                "active_threads": stats.n_active_threads,
                "warp_load_instructions": stats.warp_load_instructions,
                "memory_transactions": stats.memory_transactions,
                "transactions_per_warp_load": round(stats.transactions_per_warp_load, 2),
                "estimated_cycles": round(stats.estimated_cycles or 0.0, 1),
                "bound": stats.bound,
            }
        )
    return rows


def run_tiling_sweep(
    n_snps: int = 8192,
    n_samples: int = 16384,
    device_key: str = "GN4",
) -> List[Dict[str, object]]:
    """Modelled GPU throughput per approach version (layout ablation)."""
    spec = gpu(device_key)
    rows: List[Dict[str, object]] = []
    for version in (1, 2, 3, 4):
        est = estimate_gpu(spec, version, n_snps=n_snps, n_samples=n_samples)
        rows.append(
            {
                "device": device_key,
                "approach": f"gpu-v{version}",
                "elements_per_cycle_per_cu": round(est.elements_per_cycle_per_cu, 3),
                "total_gelements_per_s": round(est.giga_elements_per_second_total, 1),
                "bound": est.bound,
            }
        )
    return rows


def format_ablations() -> str:
    """All ablations as text."""
    sections = [
        format_table(run_phenotype_elision(), title="Ablation: phenotype elision (V1 vs V2)"),
        format_table(run_blocking_sweep(), title="Ablation: <BS, BP> blocking parameters"),
        format_table(run_isa_sweep(), title="Ablation: ISA sweep (vector POPCNT / extracts)"),
        format_table(run_coalescing(), title="Ablation: layout coalescing (GPU simulator)"),
        format_table(run_tiling_sweep(), title="Ablation: GPU approach ladder"),
    ]
    return "\n\n".join(sections)
