"""Plain-text table rendering shared by the experiment modules."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_float"]


def format_float(value: object, digits: int = 3) -> str:
    """Render a float compactly; pass through everything else."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e5 or magnitude < 1e-3:
        return f"{value:.{digits}e}"
    return f"{value:.{digits}f}"


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render a list of dict rows as an aligned fixed-width text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        {col: format_float(row.get(col, "")) for col in columns} for row in rows
    ]
    widths = {
        col: max(len(col), *(len(r[col]) for r in rendered)) for col in columns
    }
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    sep = "  ".join("-" * widths[col] for col in columns)
    body = "\n".join(
        "  ".join(r[col].ljust(widths[col]) for col in columns) for r in rendered
    )
    out = f"{header}\n{sep}\n{body}"
    if title:
        out = f"{title}\n{out}"
    return out
