"""Tables I and II — the device inventory.

These "experiments" regenerate the two device tables of the paper from the
catalog, including the derived quantities the text refers to (stream cores
per CU, peak POPCNT throughput, AVX-512 / vector-POPCNT support).
"""

from __future__ import annotations

from typing import Dict, List

from repro.devices.catalog import ALL_CPUS, ALL_GPUS
from repro.experiments.report import format_table

__all__ = ["run_table1", "run_table2", "format_table1", "format_table2"]


def run_table1() -> List[Dict[str, object]]:
    """Rows of Table I (CPU devices used in the experimental evaluation)."""
    rows: List[Dict[str, object]] = []
    for spec in ALL_CPUS:
        bs, bp = spec.blocking_parameters()
        rows.append(
            {
                "system": spec.key,
                "device": spec.name,
                "arch": spec.microarchitecture,
                "base_freq_ghz": spec.base_freq_ghz,
                "cores": spec.cores,
                "vector_width_bits": spec.vector_width_bits,
                "isa": spec.isa,
                "vector_popcnt": spec.has_vector_popcnt,
                "l1d_kib": spec.l1d.size_kib,
                "blocking_bs": bs,
                "blocking_bp": bp,
                "tdp_w": spec.tdp_w,
            }
        )
    return rows


def run_table2() -> List[Dict[str, object]]:
    """Rows of Table II (GPU devices used in the experimental evaluation)."""
    rows: List[Dict[str, object]] = []
    for spec in ALL_GPUS:
        rows.append(
            {
                "system": spec.key,
                "device": spec.name,
                "arch": spec.architecture,
                "boost_freq_ghz": spec.boost_freq_ghz,
                "compute_units": spec.compute_units,
                "stream_cores": spec.stream_cores,
                "stream_cores_per_cu": spec.stream_cores_per_cu,
                "popcnt_per_cu": spec.popcnt_per_cu,
                "popcnt_measured": spec.popcnt_measured,
                "peak_popcnt_gops": round(spec.peak_popcnt_gops(), 1),
                "bsched": spec.preferred_bsched,
                "bs": spec.preferred_bs,
                "tdp_w": spec.tdp_w,
            }
        )
    return rows


def format_table1() -> str:
    """Table I as text."""
    return format_table(run_table1(), title="Table I: CPU devices")


def format_table2() -> str:
    """Table II as text."""
    return format_table(run_table2(), title="Table II: GPU devices")
