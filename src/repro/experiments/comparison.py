"""§V-D — comparison between CPUs and GPUs, heterogeneous and energy analysis.

Reproduces the closing analyses of the evaluation section:

* overall device throughput of every catalogued CPU and GPU with the best
  approach (the basis of the "GPUs win through sheer stream-core count"
  argument);
* the heterogeneous CPU+GPU projection (Ice Lake SP + Titan Xp ≈ 3300 G
  elements/s in the paper);
* energy efficiency in Giga elements per Joule, where the Intel Iris Xe MAX
  comes out ahead despite its modest raw throughput.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.devices.catalog import ALL_CPUS, ALL_GPUS, cpu, gpu
from repro.devices.specs import CpuSpec
from repro.experiments.report import format_table
from repro.perfmodel.cpu_model import estimate_cpu
from repro.perfmodel.gpu_model import estimate_gpu
from repro.perfmodel.efficiency import energy_efficiency, heterogeneous_throughput

__all__ = [
    "run_device_comparison",
    "run_heterogeneous",
    "format_comparison",
    "DEFAULT_HETERO_PAIRS",
]

#: CPU+GPU pairs discussed by the paper (§V-D).
DEFAULT_HETERO_PAIRS: tuple[tuple[str, str], ...] = (
    ("CI3", "GN1"),
    ("CI3", "GN3"),
    ("CI1", "GN3"),
    ("CA1", "GN3"),
)


def run_device_comparison(
    n_snps: int = 8192, n_samples: int = 16384
) -> List[Dict[str, object]]:
    """Overall throughput and efficiency of every catalogued device."""
    rows: List[Dict[str, object]] = []
    for spec in list(ALL_CPUS) + list(ALL_GPUS):
        if isinstance(spec, CpuSpec):
            est = estimate_cpu(spec, 4, n_snps=n_snps, n_samples=n_samples)
            total = est.giga_elements_per_second_total
            kind = "CPU"
        else:
            est = estimate_gpu(spec, 4, n_snps=n_snps, n_samples=n_samples)
            total = est.giga_elements_per_second_total
            kind = "GPU"
        rows.append(
            {
                "device": spec.key,
                "kind": kind,
                "name": spec.name,
                "total_gelements_per_s": round(total, 1),
                "tdp_w": spec.tdp_w,
                "gelements_per_joule": round(
                    energy_efficiency(spec, n_snps, n_samples), 2
                ),
            }
        )
    return sorted(rows, key=lambda r: -r["total_gelements_per_s"])


def run_heterogeneous(
    pairs: Sequence[tuple[str, str]] = DEFAULT_HETERO_PAIRS,
    n_snps: int = 8192,
    n_samples: int = 16384,
) -> List[Dict[str, object]]:
    """Projected CPU+GPU throughputs for the paper's example pairs."""
    rows: List[Dict[str, object]] = []
    for cpu_key, gpu_key in pairs:
        cpu_spec, gpu_spec = cpu(cpu_key), gpu(gpu_key)
        cpu_total = estimate_cpu(cpu_spec, 4, n_snps=n_snps, n_samples=n_samples)
        gpu_total = estimate_gpu(gpu_spec, 4, n_snps=n_snps, n_samples=n_samples)
        combined = heterogeneous_throughput(
            [cpu_spec, gpu_spec], n_snps=n_snps, n_samples=n_samples
        )
        rows.append(
            {
                "cpu": cpu_key,
                "gpu": gpu_key,
                "cpu_gelements_per_s": round(cpu_total.giga_elements_per_second_total, 1),
                "gpu_gelements_per_s": round(gpu_total.giga_elements_per_second_total, 1),
                "combined_gelements_per_s": round(combined / 1e9, 1),
                "cpu_contribution_pct": round(
                    100.0
                    * cpu_total.elements_per_second_total
                    / (cpu_total.elements_per_second_total + gpu_total.elements_per_second_total),
                    1,
                ),
            }
        )
    return rows


def format_comparison(n_snps: int = 8192, n_samples: int = 16384) -> str:
    """Both §V-D analyses as text."""
    devices = format_table(
        run_device_comparison(n_snps, n_samples),
        title="CPU vs GPU overall throughput and energy efficiency (best approach)",
    )
    hetero = format_table(
        run_heterogeneous(n_snps=n_snps, n_samples=n_samples),
        title="Heterogeneous CPU+GPU projections",
    )
    return devices + "\n\n" + hetero
