"""Figure 2 — CARM characterisation of the four approaches.

The paper characterises the CPU approaches on the Intel Xeon Platinum 8360Y
(Ice Lake SP, Figure 2a) and the GPU approaches on the Intel Iris Xe MAX
(Figure 2b).  ``run_figure2`` reproduces both by default and accepts any
other catalogued device.
"""

from __future__ import annotations

from typing import Dict, List

from repro.carm.characterize import characterize_cpu_approaches, characterize_gpu_approaches
from repro.carm.render import render_ascii, render_csv
from repro.devices.catalog import device
from repro.devices.specs import CpuSpec
from repro.experiments.report import format_table

__all__ = ["run_figure2", "format_figure2", "DEFAULT_CPU", "DEFAULT_GPU"]

#: Devices used by the paper's Figure 2.
DEFAULT_CPU = "CI3"
DEFAULT_GPU = "GI2"


def run_figure2(
    device_key: str = DEFAULT_CPU,
    n_snps: int = 2048,
    n_samples: int = 16384,
) -> List[Dict[str, object]]:
    """CARM kernel placements for one device (rows = approaches V1–V4)."""
    spec = device(device_key)
    if isinstance(spec, CpuSpec):
        model, points = characterize_cpu_approaches(spec, n_snps, n_samples)
    else:
        model, points = characterize_gpu_approaches(spec, n_snps, n_samples)
    rows: List[Dict[str, object]] = []
    for p in points:
        rows.append(
            {
                "device": spec.key,
                "approach": p.name,
                "arithmetic_intensity": round(p.arithmetic_intensity, 4),
                "gintops": round(p.gops, 2),
                "gelements_per_s": round(p.elements_per_second / 1e9, 2),
                "bound_by": p.bound_by,
                "attainable_gintops": round(
                    model.attainable_gops(p.arithmetic_intensity), 2
                ),
            }
        )
    return rows


def format_figure2(
    cpu_key: str = DEFAULT_CPU,
    gpu_key: str = DEFAULT_GPU,
    n_snps: int = 2048,
    n_samples: int = 16384,
    ascii_chart: bool = True,
) -> str:
    """Both panels of Figure 2 as text (tables + optional ASCII charts)."""
    sections: List[str] = []
    for key, title in ((cpu_key, "Figure 2a (CPU)"), (gpu_key, "Figure 2b (GPU)")):
        rows = run_figure2(key, n_snps, n_samples)
        sections.append(format_table(rows, title=f"{title}: CARM on {key}"))
        if ascii_chart:
            spec = device(key)
            if isinstance(spec, CpuSpec):
                model, points = characterize_cpu_approaches(spec, n_snps, n_samples)
            else:
                model, points = characterize_gpu_approaches(spec, n_snps, n_samples)
            sections.append(render_ascii(model, points))
            sections.append(render_csv(model, points))
    return "\n\n".join(sections)
