"""Command-line interface.

``repro-epistasis`` (or ``python -m repro``) exposes the library's main entry
points without writing any Python:

* ``generate`` — create a synthetic case/control dataset (optionally with a
  planted interaction of any order 2-5) and save it to ``.npz`` or text;
* ``detect`` — run the exhaustive k-way search (``--order``, default 3) on a
  dataset file with a chosen approach/objective and print the best
  interactions; ``--workers N`` shards the space across OS processes and
  ``--checkpoint``/``--resume`` make long sweeps crash-safe;
* ``pipeline`` — run the staged search (screen → expand, optional refine
  and permutation stages) with a retention budget (``--retain``); the same
  ``--workers``/``--checkpoint``/``--resume`` flags shard and checkpoint
  every sweep stage;
* ``backends`` — report the execution backends (availability, versions,
  calibrated throughput) and optionally run the micro-calibration probes
  (``--calibrate``) feeding the CARM splitter's measured mode;
* ``shm`` — inspect (``ls``) or reclaim (``clean``) the shared-memory data
  plane's segments, e.g. orphans left by a SIGKILLed run;
* ``devices`` — print Tables I and II (the device catalog);
* ``figures`` — regenerate the paper's figures/tables from the analytical
  models (Figure 2, Figure 3, Figure 4, Table III, §V-D comparison,
  ablations).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


def _devices_expression(value: str) -> str:
    """argparse type for ``--devices``: validate early, keep the string."""
    from repro.engine import parse_devices

    try:
        parse_devices(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    return value


def _chunk_size(value: str) -> "int | str":
    """argparse type for ``--chunk-size``: a positive integer or ``auto``."""
    if value.strip().lower() == "auto":
        return "auto"
    try:
        chunk = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid chunk size {value!r}: use a positive integer or 'auto'"
        ) from None
    if chunk < 1:
        raise argparse.ArgumentTypeError("chunk size must be positive")
    return chunk


def _output_path(value: str) -> str:
    """argparse type for ``--output``: only .json / .csv exports exist."""
    if not value.endswith((".json", ".csv")):
        raise argparse.ArgumentTypeError(
            f"unsupported output format {value!r}: use a .json or .csv path"
        )
    return value


def _add_search_options(parser: argparse.ArgumentParser) -> None:
    """Execution options shared by the ``detect`` and ``pipeline`` commands.

    ``--approach``, ``--objective`` and ``--schedule`` validate against the
    registries (names plus accepted aliases), so a typo fails at parse time
    with the list of valid names instead of surfacing as a deep ``KeyError``.
    """
    from repro.core.approaches import list_approaches
    from repro.core.scoring import OBJECTIVES
    from repro.engine import list_policies

    parser.add_argument(
        "--approach",
        default="cpu-v4",
        choices=list_approaches(include_aliases=True),
        help="table-construction approach (aliases like 'cpu' resolve to "
        "the best variant of the device kind)",
    )
    parser.add_argument(
        "--objective",
        default="k2",
        choices=sorted(OBJECTIVES),
        help="objective function scored over the frequency tables",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="distributed worker processes (repro.distributed): the "
        "candidate space is cut into shards executed across N OS "
        "processes with a deterministic merge — results are bit-identical "
        "for any N",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=1,
        metavar="T",
        help="host threads per worker process (the engine's in-process "
        "parallelism)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="atomic shard-ledger path (detect: a .json file; pipeline: a "
        "directory) written after every completed shard, enabling --resume "
        "after a kill",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="restore completed shards/stages from the --checkpoint ledger "
        "instead of re-evaluating them (safe when no ledger exists yet)",
    )
    parser.add_argument(
        "--pool",
        choices=("keep", "fresh"),
        default="keep",
        help="worker-process lifecycle: 'keep' (default) executes on a "
        "process-wide warm fleet that survives across runs and pipeline "
        "stages (spawn once, reuse hydrated workers); 'fresh' spawns a "
        "dedicated pool per run and tears it down afterwards",
    )
    parser.add_argument(
        "--shm",
        choices=("on", "off", "auto"),
        default="auto",
        help="shared-memory data plane: publish the dataset and prepared "
        "encodings into POSIX shared memory so worker processes attach "
        "zero-copy views instead of unpickling arrays ('auto' enables it "
        "whenever --workers > 1)",
    )
    parser.add_argument(
        "--shard-retries",
        type=int,
        default=None,
        metavar="N",
        help="per-shard attempt budget of the distributed sweep (default 3): "
        "a shard whose worker crashes is retried with exponential backoff "
        "up to N attempts, then quarantined and executed inline in the "
        "coordinator — the run still completes with bit-identical results",
    )
    parser.add_argument(
        "--shard-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="heartbeat-watchdog deadline: if no shard completes for this "
        "many seconds while work is in flight, the hung worker pool is "
        "killed and its shards are re-dispatched (default: no deadline)",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection for chaos testing: a compact "
        "spec like 'shard.run:crash' or 'shm.publish:torn:count=2', a JSON "
        "list, or '@plan.json' (also: the REPRO_FAULTS environment "
        "variable). Faults are injected at seeded sites; the run must "
        "still produce bit-identical results",
    )
    parser.add_argument(
        "--chunk-size",
        type=_chunk_size,
        default=2048,
        metavar="N|auto",
        help="combinations per scheduler chunk, or 'auto' to let every "
        "worker tune its claim size from measured per-chunk throughput",
    )
    parser.add_argument(
        "--word-width",
        choices=("32", "64", "auto"),
        default="auto",
        help="machine-word width of the packed encodings: 32 is the "
        "paper-fidelity word, 64 halves the kernel element count "
        "(bit-identical results); 'auto' picks 64 when NumPy offers a "
        "native popcount",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "cupy", "numba", "numpy"),
        default=None,
        help="execution backend of the CPU kernel hot loop: 'numpy' is the "
        "always-available reference, 'numba' JIT-compiles it, 'cupy' runs "
        "the split kernel on a CUDA device; 'auto' picks numba when "
        "importable, else numpy (default: the REPRO_BACKEND environment "
        "variable, else auto). Results are bit-identical across backends",
    )
    parser.add_argument(
        "--fused",
        choices=("auto", "on", "off"),
        default=None,
        help="fused build+score path: fold each combination's table "
        "straight into the objective without materialising the chunk-wide "
        "table array. 'auto' fuses whenever the objective/backend support "
        "it, 'on' requires it, 'off' always materialises (default: the "
        "REPRO_FUSED environment variable, else auto). Results are "
        "bit-identical either way",
    )
    parser.add_argument(
        "--telemetry",
        choices=("off", "minimal", "full"),
        default=None,
        help="telemetry plane: 'off' compiles tracing to no-ops, 'minimal' "
        "records coarse spans and the metrics registry, 'full' adds "
        "per-chunk kernel samples (default: the REPRO_TELEMETRY "
        "environment variable, else off). Results are bit-identical in "
        "every mode",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="export the run's telemetry trace: a .jsonl span log, or a "
        "Chrome trace-event .json loadable in Perfetto (implies "
        "--telemetry full unless a mode is given explicitly)",
    )
    parser.add_argument("--top-k", type=int, default=5)
    parser.add_argument(
        "--devices",
        default=None,
        type=_devices_expression,
        metavar="EXPR",
        help="execution-engine device lanes: 'cpu', 'gpu' or 'cpu+gpu' "
        "(default: the approach's own device kind)",
    )
    parser.add_argument(
        "--schedule",
        default="dynamic",
        choices=list_policies(include_aliases=True),
        help="engine scheduling policy; 'carm' splits work across device "
        "lanes proportionally to their modelled throughput",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print chunk-level progress to stderr",
    )
    parser.add_argument(
        "--output",
        default=None,
        type=_output_path,
        metavar="PATH",
        help="export the result (top-k table, scores, ranks, per-device "
        "stats) to a .json or .csv file",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-epistasis",
        description="Exhaustive k-way epistasis detection (IPDPS 2022 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("output", help="output path (.npz or .csv/.txt)")
    gen.add_argument("--snps", type=int, default=64)
    gen.add_argument("--samples", type=int, default=1024)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--maf-low", type=float, default=0.05)
    gen.add_argument("--maf-high", type=float, default=0.5)
    gen.add_argument(
        "--interaction",
        type=int,
        nargs="+",
        metavar="SNP",
        help="plant an interaction at these 2-5 SNP indices "
        "(3 indices reproduce the paper's third-order setting)",
    )
    gen.add_argument(
        "--model",
        choices=("threshold", "multiplicative", "xor"),
        default="threshold",
        help="penetrance model of the planted interaction",
    )
    gen.add_argument("--effect", type=float, default=0.8)
    gen.add_argument("--baseline", type=float, default=0.05)

    det = sub.add_parser("detect", help="run the exhaustive k-way search")
    det.add_argument("dataset", help="dataset path (.npz or text)")
    det.add_argument(
        "--order",
        type=int,
        default=3,
        choices=(2, 3, 4, 5),
        help="interaction order k: 2 = pairwise screen, 3 = the paper's "
        "third-order search (default), 4/5 = higher-order searches; every "
        "approach supports every order",
    )
    _add_search_options(det)

    pipe = sub.add_parser(
        "pipeline",
        help="run the staged search (screen -> expand -> refine -> permutation)",
    )
    pipe.add_argument("dataset", help="dataset path (.npz or text)")
    pipe.add_argument(
        "--order",
        type=int,
        default=3,
        choices=(3, 4, 5),
        help="interaction order k of the expand stage (the finalists); "
        "the screen must run at a lower order, so a staged order-2 search "
        "does not exist (use 'detect --order 2' for a dense pairwise scan)",
    )
    pipe.add_argument(
        "--screen-order",
        type=int,
        default=2,
        choices=(2, 3, 4),
        help="interaction order of the cheap screening scan (must be below "
        "--order)",
    )
    pipe.add_argument(
        "--retain",
        type=int,
        default=None,
        metavar="M",
        help="SNPs retained by the screen (the retention budget; default: a "
        "quarter of the dataset's SNPs)",
    )
    from repro.core.scoring import OBJECTIVES

    pipe.add_argument(
        "--refine-objective",
        default=None,
        choices=sorted(OBJECTIVES),
        help="re-score the finalists under a second objective",
    )
    pipe.add_argument(
        "--permutations",
        type=int,
        default=0,
        metavar="P",
        help="phenotype permutations for empirical p-values over the "
        "finalists (0 = skip the permutation stage)",
    )
    pipe.add_argument(
        "--permutation-seed",
        type=int,
        default=0,
        help="seed of the permutation null",
    )
    _add_search_options(pipe)

    back = sub.add_parser(
        "backends",
        help="report execution backends (availability, calibrated throughput)",
    )
    back.add_argument(
        "--calibrate",
        action="store_true",
        help="run the micro-calibration probes on every available backend "
        "and persist the measured throughput to the per-host store "
        "(consumed by '--schedule carm' when a fingerprint-matched record "
        "exists)",
    )
    back.add_argument(
        "--family",
        choices=("split", "naive"),
        default="split",
        help="kernel family reported/calibrated (default: split, the "
        "paper's best CPU family)",
    )
    back.add_argument(
        "--order",
        type=int,
        default=3,
        choices=(2, 3, 4, 5),
        help="interaction order reported/calibrated",
    )
    back.add_argument(
        "--word-width",
        choices=("32", "64", "auto"),
        default="auto",
        help="word layout reported/calibrated (default: the session's "
        "default layout)",
    )
    back.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repetitions per calibration probe (best-of)",
    )
    back.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of the table",
    )

    shm = sub.add_parser(
        "shm",
        help="inspect or clean the shared-memory data plane's segments",
    )
    shm_sub = shm.add_subparsers(dest="shm_command", required=True)
    shm_ls = shm_sub.add_parser(
        "ls", help="list the data plane's /dev/shm segments"
    )
    shm_ls.add_argument(
        "--json", action="store_true", help="emit the listing as JSON"
    )
    shm_clean = shm_sub.add_parser(
        "clean",
        help="unlink orphaned segments (torn writes, dead owners); live "
        "segments owned by running processes are never touched",
    )
    shm_clean.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be reaped without unlinking anything",
    )
    shm_clean.add_argument(
        "--force",
        action="store_true",
        help="also reap segments whose owner cannot be determined "
        "(pre-upgrade segments without an owner stamp)",
    )

    trace = sub.add_parser(
        "trace", help="inspect telemetry trace files exported with --trace-out"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_sub.add_parser(
        "summary", help="aggregate a trace's spans into a per-name table"
    )
    trace_summary.add_argument(
        "path",
        help="trace file: a .jsonl span log or a Chrome trace-event .json",
    )

    sub.add_parser("devices", help="print the device catalog (Tables I and II)")

    fig = sub.add_parser("figures", help="regenerate figures/tables from the models")
    fig.add_argument(
        "which",
        choices=("figure2", "figure3", "figure4", "table3", "comparison", "ablations", "all"),
        nargs="?",
        default="all",
    )
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets import PlantedInteraction, SyntheticConfig, generate_dataset, save_npz, save_text

    interaction = None
    if args.interaction:
        if not 2 <= len(args.interaction) <= 5:
            print(
                f"error: --interaction takes 2 to 5 SNP indices, "
                f"got {len(args.interaction)}",
                file=sys.stderr,
            )
            return 2
        interaction = PlantedInteraction(
            snps=tuple(args.interaction),
            model=args.model,
            effect=args.effect,
            baseline=args.baseline,
        )
    config = SyntheticConfig(
        n_snps=args.snps,
        n_samples=args.samples,
        maf_range=(args.maf_low, args.maf_high),
        interaction=interaction,
        seed=args.seed,
    )
    dataset = generate_dataset(config)
    if args.output.endswith(".npz"):
        save_npz(dataset, args.output)
    else:
        save_text(dataset, args.output)
    print(f"wrote {dataset} to {args.output}")
    return 0


def _progress_printer():
    """Progress callback printing a line per completed decile to stderr."""
    last_decile = -1

    def progress(done: int, total: int) -> None:
        nonlocal last_decile
        pct = 100 if total == 0 else done * 100 // total
        if pct // 10 > last_decile:
            last_decile = pct // 10
            print(
                f"progress: {pct:3d}% ({done}/{total} combinations)",
                file=sys.stderr,
                flush=True,
            )

    return progress


def _export_result(path: str, doc: dict) -> None:
    """Write a result document to ``path`` (.json full doc, .csv top table)."""
    if path.endswith(".json"):
        import json

        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        return
    import csv

    top = doc.get("top", [])
    has_p = any("p_value" in row for row in top)
    run_id = doc.get("run_id")
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        header = ["rank", "snps", "snp_names", "score"]
        if has_p:
            header.append("p_value")
        if run_id:
            header.append("run_id")
        writer.writerow(header)
        for row in top:
            record = [
                row["rank"],
                ";".join(str(s) for s in row["snps"]),
                ";".join(row["snp_names"]) if row.get("snp_names") else "",
                row["score"],
            ]
            if has_p:
                record.append(row.get("p_value", ""))
            if run_id:
                record.append(run_id)
            writer.writerow(record)


def _print_distributed_summary(distributed: dict | None) -> None:
    if not distributed:
        return
    restored = distributed.get("shards_restored", 0)
    note = f", {restored} restored from checkpoint" if restored else ""
    print(
        f"distributed : {distributed.get('workers')} worker(s), "
        f"{distributed.get('n_shards')} shards "
        f"({distributed.get('strategy')} plan{note})"
    )
    if distributed.get("shm"):
        plane = distributed.get("data_plane") or {}
        print(
            f"data plane  : shm on, pool {distributed.get('pool', 'keep')} "
            f"({plane.get('segments_published', 0)} segment(s) published, "
            f"{plane.get('segments_reused', 0)} reused, "
            f"{plane.get('segments_attached', 0)} worker attach(es))"
        )
    resilience = distributed.get("resilience") or {}
    faulted = (
        resilience.get("retries", 0)
        or resilience.get("watchdog_kills", 0)
        or resilience.get("pool_breaks", 0)
        or resilience.get("quarantined")
    )
    if faulted:
        quarantined = resilience.get("quarantined") or []
        print(
            f"resilience  : {resilience.get('retries', 0)} shard retr"
            f"{'y' if resilience.get('retries', 0) == 1 else 'ies'}, "
            f"{resilience.get('pool_breaks', 0)} pool break(s), "
            f"{resilience.get('watchdog_kills', 0)} watchdog kill(s), "
            f"{len(quarantined)} quarantined"
            + (f" {quarantined}" if quarantined else "")
            + f"; recovered on the '{resilience.get('ladder', 'warm')}' rung"
        )


def _print_device_summary(devices: dict) -> None:
    if len(devices) > 1:
        for label, entry in devices.items():
            print(
                f"device {label:<4s}: {entry['items']} combinations in "
                f"{entry['chunks']} chunks, utilization {entry['utilization']:.0%}"
            )


def _check_resume_flags(args: argparse.Namespace) -> bool:
    """``--resume`` without ``--checkpoint`` has no ledger to read — error
    out rather than silently re-running the whole sweep from scratch."""
    if args.resume and not args.checkpoint:
        print(
            "error: --resume requires --checkpoint (the ledger to restore "
            "completed shards from)",
            file=sys.stderr,
        )
        return False
    return True


def _telemetry_mode(args: argparse.Namespace) -> "str | None":
    """The run's telemetry mode: ``--trace-out`` implies ``full``."""
    if args.telemetry is not None:
        return args.telemetry
    if args.trace_out:
        return "full"
    return None


def _retry_policy(args: argparse.Namespace):
    """A :class:`RetryPolicy` from ``--shard-retries``/``--shard-deadline``
    (``None`` when neither was given, deferring to the default policy)."""
    if args.shard_retries is None and args.shard_deadline is None:
        return None
    from repro.distributed.resilience import DEFAULT_RETRY_POLICY, RetryPolicy

    base = DEFAULT_RETRY_POLICY
    return RetryPolicy(
        max_attempts=(
            args.shard_retries
            if args.shard_retries is not None
            else base.max_attempts
        ),
        shard_deadline_seconds=args.shard_deadline,
    )


def _build_detector(args: argparse.Namespace):
    from repro.core import EpistasisDetector

    return EpistasisDetector(
        approach=args.approach,
        objective=args.objective,
        order=args.order,
        n_workers=args.threads,
        chunk_size=args.chunk_size,
        top_k=args.top_k,
        devices=args.devices,
        schedule=args.schedule,
        word_layout=None if args.word_width == "auto" else args.word_width,
        backend=args.backend,
        fused=args.fused,
        telemetry=_telemetry_mode(args),
    )


def _export_trace(args: argparse.Namespace) -> None:
    """Write the finished run's trace file when ``--trace-out`` was given."""
    if not args.trace_out:
        return
    from repro.telemetry import last_run, write_trace

    run = last_run()
    if run is None:
        print(
            "warning: no telemetry session recorded; trace not written",
            file=sys.stderr,
        )
        return
    n_spans = write_trace(run, args.trace_out)
    print(f"wrote trace to {args.trace_out} ({n_spans} spans, run {run.run_id})")


def _print_telemetry_summary(telemetry: dict | None) -> None:
    if not telemetry:
        return
    print(
        f"telemetry   : {telemetry.get('mode')}, run {telemetry.get('run_id')} "
        f"({telemetry.get('n_spans')} spans, {telemetry.get('n_metrics')} metrics)"
    )


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.datasets import load_dataset

    if not _check_resume_flags(args):
        return 2
    dataset = load_dataset(args.dataset)
    detector = _build_detector(args)
    progress = _progress_printer() if args.progress else None
    try:
        result = detector.detect(
            dataset,
            progress=progress,
            workers=args.workers,
            checkpoint=args.checkpoint,
            resume=args.resume,
            pool=args.pool,
            shm=args.shm,
            retry=_retry_policy(args),
            faults=args.fault_plan,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.summary())
    backend = result.stats.extra.get("backend")
    if backend:
        print(f"backend     : {backend}")
    fused = result.stats.extra.get("fused")
    if fused:
        print(f"fused       : {fused}")
    _print_distributed_summary(result.stats.extra.get("distributed"))
    _print_device_summary(result.stats.extra.get("devices", {}))
    _print_telemetry_summary(result.stats.extra.get("telemetry"))
    _export_trace(args)
    if args.output:
        _export_result(args.output, result.to_dict())
        print(f"wrote results to {args.output}")
    return 0


def _stage_progress_printer():
    """Per-stage progress callback printing a line per completed decile."""
    deciles: dict = {}

    def progress(stage: str, done: int, total: int) -> None:
        pct = 100 if total == 0 else done * 100 // total
        if pct // 10 > deciles.get(stage, -1):
            deciles[stage] = pct // 10
            print(
                f"{stage}: {pct:3d}% ({done}/{total})",
                file=sys.stderr,
                flush=True,
            )

    return progress


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from repro.datasets import load_dataset

    if not _check_resume_flags(args):
        return 2
    dataset = load_dataset(args.dataset)
    detector = _build_detector(args)
    progress = _stage_progress_printer() if args.progress else None
    try:
        result = detector.detect_staged(
            dataset,
            screen_order=args.screen_order,
            keep_snps=args.retain,
            refine_objective=args.refine_objective,
            n_permutations=args.permutations,
            permutation_seed=args.permutation_seed,
            progress=progress,
            workers=args.workers,
            checkpoint=args.checkpoint,
            resume=args.resume,
            pool=args.pool,
            shm=args.shm,
            retry=_retry_policy(args),
            faults=args.fault_plan,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.summary())
    if args.workers > 1 or args.checkpoint:
        resumed = sum(1 for s in result.stages if s.extra.get("resumed"))
        note = f", {resumed} stage(s) restored from checkpoint" if resumed else ""
        print(
            f"distributed : {args.workers} worker(s) per sweep stage"
            + (f", checkpoint {args.checkpoint}" if args.checkpoint else "")
            + note
        )
    for stage in result.stages:
        _print_device_summary(stage.device_stats)
    if _telemetry_mode(args) not in (None, "off"):
        print(f"telemetry   : {_telemetry_mode(args)}, run {result.run_id}")
    _export_trace(args)
    if args.output:
        _export_result(args.output, result.to_dict())
        print(f"wrote results to {args.output}")
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    from repro.backends import (
        BACKENDS,
        CalibrationStore,
        calibrate,
        list_backends,
        resolve_backend_name,
    )
    from repro.bitops.packing import get_layout

    layout = get_layout(None if args.word_width == "auto" else args.word_width)
    store = CalibrationStore()
    if args.calibrate:
        records = calibrate(
            families=(args.family,),
            orders=(args.order,),
            layout=layout,
            store=store,
            repeats=args.repeats,
        )
        if not args.json:
            for rec in records:
                print(
                    f"calibrated {rec.backend:<6s} {rec.family}/k{rec.order}/"
                    f"{rec.layout}: {rec.combos_per_second:,.0f} combos/s "
                    f"({rec.probe_seconds:.2f}s probe)"
                )
            print(f"store       : {store.path}")

    default = resolve_backend_name()
    rows = []
    for row in list_backends():
        cls = BACKENDS[row["name"]]
        record = store.lookup(
            row["name"],
            cls.version() or "unknown",
            args.family,
            args.order,
            layout.name,
        )
        rows.append(
            {
                **row,
                "default": row["name"] == default,
                "calibrated_combos_per_second": (
                    record.combos_per_second if record else None
                ),
                "calibrated_elements_per_second": (
                    record.elements_per_second if record else None
                ),
            }
        )

    if args.json:
        import json

        print(
            json.dumps(
                {
                    "default": default,
                    "family": args.family,
                    "order": args.order,
                    "layout": layout.name,
                    "store": str(store.path),
                    "backends": rows,
                },
                indent=2,
            )
        )
        return 0

    print(f"default     : {default} ({args.family}/k{args.order}/{layout.name})")
    for row in rows:
        status = "available" if row["available"] else "unavailable"
        marker = "*" if row["default"] else " "
        calibrated = (
            f"{row['calibrated_combos_per_second']:,.0f} combos/s"
            if row["calibrated_combos_per_second"]
            else "not calibrated"
        )
        print(
            f"{marker} {row['name']:<6s} [{row['kind']:<3s}] {status:<11s} "
            f"{row['detail']:<24s} {calibrated}"
        )
        print(f"          {row['description']}")
    return 0


def _cmd_shm(args: argparse.Namespace) -> int:
    from repro.distributed.shm import reap_orphans, scan_segments

    if args.shm_command == "ls":
        infos = scan_segments()
        if args.json:
            import json

            print(json.dumps([info.to_dict() for info in infos], indent=2))
            return 0
        if not infos:
            print("no repro shared-memory segments")
            return 0
        print(f"{'segment':<28s} {'kind':<9s} {'size':>12s} {'owner':>8s} state")
        for info in infos:
            if not info.valid:
                state = "torn"
            elif info.owner_alive is False:
                state = "orphaned"
            elif info.owner_alive is None:
                state = "unknown"
            else:
                state = "live"
            owner = str(info.owner_pid) if info.owner_pid else "-"
            print(
                f"{info.name:<28s} {info.kind or '-':<9s} "
                f"{info.size:>12,d} {owner:>8s} {state}"
            )
        return 0

    reclaimed = reap_orphans(dry_run=args.dry_run, force=args.force)
    verb = "would reap" if args.dry_run else "reaped"
    if not reclaimed:
        print("nothing to reap: no torn or dead-owner segments")
        return 0
    for info in reclaimed:
        reason = "torn" if not info.valid else (
            "dead owner" if info.owner_alive is False else "unknown owner"
        )
        print(f"{verb} {info.name} ({info.size:,d} bytes, {reason})")
    print(f"{verb} {len(reclaimed)} segment(s)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry import load_trace, summarize_spans

    try:
        manifest, spans, metrics = load_trace(args.path)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    host = manifest.get("host") or {}
    print(
        f"run         : {manifest.get('run_id', '?')} "
        f"(mode {manifest.get('mode', '?')})"
    )
    if host:
        print(
            f"host        : {host.get('host_cpus')} cpu(s), "
            f"python {host.get('python')}, numpy {host.get('numpy')}, "
            f"{host.get('word_layout')} words, backend {host.get('backend')}"
        )
    print()
    print(summarize_spans(spans))
    counters = metrics.get("counters") or {}
    if counters:
        ops = sum(v for k, v in counters.items() if k.startswith("ops."))
        print()
        print(
            f"metrics     : {len(counters)} counter(s), "
            f"{ops:,} word ops recorded"
        )
    return 0


def _cmd_devices(_: argparse.Namespace) -> int:
    from repro.experiments.tables import format_table1, format_table2

    print(format_table1())
    print()
    print(format_table2())
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.ablations import format_ablations
    from repro.experiments.comparison import format_comparison
    from repro.experiments.figure2 import format_figure2
    from repro.experiments.figure3 import format_figure3
    from repro.experiments.figure4 import format_figure4
    from repro.experiments.table3 import format_table3

    sections = {
        "figure2": format_figure2,
        "figure3": format_figure3,
        "figure4": format_figure4,
        "table3": format_table3,
        "comparison": format_comparison,
        "ablations": format_ablations,
    }
    chosen = sections if args.which == "all" else {args.which: sections[args.which]}
    for name, fn in chosen.items():
        print(f"================ {name} ================")
        print(fn())
        print()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "detect": _cmd_detect,
        "pipeline": _cmd_pipeline,
        "backends": _cmd_backends,
        "shm": _cmd_shm,
        "trace": _cmd_trace,
        "devices": _cmd_devices,
        "figures": _cmd_figures,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
