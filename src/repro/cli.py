"""Command-line interface.

``repro-epistasis`` (or ``python -m repro``) exposes the library's main entry
points without writing any Python:

* ``generate`` — create a synthetic case/control dataset (optionally with a
  planted interaction of any order 2-5) and save it to ``.npz`` or text;
* ``detect`` — run the exhaustive k-way search (``--order``, default 3) on a
  dataset file with a chosen approach/objective and print the best
  interactions;
* ``devices`` — print Tables I and II (the device catalog);
* ``figures`` — regenerate the paper's figures/tables from the analytical
  models (Figure 2, Figure 3, Figure 4, Table III, §V-D comparison,
  ablations).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


def _devices_expression(value: str) -> str:
    """argparse type for ``--devices``: validate early, keep the string."""
    from repro.engine import parse_devices

    try:
        parse_devices(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-epistasis",
        description="Exhaustive k-way epistasis detection (IPDPS 2022 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("output", help="output path (.npz or .csv/.txt)")
    gen.add_argument("--snps", type=int, default=64)
    gen.add_argument("--samples", type=int, default=1024)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--maf-low", type=float, default=0.05)
    gen.add_argument("--maf-high", type=float, default=0.5)
    gen.add_argument(
        "--interaction",
        type=int,
        nargs="+",
        metavar="SNP",
        help="plant an interaction at these 2-5 SNP indices "
        "(3 indices reproduce the paper's third-order setting)",
    )
    gen.add_argument(
        "--model",
        choices=("threshold", "multiplicative", "xor"),
        default="threshold",
        help="penetrance model of the planted interaction",
    )
    gen.add_argument("--effect", type=float, default=0.8)
    gen.add_argument("--baseline", type=float, default=0.05)

    det = sub.add_parser("detect", help="run the exhaustive k-way search")
    det.add_argument("dataset", help="dataset path (.npz or text)")
    det.add_argument("--approach", default="cpu-v4")
    det.add_argument("--objective", default="k2")
    det.add_argument(
        "--order",
        type=int,
        default=3,
        choices=(2, 3, 4, 5),
        help="interaction order k: 2 = pairwise screen, 3 = the paper's "
        "third-order search (default), 4/5 = higher-order searches; every "
        "approach supports every order",
    )
    det.add_argument("--workers", type=int, default=1)
    det.add_argument("--chunk-size", type=int, default=2048)
    det.add_argument("--top-k", type=int, default=5)
    det.add_argument(
        "--devices",
        default=None,
        type=_devices_expression,
        metavar="EXPR",
        help="execution-engine device lanes: 'cpu', 'gpu' or 'cpu+gpu' "
        "(default: the approach's own device kind)",
    )
    det.add_argument(
        "--schedule",
        default="dynamic",
        choices=("dynamic", "static", "guided", "carm"),
        help="engine scheduling policy; 'carm' splits work across device "
        "lanes proportionally to their modelled throughput",
    )
    det.add_argument(
        "--progress",
        action="store_true",
        help="print chunk-level progress to stderr",
    )

    sub.add_parser("devices", help="print the device catalog (Tables I and II)")

    fig = sub.add_parser("figures", help="regenerate figures/tables from the models")
    fig.add_argument(
        "which",
        choices=("figure2", "figure3", "figure4", "table3", "comparison", "ablations", "all"),
        nargs="?",
        default="all",
    )
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets import PlantedInteraction, SyntheticConfig, generate_dataset, save_npz, save_text

    interaction = None
    if args.interaction:
        if not 2 <= len(args.interaction) <= 5:
            print(
                f"error: --interaction takes 2 to 5 SNP indices, "
                f"got {len(args.interaction)}",
                file=sys.stderr,
            )
            return 2
        interaction = PlantedInteraction(
            snps=tuple(args.interaction),
            model=args.model,
            effect=args.effect,
            baseline=args.baseline,
        )
    config = SyntheticConfig(
        n_snps=args.snps,
        n_samples=args.samples,
        maf_range=(args.maf_low, args.maf_high),
        interaction=interaction,
        seed=args.seed,
    )
    dataset = generate_dataset(config)
    if args.output.endswith(".npz"):
        save_npz(dataset, args.output)
    else:
        save_text(dataset, args.output)
    print(f"wrote {dataset} to {args.output}")
    return 0


def _progress_printer():
    """Progress callback printing a line per completed decile to stderr."""
    last_decile = -1

    def progress(done: int, total: int) -> None:
        nonlocal last_decile
        pct = 100 if total == 0 else done * 100 // total
        if pct // 10 > last_decile:
            last_decile = pct // 10
            print(
                f"progress: {pct:3d}% ({done}/{total} combinations)",
                file=sys.stderr,
                flush=True,
            )

    return progress


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.core import EpistasisDetector
    from repro.datasets import load_dataset

    dataset = load_dataset(args.dataset)
    detector = EpistasisDetector(
        approach=args.approach,
        objective=args.objective,
        order=args.order,
        n_workers=args.workers,
        chunk_size=args.chunk_size,
        top_k=args.top_k,
        devices=args.devices,
        schedule=args.schedule,
    )
    progress = _progress_printer() if args.progress else None
    result = detector.detect(dataset, progress=progress)
    print(result.summary())
    devices = result.stats.extra.get("devices", {})
    if len(devices) > 1:
        for label, entry in devices.items():
            print(
                f"device {label:<4s}: {entry['items']} combinations in "
                f"{entry['chunks']} chunks, utilization {entry['utilization']:.0%}"
            )
    return 0


def _cmd_devices(_: argparse.Namespace) -> int:
    from repro.experiments.tables import format_table1, format_table2

    print(format_table1())
    print()
    print(format_table2())
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.ablations import format_ablations
    from repro.experiments.comparison import format_comparison
    from repro.experiments.figure2 import format_figure2
    from repro.experiments.figure3 import format_figure3
    from repro.experiments.figure4 import format_figure4
    from repro.experiments.table3 import format_table3

    sections = {
        "figure2": format_figure2,
        "figure3": format_figure3,
        "figure4": format_figure4,
        "table3": format_table3,
        "comparison": format_comparison,
        "ablations": format_ablations,
    }
    chosen = sections if args.which == "all" else {args.which: sections[args.which]}
    for name, fn in chosen.items():
        print(f"================ {name} ================")
        print(fn())
        print()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "detect": _cmd_detect,
        "devices": _cmd_devices,
        "figures": _cmd_figures,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
