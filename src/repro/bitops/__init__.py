"""Packed bit-level operations used by the epistasis detection kernels.

The paper's kernels operate on the BOOST binarised representation of a
case/control genotype matrix: one *bit-plane* per genotype value per SNP,
packed into 32-bit machine words.  Every frequency-table cell is produced by
a chain of bitwise ``AND`` operations followed by a population count
(``POPCNT``).  This package provides:

``popcount``
    Vectorised population count over packed word arrays, with both the
    hardware-backed (:func:`numpy.bitwise_count`) and lookup-table
    implementations (the latter models devices that only offer *scalar*
    POPCNT and is used by the instruction-cost accounting).

``packing``
    Conversion between boolean sample vectors and packed ``uint32`` word
    arrays (including padding rules, inverse transforms and word-level
    slicing helpers).

``simd``
    A software model of the vector ISAs the paper targets (SSE/AVX-128,
    AVX2-256, AVX-512 with and without vector POPCNT).  Vector "registers"
    are fixed-width views over packed words; every operation reports the
    dynamic instruction counts the CARM/performance models consume.

``ops``
    Thin wrappers (``and3``, ``nor``, ``andnot`` …) shared by the scalar and
    vector code paths together with an :class:`~repro.bitops.ops.OpCounter`
    used to instrument kernels.
"""

from repro.bitops.popcount import (
    popcount,
    popcount32,
    popcount64,
    popcount_lut,
    popcount_reduce,
    scalar_popcount,
)
from repro.bitops.packing import (
    DEFAULT_LAYOUT,
    WORD32,
    WORD64,
    WORD_BITS,
    WordLayout,
    default_layout,
    get_layout,
    layout_of,
    pack_bits,
    packed_word_count,
    unpack_bits,
    pad_to_words,
)
from repro.bitops.ops import OpCounter, and3, andnot, nor2, popcount_words
from repro.bitops.simd import VectorISA, VectorRegisterFile, ISA_PRESETS

__all__ = [
    "WORD_BITS",
    "WordLayout",
    "WORD32",
    "WORD64",
    "DEFAULT_LAYOUT",
    "default_layout",
    "get_layout",
    "layout_of",
    "popcount",
    "popcount32",
    "popcount64",
    "popcount_lut",
    "popcount_reduce",
    "scalar_popcount",
    "pack_bits",
    "unpack_bits",
    "pad_to_words",
    "packed_word_count",
    "OpCounter",
    "and3",
    "andnot",
    "nor2",
    "popcount_words",
    "VectorISA",
    "VectorRegisterFile",
    "ISA_PRESETS",
]
