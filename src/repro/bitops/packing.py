"""Packing boolean sample vectors into machine words.

The paper compresses the genotype information of every SNP into bit-planes:
for SNP ``X`` and genotype value ``g`` the plane ``X[g]`` has one bit per
sample which is set iff that sample carries genotype ``g`` at ``X``
(Figure 1 of the paper).  The paper packs these planes into 32-bit unsigned
integers, "due to their compatibility with all the considered
devices/architectures" (§IV) — and 32 bits remains the **paper word**: the
unit all §IV instruction accounting (162 vs 57 instructions per word) and
the CARM byte-traffic charges are expressed in.

The *execution* word width is a separate concern.  A :class:`WordLayout`
describes the machine word the kernels actually stream (``uint32`` or
``uint64``); on NumPy >= 2 (``np.bitwise_count``) the 64-bit layout is the
default because it halves the number of elements every AND/POPCNT touches
without changing a single resulting bit.  Op/traffic charging stays per
paper word — callers convert with :attr:`WordLayout.paper_words` at the
charging boundary, so the §IV accounting and the CARM splits remain honest
regardless of the execution width.

Packing conventions
-------------------
* Samples are laid out little-endian *within* a word: sample ``s`` occupies
  bit ``s % bits`` of word ``s // bits``.
* The number of words per plane is ``ceil(n_samples / bits)``; padding bits
  in the last word are always **zero**.  Keeping the padding clear is
  essential: a stray set bit would corrupt every frequency table built from
  the plane.
* A ``uint64`` plane viewed as ``<u4`` is bit-for-bit the corresponding
  ``uint32`` plane padded to an even word count (little-endian byte order),
  which is what makes the two layouts interchangeable at the bit level.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

__all__ = [
    "WORD_BITS",
    "WORD_DTYPE",
    "WordLayout",
    "WORD32",
    "WORD64",
    "WORD_LAYOUTS",
    "DEFAULT_LAYOUT",
    "get_layout",
    "default_layout",
    "layout_of",
    "paper_word_ratio",
    "packed_word_count",
    "pad_to_words",
    "pack_bits",
    "unpack_bits",
    "pack_bitplanes",
]

#: Number of sample bits per **paper** word (the §IV accounting unit).
WORD_BITS: int = 32

#: NumPy dtype of a paper word.
WORD_DTYPE = np.uint32


@dataclass(frozen=True)
class WordLayout:
    """A machine-word layout for packed bit-planes.

    Attributes
    ----------
    name:
        Registry key (``"u32"`` / ``"u64"``).
    bits:
        Sample bits per machine word.
    dtype:
        NumPy dtype of a packed word.
    """

    name: str
    bits: int
    dtype: type

    def __post_init__(self) -> None:
        if self.bits % WORD_BITS != 0:
            raise ValueError(
                f"word width {self.bits} must be a multiple of the paper's "
                f"{WORD_BITS}-bit word"
            )

    @property
    def bytes(self) -> int:
        """Bytes per machine word."""
        return self.bits // 8

    @property
    def paper_words(self) -> int:
        """Paper (32-bit) words per machine word — the charging conversion."""
        return self.bits // WORD_BITS

    @property
    def all_ones(self) -> int:
        """The all-bits-set word value (for padding masks)."""
        return (1 << self.bits) - 1

    def word_count(self, n_samples: int) -> int:
        """Machine words needed to store ``n_samples`` bits."""
        if n_samples < 0:
            raise ValueError("n_samples must be non-negative")
        return (n_samples + self.bits - 1) // self.bits

    def padding_mask(self, n_valid: int) -> np.ndarray:
        """Per-word mask of valid sample bits for an ``n_valid``-bit plane."""
        mask = np.full(self.word_count(n_valid), self.all_ones, dtype=self.dtype)
        rem = n_valid % self.bits
        if rem:
            mask[-1] = self.dtype((1 << rem) - 1)
        return mask

    def __str__(self) -> str:
        return self.name


#: The paper-fidelity 32-bit layout.
WORD32 = WordLayout(name="u32", bits=32, dtype=np.uint32)

#: The wide 64-bit layout (halves the element count of every kernel op).
WORD64 = WordLayout(name="u64", bits=64, dtype=np.uint64)

#: Registry of layouts by name (plus the accepted width aliases).
WORD_LAYOUTS = {
    "u32": WORD32,
    "u64": WORD64,
    "32": WORD32,
    "64": WORD64,
    "uint32": WORD32,
    "uint64": WORD64,
}


def default_layout() -> WordLayout:
    """The execution-word layout encodings use when none is requested.

    ``uint64`` when the running NumPy has a native population count
    (``np.bitwise_count``, NumPy >= 2), else ``uint32``.  The environment
    variable ``REPRO_WORD_WIDTH`` (``32`` / ``64``) overrides the choice —
    used by the CI paper-fidelity job to force the 32-bit path.
    """
    forced = os.environ.get("REPRO_WORD_WIDTH", "").strip().lower()
    if forced:
        if forced not in WORD_LAYOUTS:
            raise ValueError(
                f"REPRO_WORD_WIDTH={forced!r} is not a known word layout; "
                f"valid values: {sorted(WORD_LAYOUTS)}"
            )
        return WORD_LAYOUTS[forced]
    return WORD64 if hasattr(np, "bitwise_count") else WORD32


#: Layout resolved once at import time (consult :func:`default_layout` for a
#: fresh environment read).
DEFAULT_LAYOUT: WordLayout = default_layout()


def get_layout(layout: "str | WordLayout | None") -> WordLayout:
    """Resolve a layout by name, pass an instance through, default on None."""
    if layout is None:
        return DEFAULT_LAYOUT
    if isinstance(layout, WordLayout):
        return layout
    key = str(layout).strip().lower()
    if key in ("auto", "default"):
        return DEFAULT_LAYOUT
    if key not in WORD_LAYOUTS:
        raise KeyError(
            f"unknown word layout {layout!r}; available: "
            f"{sorted(set(v.name for v in WORD_LAYOUTS.values()))}"
        )
    return WORD_LAYOUTS[key]


def layout_of(words: np.ndarray) -> WordLayout:
    """The layout a packed word array was built with (from its dtype)."""
    dtype = np.asarray(words).dtype
    if dtype == np.uint32:
        return WORD32
    if dtype == np.uint64:
        return WORD64
    raise TypeError(f"packed words must be uint32 or uint64, got {dtype}")


def paper_word_ratio(words: np.ndarray) -> int:
    """Paper (32-bit) words per element of a packed word array.

    The single conversion used at every charging boundary (kernels, op
    counters, SIMD register accounting, warp-load models), so the §IV
    per-word accounting stays layout-independent by one definition.
    Tolerant of any integer dtype (sub-32-bit elements count as one paper
    word), matching the op-counter helpers it backs.
    """
    return max(1, np.asarray(words).dtype.itemsize // 4)


def packed_word_count(n_samples: int, layout: "str | WordLayout" = WORD32) -> int:
    """Number of words needed to store ``n_samples`` bits.

    The default is the paper's 32-bit word so that existing perf-model and
    accounting call sites keep their §IV semantics; pass a layout for
    machine-word counts.
    """
    return get_layout(layout).word_count(n_samples)


def pad_to_words(bits: np.ndarray, layout: "str | WordLayout" = WORD32) -> np.ndarray:
    """Pad the last axis of a boolean array with zeros to a word multiple.

    Returns a *new* array whose last-axis length is ``bits * word_count``.
    If the input is already aligned the original array is returned unchanged
    (a view, no copy), following the "views, not copies" guidance for
    memory-bound numerical code.
    """
    word_layout = get_layout(layout)
    arr = np.asarray(bits, dtype=bool)
    n = arr.shape[-1]
    padded_len = word_layout.word_count(n) * word_layout.bits
    if padded_len == n:
        return arr
    pad_width = [(0, 0)] * (arr.ndim - 1) + [(0, padded_len - n)]
    return np.pad(arr, pad_width, mode="constant", constant_values=False)


def pack_bits(bits: np.ndarray, layout: "str | WordLayout" = WORD32) -> np.ndarray:
    """Pack a boolean array into little-endian machine words.

    The packing applies along the last axis; a ``(..., n_samples)`` boolean
    array becomes a ``(..., word_count(n_samples))`` array of the layout's
    dtype.  The default layout is the paper's ``uint32`` word; encodings
    pass their execution layout explicitly.

    Examples
    --------
    >>> import numpy as np
    >>> pack_bits(np.array([1, 0, 1, 1], dtype=bool))
    array([13], dtype=uint32)
    """
    word_layout = get_layout(layout)
    arr = pad_to_words(bits, word_layout)
    packed_u8 = np.packbits(arr, axis=-1, bitorder="little")
    # ``layout.bytes`` little-endian bytes per machine word.  ``packbits``
    # already produces a C-contiguous array, so the view is free.
    per_word = word_layout.bytes
    new_shape = packed_u8.shape[:-1] + (packed_u8.shape[-1] // per_word,)
    spec = f"<u{per_word}"
    return np.ascontiguousarray(packed_u8).view(spec).reshape(new_shape)


def unpack_bits(words: np.ndarray, n_samples: int) -> np.ndarray:
    """Inverse of :func:`pack_bits` for either word layout.

    Parameters
    ----------
    words:
        ``uint32`` or ``uint64`` array produced by :func:`pack_bits`
        (last axis = words); the layout is inferred from the dtype.
    n_samples:
        Number of valid sample bits; the padded tail is discarded.

    Returns
    -------
    numpy.ndarray
        Boolean array with last-axis length ``n_samples``.
    """
    arr = np.asarray(words)
    word_layout = layout_of(arr)
    if word_layout.word_count(n_samples) != arr.shape[-1]:
        raise ValueError(
            f"word count {arr.shape[-1]} does not match n_samples={n_samples} "
            f"(expected {word_layout.word_count(n_samples)})"
        )
    as_bytes = np.ascontiguousarray(arr).view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="little")
    return bits[..., :n_samples].astype(bool)


def pack_bitplanes(
    genotypes: np.ndarray,
    n_genotypes: int = 3,
    layout: "str | WordLayout" = WORD32,
) -> np.ndarray:
    """Pack a genotype matrix into per-genotype bit-planes.

    Parameters
    ----------
    genotypes:
        ``(n_snps, n_samples)`` integer array with values in
        ``range(n_genotypes)`` (0 = homozygous major, 1 = heterozygous,
        2 = homozygous minor).
    n_genotypes:
        Number of genotype values (3 for bi-allelic SNPs).
    layout:
        Machine-word layout of the produced planes (paper ``uint32`` by
        default; the encodings pass their execution layout).

    Returns
    -------
    numpy.ndarray
        ``(n_snps, n_genotypes, n_words)`` array: plane ``[i, g]``
        has the bit for sample ``s`` set iff ``genotypes[i, s] == g``.
    """
    word_layout = get_layout(layout)
    geno = np.asarray(genotypes)
    if geno.ndim != 2:
        raise ValueError("genotypes must be a 2-D (n_snps, n_samples) array")
    if geno.size and (geno.min() < 0 or geno.max() >= n_genotypes):
        raise ValueError(
            f"genotype values must be in [0, {n_genotypes}); "
            f"found range [{geno.min()}, {geno.max()}]"
        )
    planes = np.stack(
        [pack_bits(geno == g, word_layout) for g in range(n_genotypes)], axis=1
    )
    return planes
