"""Packing boolean sample vectors into 32-bit machine words.

The paper compresses the genotype information of every SNP into bit-planes:
for SNP ``X`` and genotype value ``g`` the plane ``X[g]`` has one bit per
sample which is set iff that sample carries genotype ``g`` at ``X``
(Figure 1 of the paper).  All kernels operate on these planes packed into
32-bit unsigned integers, "due to their compatibility with all the considered
devices/architectures" (§IV).

Packing conventions
-------------------
* Samples are laid out little-endian *within* a word: sample ``s`` occupies
  bit ``s % 32`` of word ``s // 32``.
* The number of words per plane is ``ceil(n_samples / 32)``; padding bits in
  the last word are always **zero**.  Keeping the padding clear is essential:
  a stray set bit would corrupt every frequency table built from the plane.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WORD_BITS",
    "WORD_DTYPE",
    "packed_word_count",
    "pad_to_words",
    "pack_bits",
    "unpack_bits",
    "pack_bitplanes",
]

#: Number of sample bits stored per packed word.
WORD_BITS: int = 32

#: NumPy dtype of a packed word.
WORD_DTYPE = np.uint32


def packed_word_count(n_samples: int) -> int:
    """Number of 32-bit words needed to store ``n_samples`` bits."""
    if n_samples < 0:
        raise ValueError("n_samples must be non-negative")
    return (n_samples + WORD_BITS - 1) // WORD_BITS


def pad_to_words(bits: np.ndarray) -> np.ndarray:
    """Pad the last axis of a boolean array with zeros to a multiple of 32.

    Returns a *new* array whose last-axis length is ``32 * packed_word_count``.
    If the input is already aligned the original array is returned unchanged
    (a view, no copy), following the "views, not copies" guidance for
    memory-bound numerical code.
    """
    arr = np.asarray(bits, dtype=bool)
    n = arr.shape[-1]
    padded_len = packed_word_count(n) * WORD_BITS
    if padded_len == n:
        return arr
    pad_width = [(0, 0)] * (arr.ndim - 1) + [(0, padded_len - n)]
    return np.pad(arr, pad_width, mode="constant", constant_values=False)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean array into little-endian ``uint32`` words.

    The packing applies along the last axis; a ``(..., n_samples)`` boolean
    array becomes a ``(..., packed_word_count(n_samples))`` ``uint32`` array.

    Examples
    --------
    >>> import numpy as np
    >>> pack_bits(np.array([1, 0, 1, 1], dtype=bool))
    array([13], dtype=uint32)
    """
    arr = pad_to_words(bits)
    packed_u8 = np.packbits(arr, axis=-1, bitorder="little")
    # Four little-endian bytes per 32-bit word.  ``packbits`` already produces
    # a C-contiguous array, so the view is free.
    new_shape = packed_u8.shape[:-1] + (packed_u8.shape[-1] // 4,)
    return np.ascontiguousarray(packed_u8).view("<u4").reshape(new_shape)


def unpack_bits(words: np.ndarray, n_samples: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`.

    Parameters
    ----------
    words:
        ``uint32`` array produced by :func:`pack_bits` (last axis = words).
    n_samples:
        Number of valid sample bits; the padded tail is discarded.

    Returns
    -------
    numpy.ndarray
        Boolean array with last-axis length ``n_samples``.
    """
    arr = np.asarray(words, dtype=WORD_DTYPE)
    if packed_word_count(n_samples) != arr.shape[-1]:
        raise ValueError(
            f"word count {arr.shape[-1]} does not match n_samples={n_samples} "
            f"(expected {packed_word_count(n_samples)})"
        )
    as_bytes = np.ascontiguousarray(arr).view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="little")
    return bits[..., :n_samples].astype(bool)


def pack_bitplanes(genotypes: np.ndarray, n_genotypes: int = 3) -> np.ndarray:
    """Pack a genotype matrix into per-genotype bit-planes.

    Parameters
    ----------
    genotypes:
        ``(n_snps, n_samples)`` integer array with values in
        ``range(n_genotypes)`` (0 = homozygous major, 1 = heterozygous,
        2 = homozygous minor).
    n_genotypes:
        Number of genotype values (3 for bi-allelic SNPs).

    Returns
    -------
    numpy.ndarray
        ``(n_snps, n_genotypes, n_words)`` ``uint32`` array: plane ``[i, g]``
        has the bit for sample ``s`` set iff ``genotypes[i, s] == g``.
    """
    geno = np.asarray(genotypes)
    if geno.ndim != 2:
        raise ValueError("genotypes must be a 2-D (n_snps, n_samples) array")
    if geno.size and (geno.min() < 0 or geno.max() >= n_genotypes):
        raise ValueError(
            f"genotype values must be in [0, {n_genotypes}); "
            f"found range [{geno.min()}, {geno.max()}]"
        )
    planes = np.stack(
        [pack_bits(geno == g) for g in range(n_genotypes)], axis=1
    )
    return planes
