"""Software model of the vector ISAs targeted by the paper.

The fourth (best) CPU approach of the paper vectorises the frequency-table
construction with AVX or AVX-512 intrinsics.  Two micro-architectural details
dominate its performance (§V-B):

* whether the CPU offers a **vector POPCNT** (``VPOPCNTDQ``, Ice Lake SP
  only among the tested parts) — without it, every vector register has to be
  decomposed into 64-bit lanes with *extract* instructions and counted with
  the scalar ``POPCNT``;
* the number of extract instructions needed per 64-bit lane (one on AVX,
  two on Skylake-SP AVX-512, which is why AVX-512 on Skylake-SP is *slower*
  than plain AVX for this workload).

This module reproduces those code paths at word granularity.  A
:class:`VectorISA` describes the register width and POPCNT capabilities, and
a :class:`VectorRegisterFile` executes loads/logical ops/population counts
over packed ``uint32`` arrays in register-sized chunks while recording the
*vector-instruction* counts that the CPU performance model converts into
cycles.  Functionally the results are identical to the plain NumPy
implementation — the value of the model is the instruction accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.bitops.ops import OpCounter
from repro.bitops.popcount import popcount32, popcount64

__all__ = ["VectorISA", "VectorRegisterFile", "ISA_PRESETS", "isa_for_name"]


def _as_words32(words: np.ndarray) -> np.ndarray:
    """Reinterpret a packed array as 32-bit lanes without changing any bit.

    A ``uint64`` plane viewed as little-endian ``uint32`` is exactly the
    same bit stream with twice the elements, so the register file's 32-bit
    lane accounting stays in the paper's units for either execution layout.
    """
    arr = np.asarray(words)
    if arr.dtype == np.uint64:
        return np.ascontiguousarray(arr).view(np.uint32)
    return np.asarray(arr, dtype=np.uint32)


@dataclass(frozen=True)
class VectorISA:
    """Description of a vector instruction-set architecture.

    Attributes
    ----------
    name:
        Human-readable identifier (``"avx2-256"``, ``"avx512-vpopcnt"``, …).
    width_bits:
        Vector register width in bits (128, 256 or 512; 64 denotes the
        scalar baseline).
    has_vector_popcnt:
        ``True`` if a vector population-count instruction is available
        (Ice Lake SP); otherwise the scalar-extract path is modelled.
    extracts_per_lane:
        Number of extract instructions needed to move one 64-bit lane of a
        vector register into a scalar register.  1 for AVX/AVX2; 2 for
        Skylake-SP AVX-512 (``_mm256_extract_epi64`` after
        ``_mm512_extracti64x4_epi64``), as described in §IV-A / §V-B.
    """

    name: str
    width_bits: int
    has_vector_popcnt: bool
    extracts_per_lane: int = 1

    def __post_init__(self) -> None:
        if self.width_bits not in (64, 128, 256, 512):
            raise ValueError(f"unsupported vector width: {self.width_bits} bits")
        if self.extracts_per_lane < 0:
            raise ValueError("extracts_per_lane must be non-negative")

    # -- derived geometry ---------------------------------------------------
    @property
    def lanes32(self) -> int:
        """Number of 32-bit elements per vector register."""
        return self.width_bits // 32

    @property
    def lanes64(self) -> int:
        """Number of 64-bit lanes per vector register (extract granularity)."""
        return max(1, self.width_bits // 64)

    @property
    def samples_per_register(self) -> int:
        """Number of sample bits covered by one register (32 per word)."""
        return self.lanes32 * 32

    @property
    def is_scalar(self) -> bool:
        """``True`` for the 64-bit scalar baseline."""
        return self.width_bits == 64

    # -- instruction-cost helpers ------------------------------------------
    def popcount_instruction_cost(self) -> Dict[str, int]:
        """Instruction mix for counting the bits of *one* vector register.

        Returns a mnemonic → count mapping.  With vector POPCNT the cost is
        one ``VPOPCNT`` plus one ``VREDUCE_ADD``; without it the register is
        decomposed into 64-bit lanes, each requiring ``extracts_per_lane``
        ``EXTRACT`` instructions, one scalar ``POPCNT`` and one scalar
        ``ADD``.
        """
        if self.has_vector_popcnt:
            return {"VPOPCNT": 1, "VREDUCE_ADD": 1}
        lanes = self.lanes64
        return {
            "EXTRACT": lanes * self.extracts_per_lane,
            "POPCNT": lanes,
            "ADD": lanes,
        }

    def instructions_per_combination(self) -> Dict[str, int]:
        """Vector-instruction mix to evaluate one genotype combination block.

        One combination requires, per register-width block of samples and per
        phenotype class: 6 loads and 3 NORs (amortised over 27 combinations),
        plus 2 ANDs and one population count per combination.  This helper
        returns the per-combination (27ths of the amortised work included)
        mix used by the analytical CPU model.
        """
        mix: Dict[str, int] = {"VAND": 2}
        # Amortised loads and NORs: 6 loads + 3 NOR (=3 OR + 3 XOR) per 27
        # combinations.  Stored as milli-ops to stay integral.
        mix["VLOAD_x27"] = 6
        mix["VNOR_x27"] = 3
        for k, v in self.popcount_instruction_cost().items():
            mix[k] = mix.get(k, 0) + v
        return mix


#: The vector ISAs appearing in Table I of the paper.
ISA_PRESETS: Dict[str, VectorISA] = {
    "scalar64": VectorISA("scalar64", 64, has_vector_popcnt=False, extracts_per_lane=0),
    # AMD Zen: AVX ops split into two 128-bit halves -> effective 128-bit.
    "avx-128": VectorISA("avx-128", 128, has_vector_popcnt=False, extracts_per_lane=1),
    # Intel Skylake (client), AMD Zen2: 256-bit AVX(2), scalar POPCNT only.
    "avx2-256": VectorISA("avx2-256", 256, has_vector_popcnt=False, extracts_per_lane=1),
    # Intel Skylake-SP: AVX-512 but scalar POPCNT, two extracts per lane.
    "avx512-skx": VectorISA("avx512-skx", 512, has_vector_popcnt=False, extracts_per_lane=2),
    # Intel Ice Lake SP: AVX-512 with VPOPCNTDQ.
    "avx512-vpopcnt": VectorISA("avx512-vpopcnt", 512, has_vector_popcnt=True, extracts_per_lane=0),
}


def isa_for_name(name: str) -> VectorISA:
    """Look up a preset ISA by name (case-insensitive).

    Raises
    ------
    KeyError
        If ``name`` is not one of :data:`ISA_PRESETS`.
    """
    key = name.lower()
    if key not in ISA_PRESETS:
        known = ", ".join(sorted(ISA_PRESETS))
        raise KeyError(f"unknown ISA {name!r}; known ISAs: {known}")
    return ISA_PRESETS[key]


class VectorRegisterFile:
    """Executes packed-word kernels in register-width chunks.

    The register file is stateless with respect to data (operands are plain
    NumPy arrays); its job is to (a) enforce that operations happen in
    register-sized chunks, matching the intrinsics code of the paper, and
    (b) charge vector-instruction counts to an :class:`OpCounter` so the
    performance model can translate the mix into cycles.

    Word arrays handed to the register file are processed whole; the number
    of vector instructions charged is ``ceil(n_words / lanes32)`` per
    operation, i.e. partially-filled trailing registers cost a full
    instruction, exactly as on hardware.
    """

    def __init__(self, isa: VectorISA, counter: OpCounter | None = None) -> None:
        self.isa = isa
        self.counter = counter if counter is not None else OpCounter()

    # -- accounting ---------------------------------------------------------
    def _registers_for(self, arr: np.ndarray) -> int:
        # Register occupancy is counted in 32-bit lanes: a uint64 operand
        # fills two lanes per element, so both layouts charge identically.
        from repro.bitops.packing import paper_word_ratio

        a = np.asarray(arr)
        n_words = int(a.size) * paper_word_ratio(a)
        lanes = self.isa.lanes32
        return (n_words + lanes - 1) // lanes

    def _charge(self, mnemonic: str, arr: np.ndarray, per_register: int = 1) -> None:
        self.counter.add(mnemonic, per_register * self._registers_for(arr))

    # -- data movement ------------------------------------------------------
    def load(self, words: np.ndarray) -> np.ndarray:
        """Vector load: returns the operand and charges ``VLOAD`` + traffic."""
        arr = _as_words32(words)
        self._charge("VLOAD", arr)
        self.counter.bytes_loaded += arr.size * 4
        return arr

    def store(self, words: np.ndarray) -> np.ndarray:
        """Vector store accounting (returns the operand unchanged)."""
        arr = _as_words32(words)
        self._charge("VSTORE", arr)
        self.counter.bytes_stored += arr.size * 4
        return arr

    # -- logical operations --------------------------------------------------
    def vand(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vector bitwise AND (one ``VAND`` per register)."""
        out = np.bitwise_and(_as_words32(a), _as_words32(b))
        self._charge("VAND", out)
        return out

    def vand3(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
        """Three-input AND: two ``VAND`` instructions per register."""
        out = np.bitwise_and(
            np.bitwise_and(_as_words32(a), _as_words32(b)), _as_words32(c)
        )
        self._charge("VAND", out, per_register=2)
        return out

    def vor(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vector bitwise OR."""
        out = np.bitwise_or(_as_words32(a), _as_words32(b))
        self._charge("VOR", out)
        return out

    def vxor(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vector bitwise XOR."""
        out = np.bitwise_xor(_as_words32(a), _as_words32(b))
        self._charge("VXOR", out)
        return out

    def vnor(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vector NOR emulated as OR + XOR-with-ones (two instructions)."""
        out = np.bitwise_not(np.bitwise_or(_as_words32(a), _as_words32(b)))
        self._charge("VOR", out)
        self._charge("VXOR", out)
        return out

    # -- population count ----------------------------------------------------
    def vpopcount_accumulate(self, words: np.ndarray) -> int:
        """Count the set bits of ``words`` and charge the ISA-specific cost.

        With vector POPCNT: one ``VPOPCNT`` + one ``VREDUCE_ADD`` per
        register.  Without it: per 64-bit lane, ``extracts_per_lane``
        ``EXTRACT`` instructions, one scalar ``POPCNT`` and one scalar
        ``ADD`` — the dominant cost on every tested CPU except Ice Lake SP.
        """
        arr = _as_words32(words)
        n_registers = self._registers_for(arr)
        if self.isa.has_vector_popcnt:
            self.counter.add("VPOPCNT", n_registers)
            self.counter.add("VREDUCE_ADD", n_registers)
            return int(popcount32(arr).sum())
        # Scalar-extract path: pair 32-bit words into 64-bit lanes.
        n_lanes = n_registers * self.isa.lanes64
        self.counter.add("EXTRACT", n_lanes * self.isa.extracts_per_lane)
        self.counter.add("POPCNT", n_lanes)
        self.counter.add("ADD", n_lanes)
        if arr.size % 2 == 0:
            as64 = np.ascontiguousarray(arr).view(np.uint64)
            return int(popcount64(as64).sum())
        return int(popcount32(arr).sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"VectorRegisterFile(isa={self.isa.name!r})"
