"""Instrumented bitwise operations shared by all kernels.

The CARM characterisation (Figure 2) and the analytical performance models
need exact dynamic instruction and byte-traffic counts per kernel.  Rather
than estimating them on paper, every kernel in :mod:`repro.core.approaches`
routes its bitwise work through the helpers in this module, which update an
:class:`OpCounter` as a side effect.  The counters use the paper's own
vocabulary (``LOAD``, ``AND``, ``NOR``, ``NOT``, ``POPCNT``, ``EXTRACT``,
``ADD``) so that the derived arithmetic intensities can be compared directly
with §IV ("162 compute instructions" for the naïve approach vs. "57" once the
phenotype and the third genotype are removed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping

import numpy as np

from repro.bitops.popcount import popcount

__all__ = ["OpCounter", "and2", "and3", "andnot", "nor2", "popcount_words"]


@dataclass
class OpCounter:
    """Accumulates dynamic instruction counts and memory traffic.

    Attributes
    ----------
    ops:
        Mapping from instruction mnemonic to the number of *word-level*
        operations executed (one count per 32-bit word processed, i.e. the
        scalar-instruction equivalent; the SIMD layer divides by the number
        of lanes when modelling vector execution).
    bytes_loaded / bytes_stored:
        Memory traffic in bytes, counted at the same word granularity.
    """

    ops: Dict[str, int] = field(default_factory=dict)
    bytes_loaded: int = 0
    bytes_stored: int = 0

    # -- recording ---------------------------------------------------------
    def add(self, mnemonic: str, count: int = 1) -> None:
        """Record ``count`` executions of ``mnemonic``."""
        if count < 0:
            raise ValueError("operation count must be non-negative")
        self.ops[mnemonic] = self.ops.get(mnemonic, 0) + int(count)

    def add_load(self, n_words: int, word_bytes: int = 4) -> None:
        """Record loading ``n_words`` packed words from memory."""
        self.add("LOAD", n_words)
        self.bytes_loaded += int(n_words) * word_bytes

    def add_store(self, n_words: int, word_bytes: int = 4) -> None:
        """Record storing ``n_words`` packed words to memory."""
        self.add("STORE", n_words)
        self.bytes_stored += int(n_words) * word_bytes

    # -- queries -----------------------------------------------------------
    @property
    def total_ops(self) -> int:
        """Total compute operations (excluding LOAD/STORE)."""
        return sum(v for k, v in self.ops.items() if k not in ("LOAD", "STORE"))

    @property
    def total_bytes(self) -> int:
        """Total memory traffic in bytes (loads + stores)."""
        return self.bytes_loaded + self.bytes_stored

    @property
    def arithmetic_intensity(self) -> float:
        """Integer operations per byte of memory traffic (CARM x-axis)."""
        if self.total_bytes == 0:
            return float("inf") if self.total_ops else 0.0
        return self.total_ops / self.total_bytes

    def merge(self, other: "OpCounter") -> "OpCounter":
        """Accumulate ``other`` into ``self`` and return ``self``."""
        for k, v in other.ops.items():
            self.ops[k] = self.ops.get(k, 0) + v
        self.bytes_loaded += other.bytes_loaded
        self.bytes_stored += other.bytes_stored
        return self

    def as_dict(self) -> Mapping[str, int]:
        """Snapshot of the instruction counters (copy)."""
        return dict(self.ops)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self.ops.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.ops.items()))
        return (
            f"OpCounter({parts}, bytes_loaded={self.bytes_loaded}, "
            f"bytes_stored={self.bytes_stored})"
        )


def _count_words(a: np.ndarray) -> int:
    """Paper (32-bit) words in a packed array: a uint64 word counts as two.

    Every charge in this module is per paper word, so the §IV instruction
    accounting is identical whichever machine-word layout the kernels run.
    """
    from repro.bitops.packing import paper_word_ratio

    arr = np.asarray(a)
    return int(arr.size) * paper_word_ratio(arr)


def and2(a: np.ndarray, b: np.ndarray, counter: OpCounter | None = None) -> np.ndarray:
    """Bitwise AND of two packed-word arrays (one ``AND`` per word)."""
    out = np.bitwise_and(a, b)
    if counter is not None:
        counter.add("AND", _count_words(out))
    return out


def and3(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    counter: OpCounter | None = None,
) -> np.ndarray:
    """Three-input bitwise AND (two ``AND`` instructions per word).

    This is the core of the frequency-table construction: one call per
    genotype combination ``(gX, gY, gZ)`` per packed word.
    """
    out = np.bitwise_and(np.bitwise_and(a, b), c)
    if counter is not None:
        counter.add("AND", 2 * _count_words(out))
    return out


def nor2(a: np.ndarray, b: np.ndarray, counter: OpCounter | None = None) -> np.ndarray:
    """Bitwise NOR used to infer the genotype-2 plane from planes 0 and 1.

    Neither AVX nor AVX-512 provides a NOR instruction, so the paper emulates
    it with ``OR`` followed by ``XOR`` against an all-ones register; the
    counter therefore records two operations per word (``OR`` + ``XOR``)
    under the combined mnemonic ``NOR`` plus the expanded pair, so both
    accounting styles are available.
    """
    out = np.bitwise_not(np.bitwise_or(a, b))
    if counter is not None:
        n = _count_words(out)
        counter.add("NOR", n)
        counter.add("OR", n)
        counter.add("XOR", n)
    return out


def andnot(a: np.ndarray, b: np.ndarray, counter: OpCounter | None = None) -> np.ndarray:
    """Compute ``a AND (NOT b)`` — used by the naïve kernel for controls."""
    out = np.bitwise_and(a, np.bitwise_not(b))
    if counter is not None:
        n = _count_words(out)
        counter.add("NOT", n)
        counter.add("AND", n)
    return out


def popcount_words(
    words: np.ndarray,
    counter: OpCounter | None = None,
    *,
    reduce_axis: int | None = None,
) -> np.ndarray:
    """Population count with instruction accounting.

    Parameters
    ----------
    words:
        Packed ``uint32`` or ``uint64`` array.
    counter:
        Optional :class:`OpCounter`; one ``POPCNT`` is recorded per word and,
        if ``reduce_axis`` is given, one ``ADD`` per word for the reduction
        into the frequency-table cell.
    reduce_axis:
        If not ``None``, the counts are summed over this axis (the packed
        word axis), mirroring the POPCNT + reduce-add idiom.
    """
    counts = popcount(words)
    if counter is not None:
        n = _count_words(words)
        counter.add("POPCNT", n)
        counter.add("ADD", n)
    if reduce_axis is not None:
        return counts.sum(axis=reduce_axis)
    return counts
