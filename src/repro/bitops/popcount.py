"""Population-count primitives over packed word arrays.

The population count (``POPCNT``) is the single most important instruction in
exhaustive epistasis detection: each of the 27 genotype combinations of a SNP
triplet requires one ``POPCNT`` per packed word per phenotype class.  The
paper's CPU evaluation shows that the presence (Ice Lake SP) or absence
(Skylake, Zen/Zen2) of a *vector* POPCNT instruction is the dominant
micro-architectural differentiator, while the GPU evaluation is driven by the
per-compute-unit POPCNT throughput (Table II).

This module provides several equivalent implementations:

* :func:`popcount32` / :func:`popcount64` — the fast path, backed by
  :func:`numpy.bitwise_count` (AVX-512 VPOPCNTDQ analogue).
* :func:`popcount_lut` — a 16-bit lookup-table implementation.  It is used as
  a pure-Python/NumPy fallback and as the reference model of a *scalar*
  POPCNT path (one table probe per 16-bit nibble-pair mirrors the per-lane
  extract + scalar POPCNT sequence the paper describes for AVX/AVX-512
  processors without VPOPCNT).
* :func:`scalar_popcount` — per-element Python-int population count, the
  oracle used by the test-suite.

All functions accept arrays of unsigned integers of any shape and return
``int64`` counts with the same shape (or a reduction over the last axis for
:func:`popcount_reduce`).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "popcount",
    "popcount_sum",
    "popcount32",
    "popcount64",
    "popcount_lut",
    "popcount_reduce",
    "scalar_popcount",
    "HAS_BITWISE_COUNT",
]

#: Whether the running NumPy exposes ``bitwise_count`` (NumPy >= 2.0).
HAS_BITWISE_COUNT: bool = hasattr(np, "bitwise_count")

# ---------------------------------------------------------------------------
# Lookup table: number of set bits for every 16-bit value.  65536 uint8
# entries (64 KiB); built once at import time with a vectorised expression.
# ---------------------------------------------------------------------------
_LUT16: np.ndarray = np.array(
    [bin(i).count("1") for i in range(1 << 8)], dtype=np.uint8
)
# Extend the 8-bit table to a 16-bit table by composition: popcount(hi) +
# popcount(lo).  Broadcasting keeps the construction cheap.
_LUT16 = (_LUT16[:, None] + _LUT16[None, :]).reshape(-1)


def _as_unsigned(words: np.ndarray) -> np.ndarray:
    """Return ``words`` as an unsigned integer array without copying data.

    Signed inputs are re-interpreted (not converted) so that the bit pattern
    is preserved; floating point inputs are rejected.
    """
    arr = np.asarray(words)
    if arr.dtype.kind == "u":
        return arr
    if arr.dtype.kind == "i":
        return arr.view(arr.dtype.str.replace("i", "u"))
    raise TypeError(f"popcount requires an integer array, got dtype={arr.dtype}")


def popcount(words: np.ndarray) -> np.ndarray:
    """Width-generic population count: dispatches on the word dtype.

    ``uint64`` input takes the 64-bit path (one ``np.bitwise_count`` over
    half as many elements as the equivalent 32-bit plane — the core of the
    wide-word speedup); everything else takes the 32-bit path.  The result
    is always an ``int64`` array of the input's shape.
    """
    arr = _as_unsigned(words)
    if arr.dtype == np.uint64:
        return popcount64(arr)
    return popcount32(arr)


def popcount_sum(words: np.ndarray, axis: int = -1) -> np.ndarray:
    """Fused population count + reduction over ``axis`` (``int64`` result).

    The hot path of every frequency-table cell is ``popcount(word
    stream).sum(word axis)``.  Going through :func:`popcount` first would
    materialise a full ``int64`` copy of the per-word counts (8 bytes per
    word) purely to feed the reduction; this helper sums the native
    ``uint8`` output of ``np.bitwise_count`` directly into an ``int64``
    accumulator, so the intermediate never exists.  Width-generic (uint32
    and uint64 input) and bit-exact with the two-step form.
    """
    arr = _as_unsigned(words)
    if arr.dtype not in (np.uint32, np.uint64):
        arr = arr.astype(np.uint32)
    if HAS_BITWISE_COUNT:
        return np.bitwise_count(arr).sum(axis=axis, dtype=np.int64)
    if arr.dtype == np.uint64:
        lo = (arr & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        hi = (arr >> np.uint64(32)).astype(np.uint32)
        return popcount_lut(lo).sum(axis=axis) + popcount_lut(hi).sum(axis=axis)
    return popcount_lut(arr).sum(axis=axis)


def popcount32(words: np.ndarray) -> np.ndarray:
    """Population count of each 32-bit word in ``words``.

    Parameters
    ----------
    words:
        Array of ``uint32`` (or ``int32``) packed words, any shape.

    Returns
    -------
    numpy.ndarray
        ``int64`` array of the same shape holding the number of set bits of
        every word.
    """
    arr = _as_unsigned(words)
    if arr.dtype != np.uint32:
        arr = arr.astype(np.uint32)
    if HAS_BITWISE_COUNT:
        return np.bitwise_count(arr).astype(np.int64)
    return popcount_lut(arr)


def popcount64(words: np.ndarray) -> np.ndarray:
    """Population count of each 64-bit word in ``words`` (``int64`` result)."""
    arr = _as_unsigned(words)
    if arr.dtype != np.uint64:
        arr = arr.astype(np.uint64)
    if HAS_BITWISE_COUNT:
        return np.bitwise_count(arr).astype(np.int64)
    lo = (arr & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    hi = (arr >> np.uint64(32)).astype(np.uint32)
    return popcount_lut(lo) + popcount_lut(hi)


def popcount_lut(words: np.ndarray) -> np.ndarray:
    """Lookup-table population count (16-bit table, two probes per word).

    Works for ``uint32`` input of any shape.  This is the reference
    implementation for devices without a hardware (vector) POPCNT: the two
    table probes per word mirror the extract + scalar POPCNT sequence used on
    AVX/AVX-512 CPUs that lack ``VPOPCNTDQ``.
    """
    arr = _as_unsigned(words)
    if arr.dtype != np.uint32:
        arr = arr.astype(np.uint32)
    lo = arr & np.uint32(0xFFFF)
    hi = arr >> np.uint32(16)
    return (_LUT16[lo].astype(np.int64) + _LUT16[hi].astype(np.int64))


def popcount_reduce(words: np.ndarray, axis: int | None = -1) -> np.ndarray:
    """Population count reduced (summed) over ``axis``.

    This is the packed-word analogue of the paper's
    ``_mm512_reduce_add_epi32(_mm512_popcnt_epi32(v))`` idiom: count the set
    bits of every word of a vector register and accumulate them into a single
    frequency-table cell.  Width-generic (uint32 and uint64 input).
    """
    return popcount(words).sum(axis=axis)


def scalar_popcount(value: int) -> int:
    """Population count of a single non-negative Python integer.

    Used as the ground-truth oracle in the test-suite; intentionally
    implemented without NumPy.
    """
    if value < 0:
        raise ValueError("scalar_popcount expects a non-negative integer")
    return int(value).bit_count()
