"""The 13 devices of Tables I and II.

Values printed in the paper's tables (frequencies, core/CU counts, vector
widths, POPCNT throughput per CU) are reproduced verbatim.  Cache sizes,
bandwidths and TDPs are taken from the vendors' public documentation for the
exact parts; they feed the roofline and performance models but do not alter
the table-derived quantities.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.devices.specs import CacheLevel, CpuSpec, GpuSpec

__all__ = [
    "CPU_CATALOG",
    "GPU_CATALOG",
    "ALL_CPUS",
    "ALL_GPUS",
    "cpu",
    "gpu",
    "device",
    "list_devices",
]


def _intel_client_caches() -> tuple[CacheLevel, ...]:
    """Skylake-client cache hierarchy (i7-8700K)."""
    return (
        CacheLevel("L1", 32, 8, 64.0),
        CacheLevel("L2", 256, 4, 32.0),
        CacheLevel("L3", 12 * 1024, 16, 16.0),
        CacheLevel("DRAM", None, None, 6.0),
    )


def _skx_caches() -> tuple[CacheLevel, ...]:
    """Skylake-SP cache hierarchy (Xeon Gold 6140)."""
    return (
        CacheLevel("L1", 32, 8, 128.0),
        CacheLevel("L2", 1024, 16, 64.0),
        CacheLevel("L3", 24.75 * 1024, 11, 16.0),
        CacheLevel("DRAM", None, None, 5.0),
    )


def _icx_caches() -> tuple[CacheLevel, ...]:
    """Ice Lake-SP cache hierarchy (Xeon Platinum 8360Y): 48 KiB, 12-way L1."""
    return (
        CacheLevel("L1", 48, 12, 128.0),
        CacheLevel("L2", 1280, 20, 64.0),
        CacheLevel("L3", 54 * 1024, 12, 16.0),
        CacheLevel("DRAM", None, None, 6.0),
    )


def _zen_caches() -> tuple[CacheLevel, ...]:
    """AMD Zen (EPYC 7601) cache hierarchy."""
    return (
        CacheLevel("L1", 32, 8, 32.0),
        CacheLevel("L2", 512, 8, 32.0),
        CacheLevel("L3", 64 * 1024, 16, 16.0),
        CacheLevel("DRAM", None, None, 4.0),
    )


def _zen2_caches() -> tuple[CacheLevel, ...]:
    """AMD Zen2 (EPYC 7302P) cache hierarchy."""
    return (
        CacheLevel("L1", 32, 8, 64.0),
        CacheLevel("L2", 512, 8, 32.0),
        CacheLevel("L3", 128 * 1024, 16, 16.0),
        CacheLevel("DRAM", None, None, 6.0),
    )


#: Table I — CPU devices.
CPU_CATALOG: Dict[str, CpuSpec] = {
    "CI1": CpuSpec(
        key="CI1",
        name="Intel Core i7-8700K",
        vendor="Intel",
        microarchitecture="Skylake",
        base_freq_ghz=3.7,
        cores=6,
        sockets=1,
        isa="avx2-256",
        avx_isa="avx2-256",
        caches=_intel_client_caches(),
        dram_bandwidth_gbps=41.6,
        tdp_w=95.0,
    ),
    "CI2": CpuSpec(
        key="CI2",
        name="Intel Xeon Gold 6140 (2x)",
        vendor="Intel",
        microarchitecture="Skylake-SP",
        base_freq_ghz=2.3,
        cores=36,
        sockets=2,
        isa="avx512-skx",
        avx_isa="avx2-256",
        caches=_skx_caches(),
        dram_bandwidth_gbps=2 * 119.2,
        tdp_w=2 * 140.0,
    ),
    "CI3": CpuSpec(
        key="CI3",
        name="Intel Xeon Platinum 8360Y (2x)",
        vendor="Intel",
        microarchitecture="Ice Lake-SP",
        base_freq_ghz=2.4,
        cores=72,
        sockets=2,
        isa="avx512-vpopcnt",
        avx_isa="avx2-256",
        caches=_icx_caches(),
        dram_bandwidth_gbps=2 * 204.8,
        tdp_w=2 * 250.0,
    ),
    "CA1": CpuSpec(
        key="CA1",
        name="AMD EPYC 7601",
        vendor="AMD",
        microarchitecture="Zen",
        base_freq_ghz=2.2,
        cores=64,
        sockets=2,
        isa="avx-128",
        avx_isa="avx-128",
        caches=_zen_caches(),
        dram_bandwidth_gbps=2 * 170.7,
        tdp_w=2 * 180.0,
    ),
    "CA2": CpuSpec(
        key="CA2",
        name="AMD EPYC 7302P",
        vendor="AMD",
        microarchitecture="Zen2",
        base_freq_ghz=3.0,
        cores=16,
        sockets=1,
        isa="avx2-256",
        avx_isa="avx2-256",
        caches=_zen2_caches(),
        dram_bandwidth_gbps=204.8,
        tdp_w=155.0,
    ),
}


#: Table II — GPU devices.  ``popcnt_measured`` marks the ``*`` entries.
GPU_CATALOG: Dict[str, GpuSpec] = {
    "GI1": GpuSpec(
        key="GI1",
        name="Intel Graphics UHD P630",
        vendor="Intel",
        architecture="Gen9.5",
        boost_freq_ghz=1.200,
        compute_units=24,
        stream_cores=192,
        popcnt_per_cu=4,
        popcnt_measured=True,
        dram_bandwidth_gbps=41.6,
        llc_kib=768,
        tdp_w=15.0,
        preferred_bsched=256,
        preferred_bs=64,
        int_ops_per_cu_per_cycle=32.0,
    ),
    "GI2": GpuSpec(
        key="GI2",
        name="Intel Iris Xe MAX (DG1)",
        vendor="Intel",
        architecture="Gen12",
        boost_freq_ghz=1.650,
        compute_units=96,
        stream_cores=768,
        popcnt_per_cu=4,
        popcnt_measured=True,
        dram_bandwidth_gbps=68.0,
        llc_kib=16 * 1024,
        tdp_w=25.0,
        preferred_bsched=256,
        preferred_bs=64,
        int_ops_per_cu_per_cycle=32.0,
    ),
    "GN1": GpuSpec(
        key="GN1",
        name="NVIDIA Titan Xp",
        vendor="NVIDIA",
        architecture="Pascal",
        boost_freq_ghz=1.582,
        compute_units=30,
        stream_cores=3840,
        popcnt_per_cu=32,
        dram_bandwidth_gbps=547.6,
        llc_kib=3 * 1024,
        tdp_w=250.0,
        preferred_bsched=256,
        preferred_bs=32,
        int_ops_per_cu_per_cycle=128.0,
    ),
    "GN2": GpuSpec(
        key="GN2",
        name="NVIDIA Titan V",
        vendor="NVIDIA",
        architecture="Volta",
        boost_freq_ghz=1.455,
        compute_units=80,
        stream_cores=5120,
        popcnt_per_cu=16,
        dram_bandwidth_gbps=652.8,
        llc_kib=4.5 * 1024,
        tdp_w=250.0,
        preferred_bsched=256,
        preferred_bs=64,
        int_ops_per_cu_per_cycle=64.0,
    ),
    "GN3": GpuSpec(
        key="GN3",
        name="NVIDIA Titan RTX",
        vendor="NVIDIA",
        architecture="Turing",
        boost_freq_ghz=1.770,
        compute_units=72,
        stream_cores=4608,
        popcnt_per_cu=16,
        dram_bandwidth_gbps=672.0,
        llc_kib=6 * 1024,
        tdp_w=280.0,
        preferred_bsched=256,
        preferred_bs=64,
        int_ops_per_cu_per_cycle=64.0,
    ),
    "GN4": GpuSpec(
        key="GN4",
        name="NVIDIA A100 (250W)",
        vendor="NVIDIA",
        architecture="Ampere",
        boost_freq_ghz=1.410,
        compute_units=108,
        stream_cores=6912,
        popcnt_per_cu=16,
        dram_bandwidth_gbps=1555.0,
        llc_kib=40 * 1024,
        tdp_w=250.0,
        preferred_bsched=256,
        preferred_bs=64,
        int_ops_per_cu_per_cycle=64.0,
    ),
    "GA1": GpuSpec(
        key="GA1",
        name="AMD Radeon Pro VII",
        vendor="AMD",
        architecture="Vega20",
        boost_freq_ghz=1.700,
        compute_units=60,
        stream_cores=3840,
        popcnt_per_cu=12,
        popcnt_measured=True,
        dram_bandwidth_gbps=1024.0,
        llc_kib=4 * 1024,
        tdp_w=250.0,
        preferred_bsched=128,
        preferred_bs=64,
        int_ops_per_cu_per_cycle=64.0,
    ),
    "GA2": GpuSpec(
        key="GA2",
        name="AMD Instinct MI100",
        vendor="AMD",
        architecture="CDNA",
        boost_freq_ghz=1.502,
        compute_units=120,
        stream_cores=7680,
        popcnt_per_cu=12,
        popcnt_measured=True,
        dram_bandwidth_gbps=1228.8,
        llc_kib=8 * 1024,
        tdp_w=300.0,
        preferred_bsched=128,
        preferred_bs=64,
        int_ops_per_cu_per_cycle=64.0,
    ),
    "GA3": GpuSpec(
        key="GA3",
        name="AMD Radeon RX 6900 XT",
        vendor="AMD",
        architecture="RDNA2",
        boost_freq_ghz=2.250,
        compute_units=80,
        stream_cores=5120,
        popcnt_per_cu=10,
        popcnt_measured=True,
        dram_bandwidth_gbps=512.0,
        llc_kib=128 * 1024,
        tdp_w=300.0,
        preferred_bsched=256,
        preferred_bs=32,
        int_ops_per_cu_per_cycle=64.0,
    ),
}

#: Ordered lists, matching the tables' row order.
ALL_CPUS: List[CpuSpec] = [CPU_CATALOG[k] for k in ("CI1", "CI2", "CI3", "CA1", "CA2")]
ALL_GPUS: List[GpuSpec] = [
    GPU_CATALOG[k]
    for k in ("GI1", "GI2", "GN1", "GN2", "GN3", "GN4", "GA1", "GA2", "GA3")
]


def cpu(key: str) -> CpuSpec:
    """Look up a CPU by its Table I key (``CI1`` … ``CA2``)."""
    try:
        return CPU_CATALOG[key.upper()]
    except KeyError:
        raise KeyError(
            f"unknown CPU {key!r}; known CPUs: {sorted(CPU_CATALOG)}"
        ) from None


def gpu(key: str) -> GpuSpec:
    """Look up a GPU by its Table II key (``GI1`` … ``GA3``)."""
    try:
        return GPU_CATALOG[key.upper()]
    except KeyError:
        raise KeyError(
            f"unknown GPU {key!r}; known GPUs: {sorted(GPU_CATALOG)}"
        ) from None


def device(key: str) -> Union[CpuSpec, GpuSpec]:
    """Look up a device of either kind by key."""
    key = key.upper()
    if key in CPU_CATALOG:
        return CPU_CATALOG[key]
    if key in GPU_CATALOG:
        return GPU_CATALOG[key]
    known = sorted(CPU_CATALOG) + sorted(GPU_CATALOG)
    raise KeyError(f"unknown device {key!r}; known devices: {known}")


def list_devices(kind: str = "all") -> List[Union[CpuSpec, GpuSpec]]:
    """List catalogued devices: ``kind`` in {"cpu", "gpu", "all"}."""
    if kind == "cpu":
        return list(ALL_CPUS)
    if kind == "gpu":
        return list(ALL_GPUS)
    if kind == "all":
        return list(ALL_CPUS) + list(ALL_GPUS)
    raise ValueError("kind must be 'cpu', 'gpu' or 'all'")
