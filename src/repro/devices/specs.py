"""Device specification dataclasses.

The specifications collect three kinds of parameters:

* the ones printed in Tables I and II of the paper (cores, frequencies,
  vector widths, compute units, stream cores, POPCNT throughput per CU);
* cache geometry (sizes and associativity) needed to derive the loop-tiling
  parameters ``<BS, BP>`` of the third/fourth CPU approaches (§IV-A);
* bandwidth and peak-throughput figures needed to draw the Cache-Aware
  Roofline Model roofs of Figure 2.

Where the paper does not state a value explicitly (e.g. cache bandwidths)
the publicly documented figure for the micro-architecture is used; those
values only shift roofs, never the relative placement of the kernels, which
is what the reproduction validates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.bitops.simd import ISA_PRESETS, VectorISA

__all__ = ["CacheLevel", "CpuSpec", "GpuSpec"]


@dataclass(frozen=True)
class CacheLevel:
    """Geometry and per-core bandwidth of one cache level.

    Attributes
    ----------
    name:
        Level name (``"L1"``, ``"L2"``, ``"L3"``, ``"SLM"``, ``"DRAM"``).
    size_kib:
        Capacity in KiB per core (L1/L2) or total (L3/DRAM: ``None`` means
        "effectively unbounded" for blocking purposes).
    ways:
        Set associativity (used by the ``<BS, BP>`` derivation).
    bytes_per_cycle:
        Sustainable load bandwidth per core in bytes per cycle — the slope of
        the corresponding CARM roof.
    """

    name: str
    size_kib: float | None
    ways: int | None
    bytes_per_cycle: float

    def bandwidth_gbps(self, freq_ghz: float, cores: int = 1) -> float:
        """Aggregate bandwidth in GB/s at the given frequency and core count."""
        return self.bytes_per_cycle * freq_ghz * cores


@dataclass(frozen=True)
class CpuSpec:
    """A CPU platform from Table I.

    Attributes
    ----------
    key:
        Short identifier used throughout the paper (``CI1`` … ``CA2``).
    name / vendor / microarchitecture:
        Human-readable identity.
    base_freq_ghz:
        Base frequency from Table I (performance per cycle uses this).
    cores:
        Total physical cores across sockets (Table I counts both sockets).
    sockets:
        Number of sockets (informational).
    isa:
        Name of the *widest* vector ISA preset supported
        (see :data:`repro.bitops.simd.ISA_PRESETS`).
    avx_isa:
        Name of the 256-bit-class preset used when the paper runs the "AVX"
        variant on this machine (every CPU supports one).
    caches:
        Cache hierarchy, ordered from L1 to DRAM.
    issue_width:
        Sustained bitwise/SIMD micro-ops issued per cycle per core — the
        divisor converting instruction counts into cycles in the performance
        model (2 logical + load pipes on all tested cores).
    scalar_issue_width:
        Same, for the scalar (non-vectorised) approaches.
    dram_bandwidth_gbps:
        Aggregate DRAM bandwidth (socket total).
    tdp_w:
        Thermal design power (energy-efficiency discussion of §V-D).
    """

    key: str
    name: str
    vendor: str
    microarchitecture: str
    base_freq_ghz: float
    cores: int
    sockets: int
    isa: str
    avx_isa: str
    caches: Tuple[CacheLevel, ...]
    issue_width: float = 2.0
    scalar_issue_width: float = 2.0
    dram_bandwidth_gbps: float = 100.0
    tdp_w: float = 150.0

    # -- ISA helpers ---------------------------------------------------------
    @property
    def vector_isa(self) -> VectorISA:
        """The widest supported ISA preset."""
        return ISA_PRESETS[self.isa]

    @property
    def avx_vector_isa(self) -> VectorISA:
        """The 256-bit-class ISA preset used for the AVX comparison runs."""
        return ISA_PRESETS[self.avx_isa]

    @property
    def vector_width_bits(self) -> int:
        """Vector width in bits as printed in Table I."""
        return self.vector_isa.width_bits

    @property
    def has_vector_popcnt(self) -> bool:
        """Whether the widest ISA provides vector POPCNT (Ice Lake SP only)."""
        return self.vector_isa.has_vector_popcnt

    # -- cache helpers -------------------------------------------------------
    def cache(self, name: str) -> CacheLevel:
        """Look up a cache level by name (raises ``KeyError`` if absent)."""
        for level in self.caches:
            if level.name == name:
                return level
        raise KeyError(f"{self.key} has no cache level {name!r}")

    @property
    def l1d(self) -> CacheLevel:
        """The L1 data cache (drives the blocking-parameter derivation)."""
        return self.cache("L1")

    def blocking_parameters(
        self,
        ft_ways: int | None = None,
        block_ways: int | None = None,
        int_bytes: int = 4,
        round_bp_to_vector: bool = True,
        isa: VectorISA | None = None,
    ) -> Tuple[int, int]:
        """Derive the loop-tiling parameters ``<BS, BP>`` of §IV-A.

        The frequency table of a ``BS³``-combination block must fit in
        ``ft_ways`` ways of the L1 data cache and each ``BS × BP`` data block
        in ``block_ways`` ways:

        ``BS³ · int_bytes · 2 · 27 ≤ sizeFT``  and
        ``BS · BP · int_bytes · 2 ≤ sizeBlock``.

        With the paper's choices (7 ways for the table everywhere; 4 ways for
        the block on Ice Lake SP, 1 way elsewhere) this yields ``<5, 400>``
        on CI3 and ``<5, 96>`` on the remaining CPUs.

        Parameters
        ----------
        ft_ways / block_ways:
            Number of L1 ways dedicated to the frequency table and to the
            SNP/sample block.  Defaults reproduce the paper: 7 ways for the
            table; for the block, every way left after the table and one
            spare way for the prefetcher when the cache has more than 8 ways.
        round_bp_to_vector:
            Round ``BP`` down to a multiple of the number of 32-bit lanes of
            ``isa`` (the paper rounds to the vector register size).
        isa:
            ISA used for the rounding; defaults to the widest supported one.
        """
        l1 = self.l1d
        if l1.size_kib is None or l1.ways is None:
            raise ValueError(f"{self.key}: L1 geometry unknown")
        total_ways = l1.ways
        way_bytes = l1.size_kib * 1024 / total_ways
        if ft_ways is None:
            ft_ways = min(7, total_ways - 1)
        if block_ways is None:
            spare = 1 if total_ways > 8 else 0
            block_ways = max(1, total_ways - ft_ways - spare)
        size_ft = ft_ways * way_bytes
        size_block = block_ways * way_bytes

        bs = int((size_ft / (int_bytes * 2 * 27)) ** (1.0 / 3.0))
        bs = max(1, bs)
        bp = int(size_block / (bs * int_bytes * 2))
        bp = max(1, bp)
        if round_bp_to_vector:
            isa = isa or self.vector_isa
            # Rounding uses the *programming* register width: AMD Zen executes
            # 256-bit AVX intrinsics as two 128-bit halves, but the loads in
            # the source code still move 8 x 32-bit integers at a time.
            lanes = max(8, isa.lanes32)
            bp = max(lanes, (bp // lanes) * lanes)
        return bs, bp

    # -- peak throughput -----------------------------------------------------
    def peak_int_gops(self, isa: VectorISA | None = None) -> float:
        """Peak 32-bit integer GOPS across all cores for the given ISA.

        ``lanes32 × issue_width × frequency × cores`` — the "Int32 Vector ADD
        Peak" roof of Figure 2a.
        """
        isa = isa or self.vector_isa
        return isa.lanes32 * self.issue_width * self.base_freq_ghz * self.cores

    def scalar_peak_int_gops(self) -> float:
        """Peak scalar integer GOPS (the slashed "Scalar ADD Peak" roof)."""
        return self.scalar_issue_width * self.base_freq_ghz * self.cores

    def __str__(self) -> str:
        return (
            f"{self.key}: {self.name} ({self.microarchitecture}), "
            f"{self.cores} cores @ {self.base_freq_ghz} GHz, "
            f"{self.vector_width_bits}-bit {self.isa}"
        )


@dataclass(frozen=True)
class GpuSpec:
    """A GPU platform from Table II.

    Attributes
    ----------
    key:
        Short identifier (``GI1`` … ``GA3``).
    name / vendor / architecture:
        Human-readable identity.
    boost_freq_ghz:
        Boost frequency from Table II.
    compute_units:
        Compute units (NVIDIA SMs, Intel EU groups, AMD CUs) — the paper's
        normalisation unit for Figure 4a/4b.
    stream_cores:
        Total stream cores (CUDA cores / SIMD4 instances / AMD stream cores).
    popcnt_per_cu:
        POPCNT instructions retired per cycle per compute unit (Table II,
        values marked ``*`` were measured experimentally by the authors).
    dram_bandwidth_gbps:
        Device-memory bandwidth (drives the DRAM roof in Figure 2b).
    llc_kib:
        Last-level (L2/L3) cache capacity in KiB.
    llc_bytes_per_cycle_per_cu:
        LLC bandwidth per CU per cycle (CARM roof slope).
    slm_bytes_per_cycle_per_cu:
        Shared-local-memory / L1 bandwidth per CU per cycle.
    tdp_w:
        Board power used for the efficiency comparison of §V-D.
    preferred_bsched / preferred_bs:
        The empirically chosen ``<BSched, BS>`` scheduling/tiling parameters
        reported in §V-C for this device.
    int_ops_per_cu_per_cycle:
        32-bit integer (AND/OR/XOR/ADD) throughput per CU per cycle, used for
        the compute roof and to bound non-POPCNT work.
    """

    key: str
    name: str
    vendor: str
    architecture: str
    boost_freq_ghz: float
    compute_units: int
    stream_cores: int
    popcnt_per_cu: float
    dram_bandwidth_gbps: float
    llc_kib: float
    tdp_w: float
    preferred_bsched: int = 256
    preferred_bs: int = 64
    llc_bytes_per_cycle_per_cu: float = 32.0
    slm_bytes_per_cycle_per_cu: float = 64.0
    int_ops_per_cu_per_cycle: float = 64.0
    popcnt_measured: bool = False

    @property
    def stream_cores_per_cu(self) -> int:
        """Stream cores per compute unit."""
        return self.stream_cores // self.compute_units

    def peak_int_gops(self) -> float:
        """Peak 32-bit integer GOPS of the whole device."""
        return self.int_ops_per_cu_per_cycle * self.compute_units * self.boost_freq_ghz

    def peak_popcnt_gops(self) -> float:
        """Peak POPCNT throughput of the whole device in Giga-ops/s."""
        return self.popcnt_per_cu * self.compute_units * self.boost_freq_ghz

    def __str__(self) -> str:
        return (
            f"{self.key}: {self.name} ({self.architecture}), "
            f"{self.compute_units} CUs / {self.stream_cores} cores @ "
            f"{self.boost_freq_ghz} GHz, {self.popcnt_per_cu} POPCNT/CU/cycle"
        )
