"""Catalog of the CPU and GPU devices evaluated by the paper.

Tables I and II of the paper list 5 CPUs and 8 GPUs from Intel, AMD and
NVIDIA together with the architectural parameters that drive epistasis
detection performance: core/compute-unit counts, frequencies, vector widths,
vector-POPCNT support, per-CU POPCNT throughput and stream-core counts.  This
package captures those tables as data (:mod:`repro.devices.catalog`) on top
of two dataclasses (:mod:`repro.devices.specs`) that also carry the cache
geometry and bandwidth figures needed by the Cache-Aware Roofline Model and
the analytical performance models.
"""

from repro.devices.specs import CacheLevel, CpuSpec, GpuSpec
from repro.devices.catalog import (
    ALL_CPUS,
    ALL_GPUS,
    CPU_CATALOG,
    GPU_CATALOG,
    cpu,
    gpu,
    device,
    list_devices,
)

__all__ = [
    "CacheLevel",
    "CpuSpec",
    "GpuSpec",
    "CPU_CATALOG",
    "GPU_CATALOG",
    "ALL_CPUS",
    "ALL_GPUS",
    "cpu",
    "gpu",
    "device",
    "list_devices",
]
