"""Structured tracing: nested spans with a per-run identity.

The tracer is the spine of the telemetry plane (``repro.telemetry``):
every layer of the stack — detector, engine lanes, pipeline stages,
distributed shards, the shared-memory data plane and backend compiles —
wraps its work in :meth:`Tracer.span` so one run produces one tree of
timed spans under a single ``run_id``.

Clocks
------
Span timestamps are *monotonic within a process* (``perf_counter``) and
*aligned across processes* through a wall-clock epoch captured once when
the run starts: each tracer anchors ``(time.time(), perf_counter())`` at
construction and reports span starts as seconds since the run epoch.
Distributed workers receive the epoch through :class:`TraceContext`, so
their spans land on the coordinator's timeline (subject to host clock
skew, which is zero for same-host worker pools).

Cross-process propagation
-------------------------
:meth:`Tracer.context` captures ``(run_id, parent span, epoch, mode)``
as a picklable :class:`TraceContext`.  A worker process builds its own
tracer from the context, records spans locally, and ships them back as
plain dicts (:meth:`Tracer.export_spans`); the coordinator re-absorbs
them with :meth:`Tracer.absorb`, where orphan roots are re-parented
under the context's parent span — distributed worker spans therefore
nest correctly under the coordinator's run.

The mode knob (``telemetry="off"|"minimal"|"full"``) mirrors the fused
and backend knobs: config field, ``--telemetry`` CLI flag, and the
``REPRO_TELEMETRY`` environment variable, resolved in that order.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = [
    "TELEMETRY_ENV",
    "VALID_TELEMETRY_MODES",
    "Span",
    "TraceContext",
    "Tracer",
    "check_telemetry_mode",
    "default_telemetry_mode",
    "new_run_id",
    "resolve_telemetry_mode",
]

#: Environment variable overriding the default telemetry mode.
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Accepted values of the telemetry knob (config, CLI and environment).
#: ``off`` records nothing (no-op closures on the hot path), ``minimal``
#: records run/stage/lane/shard-level spans, ``full`` adds per-chunk
#: kernel samples.
VALID_TELEMETRY_MODES = ("off", "minimal", "full")


def check_telemetry_mode(mode: str) -> str:
    """Validate a telemetry mode string; returns it normalized."""
    normalized = str(mode).strip().lower()
    if normalized not in VALID_TELEMETRY_MODES:
        raise ValueError(
            f"unknown telemetry mode {mode!r}; valid values: "
            + ", ".join(VALID_TELEMETRY_MODES)
        )
    return normalized


def default_telemetry_mode() -> str:
    """The session default: ``REPRO_TELEMETRY`` when set, else ``off``."""
    forced = os.environ.get(TELEMETRY_ENV)
    if forced is None:
        return "off"
    normalized = forced.strip().lower()
    if normalized not in VALID_TELEMETRY_MODES:
        raise ValueError(
            f"{TELEMETRY_ENV}={forced!r} is not a known telemetry mode; "
            "valid values: " + ", ".join(VALID_TELEMETRY_MODES)
        )
    return normalized


def resolve_telemetry_mode(mode: "str | None" = None) -> str:
    """Resolve an explicit mode (or ``None``) to a concrete tri-state."""
    if mode is None:
        return default_telemetry_mode()
    return check_telemetry_mode(mode)


def new_run_id() -> str:
    """A fresh run identity (12 hex chars, collision-safe per host)."""
    return uuid.uuid4().hex[:12]


def _new_span_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass
class Span:
    """One timed unit of work inside a run."""

    name: str
    span_id: str
    parent_id: Optional[str]
    run_id: str
    start: float  #: seconds since the run epoch (cross-process aligned)
    duration: float  #: seconds (monotonic within the recording process)
    pid: int
    tid: int
    thread: str
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "run_id": self.run_id,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Span":
        return cls(
            name=str(doc["name"]),
            span_id=str(doc["span_id"]),
            parent_id=doc.get("parent_id"),
            run_id=str(doc.get("run_id", "")),
            start=float(doc["start"]),
            duration=float(doc["duration"]),
            pid=int(doc.get("pid", 0)),
            tid=int(doc.get("tid", 0)),
            thread=str(doc.get("thread", "")),
            attrs=dict(doc.get("attrs") or {}),
        )


@dataclass(frozen=True)
class TraceContext:
    """Picklable cross-process handle for parenting remote spans.

    Shipped to distributed workers alongside the shard batch; the worker
    activates a run from it so its spans share the coordinator's
    ``run_id``, epoch and parent span.
    """

    run_id: str
    parent_id: Optional[str]
    epoch_wall: float
    mode: str


class _ActiveSpan:
    """Mutable in-flight span handle yielded by :meth:`Tracer.span`."""

    __slots__ = ("span_id", "attrs")

    def __init__(self, span_id: str, attrs: Dict[str, object]) -> None:
        self.span_id = span_id
        self.attrs = attrs

    def set(self, key: str, value: object) -> None:
        """Attach/overwrite an attribute while the span is open."""
        self.attrs[key] = value


class Tracer:
    """Collects nested :class:`Span` records for one run.

    Thread-safe: engine device lanes run in threads and each keeps its
    own parent stack (thread-local), so ``kernel`` samples recorded
    inside a lane thread parent under that lane's ``device.run`` span
    without any caller bookkeeping.
    """

    def __init__(
        self,
        run_id: str,
        epoch_wall: "float | None" = None,
        parent_id: "str | None" = None,
    ) -> None:
        self.run_id = run_id
        #: Wall-clock instant defining t=0 of the run timeline.
        self.epoch_wall = time.time() if epoch_wall is None else float(epoch_wall)
        #: Default parent for root spans recorded by this tracer (set
        #: from a :class:`TraceContext` on the worker side).
        self.root_parent_id = parent_id
        self._anchor_perf = time.perf_counter()
        self._anchor_rel = time.time() - self.epoch_wall
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._pid = os.getpid()

    # -- clock ---------------------------------------------------------

    def clock(self) -> float:
        """Seconds since the run epoch (monotonic within this process)."""
        return self._anchor_rel + (time.perf_counter() - self._anchor_perf)

    # -- recording -----------------------------------------------------

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span_id(self) -> Optional[str]:
        """The innermost open span in the calling thread (or the root parent)."""
        stack = self._stack()
        return stack[-1] if stack else self.root_parent_id

    @contextmanager
    def span(
        self,
        name: str,
        parent_id: "str | None" = None,
        **attrs: object,
    ):
        """Record ``name`` around the enclosed block.

        ``parent_id`` overrides the thread-local parent; the default
        nests under the innermost open span of the calling thread.
        Yields an :class:`_ActiveSpan` so callers can attach attributes
        computed inside the block.
        """
        span_id = _new_span_id()
        parent = parent_id if parent_id is not None else self.current_span_id()
        stack = self._stack()
        stack.append(span_id)
        handle = _ActiveSpan(span_id, dict(attrs))
        start = self.clock()
        t0 = time.perf_counter()
        try:
            yield handle
        finally:
            duration = time.perf_counter() - t0
            stack.pop()
            thread = threading.current_thread()
            record = Span(
                name=name,
                span_id=span_id,
                parent_id=parent,
                run_id=self.run_id,
                start=start,
                duration=duration,
                pid=self._pid,
                tid=thread.ident or 0,
                thread=thread.name,
                attrs=handle.attrs,
            )
            with self._lock:
                self._spans.append(record)

    def record(
        self,
        name: str,
        start: float,
        duration: float,
        parent_id: "str | None" = None,
        **attrs: object,
    ) -> None:
        """Record a span from externally measured timestamps."""
        thread = threading.current_thread()
        record = Span(
            name=name,
            span_id=_new_span_id(),
            parent_id=parent_id if parent_id is not None else self.current_span_id(),
            run_id=self.run_id,
            start=start,
            duration=duration,
            pid=self._pid,
            tid=thread.ident or 0,
            thread=thread.name,
            attrs=dict(attrs),
        )
        with self._lock:
            self._spans.append(record)

    # -- cross-process -------------------------------------------------

    def context(self, mode: str, parent_id: "str | None" = None) -> TraceContext:
        """Capture a propagation handle for a worker process."""
        parent = parent_id if parent_id is not None else self.current_span_id()
        return TraceContext(
            run_id=self.run_id,
            parent_id=parent,
            epoch_wall=self.epoch_wall,
            mode=mode,
        )

    @classmethod
    def from_context(cls, context: TraceContext) -> "Tracer":
        return cls(
            run_id=context.run_id,
            epoch_wall=context.epoch_wall,
            parent_id=context.parent_id,
        )

    def export_spans(self) -> List[dict]:
        """Snapshot recorded spans as plain dicts (picklable)."""
        with self._lock:
            return [span.to_dict() for span in self._spans]

    def absorb(self, span_rows: Iterable[dict]) -> int:
        """Merge spans recorded by another tracer (e.g. a worker process).

        Rows keep their own parent links; orphan roots stay as shipped —
        the worker already parented them under the coordinator span via
        its :class:`TraceContext`.  Returns the number of spans added.
        """
        added = 0
        with self._lock:
            for row in span_rows or ():
                self._spans.append(Span.from_dict(row))
                added += 1
        return added

    # -- views ---------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)
