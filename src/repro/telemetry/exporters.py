"""Trace exporters: JSON-lines, Chrome trace-event, and a summary table.

Three consumers, three formats:

* :func:`write_jsonl` — one JSON object per line (manifest record first,
  then spans, then a metrics record); greppable and stream-appendable.
* :func:`write_chrome_trace` — the Chrome trace-event JSON object
  (``{"traceEvents": [...]}``) loadable in Perfetto or
  ``chrome://tracing`` to see lane overlap and shard skew.  Spans map to
  ``"ph": "X"`` complete events with microsecond timestamps; process and
  thread names are announced with ``"ph": "M"`` metadata events.
* :func:`summarize_spans` — the human table behind
  ``repro trace summary``.

:func:`load_trace` reads either format back into ``(manifest, spans,
metrics)`` so the CLI summary works on any file this module wrote.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .manifest import run_manifest

__all__ = [
    "chrome_trace_events",
    "load_trace",
    "summarize_spans",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]


def _span_rows(run) -> List[dict]:
    return [span.to_dict() for span in run.tracer.spans]


def write_jsonl(run, path: str, config: "Optional[dict]" = None) -> int:
    """Write a JSON-lines span log; returns the number of span lines."""
    rows = _span_rows(run)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(run_manifest(run, config)) + "\n")
        for row in rows:
            fh.write(json.dumps({"type": "span", **row}) + "\n")
        fh.write(
            json.dumps({"type": "metrics", **run.metrics.as_dict()}) + "\n"
        )
    return len(rows)


def chrome_trace_events(span_rows: List[dict]) -> List[dict]:
    """Map span dicts to Chrome trace-event ``X``/``M`` events."""
    events: List[dict] = []
    seen_pids: Dict[int, str] = {}
    seen_tids: Dict[Tuple[int, int], str] = {}
    for row in span_rows:
        pid = int(row.get("pid", 0))
        tid = int(row.get("tid", 0))
        if pid not in seen_pids:
            seen_pids[pid] = f"repro pid={pid}"
        key = (pid, tid)
        if key not in seen_tids:
            seen_tids[key] = str(row.get("thread") or f"tid={tid}")
        args = dict(row.get("attrs") or {})
        args["span_id"] = row.get("span_id")
        if row.get("parent_id"):
            args["parent_id"] = row["parent_id"]
        events.append(
            {
                "name": row["name"],
                "cat": "repro",
                "ph": "X",
                "ts": float(row["start"]) * 1e6,
                "dur": max(float(row["duration"]) * 1e6, 0.001),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    for pid, label in seen_pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    for (pid, tid), label in seen_tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": label},
            }
        )
    return events


def write_chrome_trace(run, path: str, config: "Optional[dict]" = None) -> int:
    """Write a Perfetto/``chrome://tracing`` loadable trace file."""
    rows = _span_rows(run)
    doc = {
        "traceEvents": chrome_trace_events(rows),
        "displayTimeUnit": "ms",
        "metadata": {
            **run_manifest(run, config),
            "spans": rows,
            "metrics": run.metrics.as_dict(),
        },
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(rows)


def write_trace(run, path: str, config: "Optional[dict]" = None) -> int:
    """Dispatch on extension: ``.jsonl`` → span log, else Chrome trace."""
    if str(path).endswith(".jsonl"):
        return write_jsonl(run, path, config)
    return write_chrome_trace(run, path, config)


def load_trace(path: str) -> Tuple[dict, List[dict], dict]:
    """Read a trace file back as ``(manifest, span_rows, metrics)``.

    Accepts both formats written by this module; raises ``ValueError``
    for anything else.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"{path}: empty trace file")
    if stripped.startswith("{") and '"traceEvents"' in stripped[:2048]:
        doc = json.loads(text)
        meta = doc.get("metadata") or {}
        spans = list(meta.get("spans") or [])
        if not spans:
            # Fall back to reconstructing spans from the X events.
            for event in doc.get("traceEvents", []):
                if event.get("ph") != "X":
                    continue
                args = dict(event.get("args") or {})
                spans.append(
                    {
                        "name": event.get("name", ""),
                        "span_id": args.pop("span_id", ""),
                        "parent_id": args.pop("parent_id", None),
                        "run_id": meta.get("run_id", ""),
                        "start": float(event.get("ts", 0.0)) / 1e6,
                        "duration": float(event.get("dur", 0.0)) / 1e6,
                        "pid": event.get("pid", 0),
                        "tid": event.get("tid", 0),
                        "thread": "",
                        "attrs": args,
                    }
                )
        manifest = {k: v for k, v in meta.items() if k not in ("spans", "metrics")}
        return manifest, spans, dict(meta.get("metrics") or {})
    # JSON-lines span log.
    manifest: dict = {}
    spans = []
    metrics: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        doc = json.loads(line)
        kind = doc.get("type")
        if kind == "manifest":
            manifest = doc
        elif kind == "span":
            spans.append(doc)
        elif kind == "metrics":
            metrics = doc
    if not manifest and not spans:
        raise ValueError(f"{path}: not a repro trace file")
    return manifest, spans, metrics


def summarize_spans(span_rows: List[dict]) -> str:
    """Aggregate spans by name into an aligned text table."""
    if not span_rows:
        return "(no spans recorded)"
    starts = [float(r["start"]) for r in span_rows]
    ends = [float(r["start"]) + float(r["duration"]) for r in span_rows]
    wall = max(ends) - min(starts)
    by_name: Dict[str, List[float]] = {}
    for row in span_rows:
        by_name.setdefault(str(row["name"]), []).append(float(row["duration"]))
    names = sorted(by_name, key=lambda n: -sum(by_name[n]))
    width = max(len("span"), max(len(n) for n in names))
    lines = [
        f"{'span':<{width}}  {'count':>6}  {'total s':>9}  "
        f"{'mean ms':>9}  {'% wall':>7}"
    ]
    for name in names:
        durations = by_name[name]
        total = sum(durations)
        mean_ms = total / len(durations) * 1e3
        pct = (total / wall * 100.0) if wall > 0 else 0.0
        lines.append(
            f"{name:<{width}}  {len(durations):>6d}  {total:>9.4f}  "
            f"{mean_ms:>9.3f}  {pct:>6.1f}%"
        )
    lines.append(f"{'wall clock':<{width}}  {'':>6}  {wall:>9.4f}")
    return "\n".join(lines)
