"""Namespaced metrics registry: counters, gauges and histograms.

One registry per run absorbs every counter the stack used to scatter
across ad-hoc dicts — §IV paper-word op/traffic counters, autotuner
feedback, encoding-cache hit rates, fleet spawn/respawn counts and
shared-memory data-plane events — behind a single dotted-name API.

Namespaces (see the README "Observability" section for the full table):

========================  =============================================
``ops.<MNEMONIC>``        paper-word operation counts (§IV charging)
``traffic.bytes_*``       modelled DRAM bytes loaded/stored
``engine.*``              chunks/items/lanes executed by the engine
``autotune.*``            adaptive chunk-size controller state
``cache.encoding.*``      encoding-cache hits/misses/shm hits
``dataplane.*``           shared-memory segment/publish/attach events
``fleet.*``               warm worker-pool spawns and respawns
``distributed.*``         shard counts and worker fan-out
``backend.*``             kernel compile counts
========================  =============================================

The registry is deliberately dependency-free and thread-safe; histogram
state is a running ``(count, sum, min, max)`` summary rather than
bucketed reservoirs — enough for the trace summary table without
per-sample storage.
"""

from __future__ import annotations

import threading
from typing import Dict, Mapping, Optional

__all__ = ["MetricsRegistry"]


class _HistogramStat:
    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def as_dict(self) -> dict:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": mean,
        }


class MetricsRegistry:
    """Thread-safe counters/gauges/histograms keyed by dotted names."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _HistogramStat] = {}

    # -- counters ------------------------------------------------------

    def inc(self, name: str, value: "int | float" = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def counter(self, name: str) -> "int | float":
        with self._lock:
            return self._counters.get(name, 0)

    def merge_counters(
        self, mapping: Mapping[str, "int | float"], prefix: str = ""
    ) -> None:
        """Bulk-add a plain counter dict under an optional namespace prefix."""
        with self._lock:
            for key, value in mapping.items():
                name = prefix + str(key)
                self._counters[name] = self._counters.get(name, 0) + value

    # -- gauges --------------------------------------------------------

    def set_gauge(self, name: str, value: "int | float") -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def gauge(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    # -- histograms ----------------------------------------------------

    def observe(self, name: str, value: "int | float") -> None:
        with self._lock:
            stat = self._histograms.get(name)
            if stat is None:
                stat = _HistogramStat()
                self._histograms[name] = stat
            stat.observe(value)

    # -- views ---------------------------------------------------------

    def counters(self, prefix: str = "") -> Dict[str, "int | float"]:
        """Counters whose name starts with ``prefix`` (prefix stripped)."""
        with self._lock:
            return {
                name[len(prefix):]: value
                for name, value in self._counters.items()
                if name.startswith(prefix)
            }

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: stat.as_dict()
                    for name, stat in self._histograms.items()
                },
            }

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._counters)
                + len(self._gauges)
                + len(self._histograms)
            )
