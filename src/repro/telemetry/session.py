"""Ambient run sessions: one tracer + metrics registry per run.

Ownership model
---------------
Exactly one layer *starts* a run and every nested layer *joins* it:

* ``EpistasisDetector.detect_candidates`` starts a run when its resolved
  telemetry mode is not ``off`` and no run is active;
* ``SearchPipeline.run`` starts one so all stage detectors share it;
* ``run_distributed`` starts one when invoked directly (benchmarks);
* distributed worker processes *activate* a run from the coordinator's
  :class:`~repro.telemetry.tracer.TraceContext` so their spans carry the
  coordinator's ``run_id`` and timeline.

Joining is implicit: any layer calls :func:`current_run` and records
into it when one is active, regardless of its own config — the run
owner decides whether telemetry is on.  When nothing is active the
helpers (:func:`span_or_null`, :func:`metric_inc`) are near-free no-ops,
which is what keeps ``telemetry="off"`` off the hot path.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from typing import Optional

from .metrics import MetricsRegistry
from .tracer import TraceContext, Tracer, new_run_id

__all__ = [
    "RunTelemetry",
    "absorb_stats",
    "current_run",
    "finish_run",
    "last_run",
    "metric_inc",
    "span_or_null",
    "start_run",
]

_LOCK = threading.Lock()
_ACTIVE: Optional["RunTelemetry"] = None
_LAST: Optional["RunTelemetry"] = None

#: Reusable no-op context manager (stateless, safe to share/re-enter).
_NULL_CONTEXT = nullcontext()


class RunTelemetry:
    """The recording state of one run: id, mode, tracer, metrics."""

    def __init__(
        self,
        mode: str,
        run_id: "str | None" = None,
        context: "TraceContext | None" = None,
    ) -> None:
        if context is not None:
            self.run_id = context.run_id
            self.mode = context.mode
            self.tracer = Tracer.from_context(context)
            self.remote = True
        else:
            self.run_id = run_id or new_run_id()
            self.mode = mode
            self.tracer = Tracer(self.run_id)
            self.remote = False
        self.metrics = MetricsRegistry()
        self.started_at = time.time()
        self.finished_at: Optional[float] = None
        self._dataplane_mark: Optional[dict] = None

    def dataplane_delta(self) -> dict:
        """Data-plane counter increments since the previous call.

        The first call baselines against the run start (the snapshot is
        taken lazily so a run that never touches the data plane never
        imports it).  Marks advance on every call, so repeated absorbs
        (one per pipeline stage) never double-count.
        """
        from repro.distributed.shm import data_plane_delta, data_plane_snapshot

        now = data_plane_snapshot()
        mark = self._dataplane_mark
        self._dataplane_mark = now
        if mark is None:
            # Unknown baseline: charge nothing for the pre-run history.
            return {}
        return data_plane_delta(mark, now)

    def mark_dataplane(self) -> None:
        """Baseline the data-plane counters (called at run start)."""
        from repro.distributed.shm import data_plane_snapshot

        self._dataplane_mark = data_plane_snapshot()

    @property
    def full(self) -> bool:
        """True when per-chunk kernel samples should be recorded."""
        return self.mode == "full"

    def context(self, parent_id: "str | None" = None) -> TraceContext:
        """Propagation handle for shipping this run to a worker process."""
        return self.tracer.context(self.mode, parent_id=parent_id)

    def summary(self) -> dict:
        """Small embeddable digest (goes into ``DetectionResult.extra``)."""
        spans = self.tracer.spans
        return {
            "mode": self.mode,
            "run_id": self.run_id,
            "n_spans": len(spans),
            "n_metrics": len(self.metrics),
        }


def start_run(
    mode: str,
    run_id: "str | None" = None,
    context: "TraceContext | None" = None,
) -> RunTelemetry:
    """Create and activate a run session (the caller becomes its owner).

    If a run is already active it is returned unchanged — nested layers
    must not displace the owner's session.  The owner is responsible for
    the matching :func:`finish_run`.
    """
    global _ACTIVE
    with _LOCK:
        if _ACTIVE is not None:
            return _ACTIVE
        run = RunTelemetry(mode, run_id=run_id, context=context)
        _ACTIVE = run
    run.mark_dataplane()
    return run


def current_run() -> Optional[RunTelemetry]:
    """The active run session, or ``None`` (telemetry off / not started)."""
    return _ACTIVE


def finish_run(run: RunTelemetry) -> None:
    """Deactivate ``run`` and remember it as :func:`last_run`.

    No-op when ``run`` is not the active session (a nested layer calling
    by mistake must not tear down its owner's run).
    """
    global _ACTIVE, _LAST
    with _LOCK:
        if _ACTIVE is not run:
            return
        run.finished_at = time.time()
        _ACTIVE = None
        _LAST = run


def last_run() -> Optional[RunTelemetry]:
    """The most recently finished run (for exporters / the CLI)."""
    return _LAST


def span_or_null(name: str, **attrs: object):
    """A span on the active run, or a shared no-op context manager.

    The off-path cost is one global read and a ``None`` check — callers
    on warm paths (shm publish/attach, backend compile) use this
    unconditionally.
    """
    run = _ACTIVE
    if run is None:
        return _NULL_CONTEXT
    return run.tracer.span(name, **attrs)


def metric_inc(name: str, value: "int | float" = 1) -> None:
    """Increment a counter on the active run's registry, if any."""
    run = _ACTIVE
    if run is not None:
        run.metrics.inc(name, value)


def absorb_stats(run: RunTelemetry, stats) -> None:
    """Fold a run's :class:`~repro.core.result.ApproachStats` into the registry.

    This is the single bridge between the legacy per-result counters and
    the namespaced registry: §IV op/traffic counters land under ``ops.*``
    / ``traffic.*`` op-for-op, engine lane bookkeeping under
    ``engine.*``/``autotune.*``, and shard/data-plane counters under
    ``distributed.*``/``dataplane.*``.  Pipeline runs absorb once per
    stage; counters accumulate across stages of one run.
    """
    metrics = run.metrics
    metrics.merge_counters(stats.op_counts, prefix="ops.")
    metrics.inc("traffic.bytes_loaded", stats.bytes_loaded)
    metrics.inc("traffic.bytes_stored", stats.bytes_stored)
    metrics.inc("engine.combinations", stats.n_combinations)
    metrics.set_gauge("engine.workers", stats.n_workers)
    metrics.observe("engine.elapsed_seconds", stats.elapsed_seconds)

    extra = stats.extra or {}
    for label, entry in (extra.get("devices") or {}).items():
        metrics.inc("engine.chunks", entry.get("chunks", 0))
        metrics.inc("engine.items", entry.get("items", 0))
        metrics.observe("engine.lane_busy_seconds", entry.get("busy_seconds", 0.0))
        metrics.set_gauge(
            f"engine.lane.{label}.utilization", entry.get("utilization", 0.0)
        )
        autotune = entry.get("autotune")
        if autotune:
            for tuner in autotune.get("workers", ()):
                metrics.inc("autotune.adjustments", tuner.get("adjustments", 0))
                metrics.observe(
                    "autotune.final_chunk_size", tuner.get("chunk_size", 0)
                )

    distributed = extra.get("distributed")
    if distributed:
        metrics.inc("distributed.runs", 1)
        metrics.inc("distributed.shards", distributed.get("n_shards", 0))
        metrics.set_gauge("distributed.workers", distributed.get("workers", 0))
        metrics.merge_counters(
            distributed.get("data_plane") or {}, prefix="dataplane."
        )
        fleet = distributed.get("fleet") or {}
        for key, value in fleet.items():
            if isinstance(value, (int, float)):
                metrics.set_gauge(f"fleet.{key}", value)
        resilience = distributed.get("resilience") or {}
        for key in ("retries", "watchdog_kills", "pool_breaks"):
            metrics.inc(f"resilience.{key}", resilience.get(key, 0))
        metrics.inc(
            "resilience.quarantines", len(resilience.get("quarantined") or ())
        )
    else:
        # In-process run: charge the data-plane/encoding-cache increments
        # observed in this process since the last absorb.
        metrics.merge_counters(run.dataplane_delta(), prefix="dataplane.")
