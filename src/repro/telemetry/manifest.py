"""Run manifests and the shared host/metadata block.

Every exported trace file and every ``benchmarks/bench_*.py`` artifact
embeds the same host block, so runs recorded on different hosts (or
different numpy/word-layout/backend configurations) stay comparable and
correlatable.  ``MANIFEST_SCHEMA_VERSION`` is bumped whenever a key is
added or renamed.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Optional

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "host_metadata",
    "run_manifest",
]

#: Version of the manifest/host block layout shared by trace files and
#: benchmark artifacts.
MANIFEST_SCHEMA_VERSION = 1


def host_metadata() -> dict:
    """The uniform host/configuration block.

    Identical in shape across trace manifests and all bench artifacts:
    cpu count, python/numpy versions, platform string, active word
    layout, resolved backend, and the block's schema version.
    """
    import numpy as np

    from ..backends import resolve_backend_name
    from ..bitops.packing import DEFAULT_LAYOUT

    try:
        backend = resolve_backend_name(None)
    except ValueError:
        backend = "auto"
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "host_cpus": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "python_impl": platform.python_implementation(),
        "numpy": np.__version__,
        "word_layout": DEFAULT_LAYOUT.name,
        "word_bits": DEFAULT_LAYOUT.bits,
        "backend": backend,
        "argv0": os.path.basename(sys.argv[0]) if sys.argv else "",
    }


def run_manifest(run, config: "Optional[dict]" = None) -> dict:
    """The manifest record heading an exported trace file.

    ``run`` is a :class:`~repro.telemetry.session.RunTelemetry`;
    ``config`` an optional plain dict describing the search
    configuration (approach, order, workers, ...).
    """
    doc = {
        "type": "manifest",
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "run_id": run.run_id,
        "mode": run.mode,
        "started_at": run.started_at,
        "finished_at": run.finished_at,
        "host": host_metadata(),
    }
    if config:
        doc["config"] = dict(config)
    return doc
