"""Unified telemetry plane: tracing, metrics, and run manifests.

``repro.telemetry`` is the zero-dependency recording substrate shared
by every execution layer:

* :class:`Tracer` — nested spans (``detect`` → ``plan`` → per-lane
  ``device.run`` → per-chunk ``kernel``; plus ``pipeline.stage``,
  ``shard.dispatch``/``shard.run``, ``shm.publish``/``shm.attach`` and
  ``backend.compile``) with one ``run_id`` per run and cross-process
  propagation so distributed workers' spans parent under the
  coordinator's run.
* :class:`MetricsRegistry` — namespaced counters/gauges/histograms
  absorbing the op/traffic counters, autotuner feedback, cache hit
  rates, fleet respawns and data-plane events.
* Exporters — JSON-lines span logs, Chrome trace-event files (Perfetto
  loadable), and the ``repro trace summary`` table.

The knob is ``telemetry="off"|"minimal"|"full"`` on
:class:`~repro.core.detector.DetectorConfig`, ``--telemetry`` on the
CLI, or ``REPRO_TELEMETRY`` in the environment; ``off`` (the default)
records nothing and costs nothing on the hot path.
"""

from .exporters import (
    chrome_trace_events,
    load_trace,
    summarize_spans,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from .manifest import MANIFEST_SCHEMA_VERSION, host_metadata, run_manifest
from .metrics import MetricsRegistry
from .session import (
    RunTelemetry,
    absorb_stats,
    current_run,
    finish_run,
    last_run,
    metric_inc,
    span_or_null,
    start_run,
)
from .tracer import (
    TELEMETRY_ENV,
    VALID_TELEMETRY_MODES,
    Span,
    TraceContext,
    Tracer,
    check_telemetry_mode,
    default_telemetry_mode,
    new_run_id,
    resolve_telemetry_mode,
)

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "MetricsRegistry",
    "RunTelemetry",
    "Span",
    "TELEMETRY_ENV",
    "TraceContext",
    "Tracer",
    "VALID_TELEMETRY_MODES",
    "absorb_stats",
    "check_telemetry_mode",
    "chrome_trace_events",
    "current_run",
    "default_telemetry_mode",
    "finish_run",
    "host_metadata",
    "last_run",
    "load_trace",
    "metric_inc",
    "new_run_id",
    "resolve_telemetry_mode",
    "run_manifest",
    "span_or_null",
    "start_run",
    "summarize_spans",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
