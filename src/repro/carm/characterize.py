"""Characterisation of the four approaches in CARM (Figure 2).

For a chosen device, every approach version is turned into a
:class:`~repro.carm.model.KernelPoint`:

* the **arithmetic intensity** comes from the per-element operation and
  traffic counts of :mod:`repro.perfmodel.counters` (identical to what the
  functional kernels charge to their counters);
* the **achieved GINTOPS** is the predicted throughput of the analytical
  performance model multiplied by the operations per element.

The resulting placements reproduce the paper's reading of Figure 2:

* CPU (Ice Lake SP): V1 sits on the (scalar) L3 roof, V2 moves *left*
  (lower AI) and stays memory bound, V3 climbs to the private-cache region
  just below the scalar ADD roof, V4 reaches the vicinity of the integer
  vector ADD peak;
* GPU (Iris Xe MAX): V1/V2 are DRAM bound, V3 jumps thanks to coalescing,
  V4 approaches the device's integer peak (or stays DRAM bound on
  bandwidth-starved parts).
"""

from __future__ import annotations

from typing import List

from repro.carm.model import CarmModel, KernelPoint
from repro.devices.specs import CpuSpec, GpuSpec
from repro.perfmodel.counters import approach_counts
from repro.perfmodel.cpu_model import estimate_cpu
from repro.perfmodel.gpu_model import estimate_gpu

__all__ = ["characterize_cpu_approaches", "characterize_gpu_approaches"]


def characterize_cpu_approaches(
    spec: CpuSpec,
    n_snps: int = 2048,
    n_samples: int = 16384,
    versions: tuple[int, ...] = (1, 2, 3, 4),
) -> tuple[CarmModel, List[KernelPoint]]:
    """Place the CPU approaches V1–V4 on the device's roofline (Figure 2a)."""
    model = CarmModel.from_cpu(spec)
    points: List[KernelPoint] = []
    for version in versions:
        counts = approach_counts(version, device="cpu")
        estimate = estimate_cpu(spec, version, n_snps=n_snps, n_samples=n_samples)
        elements_per_second = estimate.elements_per_second_total
        gops = elements_per_second * counts.ops_per_element / 1e9
        points.append(
            KernelPoint(
                name=f"V{version}",
                arithmetic_intensity=counts.arithmetic_intensity,
                gops=gops,
                elements_per_second=elements_per_second,
            )
        )
    scalar_versions = tuple(f"V{v}" for v in versions if v < 4)
    return model, model.place(points, scalar_versions=scalar_versions)


def characterize_gpu_approaches(
    spec: GpuSpec,
    n_snps: int = 2048,
    n_samples: int = 16384,
    versions: tuple[int, ...] = (1, 2, 3, 4),
) -> tuple[CarmModel, List[KernelPoint]]:
    """Place the GPU approaches V1–V4 on the device's roofline (Figure 2b)."""
    model = CarmModel.from_gpu(spec)
    points: List[KernelPoint] = []
    for version in versions:
        counts = approach_counts(version, device="gpu")
        estimate = estimate_gpu(spec, version, n_snps=n_snps, n_samples=n_samples)
        elements_per_second = estimate.elements_per_second_total
        gops = elements_per_second * counts.ops_per_element / 1e9
        points.append(
            KernelPoint(
                name=f"V{version}",
                arithmetic_intensity=counts.arithmetic_intensity,
                gops=gops,
                elements_per_second=elements_per_second,
            )
        )
    return model, model.place(points)
