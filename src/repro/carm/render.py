"""Text rendering of roofline characterisations.

No plotting library is assumed to be available offline, so the benchmark
harness renders Figure 2 as (a) a CSV block that can be re-plotted with any
tool and (b) a coarse ASCII log-log chart for quick inspection in a
terminal.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.carm.model import CarmModel, KernelPoint

__all__ = ["render_csv", "render_ascii"]


def render_csv(model: CarmModel, points: Sequence[KernelPoint]) -> str:
    """Roofs and kernel points as a CSV block (one section each)."""
    lines = [f"# CARM characterisation, device={model.device}"]
    lines.append("roof,kind,scalar,value")
    for roof in model.roofs:
        lines.append(f"{roof.name},{roof.kind},{int(roof.scalar)},{roof.value:.4f}")
    lines.append("kernel,arithmetic_intensity,gintops,elements_per_second,bound_by")
    for p in points:
        lines.append(
            f"{p.name},{p.arithmetic_intensity:.6f},{p.gops:.4f},"
            f"{p.elements_per_second:.4e},{p.bound_by}"
        )
    return "\n".join(lines)


def render_ascii(
    model: CarmModel,
    points: Sequence[KernelPoint],
    width: int = 64,
    height: int = 18,
    ai_range: tuple[float, float] = (2**-4, 2**6),
) -> str:
    """A coarse ASCII log-log roofline chart.

    Memory roofs are drawn as ``/`` diagonals, compute roofs as ``-`` rows
    and kernels as their version digit.  The chart is intentionally crude —
    it exists so the benchmark output is interpretable without plotting.
    """
    ai_lo, ai_hi = ai_range
    gops_values = [r.value for r in model.compute_roofs] + [p.gops for p in points]
    gops_hi = max(gops_values) * 2
    gops_lo = max(min(p.gops for p in points) / 4, gops_hi / 2**14) if points else gops_hi / 2**14

    def x_of(ai: float) -> int:
        frac = (math.log2(ai) - math.log2(ai_lo)) / (math.log2(ai_hi) - math.log2(ai_lo))
        return int(round(frac * (width - 1)))

    def y_of(gops: float) -> int:
        gops = min(max(gops, gops_lo), gops_hi)
        frac = (math.log2(gops) - math.log2(gops_lo)) / (
            math.log2(gops_hi) - math.log2(gops_lo)
        )
        return (height - 1) - int(round(frac * (height - 1)))

    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    for roof in model.memory_roofs:
        for col in range(width):
            ai = ai_lo * (ai_hi / ai_lo) ** (col / (width - 1))
            gops = roof.attainable_gops(ai)
            if gops_lo <= gops <= gops_hi:
                row = y_of(gops)
                if grid[row][col] == " ":
                    grid[row][col] = "/" if not roof.scalar else "."
    for roof in model.compute_roofs:
        if gops_lo <= roof.value <= gops_hi:
            row = y_of(roof.value)
            for col in range(width):
                if grid[row][col] == " ":
                    grid[row][col] = "-" if not roof.scalar else "."
    for p in points:
        col = min(max(x_of(p.arithmetic_intensity), 0), width - 1)
        row = y_of(p.gops)
        grid[row][col] = p.name[-1]

    header = f"CARM {model.device}  (x: intop/byte {ai_lo:g}..{ai_hi:g} log2, y: GINTOPS log2)"
    body = "\n".join("".join(row) for row in grid)
    legend = "  ".join(
        f"{p.name}: AI={p.arithmetic_intensity:.2f}, {p.gops:.1f} GINTOPS, bound by {p.bound_by}"
        for p in points
    )
    return f"{header}\n{body}\n{legend}"
