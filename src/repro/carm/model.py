"""The Cache-Aware Roofline Model itself.

A :class:`CarmModel` is a collection of memory roofs (GB/s seen from the
core) and compute roofs (giga integer operations per second).  Unlike the
"classic" roofline, CARM measures all memory traffic from the core's
perspective, so every cache level contributes a roof and the x-axis
arithmetic intensity uses *total* load/store bytes rather than DRAM bytes —
this is exactly the convention used by Intel Advisor and by the paper's
Figure 2, and it is the reason the same kernel point can be compared against
all levels at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.devices.specs import CpuSpec, GpuSpec

__all__ = ["Roof", "KernelPoint", "CarmModel"]


@dataclass(frozen=True)
class Roof:
    """One roof of the model.

    Attributes
    ----------
    name:
        Label, e.g. ``"L1->C"`` or ``"Int32 Vector ADD Peak"``.
    kind:
        ``"memory"`` (slanted, bandwidth-limited) or ``"compute"``
        (horizontal).
    value:
        GB/s for memory roofs, GINTOPS for compute roofs.
    scalar:
        ``True`` for the scalar variants (drawn slashed in the paper).
    """

    name: str
    kind: str
    value: float
    scalar: bool = False

    def attainable_gops(self, ai: float) -> float:
        """Attainable GINTOPS at arithmetic intensity ``ai`` under this roof."""
        if self.kind == "compute":
            return self.value
        return self.value * ai


@dataclass(frozen=True)
class KernelPoint:
    """A kernel placed on the roofline.

    Attributes
    ----------
    name:
        Kernel label (``"V1"`` … ``"V4"``).
    arithmetic_intensity:
        Integer operations per byte.
    gops:
        Achieved giga integer operations per second.
    elements_per_second:
        Achieved throughput in the paper's combinations x samples unit.
    bound_by:
        Name of the roof closest above the point (assigned by
        :meth:`CarmModel.bounding_roof`).
    """

    name: str
    arithmetic_intensity: float
    gops: float
    elements_per_second: float = 0.0
    bound_by: str = ""


class CarmModel:
    """A set of roofs for one device plus helpers to place kernels."""

    def __init__(self, device: str, roofs: Sequence[Roof]) -> None:
        if not roofs:
            raise ValueError("a CARM model needs at least one roof")
        self.device = device
        self.roofs: List[Roof] = list(roofs)

    # -- constructors ------------------------------------------------------------
    @classmethod
    def from_cpu(cls, spec: CpuSpec, isa=None) -> "CarmModel":
        """Build the CPU roofline of Figure 2a from a catalogued CPU.

        Memory roofs use the per-core cache bandwidths scaled to all cores;
        compute roofs are the scalar and vector integer ADD peaks.
        """
        isa = isa or spec.vector_isa
        roofs: List[Roof] = []
        for level in spec.caches:
            if level.name == "DRAM":
                bw = spec.dram_bandwidth_gbps
            else:
                bw = level.bandwidth_gbps(spec.base_freq_ghz, spec.cores)
            roofs.append(Roof(f"{level.name}->C", "memory", bw))
            # The paper's Figure 2a additionally draws the *scalar* memory
            # roofs (slashed): bandwidth achievable with scalar loads only.
            scalar_bw = min(bw, spec.scalar_issue_width * 8 * spec.base_freq_ghz * spec.cores)
            roofs.append(Roof(f"{level.name}->C (scalar)", "memory", scalar_bw, scalar=True))
        roofs.append(
            Roof("Int32 Vector ADD Peak", "compute", spec.peak_int_gops(isa))
        )
        roofs.append(
            Roof("Scalar ADD Peak", "compute", spec.scalar_peak_int_gops(), scalar=True)
        )
        return cls(spec.key, roofs)

    @classmethod
    def from_gpu(cls, spec: GpuSpec) -> "CarmModel":
        """Build the GPU roofline of Figure 2b from a catalogued GPU."""
        freq = spec.boost_freq_ghz
        roofs = [
            Roof("SLM->C", "memory",
                 spec.slm_bytes_per_cycle_per_cu * spec.compute_units * freq),
            Roof("L3->C", "memory",
                 spec.llc_bytes_per_cycle_per_cu * spec.compute_units * freq),
            Roof("DRAM->C", "memory", spec.dram_bandwidth_gbps),
            Roof("Int32 Vector ADD Peak", "compute", spec.peak_int_gops()),
            Roof("POPCNT Peak", "compute", spec.peak_popcnt_gops()),
        ]
        return cls(spec.key, roofs)

    # -- queries -------------------------------------------------------------------
    @property
    def memory_roofs(self) -> List[Roof]:
        """The slanted roofs, fastest first."""
        return sorted(
            (r for r in self.roofs if r.kind == "memory"),
            key=lambda r: -r.value,
        )

    @property
    def compute_roofs(self) -> List[Roof]:
        """The horizontal roofs, highest first."""
        return sorted(
            (r for r in self.roofs if r.kind == "compute"),
            key=lambda r: -r.value,
        )

    def roof(self, name: str) -> Roof:
        """Look up a roof by name."""
        for r in self.roofs:
            if r.name == name:
                return r
        raise KeyError(f"{self.device}: no roof named {name!r}")

    def attainable_gops(self, ai: float, include_scalar: bool = False) -> float:
        """Maximum attainable GINTOPS at the given arithmetic intensity.

        ``min(best memory roof at ai, best compute roof)`` — the classic
        roofline envelope.  Scalar roofs are excluded from the envelope by
        default (they bound the scalar kernels only).
        """
        if ai <= 0:
            raise ValueError("arithmetic intensity must be positive")
        roofs = [r for r in self.roofs if include_scalar or not r.scalar]
        mem = max((r.attainable_gops(ai) for r in roofs if r.kind == "memory"),
                  default=float("inf"))
        comp = max((r.value for r in roofs if r.kind == "compute"), default=float("inf"))
        return min(mem, comp)

    def bounding_roof(self, point: KernelPoint, scalar_kernel: bool = False) -> Roof:
        """The roof immediately above (or nearest to) a kernel point.

        For scalar kernels the scalar roofs participate, mirroring the
        paper's reading of Figure 2a ("limited by the scalar L3 bandwidth
        roof", "right below the scalar ADD roof").
        """
        candidates = [
            r for r in self.roofs
            if (scalar_kernel or not r.scalar)
        ]
        above = [
            r for r in candidates
            if r.attainable_gops(point.arithmetic_intensity) >= point.gops * 0.999
        ]
        if above:
            return min(above, key=lambda r: r.attainable_gops(point.arithmetic_intensity))
        # The point exceeds every roof (should not happen with a consistent
        # model) — report the highest roof.
        return max(candidates, key=lambda r: r.attainable_gops(point.arithmetic_intensity))

    def place(self, points: Iterable[KernelPoint], scalar_versions: Sequence[str] = ()) -> List[KernelPoint]:
        """Annotate kernel points with the roof that bounds them."""
        placed = []
        for p in points:
            roof = self.bounding_roof(p, scalar_kernel=p.name in scalar_versions)
            placed.append(
                KernelPoint(
                    name=p.name,
                    arithmetic_intensity=p.arithmetic_intensity,
                    gops=p.gops,
                    elements_per_second=p.elements_per_second,
                    bound_by=roof.name,
                )
            )
        return placed

    def __repr__(self) -> str:
        return f"CarmModel(device={self.device!r}, roofs={len(self.roofs)})"
