"""Cache-Aware Roofline Model (CARM).

The paper selects its best CPU/GPU approaches by characterising all four
variants in the Cache-Aware Roofline Model (Ilic et al., IEEE CAL 2014) as
measured by Intel Advisor (Figure 2).  CARM plots, on log-log axes,

* memory roofs — one line per memory level, ``performance = AI x bandwidth``
  where the bandwidth is measured from the core's perspective (loads served
  by L1, L2, L3, DRAM), and
* compute roofs — horizontal lines at the scalar and vector integer peaks,

and places every kernel at ``(arithmetic intensity, achieved GINTOPS)``.
This package implements the model itself (:mod:`repro.carm.model`), the
characterisation of the paper's approaches on any catalogued device
(:mod:`repro.carm.characterize`) and a text renderer used by the benchmark
harness (:mod:`repro.carm.render`).
"""

from repro.carm.model import CarmModel, KernelPoint, Roof
from repro.carm.characterize import (
    characterize_cpu_approaches,
    characterize_gpu_approaches,
)
from repro.carm.render import render_ascii, render_csv

__all__ = [
    "Roof",
    "KernelPoint",
    "CarmModel",
    "characterize_cpu_approaches",
    "characterize_gpu_approaches",
    "render_ascii",
    "render_csv",
]
