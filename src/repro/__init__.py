"""repro — exhaustive k-way epistasis detection on modern CPUs/GPUs.

Reproduction of Marques et al., "Unlocking Personalized Healthcare on Modern
CPUs/GPUs: Three-way Gene Interaction Study" (IPDPS 2022, arXiv:2201.10956),
generalised to an order-generic search core: every approach, scheduling
policy and performance model is parametric in the interaction order
``k`` (2-5), with the paper's third-order study as the default.

The package is organised as:

* :mod:`repro.datasets` — case/control SNP datasets: synthetic generators,
  BOOST binarisation, phenotype split, GPU memory layouts, I/O.
* :mod:`repro.bitops` — packed bit-plane operations, population counts and a
  software model of the AVX/AVX-512 vector ISAs.
* :mod:`repro.core` — the detection engine: contingency tables, the Bayesian
  K2 score, the four CPU and four GPU approaches of the paper (all
  order-generic) and the :class:`~repro.core.detector.EpistasisDetector`
  public API (``order=2`` runs the pairwise screen on the same stack).
* :mod:`repro.engine` — the unified heterogeneous execution engine: device
  lanes, candidate sources (dense/explicit/subset work models), scheduling
  policies (dynamic/static/guided/CARM-ratio) and the streaming top-k
  executor behind every search path.
* :mod:`repro.pipeline` — staged search pipelines (screen → expand →
  refine → permutation): every stage is an engine run with per-stage
  configuration, turning the ``nCr(M, k)`` wall into a retention-budget
  knob.
* :mod:`repro.distributed` — sharded multi-process execution: shard
  planning (static or CARM-throughput-weighted), spawn-safe worker
  processes, atomic checkpoint/resume ledgers and a deterministic
  ``(score, combination-rank)`` merge — ``detect(..., workers=N,
  checkpoint=...)`` survives kills and reports bit-identical top-k for any
  worker count.
* :mod:`repro.gpusim` — a functional GPU execution simulator with coalescing
  analysis.
* :mod:`repro.devices` — the catalog of the 13 CPUs/GPUs of Tables I and II.
* :mod:`repro.carm` — the Cache-Aware Roofline Model characterisation.
* :mod:`repro.perfmodel` — analytical CPU/GPU performance models.
* :mod:`repro.baselines` — MPI3SNP-style baseline, brute-force oracle and the
  published state-of-the-art figures.
* :mod:`repro.experiments` — harnesses regenerating every table and figure.

Quickstart
----------
>>> from repro import EpistasisDetector, SyntheticConfig, PlantedInteraction, generate_dataset
>>> cfg = SyntheticConfig(n_snps=32, n_samples=512,
...                       interaction=PlantedInteraction(snps=(3, 11, 17)), seed=7)
>>> result = EpistasisDetector(approach="cpu-v4").detect(generate_dataset(cfg))
>>> result.best_snps
(3, 11, 17)
"""

from repro.core.detector import DetectorConfig, EpistasisDetector
from repro.core.pairwise import PairwiseEpistasisDetector
from repro.core.result import ApproachStats, DetectionResult, Interaction
from repro.core.scoring import K2Score, get_objective
from repro.datasets.dataset import GenotypeDataset
from repro.datasets.synthetic import (
    PlantedInteraction,
    SyntheticConfig,
    generate_dataset,
    generate_null_dataset,
)
from repro.datasets.io import load_dataset, load_npz, save_npz
from repro.devices.catalog import cpu, device, gpu, list_devices
from repro.engine import (
    EngineDevice,
    ExecutionPlan,
    HeterogeneousExecutor,
    get_policy,
    list_policies,
)
from repro.distributed import (
    CheckpointStore,
    ShardPlanner,
    run_distributed,
)
from repro.pipeline import (
    ExpandStage,
    PermutationStage,
    PipelineResult,
    RefineStage,
    ScreenStage,
    SearchPipeline,
    StageReport,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "EpistasisDetector",
    "DetectorConfig",
    "PairwiseEpistasisDetector",
    "DetectionResult",
    "Interaction",
    "ApproachStats",
    "K2Score",
    "get_objective",
    "GenotypeDataset",
    "SyntheticConfig",
    "PlantedInteraction",
    "generate_dataset",
    "generate_null_dataset",
    "save_npz",
    "load_npz",
    "load_dataset",
    "cpu",
    "gpu",
    "device",
    "list_devices",
    "EngineDevice",
    "ExecutionPlan",
    "HeterogeneousExecutor",
    "get_policy",
    "list_policies",
    "ShardPlanner",
    "CheckpointStore",
    "run_distributed",
    "SearchPipeline",
    "PipelineResult",
    "StageReport",
    "ScreenStage",
    "ExpandStage",
    "RefineStage",
    "PermutationStage",
]
