"""Simulated multi-rank cluster for the MPI3SNP-style baseline.

MPI3SNP distributes the third-order search across cluster processes with a
static partition of the combination space; each rank evaluates its share and
the best interactions are gathered on rank 0.  No MPI implementation is
available offline, so this module provides a functional stand-in: ranks are
executed sequentially (or on host threads), communication is modelled as
explicit ``scatter``/``gather`` calls whose traffic is accounted, and the
rank-local algorithm is supplied by the caller.

The simulation preserves exactly the properties the baseline comparison
needs: the static (load-imbalanced) partitioning, the per-rank duplication of
the dataset, and the single gather of partial results at the end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, List, Sequence, TypeVar

from repro.parallel.scheduler import static_partition

__all__ = ["ClusterRank", "SimulatedCluster"]

T = TypeVar("T")


@dataclass
class ClusterRank:
    """Bookkeeping of one simulated rank."""

    rank: int
    work_range: tuple[int, int]
    items_processed: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0

    @property
    def work_items(self) -> int:
        """Number of combination ranks assigned to this rank."""
        return self.work_range[1] - self.work_range[0]


class SimulatedCluster(Generic[T]):
    """A fixed-size group of ranks with static work partitioning.

    Parameters
    ----------
    n_ranks:
        Number of simulated processes.

    Notes
    -----
    The cluster is deliberately synchronous and deterministic: ``run``
    executes rank 0, rank 1, … in order.  The measured quantity of interest
    for the baseline comparison is *work done per rank* (and the traffic of
    the initial broadcast / final gather), not wall-clock overlap, which the
    performance model handles separately.
    """

    def __init__(self, n_ranks: int) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be positive")
        self.n_ranks = int(n_ranks)
        self.ranks: List[ClusterRank] = []

    # -- collective operations -------------------------------------------------
    def scatter_work(self, total_items: int) -> List[ClusterRank]:
        """Statically partition ``total_items`` across the ranks."""
        ranges = static_partition(total_items, self.n_ranks)
        self.ranks = [ClusterRank(rank=i, work_range=r) for i, r in enumerate(ranges)]
        return self.ranks

    def broadcast_dataset(self, n_bytes: int) -> None:
        """Model the initial dataset broadcast (every rank receives a copy)."""
        if not self.ranks:
            raise RuntimeError("scatter_work must be called before broadcast_dataset")
        for rank in self.ranks:
            rank.bytes_received += int(n_bytes)

    def run(
        self,
        rank_fn: Callable[[ClusterRank], T],
    ) -> List[T]:
        """Execute ``rank_fn`` for every rank and return the partial results."""
        if not self.ranks:
            raise RuntimeError("scatter_work must be called before run")
        results: List[T] = []
        for rank in self.ranks:
            results.append(rank_fn(rank))
        return results

    def gather(self, partials: Sequence[T], bytes_per_partial: int = 0) -> List[T]:
        """Gather partial results on rank 0 (accounts the traffic)."""
        if not self.ranks:
            raise RuntimeError("scatter_work must be called before gather")
        for rank in self.ranks[1:]:
            rank.bytes_sent += int(bytes_per_partial)
        self.ranks[0].bytes_received += int(bytes_per_partial) * (self.n_ranks - 1)
        return list(partials)

    # -- diagnostics -------------------------------------------------------------
    def load_imbalance(self) -> float:
        """Max-to-mean ratio of assigned work items (1.0 = perfectly balanced)."""
        if not self.ranks:
            return 1.0
        sizes = [r.work_items for r in self.ranks]
        mean = sum(sizes) / len(sizes)
        if mean == 0:
            return 1.0
        return max(sizes) / mean
