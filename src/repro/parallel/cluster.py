"""Simulated multi-rank cluster (deprecation shim).

.. deprecated::
    :class:`SimulatedCluster` and :class:`ClusterRank` moved to
    :mod:`repro.distributed.cluster`, and the MPI3SNP-style baseline now
    executes its ranks through :func:`repro.distributed.run_distributed`
    (real OS processes with ``processes=True``).  This module re-exports
    the old names unchanged and will be removed in a future release.
"""

from __future__ import annotations

import warnings

from repro.distributed.cluster import ClusterRank, RankAccounting, SimulatedCluster

warnings.warn(
    "repro.parallel.cluster is deprecated; import the rank accounting from "
    "repro.distributed (real-rank execution: repro.distributed.run_distributed)",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["ClusterRank", "RankAccounting", "SimulatedCluster"]
