"""Retired host-parallel package (deprecation shim).

.. deprecated::
    Everything this package provided moved into the unified execution
    engine and the distributed subsystem:

    * schedulers / policies — :mod:`repro.engine` (``DynamicScheduler``,
      ``GuidedScheduler``, ``static_partition``, the ``SchedulingPolicy``
      family);
    * ``parallel_map_reduce`` / ``WorkerResult`` —
      :mod:`repro.engine.mapreduce`;
    * ``SimulatedCluster`` / ``ClusterRank`` —
      :mod:`repro.distributed.cluster` (with real-rank execution through
      :func:`repro.distributed.run_distributed`).

    This package re-exports the old names unchanged and will be removed in
    a future release.
"""

import warnings

from repro.engine.policies import (
    CarmRatioPolicy,
    DynamicPolicy,
    GuidedPolicy,
    SchedulingPolicy,
    StaticPolicy,
    get_policy,
)
from repro.engine.scheduling import DynamicScheduler, GuidedScheduler, static_partition
from repro.engine.mapreduce import WorkerResult, parallel_map_reduce
from repro.distributed.cluster import ClusterRank, SimulatedCluster

warnings.warn(
    "repro.parallel is deprecated; import schedulers and policies from "
    "repro.engine, parallel_map_reduce from repro.engine.mapreduce, and the "
    "cluster accounting from repro.distributed",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "DynamicScheduler",
    "GuidedScheduler",
    "static_partition",
    "SchedulingPolicy",
    "DynamicPolicy",
    "StaticPolicy",
    "GuidedPolicy",
    "CarmRatioPolicy",
    "get_policy",
    "parallel_map_reduce",
    "WorkerResult",
    "SimulatedCluster",
    "ClusterRank",
]
