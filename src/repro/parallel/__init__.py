"""Removed package — ``repro.parallel`` no longer exists.

The deprecation shims that lived here were removed after a long retirement
period.  Everything the package once provided has a current home:

* schedulers / policies — :mod:`repro.engine` (``DynamicScheduler``,
  ``GuidedScheduler``, ``static_partition``, the ``SchedulingPolicy``
  family);
* ``parallel_map_reduce`` / ``WorkerResult`` —
  :mod:`repro.engine.mapreduce`;
* ``SimulatedCluster`` / ``ClusterRank`` —
  :mod:`repro.distributed.cluster` (with real-rank execution through
  :func:`repro.distributed.run_distributed`).
"""

raise ImportError(
    "repro.parallel was removed: import schedulers and policies from "
    "repro.engine, parallel_map_reduce from repro.engine.mapreduce, and "
    "the cluster accounting from repro.distributed"
)
