"""Host parallel runtime (legacy façade over :mod:`repro.engine`).

The paper parallelises the CPU kernels with OpenMP using a *dynamic*
schedule: "each core fetches a task from a thread pool.  Each thread performs
a set of combinations … the scores are kept locally to each thread and a
final reduction is performed to obtain the global solution" (§IV-A).  The
GPU kernels receive blocks of ``BSched^3`` combinations per launch, and the
MPI3SNP baseline statically partitions the combination space across cluster
ranks.

Those substrates now live in the unified heterogeneous execution engine
(:mod:`repro.engine`): the schedulers became engine work sources, the
OpenMP-style schedules became :class:`~repro.engine.policies.SchedulingPolicy`
instances (``dynamic``, ``static``, ``guided``, ``carm``) and the thread
pool became :class:`~repro.engine.executor.HeterogeneousExecutor`.  This
package re-exports the engine names alongside the legacy API so existing
imports keep working:

* :mod:`repro.parallel.scheduler` — re-exports the engine work sources.
* :mod:`repro.parallel.executor` — the legacy ``parallel_map_reduce``
  map/reduce entry point (deprecated in favour of the engine).
* :mod:`repro.parallel.cluster` — a simulated multi-rank cluster used by the
  MPI3SNP-style baseline (rank-local work, explicit gather of the partial
  bests).
"""

from repro.engine.policies import (
    CarmRatioPolicy,
    DynamicPolicy,
    GuidedPolicy,
    SchedulingPolicy,
    StaticPolicy,
    get_policy,
)
from repro.engine.scheduling import DynamicScheduler, GuidedScheduler, static_partition
from repro.parallel.executor import WorkerResult, parallel_map_reduce
from repro.parallel.cluster import ClusterRank, SimulatedCluster

__all__ = [
    "DynamicScheduler",
    "GuidedScheduler",
    "static_partition",
    "SchedulingPolicy",
    "DynamicPolicy",
    "StaticPolicy",
    "GuidedPolicy",
    "CarmRatioPolicy",
    "get_policy",
    "parallel_map_reduce",
    "WorkerResult",
    "SimulatedCluster",
    "ClusterRank",
]
