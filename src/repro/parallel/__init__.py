"""Host parallel runtime.

The paper parallelises the CPU kernels with OpenMP using a *dynamic*
schedule: "each core fetches a task from a thread pool.  Each thread performs
a set of combinations … the scores are kept locally to each thread and a
final reduction is performed to obtain the global solution" (§IV-A).  The
GPU kernels receive blocks of ``BSched^3`` combinations per launch, and the
MPI3SNP baseline statically partitions the combination space across cluster
ranks.

This package provides those three execution substrates:

* :mod:`repro.parallel.scheduler` — thread-safe dynamic chunk scheduler and
  static partitioners over the combination-rank space.
* :mod:`repro.parallel.executor` — thread-pool execution with per-worker
  partial results and a final reduction (NumPy releases the GIL for the
  word-level kernels, so threads provide genuine concurrency).
* :mod:`repro.parallel.cluster` — a simulated multi-rank cluster used by the
  MPI3SNP-style baseline (rank-local work, explicit gather of the partial
  bests).
"""

from repro.parallel.scheduler import DynamicScheduler, static_partition
from repro.parallel.executor import WorkerResult, parallel_map_reduce
from repro.parallel.cluster import ClusterRank, SimulatedCluster

__all__ = [
    "DynamicScheduler",
    "static_partition",
    "parallel_map_reduce",
    "WorkerResult",
    "SimulatedCluster",
    "ClusterRank",
]
