"""Thread-pool execution with per-worker partial results.

The execution model mirrors §IV-A: every worker repeatedly claims a chunk of
combinations from the dynamic scheduler, evaluates it with its own approach
instance (so operation counters are never shared), keeps its best scores
*locally* and the partial results are reduced once at the end — no
synchronisation barriers inside the search.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Sequence, TypeVar

from repro.parallel.scheduler import DynamicScheduler

__all__ = ["WorkerResult", "parallel_map_reduce"]

T = TypeVar("T")


@dataclass
class WorkerResult:
    """Partial result produced by one worker.

    Attributes
    ----------
    worker_id:
        Index of the worker that produced the partial result.
    chunks_processed:
        Number of scheduler chunks the worker claimed.
    payload:
        Worker-defined partial result (e.g. a local top-k list).
    """

    worker_id: int
    chunks_processed: int = 0
    payload: object = None


def parallel_map_reduce(
    scheduler: DynamicScheduler,
    worker_fn: Callable[[int, int, int], T],
    reduce_fn: Callable[[Sequence[T]], T],
    n_workers: int = 1,
) -> tuple[T, List[WorkerResult]]:
    """Run ``worker_fn`` over scheduler chunks and reduce the partial results.

    Parameters
    ----------
    scheduler:
        Source of ``[start, stop)`` work ranges.
    worker_fn:
        ``worker_fn(worker_id, start, stop) -> partial`` — must be thread
        safe with respect to shared read-only data (the encoded dataset);
        anything mutable must be per-worker.
    reduce_fn:
        Combines the per-chunk partial results (from *all* workers) into the
        final result.  Called once, on the calling thread.
    n_workers:
        Number of host threads.  ``1`` executes inline (no pool), which keeps
        single-threaded profiling runs free of executor noise.

    Returns
    -------
    (result, worker_results):
        The reduced result and per-worker bookkeeping.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be positive")

    partials: List[T] = []
    stats = [WorkerResult(worker_id=i) for i in range(n_workers)]

    if n_workers == 1:
        for start, stop in scheduler:
            partials.append(worker_fn(0, start, stop))
            stats[0].chunks_processed += 1
        return reduce_fn(partials), stats

    def _worker(worker_id: int) -> List[T]:
        local: List[T] = []
        while True:
            claimed = scheduler.next_range()
            if claimed is None:
                return local
            start, stop = claimed
            local.append(worker_fn(worker_id, start, stop))
            stats[worker_id].chunks_processed += 1

    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        futures = [pool.submit(_worker, i) for i in range(n_workers)]
        for fut in futures:
            partials.extend(fut.result())
    return reduce_fn(partials), stats
