"""Thread-pool map/reduce (deprecation shim).

.. deprecated::
    :func:`parallel_map_reduce` and :class:`WorkerResult` moved to
    :mod:`repro.engine.mapreduce`; new code should build an
    :class:`~repro.engine.plan.ExecutionPlan` and run it through
    :class:`~repro.engine.executor.HeterogeneousExecutor` (single machine)
    or :func:`repro.distributed.run_distributed` (multi-process).  This
    module re-exports the old names unchanged and will be removed in a
    future release.
"""

from __future__ import annotations

import warnings

from repro.engine.mapreduce import WorkerResult, parallel_map_reduce

warnings.warn(
    "repro.parallel.executor is deprecated; import parallel_map_reduce from "
    "repro.engine.mapreduce (or use the execution engine / repro.distributed)",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["WorkerResult", "parallel_map_reduce"]
