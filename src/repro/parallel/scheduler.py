"""Work distribution over the combination-rank space.

Work units are half-open ranges ``[start, stop)`` of lexicographic
combination ranks (see :mod:`repro.core.combinations`); a scheduler never
touches the combinations themselves, so the same machinery drives CPU
threads, simulated GPU launches and simulated cluster ranks.
"""

from __future__ import annotations

import threading
from typing import Iterator, List, Tuple

__all__ = ["DynamicScheduler", "static_partition"]

Range = Tuple[int, int]


class DynamicScheduler:
    """Thread-safe dynamic chunk scheduler (OpenMP ``schedule(dynamic)``).

    Parameters
    ----------
    total:
        Total number of work items (combination ranks).
    chunk_size:
        Number of items handed out per request.

    Notes
    -----
    The scheduler is intentionally minimal: a single atomic cursor protected
    by a lock.  Contention is negligible because a chunk of thousands of
    combinations amortises the lock acquisition, matching the granularity
    the paper uses for its dynamic OpenMP schedule.
    """

    def __init__(self, total: int, chunk_size: int = 4096) -> None:
        if total < 0:
            raise ValueError("total must be non-negative")
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.total = int(total)
        self.chunk_size = int(chunk_size)
        self._cursor = 0
        self._lock = threading.Lock()

    def next_range(self) -> Range | None:
        """Claim the next chunk, or ``None`` when the space is exhausted."""
        with self._lock:
            if self._cursor >= self.total:
                return None
            start = self._cursor
            stop = min(start + self.chunk_size, self.total)
            self._cursor = stop
            return start, stop

    def __iter__(self) -> Iterator[Range]:
        while True:
            r = self.next_range()
            if r is None:
                return
            yield r

    @property
    def remaining(self) -> int:
        """Number of unclaimed work items."""
        with self._lock:
            return max(0, self.total - self._cursor)

    def reset(self) -> None:
        """Rewind the scheduler (e.g. between benchmark repetitions)."""
        with self._lock:
            self._cursor = 0


def static_partition(total: int, n_parts: int) -> List[Range]:
    """Split ``[0, total)`` into ``n_parts`` contiguous, near-equal ranges.

    This is the static decomposition used by the MPI3SNP-style baseline: the
    first ``total % n_parts`` ranks receive one extra item.  Empty ranges are
    returned (rather than dropped) so the rank <-> range mapping stays
    positional.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be positive")
    if total < 0:
        raise ValueError("total must be non-negative")
    base, extra = divmod(total, n_parts)
    ranges: List[Range] = []
    start = 0
    for rank in range(n_parts):
        size = base + (1 if rank < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges
