"""Work distribution over the combination-rank space (compatibility shim).

.. deprecated::
    The schedulers moved into the unified execution engine; import
    :class:`~repro.engine.scheduling.DynamicScheduler`,
    :class:`~repro.engine.scheduling.GuidedScheduler` and
    :func:`~repro.engine.scheduling.static_partition` from
    :mod:`repro.engine` instead.  This module re-exports them unchanged so
    existing imports keep working.
"""

from __future__ import annotations

from repro.engine.scheduling import (
    DynamicScheduler,
    GuidedScheduler,
    Range,
    static_partition,
)

__all__ = ["DynamicScheduler", "GuidedScheduler", "static_partition", "Range"]
