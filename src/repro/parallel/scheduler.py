"""Work schedulers (deprecation shim).

.. deprecated::
    The schedulers live in the unified execution engine; import
    :class:`~repro.engine.scheduling.DynamicScheduler`,
    :class:`~repro.engine.scheduling.GuidedScheduler` and
    :func:`~repro.engine.scheduling.static_partition` from
    :mod:`repro.engine` instead.  This module re-exports them unchanged and
    will be removed in a future release.
"""

from __future__ import annotations

import warnings

from repro.engine.scheduling import (
    DynamicScheduler,
    GuidedScheduler,
    Range,
    static_partition,
)

warnings.warn(
    "repro.parallel.scheduler is deprecated; import the schedulers from "
    "repro.engine",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["DynamicScheduler", "GuidedScheduler", "static_partition", "Range"]
