"""Per-thread epistasis kernels for the simulator (Algorithm 2).

Each kernel closure is built for a concrete dataset/layout by
:func:`make_split_kernel_args` (or directly for the naïve encoding) and then
executed by :class:`~repro.gpusim.device.SimulatedGpu` over a k-dimensional
ND-range: the thread with global id ``(i0, ..., i_{k-1})`` evaluates the SNP
k-tuple ``i_{k-1} > ... > i0`` (other threads retire immediately), builds its
``3^k x 2`` frequency table in private memory and returns
``(tuple, table, score)``.  The interaction order is the dimensionality of
the launch grid, so the same kernel serves the pairwise screen (2-D range),
the paper's third-order study (3-D range) and the 4-way/5-way searches; the
per-thread instruction and traffic charges scale with the ``3^k`` genotype
cells accordingly.  The final reduction — picking the lowest score across
threads — happens on the host, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from repro.core.approaches._kernels import MAX_ORDER, MIN_ORDER
from repro.core.scoring import ObjectiveFunction, get_objective
from repro.datasets.binarization import BinarizedDataset, PhenotypeSplitDataset
from repro.datasets.layouts import GpuLayout, snp_major_layout, tiled_layout, transposed_layout
from repro.gpusim.device import KernelContext
from repro.gpusim.memory import DeviceBuffer

__all__ = [
    "SplitKernelArgs",
    "make_split_kernel_args",
    "epistasis_kernel_split",
    "epistasis_kernel_naive",
]

ThreadResult = Tuple[Tuple[int, ...], np.ndarray, float]


def _check_kernel_gid(gid: Tuple[int, ...]) -> int:
    """Validate a work-item id against the supported interaction orders."""
    order = len(gid)
    if not MIN_ORDER <= order <= MAX_ORDER:
        raise ValueError(
            f"the epistasis kernels expect a {MIN_ORDER}-D to {MAX_ORDER}-D "
            f"ND-range (one dimension per SNP); got {order}-D"
        )
    return order


def _is_canonical_combo(gid: Tuple[int, ...]) -> bool:
    """Algorithm 2's thread filter: only ``i_{k-1} > ... > i0`` threads work."""
    return all(b > a for a, b in zip(gid, gid[1:]))


def _addressing(kind: str, block_size: int) -> Callable[[int, int, int], Tuple[int, ...]]:
    """Element-index function ``(snp, genotype, word) -> buffer index`` per layout."""
    if kind == "snp-major":
        return lambda snp, g, w: (snp, g, w)
    if kind == "transposed":
        return lambda snp, g, w: (w, g, snp)
    if kind == "tiled":
        return lambda snp, g, w: (snp // block_size, w, g, snp % block_size)
    raise ValueError(f"unknown layout kind {kind!r}")


@dataclass
class SplitKernelArgs:
    """Device-resident inputs of the phenotype-split kernel."""

    control: DeviceBuffer
    case: DeviceBuffer
    control_mask: np.ndarray
    case_mask: np.ndarray
    n_snps: int
    layout_kind: str
    block_size: int
    objective: ObjectiveFunction


def make_split_kernel_args(
    split: PhenotypeSplitDataset,
    layout: str = "tiled",
    block_size: int = 8,
    objective: str | ObjectiveFunction = "k2",
) -> SplitKernelArgs:
    """Upload a phenotype-split dataset in the requested layout.

    Parameters
    ----------
    layout:
        ``"snp-major"``, ``"transposed"`` or ``"tiled"`` — the three GPU
        layouts of §IV-B.
    block_size:
        SNP-block size for the tiled layout.
    """
    if layout == "snp-major":
        gpu_layout: GpuLayout = snp_major_layout(split)
    elif layout == "transposed":
        gpu_layout = transposed_layout(split)
    elif layout == "tiled":
        gpu_layout = tiled_layout(split, block_size=block_size)
    else:
        raise ValueError(f"unknown layout {layout!r}")
    return SplitKernelArgs(
        control=DeviceBuffer(gpu_layout.control, name=f"control[{layout}]"),
        case=DeviceBuffer(gpu_layout.case, name=f"case[{layout}]"),
        control_mask=split.padding_mask(0),
        case_mask=split.padding_mask(1),
        n_snps=split.n_snps,
        layout_kind=layout,
        block_size=gpu_layout.block_size,
        objective=get_objective(objective),
    )


def epistasis_kernel_split(args: SplitKernelArgs) -> Callable[[KernelContext], ThreadResult | None]:
    """Build the per-thread phenotype-split kernel (GPU V2/V3/V4), any order.

    The returned closure implements Algorithm 2 for one thread: load the
    genotype-0/1 words of its k SNPs, infer genotype 2 with a NOR each,
    update the ``3^k`` private frequency-table cells with chained AND +
    POPCNT (partial AND products are reused along the genotype-digit
    prefix, as the nested loops of the reference kernel do), walk all
    packed words of both classes, then score the finished table.  The
    order is the dimensionality of the launch ND-range.
    """
    address = _addressing(args.layout_kind, args.block_size)
    masks = (args.control_mask, args.case_mask)
    buffers = (args.control, args.case)

    def kernel(ctx: KernelContext) -> ThreadResult | None:
        gid = ctx.item.global_id
        order = _check_kernel_gid(gid)
        if not _is_canonical_combo(gid):
            return None  # idle thread, as in Algorithm 2
        table = np.zeros((3**order, 2), dtype=np.int64)
        for phen_class in (0, 1):
            buffer = buffers[phen_class]
            mask = masks[phen_class]
            # Per-instruction charges are per paper (32-bit) word whatever
            # machine-word width the buffer stores.
            paper_words = buffer.word_bytes // 4
            n_words = mask.shape[0]
            for w in range(n_words):
                word_mask = int(mask[w])
                snp_planes = []
                for snp in gid:
                    p0 = ctx.load(buffer, *address(snp, 0, w))
                    p1 = ctx.load(buffer, *address(snp, 1, w))
                    snp_planes.append((p0, p1, ~(p0 | p1) & word_mask))
                ctx.op("NOR", order * paper_words)

                def accumulate(depth: int, value: int, cell: int) -> None:
                    if depth == order:
                        table[cell, phen_class] += ctx.popcount(value, paper_words)
                        return
                    for g in range(3):
                        if depth == 0:
                            partial = snp_planes[0][g]
                        else:
                            partial = value & snp_planes[depth][g]
                            ctx.op("AND", paper_words)
                        accumulate(depth + 1, partial, cell * 3 + g)

                accumulate(0, 0, 0)
        score = float(args.objective.score(table[None])[0])
        return tuple(gid), table, score

    return kernel


def epistasis_kernel_naive(
    binarized: BinarizedDataset,
    objective: str | ObjectiveFunction = "k2",
) -> Callable[[KernelContext], ThreadResult | None]:
    """Build the per-thread naïve kernel (GPU V1): 3 planes + phenotype mask.

    Like the split kernel, the order is the launch grid's dimensionality;
    every genotype cell pays two extra masked population counts (cases and
    controls) instead of the per-class table columns.
    """
    planes = DeviceBuffer(binarized.planes, name="planes")
    phen = DeviceBuffer(binarized.phenotype_words.reshape(1, -1), name="phenotype")
    objective_fn = get_objective(objective)
    n_words = binarized.n_words

    def kernel(ctx: KernelContext) -> ThreadResult | None:
        gid = ctx.item.global_id
        order = _check_kernel_gid(gid)
        if not _is_canonical_combo(gid):
            return None
        table = np.zeros((3**order, 2), dtype=np.int64)
        paper_words = planes.word_bytes // 4
        for w in range(n_words):
            phen_word = ctx.load(phen, 0, w)
            snp_planes = [
                tuple(ctx.load(planes, snp, g, w) for g in range(3)) for snp in gid
            ]

            def accumulate(depth: int, value: int, cell: int) -> None:
                if depth == order:
                    ctx.op("AND", 2 * paper_words)
                    table[cell, 1] += ctx.popcount(value & phen_word, paper_words)
                    table[cell, 0] += ctx.popcount(value & ~phen_word, paper_words)
                    return
                for g in range(3):
                    if depth == 0:
                        partial = snp_planes[0][g]
                    else:
                        partial = value & snp_planes[depth][g]
                        if depth < order - 1:
                            ctx.op("AND", paper_words)
                    accumulate(depth + 1, partial, cell * 3 + g)

            accumulate(0, 0, 0)
        score = float(objective_fn.score(table[None])[0])
        return tuple(gid), table, score

    return kernel
