"""Per-thread epistasis kernels for the simulator (Algorithm 2).

Each kernel closure is built for a concrete dataset/layout by
:func:`make_split_kernel_args` (or directly for the naïve encoding) and then
executed by :class:`~repro.gpusim.device.SimulatedGpu` over a 3-D ND-range:
the thread with global id ``(i0, i1, i2)`` evaluates the SNP triplet
``i2 > i1 > i0`` (other threads retire immediately), builds its 27x2
frequency table in private memory and returns ``(triplet, table, score)``.
The final reduction — picking the lowest score across threads — happens on
the host, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from repro.core.scoring import ObjectiveFunction, get_objective
from repro.datasets.binarization import BinarizedDataset, PhenotypeSplitDataset
from repro.datasets.layouts import GpuLayout, snp_major_layout, tiled_layout, transposed_layout
from repro.gpusim.device import KernelContext
from repro.gpusim.memory import DeviceBuffer

__all__ = [
    "SplitKernelArgs",
    "make_split_kernel_args",
    "epistasis_kernel_split",
    "epistasis_kernel_naive",
]

ThreadResult = Tuple[Tuple[int, int, int], np.ndarray, float]


def _addressing(kind: str, block_size: int) -> Callable[[int, int, int], Tuple[int, ...]]:
    """Element-index function ``(snp, genotype, word) -> buffer index`` per layout."""
    if kind == "snp-major":
        return lambda snp, g, w: (snp, g, w)
    if kind == "transposed":
        return lambda snp, g, w: (w, g, snp)
    if kind == "tiled":
        return lambda snp, g, w: (snp // block_size, w, g, snp % block_size)
    raise ValueError(f"unknown layout kind {kind!r}")


@dataclass
class SplitKernelArgs:
    """Device-resident inputs of the phenotype-split kernel."""

    control: DeviceBuffer
    case: DeviceBuffer
    control_mask: np.ndarray
    case_mask: np.ndarray
    n_snps: int
    layout_kind: str
    block_size: int
    objective: ObjectiveFunction


def make_split_kernel_args(
    split: PhenotypeSplitDataset,
    layout: str = "tiled",
    block_size: int = 8,
    objective: str | ObjectiveFunction = "k2",
) -> SplitKernelArgs:
    """Upload a phenotype-split dataset in the requested layout.

    Parameters
    ----------
    layout:
        ``"snp-major"``, ``"transposed"`` or ``"tiled"`` — the three GPU
        layouts of §IV-B.
    block_size:
        SNP-block size for the tiled layout.
    """
    if layout == "snp-major":
        gpu_layout: GpuLayout = snp_major_layout(split)
    elif layout == "transposed":
        gpu_layout = transposed_layout(split)
    elif layout == "tiled":
        gpu_layout = tiled_layout(split, block_size=block_size)
    else:
        raise ValueError(f"unknown layout {layout!r}")
    return SplitKernelArgs(
        control=DeviceBuffer(gpu_layout.control, name=f"control[{layout}]"),
        case=DeviceBuffer(gpu_layout.case, name=f"case[{layout}]"),
        control_mask=split.padding_mask(0),
        case_mask=split.padding_mask(1),
        n_snps=split.n_snps,
        layout_kind=layout,
        block_size=gpu_layout.block_size,
        objective=get_objective(objective),
    )


def epistasis_kernel_split(args: SplitKernelArgs) -> Callable[[KernelContext], ThreadResult | None]:
    """Build the per-thread phenotype-split kernel (GPU V2/V3/V4).

    The returned closure implements Algorithm 2 for one thread: load the
    genotype-0/1 words of its three SNPs, infer genotype 2 with a NOR,
    update the 27 private frequency-table cells with AND + POPCNT, walk all
    packed words of both classes, then score the finished table.
    """
    address = _addressing(args.layout_kind, args.block_size)
    masks = (args.control_mask, args.case_mask)
    buffers = (args.control, args.case)

    def kernel(ctx: KernelContext) -> ThreadResult | None:
        gid = ctx.item.global_id
        if len(gid) != 3:
            raise ValueError("the split kernel expects a 3-D ND-range")
        i0, i1, i2 = gid
        if not (i2 > i1 > i0):
            return None  # idle thread, as in Algorithm 2
        table = np.zeros((27, 2), dtype=np.int64)
        for phen_class in (0, 1):
            buffer = buffers[phen_class]
            mask = masks[phen_class]
            n_words = mask.shape[0]
            for w in range(n_words):
                x0 = ctx.load(buffer, *address(i0, 0, w))
                x1 = ctx.load(buffer, *address(i0, 1, w))
                y0 = ctx.load(buffer, *address(i1, 0, w))
                y1 = ctx.load(buffer, *address(i1, 1, w))
                z0 = ctx.load(buffer, *address(i2, 0, w))
                z1 = ctx.load(buffer, *address(i2, 1, w))
                word_mask = int(mask[w])
                x2 = ~(x0 | x1) & word_mask
                y2 = ~(y0 | y1) & word_mask
                z2 = ~(z0 | z1) & word_mask
                ctx.op("NOR", 3)
                x = (x0, x1, x2)
                y = (y0, y1, y2)
                z = (z0, z1, z2)
                for gx in range(3):
                    for gy in range(3):
                        xy = x[gx] & y[gy]
                        ctx.op("AND")
                        for gz in range(3):
                            cell = 9 * gx + 3 * gy + gz
                            ctx.op("AND")
                            table[cell, phen_class] += ctx.popcount(xy & z[gz])
        score = float(args.objective.score(table[None])[0])
        return (i0, i1, i2), table, score

    return kernel


def epistasis_kernel_naive(
    binarized: BinarizedDataset,
    objective: str | ObjectiveFunction = "k2",
) -> Callable[[KernelContext], ThreadResult | None]:
    """Build the per-thread naïve kernel (GPU V1): 3 planes + phenotype mask."""
    planes = DeviceBuffer(binarized.planes, name="planes")
    phen = DeviceBuffer(binarized.phenotype_words.reshape(1, -1), name="phenotype")
    objective_fn = get_objective(objective)
    n_words = binarized.n_words

    def kernel(ctx: KernelContext) -> ThreadResult | None:
        gid = ctx.item.global_id
        i0, i1, i2 = gid
        if not (i2 > i1 > i0):
            return None
        table = np.zeros((27, 2), dtype=np.int64)
        for w in range(n_words):
            phen_word = ctx.load(phen, 0, w)
            x = tuple(ctx.load(planes, i0, g, w) for g in range(3))
            y = tuple(ctx.load(planes, i1, g, w) for g in range(3))
            z = tuple(ctx.load(planes, i2, g, w) for g in range(3))
            for gx in range(3):
                for gy in range(3):
                    xy = x[gx] & y[gy]
                    ctx.op("AND")
                    for gz in range(3):
                        cell = 9 * gx + 3 * gy + gz
                        combined = xy & z[gz]
                        ctx.op("AND", 2)
                        table[cell, 1] += ctx.popcount(combined & phen_word)
                        table[cell, 0] += ctx.popcount(combined & ~phen_word)
        score = float(objective_fn.score(table[None])[0])
        return (i0, i1, i2), table, score

    return kernel
