"""ND-range and work-item abstractions.

A kernel launch covers a (possibly multi-dimensional) global index space,
subdivided into work-groups; work-items inside a work-group share the local
memory and are dispatched in sub-groups (warps/wavefronts) of fixed width.
Only the pieces the epistasis kernels need are modelled: 1-D to 5-D ranges
(one dimension per SNP of a k-way kernel),
linearisation of the global id and sub-group membership.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = ["NDRange", "WorkItem"]


@dataclass(frozen=True)
class WorkItem:
    """Identity of one executing thread.

    Attributes
    ----------
    global_id:
        Multi-dimensional global index.
    linear_id:
        Row-major linearisation of ``global_id``.
    group_id:
        Index of the work-group the item belongs to (row-major).
    local_id:
        Linear index within the work-group.
    subgroup_id:
        Index of the warp/wavefront within the launch.
    lane:
        Lane within the sub-group.
    """

    global_id: Tuple[int, ...]
    linear_id: int
    group_id: int
    local_id: int
    subgroup_id: int
    lane: int


@dataclass(frozen=True)
class NDRange:
    """A kernel launch geometry.

    Parameters
    ----------
    global_size:
        Global index-space extents (1 to 5 dimensions).
    local_size:
        Work-group extents; must divide the global extents element-wise.
        Defaults to the whole range in one group.
    subgroup_size:
        Warp/wavefront width used for coalescing analysis.
    """

    global_size: Tuple[int, ...]
    local_size: Tuple[int, ...] | None = None
    subgroup_size: int = 32

    def __post_init__(self) -> None:
        if not 1 <= len(self.global_size) <= 5:
            raise ValueError("global_size must have 1 to 5 dimensions")
        if any(g <= 0 for g in self.global_size):
            raise ValueError("global_size extents must be positive")
        if self.local_size is not None:
            if len(self.local_size) != len(self.global_size):
                raise ValueError("local_size must match global_size dimensionality")
            if any(l <= 0 for l in self.local_size):
                raise ValueError("local_size extents must be positive")
            if any(g % l != 0 for g, l in zip(self.global_size, self.local_size)):
                raise ValueError("local_size must divide global_size element-wise")
        if self.subgroup_size < 1:
            raise ValueError("subgroup_size must be positive")

    # -- geometry -----------------------------------------------------------
    @property
    def total_items(self) -> int:
        """Total number of work-items in the launch."""
        n = 1
        for g in self.global_size:
            n *= g
        return n

    @property
    def work_group_size(self) -> int:
        """Work-items per work-group."""
        if self.local_size is None:
            return self.total_items
        n = 1
        for l in self.local_size:
            n *= l
        return n

    @property
    def n_work_groups(self) -> int:
        """Number of work-groups."""
        return self.total_items // self.work_group_size

    def _unflatten(self, linear: int) -> Tuple[int, ...]:
        coords = []
        for extent in reversed(self.global_size):
            coords.append(linear % extent)
            linear //= extent
        return tuple(reversed(coords))

    def __iter__(self) -> Iterator[WorkItem]:
        """Iterate work-items in dispatch order (group by group)."""
        wg_size = self.work_group_size
        for linear in range(self.total_items):
            group_id, local_id = divmod(linear, wg_size)
            subgroup_id, lane = divmod(linear, self.subgroup_size)
            yield WorkItem(
                global_id=self._unflatten(linear),
                linear_id=linear,
                group_id=group_id,
                local_id=local_id,
                subgroup_id=subgroup_id,
                lane=lane,
            )
