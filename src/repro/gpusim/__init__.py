"""Functional GPU execution simulator.

The GPU approaches of the paper are SYCL/DPC++ kernels; no GPU (nor a SYCL
runtime) is available to a pure-Python reproduction, so this package provides
a small functional simulator that executes the per-thread kernels of
Algorithm 2 faithfully enough to

* validate the GPU algorithms end-to-end (one thread per combination,
  private-memory frequency table, per-thread best score, host-side final
  reduction), and
* measure the *memory-access behaviour* that drives the paper's GPU
  analysis: how many 32-byte transactions a warp's worth of loads generates
  under each data layout (SNP-major vs transposed vs tiled).

The simulator is deliberately an interpreter — a few hundred combinations at
most — and is used by the test-suite and the ablation benchmarks; the
figure-scale throughput numbers come from the analytical model in
:mod:`repro.perfmodel`, which consumes the same coalescing statistics.
"""

from repro.gpusim.grid import NDRange, WorkItem
from repro.gpusim.memory import AccessLog, DeviceBuffer, TRANSACTION_BYTES
from repro.gpusim.device import LaunchStats, SimulatedGpu
from repro.gpusim.kernels import (
    epistasis_kernel_naive,
    epistasis_kernel_split,
    make_split_kernel_args,
)

__all__ = [
    "NDRange",
    "WorkItem",
    "DeviceBuffer",
    "AccessLog",
    "TRANSACTION_BYTES",
    "SimulatedGpu",
    "LaunchStats",
    "epistasis_kernel_naive",
    "epistasis_kernel_split",
    "make_split_kernel_args",
]
