"""The simulated GPU device: kernel launches, statistics, cycle estimates."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.devices.specs import GpuSpec
from repro.gpusim.grid import NDRange, WorkItem
from repro.gpusim.memory import AccessLog, TRANSACTION_BYTES

__all__ = ["KernelContext", "LaunchStats", "SimulatedGpu"]


class KernelContext:
    """Per-thread execution context handed to simulated kernels.

    The context carries the work-item identity, the launch-wide access log
    and the instruction counters; kernels perform *all* their global loads
    and population counts through it so the launch statistics are complete.
    """

    def __init__(self, item: WorkItem, log: AccessLog, counters: Dict[str, int]) -> None:
        self.item = item
        self._log = log
        self._counters = counters
        self._slot = 0

    # -- memory --------------------------------------------------------------
    def load(self, buffer, *index: int) -> int:
        """Load one packed word from a device buffer (logged)."""
        value = buffer.load(self._log, self.item.subgroup_id, self._slot, *index)
        self._slot += 1
        self._counters["LOAD"] = self._counters.get("LOAD", 0) + 1
        return value

    # -- arithmetic ------------------------------------------------------------
    def op(self, mnemonic: str, count: int = 1) -> None:
        """Charge ``count`` executions of an arithmetic instruction."""
        self._counters[mnemonic] = self._counters.get(mnemonic, 0) + count

    def popcount(self, word: int, paper_words: int = 1) -> int:
        """Population count of one packed word.

        ``paper_words`` is the word's width in the paper's 32-bit units
        (2 for a ``uint64`` layout word); the charge stays per paper word
        so instruction statistics are layout-independent.
        """
        self.op("POPCNT", paper_words)
        return int(word & ((1 << (32 * paper_words)) - 1)).bit_count()


@dataclass
class LaunchStats:
    """Aggregate statistics of one kernel launch."""

    n_threads: int
    n_active_threads: int
    instructions: Dict[str, int]
    warp_load_instructions: int
    memory_transactions: int
    transactions_per_warp_load: float
    bytes_loaded: int
    estimated_cycles: Optional[float] = None
    bound: str = ""

    @property
    def total_instructions(self) -> int:
        """All charged instructions (including loads)."""
        return sum(self.instructions.values())


class SimulatedGpu:
    """Executes kernels over an ND-range and derives launch statistics.

    Parameters
    ----------
    spec:
        Catalogued GPU whose throughput figures convert instruction and
        transaction counts into a cycle estimate.  ``None`` skips the cycle
        estimate (functional mode).
    """

    def __init__(self, spec: GpuSpec | None = None) -> None:
        self.spec = spec

    def launch(
        self,
        kernel: Callable[[KernelContext], object],
        ndrange: NDRange,
    ) -> tuple[List[object], LaunchStats]:
        """Run ``kernel`` for every work-item of ``ndrange``.

        The kernel receives a :class:`KernelContext` and returns either a
        per-thread result or ``None`` (idle thread, e.g. the ``i2 > i1 > i0``
        filter of Algorithm 2).  Results are collected in dispatch order.
        """
        log = AccessLog()
        counters: Dict[str, int] = {}
        results: List[object] = []
        active = 0
        for item in ndrange:
            ctx = KernelContext(item, log, counters)
            out = kernel(ctx)
            if out is not None:
                results.append(out)
                active += 1

        stats = LaunchStats(
            n_threads=ndrange.total_items,
            n_active_threads=active,
            instructions=dict(counters),
            warp_load_instructions=log.warp_load_instructions,
            memory_transactions=log.total_transactions,
            transactions_per_warp_load=log.transactions_per_warp_load,
            bytes_loaded=log.total_bytes,
        )
        if self.spec is not None:
            stats.estimated_cycles, stats.bound = self._estimate_cycles(stats)
        return results, stats

    # -- performance estimate ------------------------------------------------------
    def _estimate_cycles(self, stats: LaunchStats) -> tuple[float, str]:
        """Convert instruction/transaction counts into a device-cycle estimate.

        Three throughput limits are considered, mirroring the analytical
        model: the POPCNT issue rate per CU, the generic integer issue rate
        per CU and the DRAM transaction bandwidth.
        """
        spec = self.spec
        assert spec is not None
        popcnt = stats.instructions.get("POPCNT", 0)
        integer = sum(
            v for k, v in stats.instructions.items() if k not in ("POPCNT", "LOAD")
        )
        popcnt_cycles = popcnt / (spec.popcnt_per_cu * spec.compute_units)
        int_cycles = integer / (spec.int_ops_per_cu_per_cycle * spec.compute_units)
        dram_bytes_per_cycle = spec.dram_bandwidth_gbps / spec.boost_freq_ghz
        memory_cycles = stats.memory_transactions * TRANSACTION_BYTES / dram_bytes_per_cycle
        cycles = max(popcnt_cycles, int_cycles, memory_cycles)
        if cycles == memory_cycles and memory_cycles > popcnt_cycles:
            bound = "memory"
        elif cycles == popcnt_cycles:
            bound = "popcnt"
        else:
            bound = "integer"
        return cycles, bound
