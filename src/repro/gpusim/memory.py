"""Device-memory model with coalescing analysis.

A :class:`DeviceBuffer` wraps a packed ``uint32`` array with flat word
addressing; every load performed by a simulated thread is recorded in an
:class:`AccessLog` together with the issuing sub-group (warp).  After a
launch the log reports, per warp-wide load instruction, how many distinct
32-byte memory transactions were needed — the quantity that differs by a
factor of 32 between the SNP-major and the transposed/tiled layouts and that
the paper identifies as the decisive GPU optimisation (§IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

import numpy as np

__all__ = ["TRANSACTION_BYTES", "DeviceBuffer", "AccessLog"]

#: Size of one global-memory transaction (a typical L2 sector).
TRANSACTION_BYTES: int = 32

#: Bytes per packed word.
WORD_BYTES: int = 4


@dataclass
class AccessLog:
    """Per-launch record of global-memory accesses.

    Accesses are grouped by ``(subgroup_id, instruction_slot)``: every
    simulated thread tags its loads with a per-thread slot counter, so the
    loads that correspond to the *same* kernel instruction across the lanes
    of a warp land in the same group — exactly how a hardware coalescer sees
    them.
    """

    #: (subgroup, slot) -> set of transaction indices touched.
    _groups: Dict[Tuple[int, int], Set[int]] = field(default_factory=dict)
    total_loads: int = 0
    total_bytes: int = 0

    def record_load(self, subgroup_id: int, slot: int, byte_address: int,
                    n_bytes: int = WORD_BYTES) -> None:
        """Record one thread-level load of ``n_bytes`` at ``byte_address``."""
        first = byte_address // TRANSACTION_BYTES
        last = (byte_address + n_bytes - 1) // TRANSACTION_BYTES
        key = (subgroup_id, slot)
        bucket = self._groups.setdefault(key, set())
        bucket.update(range(first, last + 1))
        self.total_loads += 1
        self.total_bytes += n_bytes

    # -- statistics ---------------------------------------------------------
    @property
    def warp_load_instructions(self) -> int:
        """Number of distinct warp-wide load instructions observed."""
        return len(self._groups)

    @property
    def total_transactions(self) -> int:
        """Total 32-byte transactions across all warp loads."""
        return sum(len(v) for v in self._groups.values())

    @property
    def transactions_per_warp_load(self) -> float:
        """Average transactions per warp-wide load (1.0 = fully coalesced...)."""
        if not self._groups:
            return 0.0
        return self.total_transactions / self.warp_load_instructions

    def merge(self, other: "AccessLog") -> "AccessLog":
        """Accumulate another log into this one (keys are kept disjoint)."""
        offset = len(self._groups)
        for i, (key, bucket) in enumerate(other._groups.items()):
            self._groups[(key[0], key[1] + (offset + i) * 10_000_000)] = set(bucket)
        self.total_loads += other.total_loads
        self.total_bytes += other.total_bytes
        return self


class DeviceBuffer:
    """A read-only device-resident packed-word buffer with flat addressing.

    Parameters
    ----------
    data:
        Any-shaped packed-word array (``uint32`` or ``uint64``); it is
        flattened (C order) so that the address of element ``(i, j, ...)``
        reflects its true memory position in the chosen layout — which is
        the whole point of the layout study.  Word loads charge the actual
        machine-word byte width, so a 64-bit layout moves the same bytes in
        half as many loads.
    name:
        Label for diagnostics.
    """

    def __init__(self, data: np.ndarray, name: str = "buffer") -> None:
        arr = np.asarray(data)
        if arr.dtype not in (np.uint32, np.uint64):
            arr = arr.astype(np.uint32)
        arr = np.ascontiguousarray(arr)
        self.shape = arr.shape
        self.word_bytes = int(arr.dtype.itemsize)
        self._flat = arr.reshape(-1)
        self.name = name

    def __len__(self) -> int:
        return int(self._flat.size)

    @property
    def nbytes(self) -> int:
        """Size of the buffer in bytes."""
        return int(self._flat.size) * self.word_bytes

    def flat_index(self, *index: int) -> int:
        """Flat word address of a multi-dimensional element index."""
        if len(index) != len(self.shape):
            raise ValueError(
                f"{self.name}: expected {len(self.shape)} indices, got {len(index)}"
            )
        flat = 0
        for i, (idx, extent) in enumerate(zip(index, self.shape)):
            if not 0 <= idx < extent:
                raise IndexError(
                    f"{self.name}: index {idx} out of bounds for axis {i} (extent {extent})"
                )
            flat = flat * extent + idx
        return flat

    def load(
        self,
        log: AccessLog,
        subgroup_id: int,
        slot: int,
        *index: int,
    ) -> int:
        """Thread-level load: returns the word and records the access."""
        flat = self.flat_index(*index)
        log.record_load(subgroup_id, slot, flat * self.word_bytes, self.word_bytes)
        return int(self._flat[flat])

    def peek(self, *index: int) -> int:
        """Unlogged read (host-side checks only)."""
        return int(self._flat[self.flat_index(*index)])
