"""Result containers of staged search pipelines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.result import Interaction, interaction_row

__all__ = ["StageReport", "PipelineResult"]


@dataclass
class StageReport:
    """Execution report of one pipeline stage.

    Attributes
    ----------
    stage:
        Stage registry name (``"screen"``, ``"expand"``, ``"refine"``,
        ``"permutation"``).
    order:
        Interaction order of the stage's candidates.
    candidates:
        Candidate combinations the stage planned (size of its source).
    evaluated:
        Frequency tables actually built (``candidates`` for a single sweep;
        ``candidates x n_permutations`` for the permutation stage).
    elapsed_seconds:
        Measured wall-clock of the stage's engine run(s).
    estimated_seconds:
        Analytical cost estimate of the stage on its catalogued device
        lanes (:func:`repro.perfmodel.staged.estimate_stage_seconds`), so
        measured and modelled per-stage budgets can be compared.
    approach / objective / schedule:
        Resolved per-stage configuration.
    effective_snps:
        SNP-universe size the stage operated on.
    retained_snps:
        Number of SNPs surviving the stage (screening stages only).
    device_stats:
        Per-device-label engine statistics of the stage run.
    sweep:
        Whether the stage swept a combination universe (screen/expand).
        Finalist re-scoring stages (refine, permutation) set this to
        ``False`` so they do not count towards the pruning metric
        (:attr:`PipelineResult.evaluated_fraction`).
    extra:
        Stage-specific details (retention threshold, permutation count, ...).
    """

    stage: str
    order: int
    candidates: int
    evaluated: int
    elapsed_seconds: float
    approach: str
    objective: str
    schedule: str
    effective_snps: int
    estimated_seconds: float | None = None
    retained_snps: int | None = None
    device_stats: Dict[str, Dict[str, object]] = field(default_factory=dict)
    sweep: bool = True
    extra: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        doc: Dict[str, object] = {
            "stage": self.stage,
            "order": self.order,
            "candidates": self.candidates,
            "evaluated": self.evaluated,
            "elapsed_seconds": self.elapsed_seconds,
            "estimated_seconds": self.estimated_seconds,
            "approach": self.approach,
            "objective": self.objective,
            "schedule": self.schedule,
            "effective_snps": self.effective_snps,
            "sweep": self.sweep,
            "device_stats": {k: dict(v) for k, v in self.device_stats.items()},
        }
        if self.retained_snps is not None:
            doc["retained_snps"] = self.retained_snps
        if self.extra:
            doc["extra"] = dict(self.extra)
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "StageReport":
        """Rebuild a report from its :meth:`to_dict` form.

        Used by the pipeline checkpoint ledger to replay the reports of
        stages completed before a kill, so a resumed run returns the same
        per-stage accounting as an uninterrupted one.
        """
        return cls(
            stage=str(doc["stage"]),
            order=int(doc["order"]),
            candidates=int(doc["candidates"]),
            evaluated=int(doc["evaluated"]),
            elapsed_seconds=float(doc["elapsed_seconds"]),
            estimated_seconds=(
                float(doc["estimated_seconds"])
                if doc.get("estimated_seconds") is not None
                else None
            ),
            approach=str(doc["approach"]),
            objective=str(doc["objective"]),
            schedule=str(doc["schedule"]),
            effective_snps=int(doc["effective_snps"]),
            retained_snps=(
                int(doc["retained_snps"])
                if doc.get("retained_snps") is not None
                else None
            ),
            device_stats={
                str(k): dict(v) for k, v in doc.get("device_stats", {}).items()
            },
            sweep=bool(doc.get("sweep", True)),
            extra=dict(doc.get("extra", {})),
        )


@dataclass
class PipelineResult:
    """Outcome of a staged search.

    Attributes
    ----------
    best:
        The best finalist interaction.
    top:
        Finalists in ascending score order (scores are those of the last
        re-scoring stage).
    p_values:
        Empirical permutation p-values aligned with ``top`` (present when
        the pipeline ran a :class:`~repro.pipeline.stages.PermutationStage`).
    stages:
        Per-stage execution reports, in execution order.
    retained_snps:
        Global indices of the SNPs retained by the (last) screening stage,
        or ``None`` for pipelines without one.
    elapsed_seconds:
        Wall-clock of the whole pipeline run.
    n_snps / n_samples:
        Shape of the searched dataset.
    final_order:
        Interaction order of the finalists.
    exhaustive_combinations:
        ``nCr(n_snps, final_order)`` — what a dense search would have
        evaluated at the final order.
    run_id:
        Telemetry run identity of this pipeline execution; matches the
        ``run_id`` in exported trace manifests and checkpoint ledgers.
    """

    best: Interaction
    top: List[Interaction]
    stages: List[StageReport]
    elapsed_seconds: float
    n_snps: int
    n_samples: int
    final_order: int
    exhaustive_combinations: int
    retained_snps: List[int] | None = None
    p_values: List[float] | None = None
    run_id: str | None = None

    @property
    def best_snps(self) -> tuple[int, ...]:
        """SNP indices of the best finalist."""
        return self.best.snps

    @property
    def evaluated_combinations(self) -> int:
        """Frequency tables built across all stages (all orders)."""
        return sum(stage.evaluated for stage in self.stages)

    @property
    def final_order_evaluated(self) -> int:
        """Tables built by final-order *sweep* stages (screen/expand).

        Finalist re-scoring stages (refine, permutation) build their tables
        over the already-selected top-k and are excluded — a long
        permutation null must not read as sweep coverage.
        """
        return sum(
            s.evaluated
            for s in self.stages
            if s.sweep and s.order == self.final_order
        )

    @property
    def evaluated_fraction(self) -> float:
        """Final-order sweep tables built relative to the exhaustive search.

        This is the pipeline's headline pruning metric: a screen-then-expand
        run with retention ``m`` evaluates ``nCr(m, k) / nCr(M, k)`` of the
        dense order-``k`` space.
        """
        if self.exhaustive_combinations == 0:
            return float("nan")
        return self.final_order_evaluated / self.exhaustive_combinations

    def contains(self, snps: Sequence[int]) -> bool:
        """Whether a given combination appears among the finalists."""
        target = tuple(sorted(int(s) for s in snps))
        return any(tuple(sorted(i.snps)) == target for i in self.top)

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"staged search     : {len(self.stages)} stages"]
        for i, stage in enumerate(self.stages):
            detail = (
                f"order {stage.order}, {stage.evaluated} tables, "
                f"{stage.elapsed_seconds:.4f} s"
            )
            if stage.retained_snps is not None:
                detail += f", retained {stage.retained_snps} SNPs"
            lines.append(f"  stage {i + 1} {stage.stage:<11s}: {detail}")
        lines.append(
            f"order-{self.final_order} tables   : "
            f"{self.final_order_evaluated} of {self.exhaustive_combinations} "
            f"exhaustive ({self.evaluated_fraction:.2%})"
        )
        lines.append(f"elapsed           : {self.elapsed_seconds:.4f} s")
        lines.append(f"best interaction  : {self.best}")
        if len(self.top) > 1 or self.p_values:
            lines.append("top interactions  :")
            for i, inter in enumerate(self.top):
                suffix = ""
                if self.p_values is not None:
                    suffix = f"  (p = {self.p_values[i]:.4f})"
                lines.append(f"  {i + 1}. {inter}{suffix}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (exports, benchmark artifacts)."""
        top = []
        for i, inter in enumerate(self.top):
            entry: Dict[str, object] = interaction_row(inter, i + 1)
            if self.p_values is not None:
                entry["p_value"] = float(self.p_values[i])
            top.append(entry)
        return {
            "run_id": self.run_id,
            "n_snps": self.n_snps,
            "n_samples": self.n_samples,
            "final_order": self.final_order,
            "elapsed_seconds": self.elapsed_seconds,
            "exhaustive_combinations": self.exhaustive_combinations,
            "evaluated_combinations": self.evaluated_combinations,
            "final_order_evaluated": self.final_order_evaluated,
            "evaluated_fraction": self.evaluated_fraction,
            "retained_snps": (
                [int(s) for s in self.retained_snps]
                if self.retained_snps is not None
                else None
            ),
            "stages": [stage.to_dict() for stage in self.stages],
            "top": top,
        }
