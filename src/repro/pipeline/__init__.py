"""Staged search pipelines: candidate streams from screen → expand → refine.

The exhaustive k-way search costs ``nCr(M, k)`` frequency tables — the wall
that keeps dense sweeps at small SNP counts.  Real GWAS-scale tools stage
the search: a cheap low-order *screen* prunes the SNP universe, the
expensive high-order *expand* sweeps only the retained subset, and
lightweight *refine*/*permutation* stages harden the finalists.  This
package implements that decomposition on top of the heterogeneous execution
engine — every stage is an engine run over a
:class:`~repro.engine.candidates.CandidateSource`, with per-stage
approach/devices/schedule/order configuration:

* :class:`SearchPipeline` — the orchestrator;
* :class:`ScreenStage` / :class:`ExpandStage` / :class:`RefineStage` /
  :class:`PermutationStage` — the stage family;
* :class:`StageReport` / :class:`PipelineResult` — aggregated statistics,
  including per-stage modelled-vs-measured cost and the final-order
  evaluated fraction (the pruning headline).

The convenience entry point
:meth:`repro.core.detector.EpistasisDetector.detect_staged` builds a
standard screen→expand(→refine→permutation) pipeline from a configured
detector; the CLI exposes the same through ``repro-epistasis pipeline``.
"""

from repro.pipeline.pipeline import SearchPipeline
from repro.pipeline.result import PipelineResult, StageReport
from repro.pipeline.stages import (
    ExpandStage,
    PermutationStage,
    PipelineDefaults,
    PipelineStage,
    RefineStage,
    ScreenStage,
    StageContext,
)

__all__ = [
    "SearchPipeline",
    "PipelineResult",
    "StageReport",
    "PipelineStage",
    "PipelineDefaults",
    "StageContext",
    "ScreenStage",
    "ExpandStage",
    "RefineStage",
    "PermutationStage",
]
