"""The staged-search pipeline stages.

Each stage is one engine run (or a family of runs, for the permutation
null) with its own approach/devices/schedule/order configuration, reading
and updating a shared :class:`StageContext`:

* :class:`ScreenStage` — cheap low-order exhaustive scan that retains the
  top-``keep`` SNPs by best participating score, pruning the universe the
  later stages sweep;
* :class:`ExpandStage` — the expensive high-order sweep, restricted to the
  retained subset (``nCr(keep, k)`` instead of ``nCr(M, k)`` tables);
* :class:`RefineStage` — re-scores the finalists under a second objective
  function and re-ranks them;
* :class:`PermutationStage` — phenotype-permutation null distribution over
  the finalists, yielding empirical p-values.

Every stage executes through
:meth:`~repro.core.detector.EpistasisDetector.detect_candidates`, so device
lanes, scheduling policies (including the CARM-ratio splitter, configured
with the stage's *effective* SNP universe) and the streaming top-k
reduction behave exactly as in a dense search.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, ClassVar, List

import numpy as np

from repro.core.detector import EpistasisDetector
from repro.core.result import DetectionResult, Interaction
from repro.core.scoring import ObjectiveFunction
from repro.datasets.dataset import GenotypeDataset
from repro.engine import (
    CancellationToken,
    CandidateSource,
    DenseRangeSource,
    EngineDevice,
    ExplicitCombinationSource,
    SchedulingPolicy,
    SubsetSource,
)
from repro.perfmodel.staged import estimate_stage_seconds
from repro.pipeline.result import StageReport

__all__ = [
    "PipelineDefaults",
    "StageContext",
    "PipelineStage",
    "ScreenStage",
    "ExpandStage",
    "RefineStage",
    "PermutationStage",
]

#: Pipeline-level progress callback: ``progress(stage_name, done, total)``.
PipelineProgress = Callable[[str, int, int], None]


@dataclass
class PipelineDefaults:
    """Pipeline-wide execution configuration stages inherit from.

    Every field can be overridden per stage; ``None`` stage overrides fall
    back to these values.
    """

    approach: str = "cpu-v4"
    objective: str | ObjectiveFunction = "k2"
    devices: str | None = None
    schedule: str | SchedulingPolicy = "dynamic"
    n_workers: int = 1
    chunk_size: int | str = 2048
    top_k: int = 10
    validate: bool = False
    word_layout: str | None = None
    backend: str | None = None
    fused: str | None = None
    telemetry: str | None = None


@dataclass
class StageContext:
    """Mutable state flowing through the stages of one pipeline run.

    ``retained`` is the current SNP universe (``None`` = all SNPs) — set by
    screening stages, consumed by later screens/expands.  ``top`` is the
    current finalist list — set by expand, re-ranked by refine, annotated
    with ``p_values`` by the permutation stage.

    ``workers`` / ``checkpoint_dir`` / ``resume`` configure sharded
    multi-process execution (:mod:`repro.distributed`) of the sweep stages:
    each stage writes its own shard ledger under ``checkpoint_dir`` (named
    by ``stage_index`` and stage name, maintained by the pipeline run
    loop), so a killed pipeline resumes mid-stage.
    """

    dataset: GenotypeDataset
    defaults: PipelineDefaults
    retained: np.ndarray | None = None
    top: List[Interaction] = field(default_factory=list)
    p_values: List[float] | None = None
    cancel: CancellationToken | None = None
    progress: PipelineProgress | None = None
    workers: int = 1
    checkpoint_dir: str | None = None
    resume: bool = False
    stage_index: int = 0
    #: Warm-fleet / data-plane knobs threaded into every distributed stage
    #: sweep (see :func:`repro.distributed.run_distributed`): with the
    #: default ``pool="keep"`` all stages (and the permutation null) reuse
    #: one process-wide worker fleet and the shared-memory segments it
    #: keeps alive.
    pool: str = "keep"
    shm: object = None
    #: Fault-tolerance policy (:class:`~repro.distributed.resilience
    #: .RetryPolicy` or ``None``) and deterministic fault-injection plan
    #: threaded into every distributed stage sweep.
    retry: object = None
    faults: object = None

    @property
    def distributed(self) -> bool:
        """Whether sweep stages run on the sharded multi-process path."""
        return self.workers > 1 or self.checkpoint_dir is not None

    def stage_ledger_path(self, stage_name: str) -> str | None:
        """This stage's shard-ledger path under the checkpoint directory."""
        if self.checkpoint_dir is None:
            return None
        from pathlib import Path

        return str(
            Path(self.checkpoint_dir)
            / f"stage{self.stage_index:02d}_{stage_name}.ckpt.json"
        )

    def stage_progress(self, stage_name: str) -> Callable[[int, int], None] | None:
        """Adapt the pipeline progress callback for one stage's engine run."""
        if self.progress is None:
            return None
        callback = self.progress

        def report(done: int, total: int) -> None:
            callback(stage_name, done, total)

        return report


@dataclass
class PipelineStage(ABC):
    """One stage of a staged search.

    The execution fields (``approach``, ``objective``, ``devices``,
    ``schedule``, ``n_workers``, ``chunk_size``, ``top_k``, ``validate``)
    override the pipeline defaults when set, so e.g. a screen can run on a
    GPU lane with a guided schedule while the expand runs cpu+gpu under the
    CARM splitter.
    """

    name: ClassVar[str] = "abstract"

    approach: str | None = None
    objective: str | ObjectiveFunction | None = None
    devices: str | None = None
    schedule: str | SchedulingPolicy | None = None
    n_workers: int | None = None
    chunk_size: int | str | None = None
    top_k: int | None = None
    validate: bool | None = None
    word_layout: str | None = None
    backend: str | None = None
    fused: str | None = None
    telemetry: str | None = None

    @abstractmethod
    def run(self, ctx: StageContext) -> StageReport:
        """Execute the stage, updating ``ctx`` and returning its report."""

    # -- shared helpers --------------------------------------------------------
    def _detector(
        self,
        ctx: StageContext,
        order: int,
        *,
        objective: str | ObjectiveFunction | None = None,
        top_k: int | None = None,
    ) -> EpistasisDetector:
        """A detector resolving this stage's overrides against the defaults."""
        d = ctx.defaults
        return EpistasisDetector(
            approach=self.approach or d.approach,
            objective=objective or self.objective or d.objective,
            order=order,
            n_workers=self.n_workers or d.n_workers,
            chunk_size=self.chunk_size or d.chunk_size,
            top_k=top_k if top_k is not None else (self.top_k or d.top_k),
            validate=self.validate if self.validate is not None else d.validate,
            devices=self.devices if self.devices is not None else d.devices,
            schedule=self.schedule or d.schedule,
            word_layout=self.word_layout or d.word_layout,
            backend=self.backend or d.backend,
            fused=self.fused or d.fused,
            telemetry=self.telemetry or d.telemetry,
        )

    @staticmethod
    def _universe_source(ctx: StageContext, order: int) -> CandidateSource:
        """Dense space over the current universe (full or retained subset)."""
        if ctx.retained is None:
            return DenseRangeSource(ctx.dataset.n_snps, order)
        return SubsetSource(ctx.retained, order)

    def _sweep(
        self,
        ctx: StageContext,
        detector: EpistasisDetector,
        source: CandidateSource,
        *,
        collect_minima: bool = False,
    ):
        """Run a stage sweep, in-process or sharded across worker processes.

        Returns ``(result, snp_minima)``; the minima array (per-SNP best
        participating score) is only collected when requested by a
        screening stage.  The two paths produce bit-identical results —
        the distributed path shards the same candidate source and merges
        under the engine's ``(score, combination-rank)`` total order.
        """
        if ctx.distributed:
            from repro.distributed import run_distributed

            outcome = run_distributed(
                ctx.dataset,
                source,
                config=detector.config,
                workers=ctx.workers,
                checkpoint=ctx.stage_ledger_path(self.name),
                resume=ctx.resume,
                collect_snp_minima=collect_minima,
                progress=ctx.stage_progress(self.name),
                cancel=ctx.cancel,
                pool=ctx.pool,
                shm=ctx.shm,
                retry=ctx.retry,
                faults=ctx.faults,
            )
            if outcome.cancelled or not outcome.completed:
                raise RuntimeError(
                    f"{self.name} stage cancelled after "
                    f"{outcome.items_restored + outcome.items_evaluated} of "
                    f"{source.total} candidates"
                )
            return outcome.result, outcome.snp_minima

        if not collect_minima:
            result = detector.detect_candidates(
                ctx.dataset,
                source,
                cancel=ctx.cancel,
                progress=ctx.stage_progress(self.name),
            )
            return result, None

        # The same fold each distributed shard runs — one implementation
        # keeps the two execution modes bit-identical.
        from repro.distributed.merge import snp_minima_accumulator

        observe, finalize = snp_minima_accumulator(ctx.dataset.n_snps)
        result = detector.detect_candidates(
            ctx.dataset,
            source,
            cancel=ctx.cancel,
            progress=ctx.stage_progress(self.name),
            observe=observe,
        )
        return result, finalize()

    def _report(
        self,
        ctx: StageContext,
        detector: EpistasisDetector,
        source: CandidateSource,
        result: DetectionResult,
        *,
        evaluated: int | None = None,
        estimate_devices: list | None = None,
        **fields,
    ) -> StageReport:
        """Assemble the stage report from a detection result.

        ``estimate_devices`` overrides the lanes the analytic cost estimate
        is priced against (stages whose work does not run on the engine
        lanes — the permutation null loop — pass their actual execution
        shape).
        """
        effective = source.effective_snps or ctx.dataset.n_snps
        return StageReport(
            stage=self.name,
            order=source.order,
            candidates=source.total,
            evaluated=evaluated if evaluated is not None else source.total,
            elapsed_seconds=result.stats.elapsed_seconds,
            estimated_seconds=estimate_stage_seconds(
                (
                    estimate_devices
                    if estimate_devices is not None
                    else detector.engine_devices()
                ),
                evaluated if evaluated is not None else source.total,
                ctx.dataset.n_samples,
                source.order,
                effective,
                approach_version=detector.approach.version,
            ),
            approach=result.stats.approach,
            objective=detector.objective.name,
            schedule=str(result.stats.extra.get("schedule", "")),
            effective_snps=effective,
            device_stats=dict(result.stats.extra.get("devices", {})),
            **fields,
        )


@dataclass
class ScreenStage(PipelineStage):
    """Order-``j`` exhaustive scan retaining the best-scoring SNPs.

    Every combination of the current universe is evaluated at the (cheap)
    screening order, and each SNP is credited with the best (lowest) score
    of any combination it participates in; the ``keep`` best SNPs survive.
    Per-SNP minima are folded chunk-by-chunk inside the engine workers, so
    the screen streams through the space with O(n_snps) extra memory and no
    full score materialisation.

    ``keep`` is the retention budget — the knob trading recall for expand
    cost: the following order-``k`` expand evaluates ``nCr(keep, k)``
    instead of ``nCr(M, k)`` tables.
    """

    name: ClassVar[str] = "screen"

    order: int = 2
    keep: int = 32

    def __post_init__(self) -> None:
        if self.keep < 1:
            raise ValueError("keep must be positive")

    def run(self, ctx: StageContext) -> StageReport:
        dataset = ctx.dataset
        source = self._universe_source(ctx, self.order)
        universe = (
            ctx.retained
            if ctx.retained is not None
            else np.arange(dataset.n_snps, dtype=np.int64)
        )
        detector = self._detector(ctx, self.order)
        result, best_per_snp = self._sweep(
            ctx, detector, source, collect_minima=True
        )

        keep = min(self.keep, int(universe.size))
        universe_scores = best_per_snp[universe]
        ranked = np.argsort(universe_scores, kind="stable")[:keep]
        retained = np.sort(universe[ranked])
        ctx.retained = retained

        return self._report(
            ctx,
            detector,
            source,
            result,
            retained_snps=int(retained.size),
            extra={
                "keep": keep,
                "retention_threshold": float(np.max(universe_scores[ranked])),
            },
        )


@dataclass
class ExpandStage(PipelineStage):
    """Order-``k`` sweep over the retained universe, producing finalists."""

    name: ClassVar[str] = "expand"

    order: int = 3

    def run(self, ctx: StageContext) -> StageReport:
        source = self._universe_source(ctx, self.order)
        detector = self._detector(ctx, self.order)
        result, _ = self._sweep(ctx, detector, source)
        ctx.top = list(result.top)
        ctx.p_values = None
        return self._report(ctx, detector, source, result)


@dataclass
class RefineStage(PipelineStage):
    """Re-score the current finalists under a second objective and re-rank.

    The staged search's last full sweep optimises one objective (the K2
    score by default); refining re-evaluates only the finalists under an
    independent criterion (mutual information, chi-squared, ...), which is
    cheap — ``top_k`` tables — and guards against single-objective
    artefacts.
    """

    name: ClassVar[str] = "refine"

    def __post_init__(self) -> None:
        if self.objective is None:
            raise ValueError("RefineStage needs an objective to re-score under")

    def run(self, ctx: StageContext) -> StageReport:
        if not ctx.top:
            raise ValueError(
                "refine stage needs finalists; run an expand stage before it"
            )
        combos = np.array([inter.snps for inter in ctx.top], dtype=np.int64)
        source = ExplicitCombinationSource(combos)
        keep = self.top_k if self.top_k is not None else len(ctx.top)
        detector = self._detector(
            ctx, source.order, top_k=min(keep, len(ctx.top))
        )
        result = detector.detect_candidates(
            ctx.dataset,
            source,
            cancel=ctx.cancel,
            progress=ctx.stage_progress(self.name),
        )
        scores_before = {inter.snps: inter.score for inter in ctx.top}
        ctx.top = list(result.top)
        ctx.p_values = None
        return self._report(
            ctx,
            detector,
            source,
            result,
            sweep=False,
            extra={
                "scores_before": [
                    scores_before[inter.snps] for inter in result.top
                ],
            },
        )


@dataclass
class PermutationStage(PipelineStage):
    """Phenotype-permutation null distribution over the finalists.

    The finalists' scores are compared against ``n_permutations`` re-scores
    under random phenotype relabellings (genotypes untouched, case/control
    balance preserved); the empirical p-value of finalist ``c`` is
    ``(1 + #{permutations with score(c) <= observed(c)}) / (1 +
    n_permutations)`` — the standard add-one estimate, never exactly zero.

    The observed re-scoring is the stage's engine run (per-stage
    device/schedule overrides apply, and it feeds the stage report); the
    null loop then scores the finalist tables directly on a dataset sliced
    to the distinct finalist SNPs — at ``top_k`` scale an engine launch per
    permutation would be pure scheduling overhead.

    When a :class:`RefineStage` re-scored the finalists, give this stage
    the same ``objective`` so the p-values test the statistic displayed
    next to them (``detect_staged`` wires this automatically).

    Under a checkpointed pipeline run the null loop is crash-safe too:
    every ``checkpoint_every`` permutations the stage persists its
    exceedance counters and the RNG bit-generator state to its ledger, so
    a resumed run continues the *same* permutation stream mid-loop and the
    p-values are bit-identical to an uninterrupted run.
    """

    name: ClassVar[str] = "permutation"

    n_permutations: int = 100
    seed: int = 0
    checkpoint_every: int = 32

    def __post_init__(self) -> None:
        if self.n_permutations < 1:
            raise ValueError("n_permutations must be positive")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be positive")

    def run(self, ctx: StageContext) -> StageReport:
        if not ctx.top:
            raise ValueError(
                "permutation stage needs finalists; run an expand stage before it"
            )
        dataset = ctx.dataset
        combos = np.array([inter.snps for inter in ctx.top], dtype=np.int64)

        # Slice the dataset down to the distinct finalist SNPs once and
        # remap the combinations to local indices: every permutation run
        # then only validates/encodes order x top_k SNPs instead of the full
        # genotype matrix (only the phenotype vector changes per run).
        distinct = np.unique(combos)
        local_combos = np.searchsorted(distinct, combos)
        sliced = dataset.subset_snps(distinct)
        source = ExplicitCombinationSource(local_combos)
        local_keys = [tuple(int(s) for s in row) for row in local_combos]
        detector = self._detector(ctx, source.order, top_k=len(ctx.top))

        # Observed scores under this stage's objective (identical to the
        # finalists' scores when the objective is inherited; re-computed so
        # the null comparison stays consistent after a refine stage).
        observed_run = detector.detect_candidates(
            sliced, source, cancel=ctx.cancel
        )
        observed = {inter.snps: inter.score for inter in observed_run.top}

        rng = np.random.default_rng(self.seed)
        observed_scores = np.array([observed[key] for key in local_keys])
        exceed = np.zeros(len(local_keys), dtype=np.int64)
        progress = ctx.stage_progress(self.name)

        # Crash-safe null loop: under a checkpointed pipeline the exceedance
        # counters and the RNG bit-generator state are persisted atomically,
        # so a resumed run continues the same permutation stream mid-loop.
        ledger = None
        start_perm = 0
        if ctx.checkpoint_dir is not None:
            from repro.distributed.checkpoint import JsonLedger, dataset_fingerprint

            fingerprint = {
                "dataset": dataset_fingerprint(dataset),
                "combos": [[int(s) for s in row] for row in combos],
                "seed": int(self.seed),
                "n_permutations": int(self.n_permutations),
                "objective": detector.objective.name,
            }
            ledger = JsonLedger(ctx.stage_ledger_path(self.name))
            if ledger.begin(
                fingerprint, resume=ctx.resume, label="permutation checkpoint"
            ):
                start_perm = int(ledger.doc.get("perm_done", 0))
                exceed = np.asarray(ledger.doc["exceed"], dtype=np.int64)
                rng.bit_generator.state = ledger.doc["rng_state"]
            else:
                ledger.doc.update(
                    {
                        "perm_done": 0,
                        "exceed": [int(c) for c in exceed],
                        "rng_state": rng.bit_generator.state,
                    }
                )
                ledger.write()

        def _record(perm_done: int) -> None:
            if ledger is None:
                return
            ledger.doc["perm_done"] = int(perm_done)
            ledger.doc["exceed"] = [int(c) for c in exceed]
            ledger.doc["rng_state"] = rng.bit_generator.state
            ledger.write()

        null_started = time.perf_counter()
        if ctx.workers > 1:
            self._null_fleet(
                ctx,
                detector,
                sliced,
                local_combos,
                observed_scores,
                exceed,
                start_perm,
                rng,
                _record,
                progress,
            )
        else:
            for perm in range(start_perm, self.n_permutations):
                if ctx.cancel is not None and ctx.cancel.cancelled:
                    _record(perm)
                    raise RuntimeError(
                        f"permutation stage cancelled after {perm} of "
                        f"{self.n_permutations} permutations"
                    )
                permuted = GenotypeDataset(
                    genotypes=sliced.genotypes,
                    phenotypes=rng.permutation(sliced.phenotypes),
                    snp_names=list(sliced.snp_names),
                )
                # Permuted datasets are scored exactly once; bypass the
                # encoding cache so the null loop neither hashes every
                # relabelling nor evicts the reusable sweep-stage encodings.
                null_scores = detector.score_combinations(
                    permuted, local_combos, cache=False
                )
                exceed += null_scores <= observed_scores
                if (perm + 1) % self.checkpoint_every == 0:
                    _record(perm + 1)
                if progress is not None:
                    progress(perm + 1, self.n_permutations)
        _record(self.n_permutations)
        elapsed = observed_run.stats.elapsed_seconds + (
            time.perf_counter() - null_started
        )

        ctx.p_values = [
            (1 + int(count)) / (1 + self.n_permutations) for count in exceed
        ]
        report = self._report(
            ctx,
            detector,
            source,
            observed_run,
            evaluated=(1 + self.n_permutations) * source.total,
            sweep=False,
            # The null loop scores single-threaded on the prototype
            # approach's device, not on the engine lanes — price it that way.
            estimate_devices=[EngineDevice(kind=detector.approach.device)],
            extra={
                "n_permutations": self.n_permutations,
                "seed": self.seed,
                "min_attainable_p": 1.0 / (1 + self.n_permutations),
                **({"resumed_at": start_perm} if start_perm else {}),
                **(
                    {"null_workers": ctx.workers, "pool": ctx.pool}
                    if ctx.workers > 1
                    else {}
                ),
            },
        )
        report.elapsed_seconds = elapsed
        return report

    def _null_fleet(
        self,
        ctx: StageContext,
        detector: EpistasisDetector,
        sliced: GenotypeDataset,
        local_combos: np.ndarray,
        observed_scores: np.ndarray,
        exceed: np.ndarray,
        start_perm: int,
        rng: np.random.Generator,
        record: Callable[[int], None],
        progress: Callable[[int, int], None] | None,
    ) -> None:
        """Score the permutation null on the (warm) worker fleet.

        Bit-identity with the inline loop is preserved by drawing every
        relabelling from the RNG stream *in the parent, in order*: workers
        only score the relabelled phenotype vectors they are shipped (the
        genotypes ride the shared-memory data plane, so each batch is a few
        kilobytes of deltas).  Draws proceed in windows of
        ``checkpoint_every`` permutations; the ledger is written at window
        boundaries, where the live RNG state matches ``perm_done`` draws
        exactly — so inline, fleet and resumed runs all continue the same
        permutation stream.  Exceedance folding is integer addition and
        therefore order-independent across a window's batches.

        A worker death breaks the pool mid-window: the fleet respawns once
        and only the batches that never folded are re-dispatched; a second
        break raises (progress up to the last checkpoint is in the ledger).
        """
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        from repro.distributed.coordinator import (
            _payload_approach_kwargs,
            resolve_shm,
        )
        from repro.distributed.fleet import WorkerFleet, get_fleet
        from repro.distributed.runner import WorkerPayload, _run_null_batch
        from repro.distributed.shm import note_event, publish_dataset, shared_store

        cfg = detector.config
        keep = ctx.pool == "keep"
        dedicated: WorkerFleet | None = None
        if keep:
            fleet = get_fleet(ctx.workers)
        else:
            fleet = dedicated = WorkerFleet(ctx.workers)
        session = None
        dataset_for_workers: object = sliced
        try:
            if resolve_shm(ctx.shm, ctx.workers):
                session = (
                    fleet.store_session() if keep else shared_store().session()
                )
                dataset_for_workers = publish_dataset(sliced, session=session)
            payload = WorkerPayload(
                dataset=dataset_for_workers,
                source=ExplicitCombinationSource(local_combos),
                approach=cfg.approach,
                objective=cfg.objective,
                n_threads=cfg.n_workers,
                chunk_size=cfg.chunk_size,
                top_k=cfg.top_k,
                validate=cfg.validate,
                devices=cfg.devices,
                schedule=cfg.schedule,
                fused=getattr(cfg, "fused", None),
                approach_kwargs=_payload_approach_kwargs(cfg, None),
            )
            for window_start in range(
                start_perm, self.n_permutations, self.checkpoint_every
            ):
                if ctx.cancel is not None and ctx.cancel.cancelled:
                    record(window_start)
                    raise RuntimeError(
                        f"permutation stage cancelled after {window_start} of "
                        f"{self.n_permutations} permutations"
                    )
                window_end = min(
                    window_start + self.checkpoint_every, self.n_permutations
                )
                draws = np.stack(
                    [
                        rng.permutation(sliced.phenotypes)
                        for _ in range(window_start, window_end)
                    ]
                )
                chunk = max(1, -(-len(draws) // ctx.workers))
                chunks = [
                    draws[i : i + chunk] for i in range(0, len(draws), chunk)
                ]
                folded = [False] * len(chunks)
                futures = {
                    fleet.submit(_run_null_batch, payload, local_combos, part): i
                    for i, part in enumerate(chunks)
                }
                respawned = False
                while futures:
                    done, _ = wait(set(futures), return_when=FIRST_COMPLETED)
                    broken: BaseException | None = None
                    for future in done:
                        index = futures.pop(future)
                        try:
                            scores = future.result()
                        except BrokenProcessPool as exc:
                            broken = broken or exc
                            continue
                        if not folded[index]:
                            folded[index] = True
                            for row in scores:
                                exceed += row <= observed_scores
                    if broken is not None:
                        if respawned:
                            raise RuntimeError(
                                "a permutation worker process died mid-run "
                                "(killed or crashed); progress up to the last "
                                "checkpoint is preserved in the ledger — rerun "
                                "with resume to continue"
                            ) from broken
                        respawned = True
                        note_event("pool_respawns")
                        for future in futures:
                            future.cancel()
                        futures = {}
                        fleet.respawn()
                        futures = {
                            fleet.submit(
                                _run_null_batch, payload, local_combos, part
                            ): i
                            for i, part in enumerate(chunks)
                            if not folded[i]
                        }
                record(window_end)
                if progress is not None:
                    progress(window_end, self.n_permutations)
        finally:
            if dedicated is not None:
                dedicated.shutdown()
            if session is not None and not keep:
                session.close()
