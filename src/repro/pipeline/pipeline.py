"""The :class:`SearchPipeline` orchestrator.

A pipeline is an ordered list of stages sharing one dataset and one set of
execution defaults; running it threads a :class:`~repro.pipeline.stages.StageContext`
through the stages and aggregates their reports into a
:class:`~repro.pipeline.result.PipelineResult`.

Example — screen at order 2, keep 16 SNPs, expand at order 3, validate the
finalists with a permutation null::

    from repro.pipeline import (
        SearchPipeline, ScreenStage, ExpandStage, PermutationStage,
    )

    pipeline = SearchPipeline(
        [
            ScreenStage(order=2, keep=16),
            ExpandStage(order=3),
            PermutationStage(n_permutations=100, seed=7),
        ],
        approach="cpu-v4",
        n_workers=2,
    )
    outcome = pipeline.run(dataset)
    print(outcome.summary())
"""

from __future__ import annotations

import time
from math import comb
from typing import List, Sequence

from repro.core.scoring import ObjectiveFunction
from repro.datasets.dataset import GenotypeDataset
from repro.engine import CancellationToken, SchedulingPolicy
from repro.pipeline.result import PipelineResult, StageReport
from repro.pipeline.stages import (
    PipelineDefaults,
    PipelineProgress,
    PipelineStage,
    StageContext,
)

__all__ = ["SearchPipeline"]


class SearchPipeline:
    """A staged search: candidate streams from screen → expand → refine.

    Parameters
    ----------
    stages:
        The stages to execute, in order.  At least one stage must produce
        finalists (an :class:`~repro.pipeline.stages.ExpandStage`) for the
        pipeline to return a result.
    approach / objective / devices / schedule / n_workers / chunk_size /
    top_k / validate:
        Execution defaults inherited by every stage that does not override
        them (see :class:`~repro.pipeline.stages.PipelineDefaults`).
    workers:
        Sharded multi-process execution (:mod:`repro.distributed`) of the
        sweep stages: each screen/expand stage cuts its candidate space
        into shards executed across this many OS worker processes, with a
        deterministic merge (results are bit-identical for any worker
        count).  ``n_workers`` stays the *per-process* host thread count.
    checkpoint:
        Optional checkpoint *directory*: the pipeline writes a stage-output
        ledger (``pipeline.json``) plus one atomic shard ledger per sweep
        stage (and the permutation stage's RNG-state ledger), so a killed
        run can be resumed mid-stage.
    resume:
        Restore completed stages and shards from the checkpoint directory
        instead of re-executing them (fingerprints validated; safe to pass
        when no checkpoint exists yet).
    telemetry:
        Telemetry mode of the pipeline run (``"off"``/``"minimal"``/
        ``"full"``; ``None`` defers to ``REPRO_TELEMETRY``).  The pipeline
        owns one telemetry session — every stage, engine run and
        distributed sweep joins it, so a single trace covers the whole
        staged search under one ``run_id``.
    pool / shm:
        Worker-fleet and data-plane knobs of the distributed sweep stages:
        ``pool="keep"`` (default) runs every stage on one process-wide warm
        worker fleet — the pipeline spawns processes once, and screen,
        expand and permutation stages all reuse them; ``pool="fresh"``
        spawns per stage.  ``shm`` controls the shared-memory data plane
        (``"on"``/``"off"``/``"auto"``; see
        :func:`repro.distributed.run_distributed`).
    retry / faults:
        Fault tolerance of the distributed sweep stages: ``retry`` is a
        :class:`~repro.distributed.resilience.RetryPolicy` (per-shard
        retry budget, heartbeat-watchdog deadline, pool-break ladder) and
        ``faults`` a deterministic :class:`~repro.faults.FaultPlan` (or
        compact spec string) injected for chaos testing.
    """

    def __init__(
        self,
        stages: Sequence[PipelineStage],
        *,
        approach: str = "cpu-v4",
        objective: str | ObjectiveFunction = "k2",
        devices: str | None = None,
        schedule: str | SchedulingPolicy = "dynamic",
        n_workers: int = 1,
        chunk_size: int | str = 2048,
        top_k: int = 10,
        validate: bool = False,
        word_layout: str | None = None,
        backend: str | None = None,
        fused: str | None = None,
        telemetry: str | None = None,
        workers: int = 1,
        checkpoint: str | None = None,
        resume: bool = False,
        pool: str = "keep",
        shm: object = None,
        retry: object = None,
        faults: object = None,
    ) -> None:
        from repro.telemetry import check_telemetry_mode

        stages = list(stages)
        if not stages:
            raise ValueError("a search pipeline needs at least one stage")
        if workers < 1:
            raise ValueError("workers must be positive")
        if telemetry is not None:
            check_telemetry_mode(telemetry)
        self.stages = stages
        self.workers = workers
        self.checkpoint = checkpoint
        self.resume = resume
        self.pool = pool
        self.shm = shm
        self.retry = retry
        self.faults = faults
        self.defaults = PipelineDefaults(
            approach=approach,
            objective=objective,
            devices=devices,
            schedule=schedule,
            n_workers=n_workers,
            chunk_size=chunk_size,
            top_k=top_k,
            validate=validate,
            word_layout=word_layout,
            backend=backend,
            fused=fused,
            telemetry=telemetry,
        )

    def run(
        self,
        dataset: GenotypeDataset,
        *,
        cancel: CancellationToken | None = None,
        progress: PipelineProgress | None = None,
    ) -> PipelineResult:
        """Execute every stage and aggregate the pipeline result.

        Parameters
        ----------
        dataset:
            The case/control dataset to search.
        cancel:
            Optional cooperative cancellation token shared by every stage's
            engine run.
        progress:
            Optional callback ``progress(stage_name, done, total)`` invoked
            after every chunk of every stage.
        """
        from repro.telemetry import (
            current_run,
            finish_run,
            new_run_id,
            resolve_telemetry_mode,
            span_or_null,
            start_run,
        )

        mode = resolve_telemetry_mode(self.defaults.telemetry)
        session = current_run()
        owns_session = False
        if session is None and mode != "off":
            session = start_run(mode)
            owns_session = True
        run_id = session.run_id if session is not None else new_run_id()
        try:
            with span_or_null(
                "pipeline", stages=len(self.stages), n_snps=dataset.n_snps
            ):
                return self._run(
                    dataset,
                    cancel=cancel,
                    progress=progress,
                    run_id=run_id,
                )
        finally:
            if owns_session:
                finish_run(session)

    def _run(
        self,
        dataset: GenotypeDataset,
        *,
        cancel: CancellationToken | None,
        progress: PipelineProgress | None,
        run_id: str,
    ) -> PipelineResult:
        from repro.telemetry import span_or_null

        ctx = StageContext(
            dataset=dataset,
            defaults=self.defaults,
            cancel=cancel,
            progress=progress,
            workers=self.workers,
            checkpoint_dir=self.checkpoint,
            resume=self.resume,
            pool=self.pool,
            shm=self.shm,
            retry=self.retry,
            faults=self.faults,
        )
        ledger = self._open_ledger(dataset)
        if ledger is not None:
            ledger.note_run(run_id)
        reports: List[StageReport] = []
        started = time.perf_counter()
        for index, stage in enumerate(self.stages):
            ctx.stage_index = index
            restored = self._restore_stage(ledger, index, ctx)
            if restored is not None:
                reports.append(restored)
                continue
            with span_or_null(
                "pipeline.stage", stage=stage.name, index=index
            ):
                report = stage.run(ctx)
            reports.append(report)
            self._record_stage(ledger, index, ctx, report)
        elapsed = time.perf_counter() - started

        if not ctx.top:
            raise RuntimeError(
                "pipeline produced no finalists; include an expand stage "
                f"(ran: {[stage.name for stage in self.stages]})"
            )
        final_order = len(ctx.top[0].snps)
        return PipelineResult(
            best=ctx.top[0],
            top=list(ctx.top),
            stages=reports,
            elapsed_seconds=elapsed,
            n_snps=dataset.n_snps,
            n_samples=dataset.n_samples,
            final_order=final_order,
            exhaustive_combinations=comb(dataset.n_snps, final_order),
            retained_snps=(
                [int(s) for s in ctx.retained] if ctx.retained is not None else None
            ),
            p_values=ctx.p_values,
            run_id=run_id,
        )

    # -- pipeline-level checkpointing -------------------------------------------
    def _fingerprint(self, dataset: GenotypeDataset) -> dict:
        from repro.distributed.checkpoint import dataset_fingerprint

        return {
            "dataset": dataset_fingerprint(dataset),
            "stages": [repr(stage) for stage in self.stages],
        }

    def _open_ledger(self, dataset: GenotypeDataset):
        """The stage-output ledger of a checkpointed run (``None`` otherwise).

        ``pipeline.json`` records every completed stage's report and its
        context mutations (retained universe, finalists, p-values), so a
        resumed run replays finished stages without executing them and
        re-enters the first incomplete stage, whose own shard ledger then
        resumes mid-sweep.
        """
        if self.checkpoint is None:
            return None
        from pathlib import Path

        from repro.distributed.checkpoint import JsonLedger

        ledger = JsonLedger(Path(self.checkpoint) / "pipeline.json")
        if ledger.begin(
            self._fingerprint(dataset),
            resume=self.resume,
            label="pipeline checkpoint",
        ):
            return ledger
        ledger.doc["stages"] = {}
        ledger.write()
        return ledger

    def _restore_stage(self, ledger, index: int, ctx: StageContext):
        """Replay a completed stage from the ledger (``None`` = execute it)."""
        if ledger is None or not self.resume:
            return None
        record = ledger.doc.get("stages", {}).get(str(index))
        if record is None:
            return None
        import numpy as np

        from repro.distributed.merge import row_to_interaction

        ctx.retained = (
            np.asarray(record["retained"], dtype=np.int64)
            if record.get("retained") is not None
            else None
        )
        ctx.top = [row_to_interaction(row) for row in record.get("top", [])]
        ctx.p_values = (
            [float(p) for p in record["p_values"]]
            if record.get("p_values") is not None
            else None
        )
        report = StageReport.from_dict(record["report"])
        report.extra = dict(report.extra)
        report.extra["resumed"] = True
        return report

    def _record_stage(
        self, ledger, index: int, ctx: StageContext, report: StageReport
    ) -> None:
        """Persist a completed stage's report and context mutations."""
        if ledger is None:
            return
        from repro.distributed.merge import interaction_to_row

        ledger.doc.setdefault("stages", {})[str(index)] = {
            "report": report.to_dict(),
            "retained": (
                [int(s) for s in ctx.retained] if ctx.retained is not None else None
            ),
            "top": [interaction_to_row(inter) for inter in ctx.top],
            "p_values": (
                [float(p) for p in ctx.p_values]
                if ctx.p_values is not None
                else None
            ),
        }
        ledger.write()
