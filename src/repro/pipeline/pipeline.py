"""The :class:`SearchPipeline` orchestrator.

A pipeline is an ordered list of stages sharing one dataset and one set of
execution defaults; running it threads a :class:`~repro.pipeline.stages.StageContext`
through the stages and aggregates their reports into a
:class:`~repro.pipeline.result.PipelineResult`.

Example — screen at order 2, keep 16 SNPs, expand at order 3, validate the
finalists with a permutation null::

    from repro.pipeline import (
        SearchPipeline, ScreenStage, ExpandStage, PermutationStage,
    )

    pipeline = SearchPipeline(
        [
            ScreenStage(order=2, keep=16),
            ExpandStage(order=3),
            PermutationStage(n_permutations=100, seed=7),
        ],
        approach="cpu-v4",
        n_workers=2,
    )
    outcome = pipeline.run(dataset)
    print(outcome.summary())
"""

from __future__ import annotations

import time
from math import comb
from typing import List, Sequence

from repro.core.scoring import ObjectiveFunction
from repro.datasets.dataset import GenotypeDataset
from repro.engine import CancellationToken, SchedulingPolicy
from repro.pipeline.result import PipelineResult, StageReport
from repro.pipeline.stages import (
    PipelineDefaults,
    PipelineProgress,
    PipelineStage,
    StageContext,
)

__all__ = ["SearchPipeline"]


class SearchPipeline:
    """A staged search: candidate streams from screen → expand → refine.

    Parameters
    ----------
    stages:
        The stages to execute, in order.  At least one stage must produce
        finalists (an :class:`~repro.pipeline.stages.ExpandStage`) for the
        pipeline to return a result.
    approach / objective / devices / schedule / n_workers / chunk_size /
    top_k / validate:
        Execution defaults inherited by every stage that does not override
        them (see :class:`~repro.pipeline.stages.PipelineDefaults`).
    """

    def __init__(
        self,
        stages: Sequence[PipelineStage],
        *,
        approach: str = "cpu-v4",
        objective: str | ObjectiveFunction = "k2",
        devices: str | None = None,
        schedule: str | SchedulingPolicy = "dynamic",
        n_workers: int = 1,
        chunk_size: int = 2048,
        top_k: int = 10,
        validate: bool = False,
    ) -> None:
        stages = list(stages)
        if not stages:
            raise ValueError("a search pipeline needs at least one stage")
        self.stages = stages
        self.defaults = PipelineDefaults(
            approach=approach,
            objective=objective,
            devices=devices,
            schedule=schedule,
            n_workers=n_workers,
            chunk_size=chunk_size,
            top_k=top_k,
            validate=validate,
        )

    def run(
        self,
        dataset: GenotypeDataset,
        *,
        cancel: CancellationToken | None = None,
        progress: PipelineProgress | None = None,
    ) -> PipelineResult:
        """Execute every stage and aggregate the pipeline result.

        Parameters
        ----------
        dataset:
            The case/control dataset to search.
        cancel:
            Optional cooperative cancellation token shared by every stage's
            engine run.
        progress:
            Optional callback ``progress(stage_name, done, total)`` invoked
            after every chunk of every stage.
        """
        ctx = StageContext(
            dataset=dataset,
            defaults=self.defaults,
            cancel=cancel,
            progress=progress,
        )
        reports: List[StageReport] = []
        started = time.perf_counter()
        for stage in self.stages:
            reports.append(stage.run(ctx))
        elapsed = time.perf_counter() - started

        if not ctx.top:
            raise RuntimeError(
                "pipeline produced no finalists; include an expand stage "
                f"(ran: {[stage.name for stage in self.stages]})"
            )
        final_order = len(ctx.top[0].snps)
        return PipelineResult(
            best=ctx.top[0],
            top=list(ctx.top),
            stages=reports,
            elapsed_seconds=elapsed,
            n_snps=dataset.n_snps,
            n_samples=dataset.n_samples,
            final_order=final_order,
            exhaustive_combinations=comb(dataset.n_snps, final_order),
            retained_snps=(
                [int(s) for s in ctx.retained] if ctx.retained is not None else None
            ),
            p_values=ctx.p_values,
        )
