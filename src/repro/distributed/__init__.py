"""Sharded multi-process execution with checkpoint/resume and deterministic merge.

The fourth execution layer of the library (engine → order-generic core →
staged pipeline → **distributed**): any candidate sweep can be cut into
rank-addressable shards, executed across OS worker processes (each running
the full in-process heterogeneous engine over its shard), checkpointed
after every shard into an atomic JSON ledger, resumed after a kill, and
merged under an explicit ``(score, combination-rank)`` total order so the
reported top-k is bit-identical for any worker count.

* :mod:`repro.distributed.shards` — :class:`Shard`, :class:`ShardView` and
  the :class:`ShardPlanner` (static or CARM-throughput-weighted cuts);
* :mod:`repro.distributed.runner` — spawn-safe :class:`ProcessRunner`
  worker pool streaming per-shard partial top-k results back;
* :mod:`repro.distributed.checkpoint` — the atomic
  :class:`CheckpointStore` shard ledger enabling ``--resume``;
* :mod:`repro.distributed.shm` — the zero-copy shared-memory data plane
  (:class:`SharedEncodingStore`, :class:`DatasetHandle`): workers attach
  read-only views of the published dataset and encodings instead of
  unpickling arrays;
* :mod:`repro.distributed.fleet` — persistent warm worker fleets
  (:class:`WorkerFleet`) surviving across ``detect()`` calls, pipeline
  stages and permutation batches;
* :mod:`repro.distributed.resilience` — fault-tolerance policy
  (:class:`RetryPolicy`: bounded retries with backoff, heartbeat-watchdog
  deadlines, the degradation ladder and poison-shard quarantine) and the
  per-run :class:`ResilienceLog`;
* :mod:`repro.distributed.merge` — deterministic partial-result folding;
* :mod:`repro.distributed.coordinator` — :func:`run_distributed`, the
  orchestration loop behind ``detect(..., workers=N, checkpoint=...)``;
* :mod:`repro.distributed.cluster` — rank bookkeeping and broadcast/gather
  traffic accounting for the MPI3SNP-style baseline (plus the legacy
  :class:`SimulatedCluster` harness of the removed ``repro.parallel``).
"""

from repro.distributed.shards import (
    DEFAULT_SHARD_COUNT,
    Shard,
    ShardPlanner,
    ShardView,
)
from repro.distributed.checkpoint import (
    CheckpointStore,
    JsonLedger,
    dataset_fingerprint,
)
from repro.distributed.merge import (
    interaction_to_row,
    merge_minima,
    merge_rows,
    row_to_interaction,
    row_sort_key,
)
from repro.distributed.resilience import (
    DEFAULT_RETRY_POLICY,
    LADDER_RUNGS,
    ResilienceLog,
    RetryPolicy,
)
from repro.distributed.runner import ProcessRunner, ShardOutcome, WorkerPayload
from repro.distributed.coordinator import DistributedOutcome, run_distributed
from repro.distributed.cluster import ClusterRank, RankAccounting, SimulatedCluster
from repro.distributed.fleet import WorkerFleet, get_fleet, shutdown_fleets
from repro.distributed.shm import (
    DatasetHandle,
    SegmentInfo,
    SharedEncodingStore,
    StoreSession,
    data_plane_snapshot,
    hydrate_dataset,
    load_encoding,
    publish_dataset,
    publish_encoding,
    reap_orphans,
    scan_segments,
    shared_store,
)

__all__ = [
    "DEFAULT_SHARD_COUNT",
    "Shard",
    "ShardView",
    "ShardPlanner",
    "CheckpointStore",
    "JsonLedger",
    "dataset_fingerprint",
    "interaction_to_row",
    "row_to_interaction",
    "row_sort_key",
    "merge_rows",
    "merge_minima",
    "ProcessRunner",
    "ShardOutcome",
    "WorkerPayload",
    "DistributedOutcome",
    "run_distributed",
    "ClusterRank",
    "RankAccounting",
    "SimulatedCluster",
    "WorkerFleet",
    "get_fleet",
    "shutdown_fleets",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "ResilienceLog",
    "LADDER_RUNGS",
    "DatasetHandle",
    "SegmentInfo",
    "SharedEncodingStore",
    "StoreSession",
    "shared_store",
    "publish_dataset",
    "hydrate_dataset",
    "publish_encoding",
    "load_encoding",
    "scan_segments",
    "reap_orphans",
    "data_plane_snapshot",
]
