"""Persistent worker fleets: spawn once, reuse across every run.

A :class:`WorkerFleet` wraps a :class:`~concurrent.futures.ProcessPoolExecutor`
that *outlives* individual ``detect()`` calls, pipeline stages and
permutation batches.  The PR-4 runner paid a fresh ``spawn`` (a full
interpreter start plus imports, ~300 ms per worker) for every sweep; a warm
fleet pays it once per process lifetime, which is what makes multi-process
execution profitable for the short stage sweeps the staged pipeline issues.

Fleets are registered per ``(workers, mp_context)`` in a process-wide pool
(:func:`get_fleet`) torn down by ``atexit``; the fleet also owns the
long-lived :class:`~repro.distributed.shm.StoreSession` that keeps
published shared-memory segments alive between runs, so a second
``detect()`` over the same dataset attaches the segments the first one
published (zero re-packs, zero re-publishes).

A fleet can :meth:`respawn` after a worker death (``BrokenProcessPool``):
the broken executor is discarded, a fresh one is spawned, and the caller
re-dispatches only the unfinished work — see
:meth:`repro.distributed.runner.ProcessRunner.map_shards`.
"""

from __future__ import annotations

import atexit
import multiprocessing
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Dict, Tuple

__all__ = ["WorkerFleet", "get_fleet", "shutdown_fleets"]


class WorkerFleet:
    """A lazily-spawned, persistent pool of worker processes.

    Parameters
    ----------
    workers:
        Worker process count (fixed for the fleet's lifetime; different
        counts get different fleets).
    mp_context:
        ``multiprocessing`` start method; ``"spawn"`` is the default
        everywhere in :mod:`repro.distributed` (safe with threads in the
        parent, identical across platforms).
    """

    def __init__(self, workers: int, mp_context: str = "spawn") -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = int(workers)
        self.mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        self._session = None
        self._lock = threading.Lock()
        #: Pool spawn generations (1 after first use; +1 per respawn) —
        #: the perf model's measured spawn-cost accounting reads this.
        self.generation = 0
        self.respawns = 0

    # -- execution -------------------------------------------------------------
    def _executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                from repro.distributed.shm import note_event

                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context(self.mp_context),
                )
                self.generation += 1
                note_event("pool_spawns")
                note_event("pool_workers_spawned", self.workers)
            return self._pool

    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Submit a task, spawning the pool on first use."""
        return self._executor().submit(fn, *args, **kwargs)

    @property
    def warm(self) -> bool:
        """Whether the pool is already spawned (no start-up cost left)."""
        return self._pool is not None

    def describe(self) -> dict:
        """Fleet bookkeeping snapshot for run statistics and telemetry."""
        return {
            "workers": self.workers,
            "warm": self.warm,
            "generation": self.generation,
            "respawns": self.respawns,
        }

    def kill_workers(self) -> int:
        """SIGKILL every live worker process (the watchdog's hammer).

        Used when the heartbeat watchdog declares the pool hung: killing
        the workers breaks the executor, which surfaces every in-flight
        future as ``BrokenProcessPool`` — the same recovery path a genuine
        worker crash takes.  Returns how many processes were signalled.
        """
        import os
        import signal

        with self._lock:
            pool = self._pool
        if pool is None:
            return 0
        killed = 0
        for proc in list(getattr(pool, "_processes", {}).values()):
            pid = getattr(proc, "pid", None)
            if pid is None or not proc.is_alive():
                continue
            try:
                os.kill(pid, signal.SIGKILL)
                killed += 1
            except (OSError, ProcessLookupError):
                pass
        return killed

    def respawn(self) -> None:
        """Replace a broken pool with a freshly spawned one.

        The old executor is shut down without waiting (its processes are
        dead or doomed); pending futures are cancelled — the caller owns
        re-dispatching unfinished work onto the new pool.
        """
        with self._lock:
            old, self._pool = self._pool, None
            self.respawns += 1
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)
        self._executor()

    # -- data-plane session -----------------------------------------------------
    def store_session(self):
        """The fleet's long-lived shared-memory session.

        Segments retained into it survive across runs for as long as the
        fleet does — the warm-pool analogue of the runner-scoped session a
        ``--pool fresh`` run closes at its end.
        """
        with self._lock:
            if self._session is None or self._session.closed:
                from repro.distributed.shm import shared_store

                self._session = shared_store().session()
            return self._session

    # -- lifecycle --------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the pool and release the fleet's shared-memory segments."""
        with self._lock:
            pool, self._pool = self._pool, None
            session, self._session = self._session, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        if session is not None:
            session.close()


_FLEETS: Dict[Tuple[int, str], WorkerFleet] = {}
_FLEETS_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False


def get_fleet(workers: int, mp_context: str = "spawn") -> WorkerFleet:
    """The process-wide warm fleet for ``(workers, mp_context)``.

    Created on first request and kept until :func:`shutdown_fleets` (or
    process exit); every ``--pool keep`` run with the same worker count
    reuses it.
    """
    global _ATEXIT_REGISTERED
    key = (int(workers), mp_context)
    with _FLEETS_LOCK:
        fleet = _FLEETS.get(key)
        if fleet is None:
            fleet = WorkerFleet(workers, mp_context)
            _FLEETS[key] = fleet
            if not _ATEXIT_REGISTERED:
                atexit.register(shutdown_fleets)
                _ATEXIT_REGISTERED = True
        return fleet


def shutdown_fleets() -> None:
    """Shut down every warm fleet (idempotent; re-registered on next use)."""
    with _FLEETS_LOCK:
        fleets = list(_FLEETS.values())
        _FLEETS.clear()
    for fleet in fleets:
        fleet.shutdown()
