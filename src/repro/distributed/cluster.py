"""Rank bookkeeping and communication accounting for multi-rank runs.

The MPI3SNP-style baseline distributes the search across cluster processes
with a static partition of the combination space: the dataset is broadcast
to every rank, each rank evaluates its contiguous share and the partial
top-k lists are gathered on rank 0.  :class:`RankAccounting` models exactly
the quantities that comparison needs — per-rank work assignment, the
broadcast/gather traffic and the static-partition load imbalance — while
the actual rank execution now runs through :mod:`repro.distributed`
(:func:`~repro.distributed.coordinator.run_distributed` with a
one-shard-per-rank static plan), either as real OS processes or inline.

:class:`SimulatedCluster` remains as the legacy sequential harness the
removed ``repro.parallel`` package shipped (rank functions executed in
order on the calling thread); it now simply extends the accounting with an
in-process ``run`` loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, List, Sequence, TypeVar

from repro.engine.scheduling import static_partition

__all__ = ["ClusterRank", "RankAccounting", "SimulatedCluster"]

T = TypeVar("T")


@dataclass
class ClusterRank:
    """Bookkeeping of one rank of a distributed run."""

    rank: int
    work_range: tuple[int, int]
    items_processed: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0

    @property
    def work_items(self) -> int:
        """Number of combination ranks assigned to this rank."""
        return self.work_range[1] - self.work_range[0]


class RankAccounting:
    """Static work partition plus collective-traffic accounting.

    Parameters
    ----------
    n_ranks:
        Number of ranks (processes) of the modelled cluster.
    """

    def __init__(self, n_ranks: int) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be positive")
        self.n_ranks = int(n_ranks)
        self.ranks: List[ClusterRank] = []

    # -- collective operations ---------------------------------------------
    def scatter_work(self, total_items: int) -> List[ClusterRank]:
        """Statically partition ``total_items`` across the ranks."""
        ranges = static_partition(total_items, self.n_ranks)
        self.ranks = [ClusterRank(rank=i, work_range=r) for i, r in enumerate(ranges)]
        return self.ranks

    def broadcast_dataset(self, n_bytes: int) -> None:
        """Account the initial dataset broadcast (every rank gets a copy)."""
        if not self.ranks:
            raise RuntimeError("scatter_work must be called before broadcast_dataset")
        for rank in self.ranks:
            rank.bytes_received += int(n_bytes)

    def account_gather(self, bytes_per_partial: int) -> None:
        """Account the gather of per-rank partial results on rank 0."""
        if not self.ranks:
            raise RuntimeError("scatter_work must be called before gather")
        for rank in self.ranks[1:]:
            rank.bytes_sent += int(bytes_per_partial)
        self.ranks[0].bytes_received += int(bytes_per_partial) * (self.n_ranks - 1)

    # -- diagnostics --------------------------------------------------------
    def load_imbalance(self) -> float:
        """Max-to-mean ratio of assigned work items (1.0 = perfectly balanced)."""
        if not self.ranks:
            return 1.0
        sizes = [r.work_items for r in self.ranks]
        mean = sum(sizes) / len(sizes)
        if mean == 0:
            return 1.0
        return max(sizes) / mean


class SimulatedCluster(RankAccounting, Generic[T]):
    """Legacy sequential rank harness (kept for backward compatibility).

    ``run`` executes rank 0, rank 1, … in order on the calling thread; the
    measured quantity of interest is *work done per rank* and the
    broadcast/gather traffic, not wall-clock overlap.  New code should use
    :func:`repro.distributed.run_distributed`, which executes ranks as real
    OS processes with checkpointing and deterministic merging.
    """

    def run(self, rank_fn: Callable[[ClusterRank], T]) -> List[T]:
        """Execute ``rank_fn`` for every rank and return the partial results."""
        if not self.ranks:
            raise RuntimeError("scatter_work must be called before run")
        results: List[T] = []
        for rank in self.ranks:
            results.append(rank_fn(rank))
        return results

    def gather(self, partials: Sequence[T], bytes_per_partial: int = 0) -> List[T]:
        """Gather partial results on rank 0 (accounts the traffic)."""
        self.account_gather(bytes_per_partial)
        return list(partials)
