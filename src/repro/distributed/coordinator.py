"""The distributed run coordinator: shard → execute → checkpoint → merge.

:func:`run_distributed` is the orchestration loop behind
``EpistasisDetector.detect(..., workers=N, checkpoint=...)``, the staged
pipeline's per-stage sharding and the CLI's ``--workers/--checkpoint/
--resume`` flags:

1. a :class:`~repro.distributed.shards.ShardPlanner` cuts the candidate
   space into rank-addressable shards;
2. under ``--resume``, the :class:`~repro.distributed.checkpoint.CheckpointStore`
   is validated against the run fingerprint and already-completed shards
   are restored from the ledger instead of re-evaluated;
3. a :class:`~repro.distributed.runner.ProcessRunner` streams the remaining
   shards through worker processes (or inline for ``workers=1``), and every
   completed shard is appended to the ledger atomically before the next one
   is awaited — a kill at any point loses at most the in-flight shards;
4. the partial top-k lists are folded by
   :func:`~repro.distributed.merge.merge_rows` under the explicit
   ``(score, combination-rank)`` total order, so the reported top-k is
   bit-identical for 1, 2 or 8 workers, with or without a resume cycle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from repro.core.result import ApproachStats, DetectionResult, Interaction
from repro.core.scoring import get_objective
from repro.datasets.dataset import GenotypeDataset
from repro.engine.candidates import CandidateSource
from repro.engine.policies import get_policy
from repro.distributed.checkpoint import CheckpointStore, dataset_fingerprint
from repro.distributed.merge import merge_minima, merge_rows, row_to_interaction
from repro.distributed.resilience import ResilienceLog, RetryPolicy, merge_history
from repro.distributed.runner import ProcessRunner, ShardOutcome, WorkerPayload
from repro.distributed.shards import ShardPlanner
from repro.distributed.shm import publish_dataset, publish_encoding
from repro.faults import current_plan, install_plan, resolve_fault_plan

__all__ = ["DistributedOutcome", "run_distributed"]

#: Progress callback: ``progress(items_done, items_total)`` — counts restored
#: shard items as done, so a resumed run starts where the ledger left off.
ProgressCallback = Callable[[int, int], None]


@dataclass
class DistributedOutcome:
    """Everything a sharded run produced (complete or partial).

    ``result`` is only assembled for complete runs; a partial run (shard
    budget exhausted, cooperative cancellation) still exposes the merged
    top-so-far, the ledger bookkeeping and the per-shard statistics so
    callers can report progress and resume later.
    """

    top: List[Interaction]
    completed: bool
    cancelled: bool
    workers: int
    n_shards: int
    shards_done: int
    shards_restored: int
    items_total: int
    items_evaluated: int
    items_restored: int
    elapsed_seconds: float
    result: DetectionResult | None = None
    snp_minima: np.ndarray | None = None
    checkpoint_path: str | None = None
    device_stats: Dict[str, Dict[str, object]] = field(default_factory=dict)
    op_counts: Dict[str, int] = field(default_factory=dict)
    bytes_loaded: int = 0
    bytes_stored: int = 0
    #: Items evaluated per shard id (restored and fresh), for per-rank
    #: accounting by callers that map shards onto ranks.
    shard_items: Dict[int, int] = field(default_factory=dict)
    #: Data-plane counter increments of this run (parent publishes plus
    #: every worker batch's delta): segments published/attached/reused,
    #: encoding-cache hits/misses/shm-hits, datasets pickled vs attached.
    data_plane: Dict[str, int] = field(default_factory=dict)
    #: What the fault-tolerance machinery did this run
    #: (:meth:`~repro.distributed.resilience.ResilienceLog.to_dict`):
    #: retries, watchdog kills, pool breaks, ladder rung, quarantined
    #: shards and per-shard failed-attempt counts.
    resilience: Dict[str, object] = field(default_factory=dict)

    @property
    def shards_remaining(self) -> int:
        """Shards still unevaluated (0 for a complete run)."""
        return self.n_shards - self.shards_done


def _aggregate_device_stats(
    shard_stats: List[Dict[str, Dict[str, object]]],
    elapsed: float,
    n_items: int,
    n_processes: int,
) -> Dict[str, Dict[str, object]]:
    """Sum per-shard engine lane statistics into run-level device stats.

    ``busy_seconds`` accumulates across every shard of every worker
    process, so the capacity normalising the utilization is the wall clock
    times the *fleet-wide* lane thread count (per-process lane workers x
    worker processes); restored shards contribute their recorded stats but
    no busy time, so a resumed run's utilization reflects only this run's
    execution.
    """
    stats: Dict[str, Dict[str, object]] = {}
    for per_shard in shard_stats:
        for label, entry in per_shard.items():
            agg = stats.setdefault(
                label,
                {
                    "kind": entry.get("kind"),
                    "workers": int(entry.get("workers", 1)) * n_processes,
                    "chunks": 0,
                    "items": 0,
                    "busy_seconds": 0.0,
                    "op_counts": {},
                },
            )
            agg["chunks"] += int(entry.get("chunks", 0))
            agg["items"] += int(entry.get("items", 0))
            agg["busy_seconds"] += float(entry.get("busy_seconds", 0.0))
            if entry.get("approach"):
                agg["approach"] = entry["approach"]
            for mnemonic, count in entry.get("op_counts", {}).items():
                agg["op_counts"][mnemonic] = (
                    agg["op_counts"].get(mnemonic, 0) + int(count)
                )
    for agg in stats.values():
        capacity = elapsed * max(1, int(agg["workers"]))
        agg["utilization"] = (
            float(agg["busy_seconds"]) / capacity if capacity > 0 else 0.0
        )
        agg["share"] = int(agg["items"]) / n_items if n_items else 0.0
    return stats


def resolve_shm(shm: object, workers: int) -> bool:
    """Normalise the ``shm`` knob (``"on"``/``"off"``/``"auto"``/bool/None).

    ``None``/``"auto"`` enables the shared-memory data plane exactly when
    worker processes exist to profit from it; ``workers=1`` runs inline
    and never publishes (nothing would attach).
    """
    if isinstance(shm, str):
        lowered = shm.lower()
        if lowered == "on":
            shm = True
        elif lowered == "off":
            shm = False
        elif lowered == "auto":
            shm = None
        else:
            raise ValueError(f"shm must be 'on', 'off' or 'auto', got {shm!r}")
    if shm is None:
        return workers > 1
    return bool(shm) and workers > 1


def _aggregate_data_plane(
    outcomes: List[ShardOutcome], parent_delta: Dict[str, int]
) -> Dict[str, int]:
    """Sum the per-batch worker counter deltas with the parent's own."""
    totals: Dict[str, int] = dict(parent_delta)
    for outcome in outcomes:
        for name, count in outcome.data_plane.items():
            totals[name] = totals.get(name, 0) + int(count)
    return totals


def _publish_data_plane(dataset, config, approach_kwargs, session):
    """Publish the dataset (and the prototype encoding) into shared memory.

    Returns the :class:`~repro.distributed.shm.DatasetHandle` the payload
    ships in place of the arrays.  The prototype lane's prepared encoding
    is packed once here (through the process-wide cache, so repeated runs
    reuse it) and published alongside; GPU layouts carry device-side state
    and are rebuilt worker-side from the shared dataset instead.
    """
    from repro.core.approaches import get_approach
    from repro.core.encoding_cache import ENCODING_CACHE, encoding_cache_key

    handle = publish_dataset(dataset, session=session)
    prototype = get_approach(config.approach, **approach_kwargs)
    if prototype.device == "cpu":
        key = encoding_cache_key(dataset, prototype)
        if key is not None:
            encoded = ENCODING_CACHE.get_or_build(
                key, lambda: prototype.prepare(dataset)
            )
            publish_encoding(key, encoded, session=session)
    return handle


def _payload_approach_kwargs(
    config, approach_kwargs: Dict[str, object] | None
) -> Dict[str, object]:
    """Approach constructor kwargs shipped to the worker processes.

    The config's ``word_layout`` and ``backend`` ride along even when the
    caller passed no explicit kwargs (the pipeline stages do), so
    distributed shards always pack with the same execution word width and
    run the same kernel backend as an in-process run.
    """
    kwargs = dict(approach_kwargs or {})
    layout = getattr(config, "word_layout", None)
    if layout is not None:
        kwargs.setdefault("word_layout", layout)
    backend = getattr(config, "backend", None)
    if backend is not None:
        kwargs.setdefault("backend", backend)
    return kwargs


def run_distributed(
    dataset: GenotypeDataset,
    source: CandidateSource,
    *,
    config,
    workers: int = 1,
    checkpoint: str | None = None,
    resume: bool = False,
    planner: ShardPlanner | None = None,
    shard_budget: int | None = None,
    collect_snp_minima: bool = False,
    progress: ProgressCallback | None = None,
    cancel=None,
    approach_kwargs: Dict[str, object] | None = None,
    mp_context: str = "spawn",
    pool: str = "keep",
    shm: object = None,
    run_id: str | None = None,
    retry: RetryPolicy | None = None,
    faults: object = None,
) -> DistributedOutcome:
    """Execute a candidate sweep as a sharded multi-process run.

    Parameters
    ----------
    dataset / source:
        The case/control dataset and the candidate space to sweep.
    run_id:
        Run identity correlating the result, checkpoint ledger and trace
        file; defaults to the ambient telemetry run's id (when the
        detector or pipeline owns one) or a fresh id.
    config:
        A :class:`~repro.core.detector.DetectorConfig`; ``approach`` must be
        a registry name (worker processes build their own instances).
        ``n_workers`` is the *per-process* host thread count.
    workers:
        Worker process count; ``1`` runs the identical shard/checkpoint
        path inline (no pool).
    checkpoint:
        Optional path of the atomic shard ledger.  Written after every
        completed shard; without it a killed run loses everything.
    resume:
        Restore completed shards from an existing ledger (fingerprint
        validated) instead of re-evaluating them.  With no ledger on disk
        the run starts fresh, so ``--resume`` is safe to pass always.
    planner:
        Shard planner override (default: static
        :data:`~repro.distributed.shards.DEFAULT_SHARD_COUNT`-way cut).
    shard_budget:
        Evaluate at most this many shards in this invocation and return a
        partial (``completed=False``) outcome — time-sliced execution for
        budgeted or cron-driven sweeps.
    collect_snp_minima:
        Fold the per-SNP best-participating-score accumulator inside every
        shard and merge across shards (the distributed screening stage).
    progress:
        ``progress(items_done, items_total)`` per completed shard
        (restored items count as done).
    cancel:
        Optional :class:`~repro.engine.executor.CancellationToken`; checked
        between shard completions.
    pool:
        ``"keep"`` (default) runs on the process-wide warm worker fleet,
        which survives this call — later runs skip process spawn and reuse
        the workers' hydrated state; ``"fresh"`` spawns a dedicated pool
        torn down when the run ends.
    shm:
        The shared-memory data plane: ``True``/``"on"`` publishes the
        dataset (and the prototype lane's prepared encoding) into
        :mod:`multiprocessing.shared_memory` so shard tasks ship a content
        digest instead of pickled arrays; ``False``/``"off"`` ships the
        dataset inline; ``None``/``"auto"`` (default) enables it whenever
        worker processes exist.
    retry:
        The run's :class:`~repro.distributed.resilience.RetryPolicy`
        (bounded per-shard retries with exponential backoff, the heartbeat
        watchdog deadline, the pool-break budget).  ``None`` uses the
        defaults; see the module docs for the degradation ladder a failing
        run climbs (respawn → fresh pool → inline) and the poison-shard
        quarantine guarantee.
    faults:
        Deterministic fault injection for chaos runs: a
        :class:`~repro.faults.FaultPlan`, a compact spec string
        (``"shard.run:crash"``), a JSON document, or ``None`` — which
        falls back to the ``REPRO_FAULTS`` environment variable and, when
        that is unset too, injects nothing.
    """
    if not isinstance(config.approach, str):
        raise TypeError(
            "distributed execution requires the approach as a registry name; "
            f"got {type(config.approach).__name__} (worker processes build "
            "their own instances)"
        )
    if workers < 1:
        raise ValueError("workers must be positive")
    if source.total < 1:
        raise ValueError("cannot distribute an empty candidate source")

    from repro.telemetry import (
        current_run,
        finish_run,
        new_run_id,
        resolve_telemetry_mode,
        start_run,
    )

    # Join the ambient telemetry run (the detector or pipeline usually
    # owns it); direct callers (benchmarks) own the run themselves.
    mode = resolve_telemetry_mode(getattr(config, "telemetry", None))
    session = current_run()
    owns_session = session is None and mode != "off"
    if owns_session:
        session = start_run(mode)
    if session is not None:
        run_id = session.run_id
    elif run_id is None:
        run_id = new_run_id()
    try:
        return _run_distributed_impl(
            dataset,
            source,
            config=config,
            workers=workers,
            checkpoint=checkpoint,
            resume=resume,
            planner=planner,
            shard_budget=shard_budget,
            collect_snp_minima=collect_snp_minima,
            progress=progress,
            cancel=cancel,
            approach_kwargs=approach_kwargs,
            mp_context=mp_context,
            pool=pool,
            shm=shm,
            run_id=run_id,
            session=session,
            retry=retry,
            faults=faults,
        )
    finally:
        if owns_session:
            finish_run(session)


def _run_distributed_impl(
    dataset: GenotypeDataset,
    source: CandidateSource,
    *,
    config,
    workers: int,
    checkpoint: str | None,
    resume: bool,
    planner: ShardPlanner | None,
    shard_budget: int | None,
    collect_snp_minima: bool,
    progress: ProgressCallback | None,
    cancel,
    approach_kwargs: Dict[str, object] | None,
    mp_context: str,
    pool: str,
    shm: object,
    run_id: str,
    session,
    retry: RetryPolicy | None,
    faults: object,
) -> DistributedOutcome:
    total = source.total
    started = time.perf_counter()
    planner = planner or ShardPlanner()
    shards = planner.plan(
        total,
        workers,
        n_snps=source.effective_snps or dataset.n_snps,
        n_samples=dataset.n_samples,
        order=source.order,
    )
    store: CheckpointStore | None = None
    restored: Dict[int, Dict[str, object]] = {}
    if checkpoint is not None:
        store = CheckpointStore(checkpoint)
        fingerprint = {
            "dataset": dataset_fingerprint(dataset),
            # Content identity, not just geometry: explicit-rank/tuple and
            # subset sources digest their defining arrays, so a ledger can
            # never splice partials from a same-shaped but different
            # candidate set.
            "source": source.fingerprint(),
            "search": {
                "approach": config.approach,
                "objective": get_objective(config.objective).name,
                "top_k": int(config.top_k),
                "collect_snp_minima": bool(collect_snp_minima),
            },
        }
        restored = store.begin(fingerprint, shards, resume=resume)
        # Correlate the ledger with this run's trace file (and any
        # earlier runs that touched it); not part of the fingerprint.
        store.note_run(run_id)

    # Per-shard retry budgets span resumes: the log is seeded from the
    # ledger's persisted history, so a shard that kept breaking earlier
    # runs arrives here with its failures on record and quarantines
    # instead of re-breaking this one.
    resilience_log = ResilienceLog.from_history(
        store.get_state("resilience") if store is not None else None
    )

    pending = [s for s in shards if s.shard_id not in restored]
    if shard_budget is not None:
        if shard_budget < 0:
            raise ValueError("shard_budget must be non-negative")
        pending = pending[:shard_budget]

    items_restored = sum(int(rec.get("n_items", 0)) for rec in restored.values())
    items_total_done = items_restored
    if progress is not None and items_restored:
        progress(items_total_done, total)

    # Arm the fault plan (if any): arming allocates the claim directory
    # that makes firing budgets exact across the whole process tree.  The
    # plan is installed locally for the coordinator's own sites
    # (shm.publish; worker-killing kinds are suppressed here) and shipped
    # to workers inside the payload — the only channel that reaches warm
    # fleets spawned before this run existed.
    fault_plan = resolve_fault_plan(faults)
    if fault_plan is not None and fault_plan.specs:
        fault_plan = fault_plan.arm()
    else:
        fault_plan = None
    previous_plan = current_plan()
    install_plan(fault_plan)

    shm_enabled = resolve_shm(shm, workers)
    approach_kwargs_resolved = _payload_approach_kwargs(config, approach_kwargs)
    payload = WorkerPayload(
        dataset=dataset,
        source=source,
        approach=config.approach,
        objective=config.objective,
        n_threads=config.n_workers,
        chunk_size=config.chunk_size,
        top_k=config.top_k,
        validate=config.validate,
        devices=config.devices,
        schedule=config.schedule,
        collect_minima=collect_snp_minima,
        fused=getattr(config, "fused", None),
        approach_kwargs=approach_kwargs_resolved,
        faults=fault_plan,
    )
    runner = ProcessRunner(
        workers,
        payload,
        mp_context=mp_context,
        pool=pool,
        retry=retry,
        resilience=resilience_log,
    )

    from repro.distributed.shm import data_plane_delta, data_plane_snapshot

    parent_before = data_plane_snapshot()
    if shm_enabled and pending:
        payload.dataset = _publish_data_plane(
            dataset, config, approach_kwargs_resolved, runner.data_session()
        )

    from contextlib import nullcontext

    dispatch_span = (
        session.tracer.span(
            "shard.dispatch", shards=len(pending), workers=workers
        )
        if session is not None and pending
        else nullcontext()
    )

    outcomes: List[ShardOutcome] = []
    cancelled = False
    try:
        with dispatch_span:
            if session is not None and workers > 1 and pending:
                # Cross-process span propagation: workers activate a run
                # from this context, so their ``shard.run`` trees parent
                # under the dispatch span on the coordinator's timeline.
                payload.telemetry = session.context()
            if pending and not (cancel is not None and cancel.cancelled):
                shard_stream = runner.map_shards(pending)
                try:
                    for outcome in shard_stream:
                        outcomes.append(outcome)
                        if session is not None and outcome.spans:
                            session.tracer.absorb(outcome.spans)
                        if store is not None:
                            record: Dict[str, object] = {
                                "top": outcome.rows,
                                "n_items": int(outcome.n_items),
                                "elapsed_seconds": float(outcome.elapsed_seconds),
                                "op_counts": dict(outcome.op_counts),
                                "bytes_loaded": int(outcome.bytes_loaded),
                                "bytes_stored": int(outcome.bytes_stored),
                                "device_stats": outcome.device_stats,
                            }
                            if outcome.snp_minima is not None:
                                record["snp_minima"] = outcome.snp_minima
                            store.record_shard(outcome.shard_id, record)
                        items_total_done += outcome.n_items
                        if progress is not None:
                            progress(items_total_done, total)
                        if cancel is not None and cancel.cancelled:
                            cancelled = True
                            break
                finally:
                    shard_stream.close()
            elif cancel is not None and cancel.cancelled:
                cancelled = True
    finally:
        runner.close()
        install_plan(previous_plan)
    data_plane = _aggregate_data_plane(
        outcomes, data_plane_delta(parent_before)
    )

    shards_done = len(restored) + len(outcomes)
    completed = shards_done == len(shards) and not cancelled
    if store is not None and resilience_log.faulted:
        # The ledger's resilience history survives resumes: cumulative
        # per-shard failure counts plus a per-run event trail keyed by
        # run_id — what seeds the next resume's retry budgets.
        store.set_state(
            "resilience",
            merge_history(store.get_state("resilience"), run_id, resilience_log),
        )
    if completed and store is not None:
        store.finish()

    partial_rows = [rec.get("top", []) for rec in restored.values()]
    partial_rows.extend(outcome.rows for outcome in outcomes)
    top = [row_to_interaction(row) for row in merge_rows(partial_rows, config.top_k)]

    snp_minima = None
    if collect_snp_minima:
        partial_minima = [
            store.shard_minima(shard_id, rec)
            for shard_id, rec in restored.items()
        ]
        partial_minima.extend(outcome.snp_minima for outcome in outcomes)
        snp_minima = merge_minima(m for m in partial_minima if m is not None)

    elapsed = time.perf_counter() - started
    items_evaluated = sum(o.n_items for o in outcomes)

    # Operation/traffic accounting covers the whole search: fresh shards
    # plus the restored shards' recorded counts, so a resumed run's stats
    # still describe all n_combinations it reports.
    op_counts: Dict[str, int] = {}
    bytes_loaded = sum(o.bytes_loaded for o in outcomes)
    bytes_stored = sum(o.bytes_stored for o in outcomes)
    op_sources: List[Dict[str, int]] = [o.op_counts for o in outcomes]
    for rec in restored.values():
        op_sources.append(rec.get("op_counts", {}))
        bytes_loaded += int(rec.get("bytes_loaded", 0))
        bytes_stored += int(rec.get("bytes_stored", 0))
    for source_ops in op_sources:
        for mnemonic, count in source_ops.items():
            op_counts[mnemonic] = op_counts.get(mnemonic, 0) + int(count)

    # Restored shards contribute their recorded work accounting (items,
    # chunks, per-lane op counts) but no busy time — utilization describes
    # this run's execution only.
    shard_stats: List[Dict[str, Dict[str, object]]] = [
        {
            label: {**dict(entry), "busy_seconds": 0.0}
            for label, entry in rec.get("device_stats", {}).items()
        }
        for rec in restored.values()
    ]
    shard_stats.extend(o.device_stats for o in outcomes)
    # Normalise utilization by the pool that actually ran (the runner caps
    # its process count at the pending-shard count), not the requested
    # worker count.
    effective_processes = max(1, min(workers, len(pending)))
    device_stats = _aggregate_device_stats(
        shard_stats, elapsed, items_evaluated + items_restored, effective_processes
    )

    result: DetectionResult | None = None
    if completed:
        if not top:
            raise RuntimeError("distributed search produced no interactions")
        from repro.backends import get_backend
        from repro.core.fusion import resolve_fused_mode

        extra: Dict[str, object] = {
            "order": source.order,
            "schedule": get_policy(config.schedule).name,
            # Workers resolve the backend from the same config/env on the
            # same host, so resolving here names what they actually ran.
            "backend": get_backend(getattr(config, "backend", None)).name,
            "fused": resolve_fused_mode(getattr(config, "fused", None)),
            "candidates": source.describe(),
            "devices": device_stats,
            "run_id": run_id,
            "distributed": {
                "workers": workers,
                "n_shards": len(shards),
                "strategy": planner.strategy,
                "shards_restored": len(restored),
                "items_restored": items_restored,
                "items_evaluated": items_evaluated,
                "checkpoint": str(checkpoint) if checkpoint is not None else None,
                "mode": "inline" if workers == 1 else "processes",
                "pool": pool,
                "shm": shm_enabled,
                "data_plane": dict(data_plane),
                "fleet": runner.fleet_info(),
                "resilience": resilience_log.to_dict(),
            },
        }
        stats = ApproachStats(
            approach=config.approach,
            n_combinations=total,
            n_samples=dataset.n_samples,
            elapsed_seconds=elapsed,
            op_counts=op_counts,
            bytes_loaded=bytes_loaded,
            bytes_stored=bytes_stored,
            n_workers=workers * config.n_workers,
            extra=extra,
        )
        if session is not None:
            from repro.telemetry import absorb_stats

            absorb_stats(session, stats)
            extra["telemetry"] = session.summary()
        result = DetectionResult(best=top[0], top=list(top), stats=stats)

    shard_items = {
        shard_id: int(rec.get("n_items", 0)) for shard_id, rec in restored.items()
    }
    shard_items.update({o.shard_id: int(o.n_items) for o in outcomes})

    return DistributedOutcome(
        top=top,
        completed=completed,
        cancelled=cancelled,
        workers=workers,
        n_shards=len(shards),
        shards_done=shards_done,
        shards_restored=len(restored),
        items_total=total,
        items_evaluated=items_evaluated,
        items_restored=items_restored,
        elapsed_seconds=elapsed,
        result=result,
        snp_minima=snp_minima,
        checkpoint_path=str(checkpoint) if checkpoint is not None else None,
        device_stats=device_stats,
        op_counts=op_counts,
        bytes_loaded=bytes_loaded,
        bytes_stored=bytes_stored,
        shard_items=shard_items,
        data_plane=data_plane,
        resilience=resilience_log.to_dict(),
    )
