"""The shared-memory data plane: zero-copy dataset and encoding transport.

Before this module every distributed run shipped the whole dataset to every
worker process by pickling it into the pool (one copy per worker, repeated
for every ``detect()`` call, pipeline stage and permutation batch).  The
:class:`SharedEncodingStore` replaces that with POSIX shared memory: the
coordinator *publishes* the genotype matrix, the phenotype vector and the
prepared bit-plane encodings into :mod:`multiprocessing.shared_memory`
segments once, and workers *attach* read-only views — what crosses the
process boundary per task is a tiny :class:`DatasetHandle` (a content
digest) instead of the arrays themselves.

Segments are **content-addressed**: the segment name is a digest of the
publish key (which itself contains :meth:`GenotypeDataset.content_digest`
and :meth:`Approach.encoding_key`), so

* a double publish of the same content is a no-op (the existing segment is
  reused and refcounted up);
* a stale segment left behind by a *crashed* run of the same content is
  either valid by construction (complete header) and adopted, or detected
  as torn — the completeness magic is written *last* — and republished.

Lifecycle is refcounted through :class:`StoreSession` objects: every
runner (or the warm worker fleet) holds a session, publishes and loads
retain segments into it, and closing the last session that references a
segment unlinks it.  An ``atexit`` hook unlinks everything the process
still owns, so a clean exit never leaks ``/dev/shm`` entries; POSIX
semantics keep already-attached worker mappings valid even after the
parent unlinks.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import struct
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = [
    "DatasetHandle",
    "SharedEncodingStore",
    "StoreSession",
    "SegmentInfo",
    "shared_store",
    "publish_dataset",
    "hydrate_dataset",
    "publish_encoding",
    "load_encoding",
    "scan_segments",
    "reap_orphans",
    "data_plane_snapshot",
    "data_plane_delta",
    "note_event",
    "reset_data_plane_counters",
]

#: Completeness magic, written only after the manifest and every array
#: payload landed — a segment without it is a torn write from a crashed
#: publisher and must be republished, never trusted.
_MAGIC = b"RPSHM001"
#: Byte offset of the manifest-length word (directly after the magic).
_LEN_OFFSET = len(_MAGIC)
_HEADER_BYTES = _LEN_OFFSET + 8
#: Array payloads start on cache-line boundaries.
_ALIGN = 64

#: Process-wide data-plane event counters (monotonic; see
#: :func:`data_plane_snapshot`).  Keys are created on first use so the
#: snapshot only carries events that actually happened.
_COUNTERS: Dict[str, int] = {}
_COUNTERS_LOCK = threading.Lock()


def note_event(name: str, count: int = 1) -> None:
    """Record ``count`` occurrences of a data-plane event."""
    with _COUNTERS_LOCK:
        _COUNTERS[name] = _COUNTERS.get(name, 0) + int(count)


def reset_data_plane_counters() -> None:
    """Zero every data-plane counter (tests and benchmark harnesses)."""
    with _COUNTERS_LOCK:
        _COUNTERS.clear()


def data_plane_snapshot() -> Dict[str, int]:
    """Current cumulative data-plane counters of this process.

    Merges the shared-memory store events with the process-wide encoding
    cache counters, so one snapshot answers both "how many segments moved"
    and "how many times was a dataset (re-)packed".
    """
    from repro.core.encoding_cache import ENCODING_CACHE

    with _COUNTERS_LOCK:
        snap = dict(_COUNTERS)
    snap["encoding_cache_hits"] = int(ENCODING_CACHE.hits)
    snap["encoding_cache_misses"] = int(ENCODING_CACHE.misses)
    snap["encoding_cache_shm_hits"] = int(ENCODING_CACHE.shm_hits)
    return snap


def data_plane_delta(
    before: Dict[str, int], after: Dict[str, int] | None = None
) -> Dict[str, int]:
    """Counter increments between two snapshots (zero entries dropped)."""
    if after is None:
        after = data_plane_snapshot()
    delta = {}
    for name, value in after.items():
        change = int(value) - int(before.get(name, 0))
        if change:
            delta[name] = change
    return delta


def _key_text(key: object) -> str:
    """Canonical text form of a publish key (tuples of str/int)."""
    return repr(tuple(key) if isinstance(key, (tuple, list)) else (key,))


def _segment_name(key_text: str, prefix: str) -> str:
    """Content-addressed segment name (short: macOS caps names at 31)."""
    return prefix + hashlib.sha1(key_text.encode()).hexdigest()[:24]


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _attach_untracked(name: str):
    """Attach an existing segment without registering it for cleanup.

    The resource tracker is one process shared by the whole process tree,
    and Python < 3.13 offers no ``track=False`` — attaching registers the
    name, and *unregistering* after the fact would delete the publisher's
    own registration (the tracker's cache is a set).  Suppressing the
    registration call during attach keeps the tracker's view exactly
    "publisher owns it": readers never touch it.

    Returns ``None`` when no segment of that name exists.
    """
    from multiprocessing import resource_tracker
    from multiprocessing.shared_memory import SharedMemory

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return None
    finally:
        resource_tracker.register = original


def _parse_manifest(shm, key_text: str | None):
    """Parse and check a segment header; returns the manifest or ``None``.

    ``None`` marks a torn segment: missing magic, truncated length or
    unparseable manifest — exactly what a publisher SIGKILLed mid-write
    leaves behind.
    """
    buf = shm.buf
    if buf is None or len(buf) < _HEADER_BYTES:
        return None
    if bytes(buf[0:_LEN_OFFSET]) != _MAGIC:
        return None
    (length,) = struct.unpack("<Q", bytes(buf[_LEN_OFFSET:_HEADER_BYTES]))
    if length <= 0 or _HEADER_BYTES + length > len(buf):
        return None
    try:
        manifest = json.loads(bytes(buf[_HEADER_BYTES : _HEADER_BYTES + length]))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if key_text is not None and manifest.get("key") != key_text:
        return None
    return manifest


def _track(shm) -> None:
    """Register an adopted segment with the resource tracker (owner side)."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register(shm._name, "shared_memory")
    except Exception:
        pass


def _quiet_close(shm) -> None:
    """Close a segment without destructor noise.

    Numpy views exported from the buffer pin the mapping, making
    ``close()`` raise ``BufferError``; in that case the destructor is
    disarmed (the mapping dies with the process) so interpreter teardown
    stays silent.
    """
    import os

    try:
        shm.close()
    except BufferError:
        shm._buf = None
        shm._mmap = None
        fd = getattr(shm, "_fd", -1)
        if fd >= 0:
            try:
                os.close(fd)
            except OSError:
                pass
            shm._fd = -1
    except Exception:
        pass


class _OwnedSegment:
    """A segment this process created (or adopted) and will unlink."""

    __slots__ = ("shm", "key_text", "refs")

    def __init__(self, shm, key_text: str) -> None:
        self.shm = shm
        self.key_text = key_text
        self.refs = 0


class StoreSession:
    """A refcount scope over store segments.

    Every distributed runner (or the long-lived warm fleet) opens one
    session; publishes and loads retain the touched segments into it, and
    :meth:`close` releases them — the store unlinks a segment when the
    last session referencing it closes.
    """

    def __init__(self, store: "SharedEncodingStore") -> None:
        self._store = store
        self._names: set[str] = set()
        self.closed = False

    def _retain(self, name: str) -> None:
        if self.closed or name in self._names:
            return
        self._names.add(name)
        self._store._retain(name)

    def close(self) -> None:
        """Release every retained segment (idempotent)."""
        if self.closed:
            return
        self.closed = True
        names, self._names = self._names, set()
        self._store._release(names)

    def __enter__(self) -> "StoreSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SharedEncodingStore:
    """Publish/attach named arrays through POSIX shared memory.

    One segment per key, laid out as::

        [magic 8B] [manifest-length 8B] [manifest JSON] [array payloads]

    with the magic written last so an interrupted publish is detectable.
    The manifest records each array's dtype/shape/offset plus arbitrary
    JSON metadata (codec name, sample counts, SNP names).
    """

    def __init__(self, prefix: str = "rp") -> None:
        self.prefix = prefix
        self._owned: Dict[str, _OwnedSegment] = {}
        self._attached: Dict[str, object] = {}
        self._lock = threading.RLock()

    # -- sessions / refcounting ---------------------------------------------
    def session(self) -> StoreSession:
        """Open a new refcount scope."""
        return StoreSession(self)

    def _retain(self, name: str) -> None:
        with self._lock:
            owned = self._owned.get(name)
            if owned is not None:
                owned.refs += 1

    def _release(self, names: Iterable[str]) -> None:
        with self._lock:
            for name in names:
                owned = self._owned.get(name)
                if owned is None:
                    continue
                owned.refs -= 1
                if owned.refs <= 0:
                    self._unlink_owned(name)

    def _unlink_owned(self, name: str) -> None:
        owned = self._owned.pop(name, None)
        if owned is None:
            return
        try:
            owned.shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:
            pass
        _quiet_close(owned.shm)
        note_event("segments_unlinked")

    # -- publish --------------------------------------------------------------
    def publish(
        self,
        key: object,
        arrays: Dict[str, np.ndarray],
        meta: Optional[Dict[str, object]] = None,
        session: StoreSession | None = None,
    ) -> str:
        """Publish named arrays under ``key``; returns the segment name.

        Publishing content that is already live is a no-op (the segment is
        reused); a stale incomplete segment with the same name is unlinked
        and republished.
        """
        key_text = _key_text(key)
        name = _segment_name(key_text, self.prefix)
        with self._lock:
            if name in self._owned or name in self._attached:
                note_event("segments_reused")
                if session is not None:
                    session._retain(name)
                return name

            manifest, total_size, offsets = self._layout(key_text, arrays, meta)
            shm = self._create_segment(name, key_text, total_size)
            if shm is None:
                # A valid complete segment of identical content already
                # exists (crashed prior run, or a concurrent publisher):
                # adopt it instead of rewriting identical bytes.
                shm = self._adopt_or_replace(name, key_text, total_size)
            if isinstance(shm, _OwnedSegment):
                owned = shm
            else:
                self._write_segment(shm, manifest, arrays, offsets)
                owned = _OwnedSegment(shm, key_text)
                note_event("segments_published")
            self._owned[name] = owned
            if session is not None:
                session._retain(name)
            return name

    def _layout(self, key_text, arrays, meta):
        manifest_entries = []
        offset = 0  # filled after the manifest size is known
        payload = []
        for aname, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            payload.append((aname, arr))
        # Owner provenance for the orphan reaper: a segment whose
        # publishing process is gone (SIGKILL skips every atexit hook) is
        # reclaimable; one with a live owner never is.  Not part of the
        # content address — adoption only compares the key.  Computed once
        # so the fixed-point iteration below sees a stable length.
        owner = {"pid": os.getpid(), "created": round(time.time(), 3)}
        # Two passes: manifest length depends on the offsets, whose base
        # depends on the manifest length.  Iterate to a fixed point (the
        # JSON length stabilises after at most a couple of rounds because
        # offsets only grow with digit count).
        base = _HEADER_BYTES
        for _ in range(4):
            manifest_entries = []
            offset = 0
            for aname, arr in payload:
                manifest_entries.append(
                    {
                        "name": aname,
                        "dtype": arr.dtype.str,
                        "shape": list(arr.shape),
                        "offset": offset,  # relative to the payload base
                        "nbytes": int(arr.nbytes),
                    }
                )
                offset = _align(offset + arr.nbytes)
            manifest = {
                "key": key_text,
                "arrays": manifest_entries,
                "meta": meta or {},
                "owner": owner,
            }
            manifest_bytes = json.dumps(manifest, sort_keys=True).encode()
            new_base = _align(_HEADER_BYTES + len(manifest_bytes))
            if new_base == base:
                break
            base = new_base
        total = max(base + offset, base + 1)
        return (manifest_bytes, base, dict(arrays)), total, {
            e["name"]: base + e["offset"] for e in manifest_entries
        }

    def _create_segment(self, name, key_text, size):
        from multiprocessing.shared_memory import SharedMemory

        try:
            return SharedMemory(name=name, create=True, size=size)
        except FileExistsError:
            return None

    def _adopt_or_replace(self, name, key_text, size):
        """Handle a name collision: adopt a valid segment, replace a torn one."""
        existing = _attach_untracked(name)
        if existing is not None:
            # Either way this process takes ownership of the name (adopt
            # the valid content, or unlink the torn leftovers), so the
            # tracker gets the registration the suppressed attach skipped.
            _track(existing)
            if self._validate(existing, key_text) is not None:
                note_event("segments_reused")
                return _OwnedSegment(existing, key_text)
            # Torn write from a crashed publisher: never trust it.
            try:
                existing.unlink()
            except FileNotFoundError:
                pass
            _quiet_close(existing)
            note_event("segments_stale_republished")
        shm = self._create_segment(name, key_text, size)
        if shm is None:
            raise RuntimeError(
                f"shared-memory segment {name!r} reappeared while republishing"
            )
        return shm

    def _write_segment(self, shm, manifest, arrays_unused, offsets):
        manifest_bytes, base, arrays = manifest
        buf = shm.buf
        buf[_LEN_OFFSET:_HEADER_BYTES] = struct.pack("<Q", len(manifest_bytes))
        buf[_HEADER_BYTES : _HEADER_BYTES + len(manifest_bytes)] = manifest_bytes
        for aname, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            if arr.nbytes == 0:
                continue
            dest = np.frombuffer(
                buf, dtype=arr.dtype, count=arr.size, offset=offsets[aname]
            ).reshape(arr.shape)
            np.copyto(dest, arr)
        # Completeness magic goes in last: readers that see it know the
        # manifest and every payload byte landed.
        buf[0:_LEN_OFFSET] = _MAGIC

    def _validate(self, shm, key_text: str | None):
        """Parse and check a segment; returns the manifest or ``None``."""
        return _parse_manifest(shm, key_text)

    # -- attach ---------------------------------------------------------------
    def load(
        self,
        key: object,
        session: StoreSession | None = None,
    ) -> Optional[Tuple[Dict[str, np.ndarray], Dict[str, object]]]:
        """Attach the segment for ``key`` as read-only array views.

        Returns ``(arrays, meta)`` or ``None`` when no valid segment
        exists.  The views alias shared memory directly — zero copies.
        """
        key_text = _key_text(key)
        name = _segment_name(key_text, self.prefix)
        with self._lock:
            owned = self._owned.get(name)
            if owned is not None:
                shm = owned.shm
            elif name in self._attached:
                shm = self._attached[name]
            else:
                shm = _attach_untracked(name)
                if shm is None:
                    return None
                self._attached[name] = shm
                note_event("segments_attached")
            manifest = self._validate(shm, key_text)
            if manifest is None:
                return None
            if session is not None:
                session._retain(name)
            (length,) = struct.unpack(
                "<Q", bytes(shm.buf[_LEN_OFFSET:_HEADER_BYTES])
            )
            base = _align(_HEADER_BYTES + int(length))
            arrays: Dict[str, np.ndarray] = {}
            for entry in manifest["arrays"]:
                dtype = np.dtype(entry["dtype"])
                shape = tuple(entry["shape"])
                count = int(np.prod(shape, dtype=np.int64)) if shape else 1
                if count == 0:
                    view = np.empty(shape, dtype=dtype)
                else:
                    view = np.frombuffer(
                        shm.buf,
                        dtype=dtype,
                        count=count,
                        offset=base + int(entry["offset"]),
                    ).reshape(shape)
                view.flags.writeable = False
                arrays[entry["name"]] = view
            return arrays, dict(manifest.get("meta", {}))

    # -- lifecycle -------------------------------------------------------------
    def owned_names(self) -> list[str]:
        """Names of segments this process currently owns (tests)."""
        with self._lock:
            return sorted(self._owned)

    def close_all(self) -> None:
        """Unlink every owned segment and close every attachment."""
        with self._lock:
            for name in list(self._owned):
                self._unlink_owned(name)
            for shm in self._attached.values():
                _quiet_close(shm)
            self._attached.clear()


# -- the process-wide store singleton ----------------------------------------
_STORE: SharedEncodingStore | None = None
_STORE_LOCK = threading.Lock()


def shared_store() -> SharedEncodingStore:
    """The process-wide :class:`SharedEncodingStore` (created on demand).

    The first store in a *parent* process also sweeps orphaned segments:
    a run killed with SIGKILL skips every ``atexit`` hook and leaves its
    ``/dev/shm`` entries behind, so the next run reclaims whatever a dead
    owner left (live owners' segments are never touched).
    """
    global _STORE
    import multiprocessing

    sweep = False
    with _STORE_LOCK:
        if _STORE is None:
            _STORE = SharedEncodingStore()
            atexit.register(_STORE.close_all)
            sweep = multiprocessing.parent_process() is None
        store = _STORE
    if sweep:
        try:
            reap_orphans()
        except Exception:
            pass
    return store


# -- orphan inventory and reaping ---------------------------------------------

#: Where POSIX shared memory is mounted (Linux).  On platforms without it
#: the scanner reports nothing — segments there are reclaimed by the OS
#: differently and the reaper degrades to a no-op.
_SHM_DIR = "/dev/shm"


def _pid_alive(pid: int) -> bool:
    """Whether a process with ``pid`` exists (signal-0 probe)."""
    try:
        os.kill(int(pid), 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


@dataclass(frozen=True)
class SegmentInfo:
    """One shared-memory segment as seen by :func:`scan_segments`."""

    name: str
    size: int
    #: Complete header (magic + parseable manifest)?  ``False`` marks a
    #: torn write from a publisher that died mid-publish.
    valid: bool
    #: ``"dataset"`` / ``"encoding"`` (``None`` when torn).
    kind: str | None = None
    key: str | None = None
    owner_pid: int | None = None
    #: ``None`` when the segment predates owner provenance (or is torn).
    owner_alive: bool | None = None
    created: float | None = None

    @property
    def orphan(self) -> bool:
        """Reclaimable: torn, or owned by a process that no longer exists."""
        return (not self.valid) or self.owner_alive is False

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "size": int(self.size),
            "valid": bool(self.valid),
            "kind": self.kind,
            "key": self.key,
            "owner_pid": self.owner_pid,
            "owner_alive": self.owner_alive,
            "created": self.created,
            "orphan": self.orphan,
        }


def scan_segments(prefix: str = "rp") -> List[SegmentInfo]:
    """Inventory every repro shared-memory segment visible on this host.

    Read-only: segments are attached, inspected and detached — nothing is
    unlinked.  Returns an empty list on platforms without a ``/dev/shm``
    listing.
    """
    if not os.path.isdir(_SHM_DIR):
        return []
    hex_digits = set("0123456789abcdef")
    infos: List[SegmentInfo] = []
    for entry in sorted(os.listdir(_SHM_DIR)):
        suffix = entry[len(prefix) :]
        if not entry.startswith(prefix) or len(suffix) != 24:
            continue
        if not set(suffix) <= hex_digits:
            continue
        try:
            size = os.path.getsize(os.path.join(_SHM_DIR, entry))
        except OSError:
            size = 0
        shm = _attach_untracked(entry)
        if shm is None:
            continue
        try:
            manifest = _parse_manifest(shm, None)
            if manifest is None:
                infos.append(SegmentInfo(name=entry, size=size, valid=False))
                continue
            key = manifest.get("key")
            owner = manifest.get("owner") or {}
            pid = owner.get("pid")
            infos.append(
                SegmentInfo(
                    name=entry,
                    size=size,
                    valid=True,
                    kind=(
                        "dataset"
                        if isinstance(key, str) and key.startswith("('dataset'")
                        else "encoding"
                    ),
                    key=key,
                    owner_pid=None if pid is None else int(pid),
                    owner_alive=None if pid is None else _pid_alive(int(pid)),
                    created=owner.get("created"),
                )
            )
        finally:
            _quiet_close(shm)
    return infos


def reap_orphans(
    prefix: str = "rp", dry_run: bool = False, force: bool = False
) -> List[SegmentInfo]:
    """Unlink orphaned segments; returns what was (or would be) reclaimed.

    A segment is an orphan when its header is torn or its owner process is
    dead.  Segments owned or attached by *this* process are never touched,
    nor are segments with a live owner — a sweep during someone else's run
    reclaims only garbage.  ``force=True`` widens the net to segments with
    unknown provenance (published before owner stamping existed);
    ``dry_run=True`` reports without unlinking.
    """
    store = _STORE
    protected: set[str] = set()
    if store is not None:
        with store._lock:
            protected = set(store._owned) | set(store._attached)
    reclaimed: List[SegmentInfo] = []
    for info in scan_segments(prefix):
        if info.name in protected:
            continue
        if info.owner_pid == os.getpid():
            continue
        eligible = info.orphan or (force and info.owner_alive is not True)
        if not eligible:
            continue
        if not dry_run:
            shm = _attach_untracked(info.name)
            if shm is None:
                continue
            # The attach above never registered with the resource tracker,
            # so the unlink must not unregister either (the tracker daemon
            # logs a KeyError for unknown names).
            from multiprocessing import resource_tracker

            original = resource_tracker.unregister
            resource_tracker.unregister = lambda *args, **kwargs: None
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):
                pass
            finally:
                resource_tracker.unregister = original
            _quiet_close(shm)
            note_event("segments_reaped")
        reclaimed.append(info)
    return reclaimed


# -- dataset transport --------------------------------------------------------

@dataclass(frozen=True)
class DatasetHandle:
    """What a shard task ships instead of the dataset: a content address.

    Workers resolve the handle against shared memory
    (:func:`hydrate_dataset`); the arrays never cross a pipe.
    """

    digest: str
    n_snps: int
    n_samples: int

    def content_digest(self) -> str:
        """Mirror of :meth:`GenotypeDataset.content_digest` (fingerprints)."""
        return self.digest


def _dataset_key(digest: str) -> tuple:
    return ("dataset", digest)


def _tear_segment(key: object) -> None:
    """Pre-write a torn segment under ``key`` (the torn-fault payload).

    Creates the content-addressed segment with a zeroed header — no
    completeness magic, exactly what a publisher killed mid-write leaves
    behind — so the real publish that follows must take the
    detect-and-replace path.  Skipped when the segment is already live in
    this process (tearing it would corrupt a real run).
    """
    store = shared_store()
    key_text = _key_text(key)
    name = _segment_name(key_text, store.prefix)
    with store._lock:
        if name in store._owned or name in store._attached:
            return
    from multiprocessing.shared_memory import SharedMemory

    try:
        shm = SharedMemory(name=name, create=True, size=_HEADER_BYTES + _ALIGN)
    except (FileExistsError, OSError):
        return
    shm.buf[:_HEADER_BYTES] = b"\x00" * _HEADER_BYTES
    _quiet_close(shm)
    note_event("segments_torn_injected")


def publish_dataset(dataset, session: StoreSession | None = None) -> DatasetHandle:
    """Publish a :class:`GenotypeDataset` into shared memory.

    Returns the :class:`DatasetHandle` shard tasks ship in place of the
    arrays.  Publishing the same content twice reuses the live segment.
    """
    from repro.faults import fire
    from repro.telemetry import span_or_null

    digest = dataset.content_digest()
    store = shared_store()
    fire("shm.publish", tear=lambda: _tear_segment(_dataset_key(digest)))
    with span_or_null("shm.publish", kind="dataset", digest=digest[:12]):
        store.publish(
            _dataset_key(digest),
            {"genotypes": dataset.genotypes, "phenotypes": dataset.phenotypes},
            meta={
                "snp_names": list(dataset.snp_names),
                "digest": digest,
            },
            session=session,
        )
    note_event("dataset_published")
    return DatasetHandle(
        digest=digest, n_snps=dataset.n_snps, n_samples=dataset.n_samples
    )


#: Per-process hydrated datasets (workers resolve each digest once).
_DATASET_CACHE: Dict[str, object] = {}


def hydrate_dataset(handle: DatasetHandle):
    """Resolve a :class:`DatasetHandle` to a dataset backed by shared memory.

    The first touch per process attaches the segment and builds a
    :class:`GenotypeDataset` over read-only views (the content digest is
    seeded from the handle, skipping the re-hash); later touches hit the
    per-process cache.
    """
    from repro.telemetry import span_or_null

    cached = _DATASET_CACHE.get(handle.digest)
    if cached is not None:
        note_event("dataset_cache_hits")
        return cached
    with span_or_null("shm.attach", kind="dataset", digest=handle.digest[:12]):
        loaded = shared_store().load(_dataset_key(handle.digest))
    if loaded is None:
        raise RuntimeError(
            f"shared dataset segment for digest {handle.digest[:12]} is "
            "missing — the publishing coordinator exited or never published"
        )
    arrays, meta = loaded
    from repro.datasets.dataset import GenotypeDataset

    dataset = GenotypeDataset(
        genotypes=arrays["genotypes"],
        phenotypes=arrays["phenotypes"],
        snp_names=meta.get("snp_names"),
    )
    dataset._content_digest = handle.digest
    _DATASET_CACHE[handle.digest] = dataset
    note_event("dataset_shm_attached")
    return dataset


# -- encoding codecs ----------------------------------------------------------
#
# Prepared encodings are plain dataclasses of ndarrays; each shareable type
# has a codec turning it into (arrays, meta) and back.  GPU layouts carry
# device-side state and are deliberately not shareable — workers rebuild
# them locally from the shared dataset.

def _encode_encoding(encoded) -> Optional[Tuple[str, Dict, Dict]]:
    tname = type(encoded).__name__
    if tname == "BinarizedDataset":
        return (
            "binarized",
            {"planes": encoded.planes, "phenotype_words": encoded.phenotype_words},
            {"n_samples": int(encoded.n_samples)},
        )
    if tname == "PhenotypeSplitDataset":
        return ("phenotype-split", *_split_payload(encoded))
    if tname == "_BlockedEncoding":
        arrays, meta = _split_payload(encoded.split)
        meta = dict(meta)
        meta["block_snps"] = int(encoded.block_snps)
        meta["block_samples"] = int(encoded.block_samples)
        return ("split-blocked", arrays, meta)
    return None


def _split_payload(split) -> Tuple[Dict, Dict]:
    return (
        {
            "control_planes": split.control_planes,
            "case_planes": split.case_planes,
            "control_order": np.asarray(split.control_order, dtype=np.int64),
            "case_order": np.asarray(split.case_order, dtype=np.int64),
        },
        {"n_controls": int(split.n_controls), "n_cases": int(split.n_cases)},
    )


def _decode_split(arrays, meta):
    from repro.datasets.binarization import PhenotypeSplitDataset

    return PhenotypeSplitDataset(
        control_planes=arrays["control_planes"],
        case_planes=arrays["case_planes"],
        n_controls=int(meta["n_controls"]),
        n_cases=int(meta["n_cases"]),
        control_order=arrays["control_order"],
        case_order=arrays["case_order"],
    )


def _decode_encoding(codec: str, arrays, meta):
    if codec == "binarized":
        from repro.datasets.binarization import BinarizedDataset

        return BinarizedDataset(
            planes=arrays["planes"],
            phenotype_words=arrays["phenotype_words"],
            n_samples=int(meta["n_samples"]),
        )
    if codec == "phenotype-split":
        return _decode_split(arrays, meta)
    if codec == "split-blocked":
        from repro.core.approaches.cpu_blocked import _BlockedEncoding

        return _BlockedEncoding(
            split=_decode_split(arrays, meta),
            block_snps=int(meta["block_snps"]),
            block_samples=int(meta["block_samples"]),
        )
    raise ValueError(f"unknown encoding codec {codec!r}")


def publish_encoding(key: tuple, encoded, session: StoreSession | None = None) -> bool:
    """Publish a prepared encoding under its encoding-cache key.

    Returns ``False`` (and publishes nothing) for encoding types without a
    codec — GPU layouts, duck-typed approaches — which workers rebuild
    locally from the shared dataset instead.
    """
    from repro.faults import fire
    from repro.telemetry import span_or_null

    payload = _encode_encoding(encoded)
    if payload is None:
        return False
    codec, arrays, meta = payload
    meta = dict(meta)
    meta["codec"] = codec
    fire("shm.publish", tear=lambda: _tear_segment(key))
    with span_or_null("shm.publish", kind="encoding", codec=codec):
        shared_store().publish(key, arrays, meta=meta, session=session)
    note_event("encoding_published")
    return True


def load_encoding(key: tuple):
    """Attach a published encoding by cache key (``None`` when absent).

    This is the encoding cache's shared-memory tier
    (:meth:`EncodingCache.attach_shared_tier`): a local cache miss resolves
    against the store before falling back to re-packing the dataset.
    """
    from repro.telemetry import span_or_null

    with span_or_null("shm.attach", kind="encoding"):
        loaded = shared_store().load(key)
        if loaded is None:
            return None
        arrays, meta = loaded
        codec = meta.pop("codec", None)
        if codec is None:
            return None
        encoded = _decode_encoding(codec, arrays, meta)
    note_event("encoding_shm_attached")
    return encoded
