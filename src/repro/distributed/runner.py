"""Spawn-safe worker processes executing shards through the engine.

A worker process is initialised exactly once per pool (dataset + detector
construction, device-lane encoding) and then evaluates any number of shards:
each task is just ``(shard_id, start, stop)``, the worker wraps the run's
candidate source in a :class:`~repro.distributed.shards.ShardView` and
sweeps it through the ordinary in-process
:class:`~repro.engine.executor.HeterogeneousExecutor` — device lanes,
scheduling policies and the streaming top-k reduction behave exactly as in
a single-process search.  What crosses the process boundary is small and
picklable: the one-time :class:`WorkerPayload` downstream, and a
:class:`ShardOutcome` (top-k rows, item/op counts, optional per-SNP
screening minima) upstream per shard.

Everything here is **spawn-safe**: the worker entry points are module-level
functions resolved by import path (no closures, no lambdas), so the pool
works identically under the ``spawn`` start method (macOS/Windows default,
and the only start method that is safe with threads in the parent).
``workers=1`` bypasses the pool entirely and runs the same code inline —
zero process overhead, identical results, same checkpoint ledger.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

from repro.distributed.merge import (
    interaction_to_row,
    minima_to_payload,
    snp_minima_accumulator,
)
from repro.distributed.shards import Shard, ShardView

__all__ = ["WorkerPayload", "ShardOutcome", "ProcessRunner"]


@dataclass
class WorkerPayload:
    """Everything a worker process needs, shipped once at pool start.

    ``approach`` must be a registry *name* (a pre-built approach instance
    carries per-run counter state that must not be shared across
    processes); ``objective`` and ``schedule`` may be names or picklable
    instances.
    """

    dataset: object  # GenotypeDataset (picklable dataclass)
    source: object  # CandidateSource
    approach: str
    objective: object = "k2"
    n_threads: int = 1
    chunk_size: int | str = 2048  # an int, or "auto" for the chunk autotuner
    top_k: int = 10
    validate: bool = False
    devices: str | None = None
    schedule: object = "dynamic"
    collect_minima: bool = False
    approach_kwargs: Dict[str, object] = field(default_factory=dict)


@dataclass
class ShardOutcome:
    """One shard's partial result, streamed back to the coordinator."""

    shard_id: int
    rows: List[list]
    n_items: int
    elapsed_seconds: float
    device_stats: Dict[str, Dict[str, object]] = field(default_factory=dict)
    op_counts: Dict[str, int] = field(default_factory=dict)
    bytes_loaded: int = 0
    bytes_stored: int = 0
    #: Per-SNP best-participating-score payload (``None`` = SNP unseen).
    snp_minima: List[float | None] | None = None


class _WorkerContext:
    """Per-process execution state: one detector reused across shards.

    The detector (and through it the per-lane dataset encodings) is reused
    across every shard the context evaluates, so per-shard cost is pure
    sweep work after the first shard warms the encodings.  Spawned pool
    workers hold one context in the module global below; the inline
    (``workers=1``) path builds a *local* context instead, so concurrent
    inline runs in one process (e.g. from two threads) cannot clobber each
    other's state.
    """

    def __init__(self, payload: WorkerPayload) -> None:
        from repro.core.detector import EpistasisDetector

        self.payload = payload
        self.detector = EpistasisDetector(
            approach=payload.approach,
            objective=payload.objective,
            order=payload.source.order,
            n_workers=payload.n_threads,
            chunk_size=payload.chunk_size,
            top_k=payload.top_k,
            validate=payload.validate,
            devices=payload.devices,
            schedule=payload.schedule,
            **payload.approach_kwargs,
        )

    def run_shard(self, task: tuple[int, int, int]) -> ShardOutcome:
        """Evaluate one shard."""
        shard_id, start, stop = task
        payload = self.payload
        dataset = payload.dataset
        view = ShardView(payload.source, start, stop)

        observe = finalize_minima = None
        if payload.collect_minima:
            observe, finalize_minima = snp_minima_accumulator(dataset.n_snps)

        # Operation counters accumulate on the per-process prototype across
        # shards; snapshot before the sweep so the outcome carries this
        # shard's delta only (the coordinator sums deltas across shards and
        # processes).
        counter = self.detector.approach.counter
        ops_before = dict(counter.as_dict())
        loaded_before = counter.bytes_loaded
        stored_before = counter.bytes_stored

        started = time.perf_counter()
        result = self.detector.detect_candidates(dataset, view, observe=observe)
        elapsed = time.perf_counter() - started

        ops_after = counter.as_dict()
        op_delta = {
            mnemonic: int(count) - ops_before.get(mnemonic, 0)
            for mnemonic, count in ops_after.items()
            if int(count) - ops_before.get(mnemonic, 0)
        }

        shard_minima: List[float | None] | None = None
        if finalize_minima is not None:
            shard_minima = minima_to_payload(finalize_minima())

        return ShardOutcome(
            shard_id=shard_id,
            rows=[interaction_to_row(inter) for inter in result.top],
            n_items=view.total,
            elapsed_seconds=elapsed,
            device_stats={
                label: dict(entry)
                for label, entry in result.stats.extra.get("devices", {}).items()
            },
            op_counts=op_delta,
            bytes_loaded=counter.bytes_loaded - loaded_before,
            bytes_stored=counter.bytes_stored - stored_before,
            snp_minima=shard_minima,
        )


#: Per-process worker context, set once by :func:`_init_worker` (spawned
#: pool workers only — the inline path uses a local context).
_WORKER: _WorkerContext | None = None


def _init_worker(payload: WorkerPayload) -> None:
    """Pool initializer: build the per-process worker context once."""
    global _WORKER
    _WORKER = _WorkerContext(payload)


def _run_shard(task: tuple[int, int, int]) -> ShardOutcome:
    """Evaluate one shard in the current (spawned) worker process."""
    if _WORKER is None:
        raise RuntimeError("worker process was not initialised")
    return _WORKER.run_shard(task)


class ProcessRunner:
    """Executes shard tasks across OS processes (or inline for one worker).

    Parameters
    ----------
    workers:
        Worker process count.  ``1`` runs every shard inline in the calling
        process through the identical code path (no pool, no pickling
        overhead) — useful for checkpointed single-process runs and tests.
    payload:
        The one-time per-process initialisation data.
    mp_context:
        ``multiprocessing`` start method (default ``"spawn"``: safe with
        threads in the parent and identical across platforms).
    """

    def __init__(
        self,
        workers: int,
        payload: WorkerPayload,
        mp_context: str = "spawn",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers
        self.payload = payload
        self.mp_context = mp_context

    def map_shards(self, shards: Sequence[Shard]) -> Iterator[ShardOutcome]:
        """Yield shard outcomes as they complete (order is not guaranteed).

        The caller checkpoints each outcome as it arrives; closing the
        iterator early (cancellation) tears the pool down without waiting
        for unclaimed shards.
        """
        tasks = [(s.shard_id, s.start, s.stop) for s in shards]
        if not tasks:
            return
        if self.workers == 1:
            context = _WorkerContext(self.payload)
            for task in tasks:
                yield context.run_shard(task)
            return

        context = multiprocessing.get_context(self.mp_context)
        pool = ProcessPoolExecutor(
            max_workers=min(self.workers, len(tasks)),
            mp_context=context,
            initializer=_init_worker,
            initargs=(self.payload,),
        )
        try:
            pending = {pool.submit(_run_shard, task) for task in tasks}
            try:
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        yield future.result()
            except BrokenProcessPool as exc:
                raise RuntimeError(
                    "a distributed worker process died mid-run (killed or "
                    "crashed); completed shards are preserved in the "
                    "checkpoint ledger — rerun with resume to continue"
                ) from exc
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
