"""Spawn-safe worker processes executing shards through the engine.

A worker process hydrates its execution state lazily from the first task
batch it receives: the :class:`WorkerPayload` either carries the dataset
inline (pickled — the legacy data plane) or, with shared memory enabled, a
tiny :class:`~repro.distributed.shm.DatasetHandle` the worker resolves
against the :class:`~repro.distributed.shm.SharedEncodingStore` — the
arrays never cross the pipe.  The per-process state (detector, encodings,
hydrated dataset) is cached across batches *and across runs* keyed by the
payload fingerprint, so a warm fleet (:mod:`repro.distributed.fleet`)
serving a second ``detect()`` call or the next pipeline stage pays zero
re-initialisation.

Shard handoff is **batched**: the coordinator groups shards into a handful
of futures per worker instead of one future per shard, cutting the
submit/collect round-trips (and per-task payload pickles) by an order of
magnitude for the default 32-shard plan.

Everything here is **spawn-safe**: the worker entry points are module-level
functions resolved by import path (no closures, no lambdas), so the pool
works identically under the ``spawn`` start method (macOS/Windows default,
and the only start method that is safe with threads in the parent).
``workers=1`` bypasses the pool entirely and runs the same code inline —
zero process overhead, identical results, same checkpoint ledger.

Fault tolerance: a worker dying mid-shard breaks the whole
``ProcessPoolExecutor``.  :meth:`ProcessRunner.map_shards` recovers under
the run's :class:`~repro.distributed.resilience.RetryPolicy`: failed or
hung (heartbeat-watchdog-detected) shards are re-dispatched with bounded
exponential backoff, repeated pool breaks climb the degradation ladder
(respawned fleet → fresh dedicated pool → inline), and a shard that
exhausts its retry budget is quarantined and finished inline in the
coordinator — a run always completes, bit-identically, without manual
intervention.  Deterministic faults for the chaos suite are injected
through :mod:`repro.faults` (the plan rides the payload, so even warm
fleets spawned long before the plan existed honour it).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

import numpy as np

from repro.distributed.merge import (
    interaction_to_row,
    minima_to_payload,
    snp_minima_accumulator,
)
from repro.distributed.resilience import (
    DEFAULT_RETRY_POLICY,
    ResilienceLog,
    RetryPolicy,
)
from repro.distributed.shards import Shard, ShardView
from repro.distributed.shm import (
    DatasetHandle,
    data_plane_delta,
    data_plane_snapshot,
    hydrate_dataset,
    load_encoding,
    note_event,
)
from repro.faults import fire, install_plan

__all__ = ["WorkerPayload", "ShardOutcome", "ProcessRunner"]


@dataclass
class WorkerPayload:
    """Everything a worker process needs to hydrate its execution state.

    ``dataset`` is either a ``GenotypeDataset`` (pickled inline with every
    batch — the fallback data plane) or a
    :class:`~repro.distributed.shm.DatasetHandle` resolved against shared
    memory on first touch.  ``approach`` must be a registry *name* (a
    pre-built approach instance carries per-run counter state that must
    not be shared across processes); ``objective`` and ``schedule`` may be
    names or picklable instances.
    """

    dataset: object  # GenotypeDataset or DatasetHandle
    source: object  # CandidateSource
    approach: str
    objective: object = "k2"
    n_threads: int = 1
    chunk_size: int | str = 2048  # an int, or "auto" for the chunk autotuner
    top_k: int = 10
    validate: bool = False
    devices: str | None = None
    schedule: object = "dynamic"
    collect_minima: bool = False
    fused: str | None = None
    approach_kwargs: Dict[str, object] = field(default_factory=dict)
    #: Cross-process telemetry propagation
    #: (:class:`~repro.telemetry.TraceContext` or ``None``).  Deliberately
    #: excluded from :meth:`fingerprint`: the run identity changes per run
    #: while the hydrated execution state does not, and a warm worker must
    #: keep its context cache hits across runs.
    telemetry: object = None
    #: Armed fault-injection plan (:class:`~repro.faults.FaultPlan` or
    #: ``None``).  Ships with every batch — the only channel that reaches
    #: warm-fleet workers spawned before the plan existed — and is likewise
    #: excluded from :meth:`fingerprint` (injection never changes what a
    #: context computes, only whether the attempt survives).
    faults: object = None

    def fingerprint(self) -> str:
        """Content fingerprint keying the per-process context cache.

        Two payloads with the same fingerprint hydrate to identical
        execution state, so a warm worker reuses its detector (and every
        encoding behind it) across runs.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        if isinstance(self.dataset, DatasetHandle):
            ds = ("handle", self.dataset.digest)
        else:
            ds = ("inline", self.dataset.content_digest())
        blob = pickle.dumps(
            (
                ds,
                self.source,
                self.approach,
                self.objective,
                self.n_threads,
                self.chunk_size,
                self.top_k,
                self.validate,
                self.devices,
                self.schedule,
                self.collect_minima,
                self.fused,
                sorted(self.approach_kwargs.items()),
            ),
            protocol=4,
        )
        digest = hashlib.sha1(blob).hexdigest()
        self._fingerprint = digest
        return digest


@dataclass
class ShardOutcome:
    """One shard's partial result, streamed back to the coordinator."""

    shard_id: int
    rows: List[list]
    n_items: int
    elapsed_seconds: float
    device_stats: Dict[str, Dict[str, object]] = field(default_factory=dict)
    op_counts: Dict[str, int] = field(default_factory=dict)
    bytes_loaded: int = 0
    bytes_stored: int = 0
    #: Per-SNP best-participating-score payload (``None`` = SNP unseen).
    snp_minima: List[float | None] | None = None
    #: Data-plane counter increments of the batch this outcome headed
    #: (attached to the first outcome of each batch; empty otherwise).
    data_plane: Dict[str, int] = field(default_factory=dict)
    #: Serialized telemetry spans recorded in the worker process while the
    #: batch ran (attached to the first outcome of each batch; empty
    #: otherwise, and always empty with telemetry off).
    spans: List[dict] = field(default_factory=list)


class _WorkerContext:
    """Per-process execution state: one detector reused across shards.

    The detector (and through it the per-lane dataset encodings) is reused
    across every shard the context evaluates, so per-shard cost is pure
    sweep work after the first shard warms the encodings.  Worker
    processes cache contexts by payload fingerprint in the module-level
    LRU below — surviving across batches, runs and pipeline stages; the
    inline (``workers=1``) path builds a *local* context instead, so
    concurrent inline runs in one process (e.g. from two threads) cannot
    clobber each other's state.
    """

    def __init__(self, payload: WorkerPayload) -> None:
        from repro.core.detector import EpistasisDetector

        self.payload = payload
        dataset = payload.dataset
        if isinstance(dataset, DatasetHandle):
            # Shared-memory data plane: resolve the handle to read-only
            # views and give the encoding cache its shared tier, so the
            # encodings the coordinator published are attached instead of
            # re-packed.
            from repro.core.encoding_cache import ENCODING_CACHE

            ENCODING_CACHE.attach_shared_tier(load_encoding)
            dataset = hydrate_dataset(dataset)
        elif multiprocessing.parent_process() is not None:
            note_event("dataset_unpickled")
        self.dataset = dataset
        self.detector = EpistasisDetector(
            approach=payload.approach,
            objective=payload.objective,
            order=payload.source.order,
            n_workers=payload.n_threads,
            chunk_size=payload.chunk_size,
            top_k=payload.top_k,
            validate=payload.validate,
            devices=payload.devices,
            schedule=payload.schedule,
            fused=payload.fused,
            **payload.approach_kwargs,
        )

    def run_shard(self, task: tuple[int, int, int]) -> ShardOutcome:
        """Evaluate one shard."""
        shard_id, start, stop = task
        payload = self.payload
        dataset = self.dataset
        view = ShardView(payload.source, start, stop)

        observe = finalize_minima = None
        if payload.collect_minima:
            observe, finalize_minima = snp_minima_accumulator(dataset.n_snps)

        # Operation counters accumulate on the per-process prototype across
        # shards; snapshot before the sweep so the outcome carries this
        # shard's delta only (the coordinator sums deltas across shards and
        # processes).
        counter = self.detector.approach.counter
        ops_before = dict(counter.as_dict())
        loaded_before = counter.bytes_loaded
        stored_before = counter.bytes_stored

        started = time.perf_counter()
        result = self.detector.detect_candidates(dataset, view, observe=observe)
        elapsed = time.perf_counter() - started

        ops_after = counter.as_dict()
        op_delta = {
            mnemonic: int(count) - ops_before.get(mnemonic, 0)
            for mnemonic, count in ops_after.items()
            if int(count) - ops_before.get(mnemonic, 0)
        }

        shard_minima: List[float | None] | None = None
        if finalize_minima is not None:
            shard_minima = minima_to_payload(finalize_minima())

        return ShardOutcome(
            shard_id=shard_id,
            rows=[interaction_to_row(inter) for inter in result.top],
            n_items=view.total,
            elapsed_seconds=elapsed,
            device_stats={
                label: dict(entry)
                for label, entry in result.stats.extra.get("devices", {}).items()
            },
            op_counts=op_delta,
            bytes_loaded=counter.bytes_loaded - loaded_before,
            bytes_stored=counter.bytes_stored - stored_before,
            snp_minima=shard_minima,
        )


#: Per-process context cache (worker processes): payload fingerprint →
#: hydrated context.  Small LRU — a worker serving interleaved runs over a
#: couple of datasets/configs keeps all of them warm.
_CONTEXTS: "OrderedDict[str, _WorkerContext]" = OrderedDict()
_MAX_CONTEXTS = 4


def _context_for(payload: WorkerPayload) -> _WorkerContext:
    """Resolve (or build) the cached worker context for a payload."""
    fingerprint = payload.fingerprint()
    context = _CONTEXTS.get(fingerprint)
    if context is not None:
        _CONTEXTS.move_to_end(fingerprint)
        note_event("worker_context_reused")
        return context
    context = _WorkerContext(payload)
    _CONTEXTS[fingerprint] = context
    note_event("worker_context_built")
    while len(_CONTEXTS) > _MAX_CONTEXTS:
        _CONTEXTS.popitem(last=False)
    return context


def _run_shard_batch(
    payload: WorkerPayload, tasks: Sequence[tuple[int, int, int]]
) -> List[ShardOutcome]:
    """Worker entry point: evaluate a batch of shards in one round-trip.

    The first outcome of the batch carries the data-plane counter delta
    (segments attached, cache hits/misses, datasets unpickled) observed in
    this process while the batch ran.  The payload's fault plan (if any)
    is installed before anything else, so the ``shard.claim`` /
    ``shard.run`` / ``outcome.ship`` injection sites are live for exactly
    this batch — and cleared again by the next batch that ships no plan.
    """
    install_plan(payload.faults)
    fire("shard.claim", shard=tasks[0][0] if tasks else None)
    before = data_plane_snapshot()
    trace_ctx = payload.telemetry
    session = None
    if trace_ctx is not None:
        from repro.telemetry import start_run

        # Activate the coordinator's run in this process: every span the
        # batch records (shard.run and the nested detect/device.run/kernel
        # tree) carries the coordinator's run_id and parents under its
        # dispatch span via the shipped context.
        session = start_run(trace_ctx.mode, context=trace_ctx)
    try:
        context = _context_for(payload)
        outcomes = []
        for task in tasks:
            fire("shard.run", shard=task[0])
            if session is not None:
                with session.tracer.span(
                    "shard.run",
                    shard_id=task[0],
                    start=task[1],
                    stop=task[2],
                    pid=os.getpid(),
                ):
                    outcomes.append(context.run_shard(task))
            else:
                outcomes.append(context.run_shard(task))
    finally:
        if session is not None:
            from repro.telemetry import finish_run

            finish_run(session)
    fire("outcome.ship", shard=tasks[0][0] if tasks else None)
    outcomes[0].data_plane = data_plane_delta(before)
    if session is not None:
        outcomes[0].spans = session.tracer.export_spans()
    return outcomes


def _run_null_batch(
    payload: WorkerPayload,
    combos: np.ndarray,
    phenotype_batch: np.ndarray,
) -> np.ndarray:
    """Worker entry point for permutation nulls: score relabelled copies.

    ``phenotype_batch`` is ``(B, n_samples)`` relabelled phenotype vectors
    — the *only* per-iteration data shipped; the genotypes come from the
    (usually shared-memory) dataset hydrated once per process.  Scoring
    bypasses the encoding cache (``cache=False``): relabelled encodings
    are throw-away by contract.

    Returns the ``(B, n_combos)`` score matrix.
    """
    install_plan(payload.faults)
    fire("shard.claim")
    context = _context_for(payload)
    from repro.datasets.dataset import GenotypeDataset

    genotypes = context.dataset.genotypes
    snp_names = list(context.dataset.snp_names)
    scores = []
    for phenotypes in phenotype_batch:
        relabelled = GenotypeDataset(
            genotypes=genotypes, phenotypes=phenotypes, snp_names=snp_names
        )
        scores.append(
            context.detector.score_combinations(relabelled, combos, cache=False)
        )
    return np.asarray(scores)


class ProcessRunner:
    """Executes shard tasks across OS processes (or inline for one worker).

    Parameters
    ----------
    workers:
        Worker process count.  ``1`` runs every shard inline in the calling
        process through the identical code path (no pool, no pickling
        overhead) — useful for checkpointed single-process runs and tests.
    payload:
        The per-process hydration spec (shipped with every batch; tiny
        when the dataset rides shared memory).
    mp_context:
        ``multiprocessing`` start method (default ``"spawn"``: safe with
        threads in the parent and identical across platforms).
    pool:
        ``"keep"`` executes on the process-wide warm fleet
        (:func:`repro.distributed.fleet.get_fleet`), which survives this
        run; ``"fresh"`` spawns a dedicated pool torn down afterwards.
    batch_size:
        Shards per future (default: enough batches for ~4 rounds per
        worker, at least one shard each).
    retry:
        The run's :class:`~repro.distributed.resilience.RetryPolicy`
        (``None`` = :data:`DEFAULT_RETRY_POLICY`).
    resilience:
        The :class:`~repro.distributed.resilience.ResilienceLog` to record
        into — pass one pre-seeded from the checkpoint ledger so retry
        budgets span resumes; a fresh log is created otherwise.  Exposed
        as :attr:`resilience` either way.
    """

    def __init__(
        self,
        workers: int,
        payload: WorkerPayload,
        mp_context: str = "spawn",
        pool: str = "keep",
        batch_size: int | None = None,
        retry: RetryPolicy | None = None,
        resilience: ResilienceLog | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        if pool not in ("keep", "fresh"):
            raise ValueError(f"pool must be 'keep' or 'fresh', got {pool!r}")
        self.workers = workers
        self.payload = payload
        self.mp_context = mp_context
        self.pool = pool
        self.batch_size = batch_size
        self.retry = retry or DEFAULT_RETRY_POLICY
        self.resilience = resilience if resilience is not None else ResilienceLog()
        self._fleet = None
        self._fleet_info: Dict[str, object] | None = None
        self._dedicated = False
        self._ladder_fleet = None
        self._session = None

    # -- data-plane session ------------------------------------------------------
    def data_session(self):
        """The shared-memory session scoping this runner's segments.

        On the warm fleet this is the *fleet's* long-lived session (the
        segments outlive the run — that is the point); a fresh pool gets a
        runner-scoped session closed by :meth:`close`, unlinking whatever
        this run published once the last reference drops.
        """
        if self._session is None or self._session.closed:
            if self.pool == "keep" and self.workers > 1:
                self._session = self._acquire_fleet().store_session()
            else:
                from repro.distributed.shm import shared_store

                self._session = shared_store().session()
        return self._session

    def fleet_info(self) -> Dict[str, object] | None:
        """Bookkeeping of the fleet that ran this runner's shards, if any."""
        if self._fleet is not None:
            return self._fleet.describe()
        return self._fleet_info

    def close(self) -> None:
        """Release run-scoped resources (dedicated pools, fresh session)."""
        if self._ladder_fleet is not None:
            self._ladder_fleet.shutdown()
            self._ladder_fleet = None
        if self._dedicated and self._fleet is not None:
            self._fleet_info = self._fleet.describe()
            self._fleet.shutdown()
            self._fleet = None
        if self._session is not None and not (
            self.pool == "keep" and self.workers > 1
        ):
            self._session.close()
            self._session = None

    def _acquire_fleet(self):
        from repro.distributed.fleet import WorkerFleet, get_fleet

        if self._fleet is None:
            if self.pool == "keep":
                self._fleet = get_fleet(self.workers, self.mp_context)
            else:
                self._fleet = WorkerFleet(self.workers, self.mp_context)
                self._dedicated = True
        return self._fleet

    def _batches(self, tasks: List[tuple[int, int, int]]) -> List[List[tuple]]:
        size = self.batch_size
        if size is None:
            # ~4 dispatch rounds per worker keeps pull-scheduling balance
            # while cutting futures round-trips ~4x for the default plan.
            size = max(1, len(tasks) // (self.workers * 4))
        return [tasks[i : i + size] for i in range(0, len(tasks), size)]

    def _escalate(self, fleet):
        """Climb one rung of the degradation ladder after a pool break.

        Returns the fleet to continue on, or ``None`` once the policy's
        pool-break budget is spent and the run falls back to inline
        execution in the coordinator (the ladder's last rung — a run
        always completes).
        """
        log = self.resilience
        log.pool_breaks += 1
        note_event("pool_breaks")
        if log.pool_breaks >= self.retry.max_pool_breaks:
            log.ladder = "inline"
            return None
        if log.pool_breaks == 1:
            # First break: respawn the same fleet in place (warm-fleet
            # sessions and registry membership are preserved).
            log.ladder = "respawned"
            note_event("pool_respawns")
            fleet.respawn()
            return fleet
        # Second break: abandon the fleet for a dedicated fresh pool owned
        # (and torn down) by this runner.  The shared warm fleet is left
        # alone — other runs may hold it.
        from repro.distributed.fleet import WorkerFleet

        log.ladder = "fresh"
        note_event("pool_respawns")
        if self._ladder_fleet is not None:
            self._ladder_fleet.shutdown()
        self._ladder_fleet = WorkerFleet(self.workers, self.mp_context)
        return self._ladder_fleet

    def _run_inline(
        self, tasks: Sequence[tuple[int, int, int]], quarantine: bool
    ) -> Iterator[ShardOutcome]:
        """Execute shards in the calling process (the ladder's last rung).

        Worker-only fault kinds (crash/hang/error) are suppressed by
        :func:`repro.faults.fire` in the coordinator, so a poison shard
        that kept killing workers completes here — which is the whole
        point of quarantine.
        """
        from repro.telemetry import span_or_null

        log = self.resilience
        context = _WorkerContext(self.payload)
        for task in tasks:
            before = data_plane_snapshot()
            fire("shard.run", shard=task[0])
            span = "shard.quarantine" if quarantine else "shard.run"
            # Inline shards join the coordinator's ambient run directly
            # (no cross-process propagation needed).
            with span_or_null(
                span,
                shard_id=task[0],
                start=task[1],
                stop=task[2],
                attempt=log.attempts.get(task[0], 0) + 1,
            ):
                outcome = context.run_shard(task)
            outcome.data_plane = data_plane_delta(before)
            fire("outcome.ship", shard=task[0])
            yield outcome

    def map_shards(self, shards: Sequence[Shard]) -> Iterator[ShardOutcome]:
        """Yield shard outcomes as they complete (order is not guaranteed).

        The caller checkpoints each outcome as it arrives; closing the
        iterator early (cancellation) abandons unclaimed batches (and
        tears down run-scoped pools).  Failures are handled under
        :attr:`retry`: failed or watchdog-killed shards are re-dispatched
        in isolation with bounded backoff, repeated pool breaks climb the
        degradation ladder (respawn → fresh dedicated pool → inline), and
        shards that exhaust their budget are quarantined and finished
        inline — every path ends with all shards completed exactly once.
        """
        tasks = [(s.shard_id, s.start, s.stop) for s in shards]
        if not tasks:
            return
        if self.workers == 1:
            fire("shard.claim", shard=tasks[0][0])
            yield from self._run_inline(tasks, quarantine=False)
            return

        from repro.telemetry import span_or_null

        policy = self.retry
        log = self.resilience
        fleet = self._acquire_fleet()
        inline_dataset = not isinstance(self.payload.dataset, DatasetHandle)
        completed: set[int] = set()
        pending: Dict[object, List[tuple]] = {}
        queue: "deque[List[tuple]]" = deque(self._batches(tasks))
        quarantined: List[tuple] = []
        # After the first failure, dispatch single-shard batches so one
        # bad shard cannot drag batch-mates into its retry accounting.
        isolate = False
        last_progress = time.monotonic()

        def fill_window() -> None:
            # Keep at most ``workers`` batches in flight: precise failure
            # attribution (what is in flight is what is actually running)
            # at no throughput cost — the pool has no more lanes anyway.
            # Raises BrokenProcessPool (batch safely requeued) when the
            # pool broke before the submit.
            while queue and len(pending) < self.workers:
                batch = queue.popleft()
                if isolate and len(batch) > 1:
                    for task in reversed(batch):
                        queue.appendleft([task])
                    continue
                try:
                    future = fleet.submit(_run_shard_batch, self.payload, batch)
                except BrokenProcessPool:
                    queue.appendleft(batch)
                    raise
                pending[future] = batch
                if inline_dataset:
                    note_event("dataset_pickled")

        def account_failures(batches: List[List[tuple]]) -> float:
            """Record failed attempts; requeue or quarantine. Returns backoff."""
            delay = 0.0
            requeue: List[tuple[int, tuple]] = []
            for batch in batches:
                for task in batch:
                    sid = task[0]
                    if sid in completed:
                        continue
                    failures = log.record_failure(sid)
                    if policy.exhausted(failures):
                        log.record_quarantine(sid)
                        note_event("shards_quarantined")
                        quarantined.append(task)
                    else:
                        log.retries += 1
                        note_event("shard_retries")
                        with span_or_null(
                            "shard.retry",
                            shard_id=sid,
                            attempt=failures + 1,
                            backoff_seconds=policy.backoff(failures),
                        ):
                            pass
                        requeue.append((failures, task))
                        delay = max(delay, policy.backoff(failures))
            # Retries go behind untouched work, least-failed first, so the
            # likeliest poison shard runs last (and alone).
            requeue.sort(key=lambda item: (item[0], item[1][0]))
            for _, task in requeue:
                queue.append([task])
            return delay

        try:
            while True:
                try:
                    fill_window()
                except BrokenProcessPool:
                    # The pool broke before a submit: everything in flight
                    # on it is doomed too — same recovery as a mid-wait
                    # break.
                    failed = [pending.pop(f) for f in list(pending)]
                    fleet = self._escalate(fleet)
                    last_progress = time.monotonic()
                    isolate = True
                    delay = account_failures(failed)
                    if fleet is None:
                        break  # ladder exhausted — finish inline below
                    if delay > 0.0:
                        time.sleep(delay)
                    continue
                if not pending:
                    break
                done, _ = wait(
                    set(pending),
                    timeout=policy.wait_timeout(),
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # Heartbeat watchdog: shards in flight but none have
                    # completed for a whole deadline — declare the pool
                    # hung and kill it; the broken-pool path below turns
                    # the in-flight shards into ordinary retries.
                    stalled = (
                        policy.shard_deadline_seconds is not None
                        and time.monotonic() - last_progress
                        >= policy.shard_deadline_seconds
                    )
                    if stalled:
                        log.watchdog_kills += 1
                        note_event("watchdog_kills")
                        fleet.kill_workers()
                        last_progress = time.monotonic()
                    continue
                broken: BaseException | None = None
                failed: List[List[tuple]] = []
                for future in done:
                    batch = pending.pop(future)
                    try:
                        outcomes = future.result()
                    except BrokenProcessPool as exc:
                        broken = broken or exc
                        failed.append(batch)
                        continue
                    except Exception:
                        # A worker-raised failure (injected error, pickling
                        # trouble): the pool survives, the batch retries.
                        failed.append(batch)
                        continue
                    for outcome in outcomes:
                        if outcome.shard_id in completed:
                            continue
                        completed.add(outcome.shard_id)
                        last_progress = time.monotonic()
                        yield outcome
                if broken is not None:
                    # Everything in flight on a broken pool is doomed.
                    for future in list(pending):
                        failed.append(pending.pop(future))
                    fleet = self._escalate(fleet)
                    # A replacement pool pays spawn + hydration before its
                    # first heartbeat; give it a fresh deadline window.
                    last_progress = time.monotonic()
                if failed:
                    isolate = True
                    delay = account_failures(failed)
                    if fleet is None:
                        break  # ladder exhausted — finish inline below
                    if delay > 0.0:
                        time.sleep(delay)

            # The ladder's last rung: quarantined shards — and any
            # stranded in the queue when the pool-break budget ran out —
            # finish inline in the coordinator.  Deterministic shard
            # computation plus the total merge order make this
            # bit-identical to a fault-free run.
            quarantined_ids = {task[0] for task in quarantined}
            stranded = [
                t
                for t in tasks
                if t[0] not in completed and t[0] not in quarantined_ids
            ]
            for group, quarantine in ((stranded, False), (quarantined, True)):
                remaining = [t for t in group if t[0] not in completed]
                if not remaining:
                    continue
                note_event("inline_fallbacks", len(remaining))
                for outcome in self._run_inline(remaining, quarantine=quarantine):
                    completed.add(outcome.shard_id)
                    yield outcome
        finally:
            for future in pending:
                future.cancel()
            if self._dedicated or self._ladder_fleet is not None:
                self.close()
