"""Spawn-safe worker processes executing shards through the engine.

A worker process hydrates its execution state lazily from the first task
batch it receives: the :class:`WorkerPayload` either carries the dataset
inline (pickled — the legacy data plane) or, with shared memory enabled, a
tiny :class:`~repro.distributed.shm.DatasetHandle` the worker resolves
against the :class:`~repro.distributed.shm.SharedEncodingStore` — the
arrays never cross the pipe.  The per-process state (detector, encodings,
hydrated dataset) is cached across batches *and across runs* keyed by the
payload fingerprint, so a warm fleet (:mod:`repro.distributed.fleet`)
serving a second ``detect()`` call or the next pipeline stage pays zero
re-initialisation.

Shard handoff is **batched**: the coordinator groups shards into a handful
of futures per worker instead of one future per shard, cutting the
submit/collect round-trips (and per-task payload pickles) by an order of
magnitude for the default 32-shard plan.

Everything here is **spawn-safe**: the worker entry points are module-level
functions resolved by import path (no closures, no lambdas), so the pool
works identically under the ``spawn`` start method (macOS/Windows default,
and the only start method that is safe with threads in the parent).
``workers=1`` bypasses the pool entirely and runs the same code inline —
zero process overhead, identical results, same checkpoint ledger.

Fault tolerance: a worker dying mid-shard breaks the whole
``ProcessPoolExecutor``.  :meth:`ProcessRunner.map_shards` recovers once —
the fleet respawns and only the shards that never produced an outcome are
re-dispatched (completed shards are already checkpointed/yielded); a second
pool break raises.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import signal
import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

import numpy as np

from repro.distributed.merge import (
    interaction_to_row,
    minima_to_payload,
    snp_minima_accumulator,
)
from repro.distributed.shards import Shard, ShardView
from repro.distributed.shm import (
    DatasetHandle,
    data_plane_delta,
    data_plane_snapshot,
    hydrate_dataset,
    load_encoding,
    note_event,
)

__all__ = ["WorkerPayload", "ShardOutcome", "ProcessRunner", "FAULT_ENV"]

#: Environment variable naming a fault-injection trigger file: the first
#: worker that claims the file (atomic rename) SIGKILLs itself before
#: running its batch.  Test-only — lets the fault-tolerance suite kill
#: exactly one worker exactly once.
FAULT_ENV = "REPRO_DIST_FAULT"


@dataclass
class WorkerPayload:
    """Everything a worker process needs to hydrate its execution state.

    ``dataset`` is either a ``GenotypeDataset`` (pickled inline with every
    batch — the fallback data plane) or a
    :class:`~repro.distributed.shm.DatasetHandle` resolved against shared
    memory on first touch.  ``approach`` must be a registry *name* (a
    pre-built approach instance carries per-run counter state that must
    not be shared across processes); ``objective`` and ``schedule`` may be
    names or picklable instances.
    """

    dataset: object  # GenotypeDataset or DatasetHandle
    source: object  # CandidateSource
    approach: str
    objective: object = "k2"
    n_threads: int = 1
    chunk_size: int | str = 2048  # an int, or "auto" for the chunk autotuner
    top_k: int = 10
    validate: bool = False
    devices: str | None = None
    schedule: object = "dynamic"
    collect_minima: bool = False
    fused: str | None = None
    approach_kwargs: Dict[str, object] = field(default_factory=dict)
    #: Cross-process telemetry propagation
    #: (:class:`~repro.telemetry.TraceContext` or ``None``).  Deliberately
    #: excluded from :meth:`fingerprint`: the run identity changes per run
    #: while the hydrated execution state does not, and a warm worker must
    #: keep its context cache hits across runs.
    telemetry: object = None

    def fingerprint(self) -> str:
        """Content fingerprint keying the per-process context cache.

        Two payloads with the same fingerprint hydrate to identical
        execution state, so a warm worker reuses its detector (and every
        encoding behind it) across runs.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        if isinstance(self.dataset, DatasetHandle):
            ds = ("handle", self.dataset.digest)
        else:
            ds = ("inline", self.dataset.content_digest())
        blob = pickle.dumps(
            (
                ds,
                self.source,
                self.approach,
                self.objective,
                self.n_threads,
                self.chunk_size,
                self.top_k,
                self.validate,
                self.devices,
                self.schedule,
                self.collect_minima,
                self.fused,
                sorted(self.approach_kwargs.items()),
            ),
            protocol=4,
        )
        digest = hashlib.sha1(blob).hexdigest()
        self._fingerprint = digest
        return digest


@dataclass
class ShardOutcome:
    """One shard's partial result, streamed back to the coordinator."""

    shard_id: int
    rows: List[list]
    n_items: int
    elapsed_seconds: float
    device_stats: Dict[str, Dict[str, object]] = field(default_factory=dict)
    op_counts: Dict[str, int] = field(default_factory=dict)
    bytes_loaded: int = 0
    bytes_stored: int = 0
    #: Per-SNP best-participating-score payload (``None`` = SNP unseen).
    snp_minima: List[float | None] | None = None
    #: Data-plane counter increments of the batch this outcome headed
    #: (attached to the first outcome of each batch; empty otherwise).
    data_plane: Dict[str, int] = field(default_factory=dict)
    #: Serialized telemetry spans recorded in the worker process while the
    #: batch ran (attached to the first outcome of each batch; empty
    #: otherwise, and always empty with telemetry off).
    spans: List[dict] = field(default_factory=list)


class _WorkerContext:
    """Per-process execution state: one detector reused across shards.

    The detector (and through it the per-lane dataset encodings) is reused
    across every shard the context evaluates, so per-shard cost is pure
    sweep work after the first shard warms the encodings.  Worker
    processes cache contexts by payload fingerprint in the module-level
    LRU below — surviving across batches, runs and pipeline stages; the
    inline (``workers=1``) path builds a *local* context instead, so
    concurrent inline runs in one process (e.g. from two threads) cannot
    clobber each other's state.
    """

    def __init__(self, payload: WorkerPayload) -> None:
        from repro.core.detector import EpistasisDetector

        self.payload = payload
        dataset = payload.dataset
        if isinstance(dataset, DatasetHandle):
            # Shared-memory data plane: resolve the handle to read-only
            # views and give the encoding cache its shared tier, so the
            # encodings the coordinator published are attached instead of
            # re-packed.
            from repro.core.encoding_cache import ENCODING_CACHE

            ENCODING_CACHE.attach_shared_tier(load_encoding)
            dataset = hydrate_dataset(dataset)
        elif multiprocessing.parent_process() is not None:
            note_event("dataset_unpickled")
        self.dataset = dataset
        self.detector = EpistasisDetector(
            approach=payload.approach,
            objective=payload.objective,
            order=payload.source.order,
            n_workers=payload.n_threads,
            chunk_size=payload.chunk_size,
            top_k=payload.top_k,
            validate=payload.validate,
            devices=payload.devices,
            schedule=payload.schedule,
            fused=payload.fused,
            **payload.approach_kwargs,
        )

    def run_shard(self, task: tuple[int, int, int]) -> ShardOutcome:
        """Evaluate one shard."""
        shard_id, start, stop = task
        payload = self.payload
        dataset = self.dataset
        view = ShardView(payload.source, start, stop)

        observe = finalize_minima = None
        if payload.collect_minima:
            observe, finalize_minima = snp_minima_accumulator(dataset.n_snps)

        # Operation counters accumulate on the per-process prototype across
        # shards; snapshot before the sweep so the outcome carries this
        # shard's delta only (the coordinator sums deltas across shards and
        # processes).
        counter = self.detector.approach.counter
        ops_before = dict(counter.as_dict())
        loaded_before = counter.bytes_loaded
        stored_before = counter.bytes_stored

        started = time.perf_counter()
        result = self.detector.detect_candidates(dataset, view, observe=observe)
        elapsed = time.perf_counter() - started

        ops_after = counter.as_dict()
        op_delta = {
            mnemonic: int(count) - ops_before.get(mnemonic, 0)
            for mnemonic, count in ops_after.items()
            if int(count) - ops_before.get(mnemonic, 0)
        }

        shard_minima: List[float | None] | None = None
        if finalize_minima is not None:
            shard_minima = minima_to_payload(finalize_minima())

        return ShardOutcome(
            shard_id=shard_id,
            rows=[interaction_to_row(inter) for inter in result.top],
            n_items=view.total,
            elapsed_seconds=elapsed,
            device_stats={
                label: dict(entry)
                for label, entry in result.stats.extra.get("devices", {}).items()
            },
            op_counts=op_delta,
            bytes_loaded=counter.bytes_loaded - loaded_before,
            bytes_stored=counter.bytes_stored - stored_before,
            snp_minima=shard_minima,
        )


#: Per-process context cache (worker processes): payload fingerprint →
#: hydrated context.  Small LRU — a worker serving interleaved runs over a
#: couple of datasets/configs keeps all of them warm.
_CONTEXTS: "OrderedDict[str, _WorkerContext]" = OrderedDict()
_MAX_CONTEXTS = 4


def _context_for(payload: WorkerPayload) -> _WorkerContext:
    """Resolve (or build) the cached worker context for a payload."""
    fingerprint = payload.fingerprint()
    context = _CONTEXTS.get(fingerprint)
    if context is not None:
        _CONTEXTS.move_to_end(fingerprint)
        note_event("worker_context_reused")
        return context
    context = _WorkerContext(payload)
    _CONTEXTS[fingerprint] = context
    note_event("worker_context_built")
    while len(_CONTEXTS) > _MAX_CONTEXTS:
        _CONTEXTS.popitem(last=False)
    return context


def _maybe_inject_fault() -> None:
    """Kill this worker if it claims the fault-injection trigger file.

    The claim is an atomic rename, so exactly one worker dies per trigger
    no matter how many race for it.  Inert unless the test suite sets
    :data:`FAULT_ENV`.
    """
    path = os.environ.get(FAULT_ENV)
    if not path or multiprocessing.parent_process() is None:
        return
    try:
        os.replace(path, path + ".consumed")
    except OSError:
        return
    os.kill(os.getpid(), signal.SIGKILL)


def _run_shard_batch(
    payload: WorkerPayload, tasks: Sequence[tuple[int, int, int]]
) -> List[ShardOutcome]:
    """Worker entry point: evaluate a batch of shards in one round-trip.

    The first outcome of the batch carries the data-plane counter delta
    (segments attached, cache hits/misses, datasets unpickled) observed in
    this process while the batch ran.
    """
    _maybe_inject_fault()
    before = data_plane_snapshot()
    trace_ctx = payload.telemetry
    session = None
    if trace_ctx is not None:
        from repro.telemetry import start_run

        # Activate the coordinator's run in this process: every span the
        # batch records (shard.run and the nested detect/device.run/kernel
        # tree) carries the coordinator's run_id and parents under its
        # dispatch span via the shipped context.
        session = start_run(trace_ctx.mode, context=trace_ctx)
    try:
        context = _context_for(payload)
        outcomes = []
        for task in tasks:
            if session is not None:
                with session.tracer.span(
                    "shard.run",
                    shard_id=task[0],
                    start=task[1],
                    stop=task[2],
                    pid=os.getpid(),
                ):
                    outcomes.append(context.run_shard(task))
            else:
                outcomes.append(context.run_shard(task))
    finally:
        if session is not None:
            from repro.telemetry import finish_run

            finish_run(session)
    outcomes[0].data_plane = data_plane_delta(before)
    if session is not None:
        outcomes[0].spans = session.tracer.export_spans()
    return outcomes


def _run_null_batch(
    payload: WorkerPayload,
    combos: np.ndarray,
    phenotype_batch: np.ndarray,
) -> np.ndarray:
    """Worker entry point for permutation nulls: score relabelled copies.

    ``phenotype_batch`` is ``(B, n_samples)`` relabelled phenotype vectors
    — the *only* per-iteration data shipped; the genotypes come from the
    (usually shared-memory) dataset hydrated once per process.  Scoring
    bypasses the encoding cache (``cache=False``): relabelled encodings
    are throw-away by contract.

    Returns the ``(B, n_combos)`` score matrix.
    """
    _maybe_inject_fault()
    context = _context_for(payload)
    from repro.datasets.dataset import GenotypeDataset

    genotypes = context.dataset.genotypes
    snp_names = list(context.dataset.snp_names)
    scores = []
    for phenotypes in phenotype_batch:
        relabelled = GenotypeDataset(
            genotypes=genotypes, phenotypes=phenotypes, snp_names=snp_names
        )
        scores.append(
            context.detector.score_combinations(relabelled, combos, cache=False)
        )
    return np.asarray(scores)


class ProcessRunner:
    """Executes shard tasks across OS processes (or inline for one worker).

    Parameters
    ----------
    workers:
        Worker process count.  ``1`` runs every shard inline in the calling
        process through the identical code path (no pool, no pickling
        overhead) — useful for checkpointed single-process runs and tests.
    payload:
        The per-process hydration spec (shipped with every batch; tiny
        when the dataset rides shared memory).
    mp_context:
        ``multiprocessing`` start method (default ``"spawn"``: safe with
        threads in the parent and identical across platforms).
    pool:
        ``"keep"`` executes on the process-wide warm fleet
        (:func:`repro.distributed.fleet.get_fleet`), which survives this
        run; ``"fresh"`` spawns a dedicated pool torn down afterwards.
    batch_size:
        Shards per future (default: enough batches for ~4 rounds per
        worker, at least one shard each).
    """

    def __init__(
        self,
        workers: int,
        payload: WorkerPayload,
        mp_context: str = "spawn",
        pool: str = "keep",
        batch_size: int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        if pool not in ("keep", "fresh"):
            raise ValueError(f"pool must be 'keep' or 'fresh', got {pool!r}")
        self.workers = workers
        self.payload = payload
        self.mp_context = mp_context
        self.pool = pool
        self.batch_size = batch_size
        self._fleet = None
        self._fleet_info: Dict[str, object] | None = None
        self._dedicated = False
        self._session = None

    # -- data-plane session ------------------------------------------------------
    def data_session(self):
        """The shared-memory session scoping this runner's segments.

        On the warm fleet this is the *fleet's* long-lived session (the
        segments outlive the run — that is the point); a fresh pool gets a
        runner-scoped session closed by :meth:`close`, unlinking whatever
        this run published once the last reference drops.
        """
        if self._session is None or self._session.closed:
            if self.pool == "keep" and self.workers > 1:
                self._session = self._acquire_fleet().store_session()
            else:
                from repro.distributed.shm import shared_store

                self._session = shared_store().session()
        return self._session

    def fleet_info(self) -> Dict[str, object] | None:
        """Bookkeeping of the fleet that ran this runner's shards, if any."""
        if self._fleet is not None:
            return self._fleet.describe()
        return self._fleet_info

    def close(self) -> None:
        """Release run-scoped resources (dedicated pool, fresh session)."""
        if self._dedicated and self._fleet is not None:
            self._fleet_info = self._fleet.describe()
            self._fleet.shutdown()
            self._fleet = None
        if self._session is not None and not (
            self.pool == "keep" and self.workers > 1
        ):
            self._session.close()
            self._session = None

    def _acquire_fleet(self):
        from repro.distributed.fleet import WorkerFleet, get_fleet

        if self._fleet is None:
            if self.pool == "keep":
                self._fleet = get_fleet(self.workers, self.mp_context)
            else:
                self._fleet = WorkerFleet(self.workers, self.mp_context)
                self._dedicated = True
        return self._fleet

    def _batches(self, tasks: List[tuple[int, int, int]]) -> List[List[tuple]]:
        size = self.batch_size
        if size is None:
            # ~4 dispatch rounds per worker keeps pull-scheduling balance
            # while cutting futures round-trips ~4x for the default plan.
            size = max(1, len(tasks) // (self.workers * 4))
        return [tasks[i : i + size] for i in range(0, len(tasks), size)]

    def map_shards(self, shards: Sequence[Shard]) -> Iterator[ShardOutcome]:
        """Yield shard outcomes as they complete (order is not guaranteed).

        The caller checkpoints each outcome as it arrives; closing the
        iterator early (cancellation) abandons unclaimed batches (and
        tears down a dedicated pool).  A single pool break is recovered by
        respawning the fleet and re-dispatching only the shards that never
        produced an outcome.
        """
        tasks = [(s.shard_id, s.start, s.stop) for s in shards]
        if not tasks:
            return
        if self.workers == 1:
            from repro.telemetry import span_or_null

            context = _WorkerContext(self.payload)
            for task in tasks:
                before = data_plane_snapshot()
                # Inline shards join the coordinator's ambient run directly
                # (no cross-process propagation needed).
                with span_or_null(
                    "shard.run", shard_id=task[0], start=task[1], stop=task[2]
                ):
                    outcome = context.run_shard(task)
                outcome.data_plane = data_plane_delta(before)
                yield outcome
            return

        fleet = self._acquire_fleet()
        inline_dataset = not isinstance(self.payload.dataset, DatasetHandle)
        completed: set[int] = set()
        respawned = False
        pending: Dict[object, List[tuple]] = {}

        def dispatch(batch_list: List[List[tuple]]) -> None:
            for batch in batch_list:
                pending[fleet.submit(_run_shard_batch, self.payload, batch)] = batch
                if inline_dataset:
                    note_event("dataset_pickled")

        dispatch(self._batches(tasks))
        try:
            while pending:
                done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
                broken: BaseException | None = None
                for future in done:
                    pending.pop(future)
                    try:
                        outcomes = future.result()
                    except BrokenProcessPool as exc:
                        broken = broken or exc
                        continue
                    for outcome in outcomes:
                        if outcome.shard_id in completed:
                            continue
                        completed.add(outcome.shard_id)
                        yield outcome
                if broken is not None:
                    if respawned:
                        raise RuntimeError(
                            "a distributed worker process died mid-run (killed "
                            "or crashed); completed shards are preserved in the "
                            "checkpoint ledger — rerun with resume to continue"
                        ) from broken
                    respawned = True
                    note_event("pool_respawns")
                    # Everything still pending is doomed with the broken
                    # pool; re-dispatch every shard that never completed.
                    pending.clear()
                    fleet.respawn()
                    remaining = [t for t in tasks if t[0] not in completed]
                    dispatch(self._batches(remaining))
        finally:
            for future in pending:
                future.cancel()
            if self._dedicated:
                self.close()
