"""Shard planning: cutting a candidate space into rank-addressable pieces.

A *shard* is a contiguous ``[start, stop)`` slice of a candidate source's
item space — the unit of distribution, checkpointing and resumption of a
multi-process run.  Shards are deliberately coarser than engine scheduler
chunks: a worker process claims a whole shard, sweeps it through the
in-process :class:`~repro.engine.executor.HeterogeneousExecutor` (which
chunks it further across the process's device lanes) and reports one
partial top-k back, so the coordinator's ledger stays small no matter how
large the combination space is.

Two planning strategies:

* ``static`` — the space is cut into near-equal shards
  (:func:`repro.engine.scheduling.static_partition`).  The shard count is
  independent of the worker count by default, so a checkpoint written with
  one worker fleet can be resumed with another.
* ``weighted`` — per-process shares are sized proportionally to each
  process's modelled device throughput
  (:func:`repro.perfmodel.efficiency.device_throughput`, the same CARM
  estimate behind the heterogeneous engine split), then each share is cut
  into ``shards_per_worker`` pieces.  Use this when the worker fleet is
  heterogeneous (e.g. one GPU node and three CPU nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.engine.candidates import CandidateSource
from repro.engine.plan import EngineDevice
from repro.engine.scheduling import static_partition

__all__ = ["Shard", "ShardView", "ShardPlanner", "DEFAULT_SHARD_COUNT"]

#: Default shard count of the static strategy.  Chosen independent of the
#: worker count so resuming a checkpoint with a different ``--workers`` value
#: still matches the recorded shard boundaries, while oversubscribing typical
#: fleets (2-8 processes) enough for pull-based load balance.
DEFAULT_SHARD_COUNT = 32


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of a candidate source's item space."""

    shard_id: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ValueError("shard_id must be non-negative")
        if not 0 <= self.start < self.stop:
            raise ValueError(f"invalid shard range [{self.start}, {self.stop})")

    @property
    def items(self) -> int:
        """Number of work items covered by the shard."""
        return self.stop - self.start


class ShardView(CandidateSource):
    """A candidate source restricted to one shard's ``[start, stop)`` slice.

    The view exposes the slice as its own contiguous item space, so a worker
    process can hand it to any engine entry point (scheduling policies chunk
    ``[0, stop - start)``) while materialisation resolves through the base
    source — global SNP indices, subset translation and order all behave
    exactly as in the unsharded sweep.
    """

    def __init__(self, base: CandidateSource, start: int, stop: int) -> None:
        if not 0 <= start <= stop <= base.total:
            raise ValueError(
                f"invalid shard range [{start}, {stop}) for a source of "
                f"{base.total} candidates"
            )
        self.base = base
        self.start = int(start)
        self.stop = int(stop)
        self.order = base.order

    @classmethod
    def of(cls, base: CandidateSource, shard: Shard) -> "ShardView":
        """The view of ``base`` covered by ``shard``."""
        return cls(base, shard.start, shard.stop)

    @property
    def total(self) -> int:
        return self.stop - self.start

    @property
    def effective_snps(self) -> int | None:
        return self.base.effective_snps

    def materialize(self, start: int, stop: int) -> np.ndarray:
        self._check_range(start, stop)
        return self.base.materialize(self.start + start, self.start + stop)

    def describe(self) -> str:
        return f"shard[{self.start}:{self.stop}] of {self.base.describe()}"

    def fingerprint(self) -> dict:
        return {
            "shard_of": self.base.fingerprint(),
            "start": self.start,
            "stop": self.stop,
        }


class ShardPlanner:
    """Cuts a candidate space ``[0, total)`` into rank-addressable shards.

    Parameters
    ----------
    n_shards:
        Explicit shard count of the static strategy (default
        :data:`DEFAULT_SHARD_COUNT`).  The weighted strategy derives its
        count from ``workers * shards_per_worker`` instead, so combining it
        with ``n_shards`` is rejected rather than silently ignored.
    strategy:
        ``"static"`` (near-equal shards) or ``"weighted"`` (per-process
        shares sized by modelled device throughput).
    shards_per_worker:
        Oversubscription factor of the weighted strategy: each process
        share is cut into this many shards so pull-based scheduling can
        still rebalance within a share.
    worker_devices:
        Per-process engine device lanes for the weighted strategy (one
        entry per worker process).  Defaults to one default CPU lane per
        process — which makes every weight equal and the plan identical to
        a static cut of ``workers * shards_per_worker`` shards.
    """

    STRATEGIES = ("static", "weighted")

    def __init__(
        self,
        n_shards: int | None = None,
        strategy: str = "static",
        shards_per_worker: int = 4,
        worker_devices: Sequence[Sequence[EngineDevice]] | None = None,
    ) -> None:
        if strategy not in self.STRATEGIES:
            raise ValueError(
                f"unknown shard strategy {strategy!r}; expected one of "
                f"{self.STRATEGIES}"
            )
        if n_shards is not None and n_shards < 1:
            raise ValueError("n_shards must be positive")
        if n_shards is not None and strategy == "weighted":
            raise ValueError(
                "n_shards applies to the static strategy; the weighted "
                "strategy sizes its cut from workers * shards_per_worker"
            )
        if shards_per_worker < 1:
            raise ValueError("shards_per_worker must be positive")
        self.n_shards = n_shards
        self.strategy = strategy
        self.shards_per_worker = shards_per_worker
        self.worker_devices = (
            [list(lanes) for lanes in worker_devices]
            if worker_devices is not None
            else None
        )

    def plan(
        self,
        total: int,
        workers: int = 1,
        *,
        n_snps: int | None = None,
        n_samples: int | None = None,
        order: int = 3,
    ) -> List[Shard]:
        """Shards covering ``[0, total)`` exactly once (empty shards dropped).

        ``n_snps`` / ``n_samples`` / ``order`` feed the analytic throughput
        models of the weighted strategy; the static strategy ignores them.
        """
        if total < 0:
            raise ValueError("total must be non-negative")
        if workers < 1:
            raise ValueError("workers must be positive")
        if total == 0:
            return []
        if self.strategy == "static":
            count = min(total, self.n_shards or DEFAULT_SHARD_COUNT)
            spans = static_partition(total, count)
        else:
            spans = self._weighted_spans(
                total, workers, n_snps=n_snps, n_samples=n_samples, order=order
            )
        shards = []
        for start, stop in spans:
            if stop > start:
                shards.append(Shard(shard_id=len(shards), start=start, stop=stop))
        return shards

    def _weighted_spans(
        self,
        total: int,
        workers: int,
        *,
        n_snps: int | None,
        n_samples: int | None,
        order: int,
    ) -> List[tuple[int, int]]:
        from repro.perfmodel.efficiency import device_throughput

        lanes_per_worker = self.worker_devices or [
            [EngineDevice()] for _ in range(workers)
        ]
        if len(lanes_per_worker) != workers:
            raise ValueError(
                f"{len(lanes_per_worker)} worker device sets for {workers} workers"
            )
        kwargs = {"order": order}
        if n_snps is not None:
            kwargs["n_snps"] = n_snps
        if n_samples is not None:
            kwargs["n_samples"] = n_samples
        weights = [
            sum(device_throughput(lane.spec(), **kwargs) for lane in lanes)
            for lanes in lanes_per_worker
        ]
        scale = sum(weights)
        if scale <= 0:
            raise ValueError("worker throughput weights must sum to > 0")
        # Largest-remainder apportionment of the total across processes
        # (mirrors CarmRatioPolicy.shares), then a near-equal cut of each
        # process share into shards_per_worker pieces.
        raw = [total * w / scale for w in weights]
        base = [int(r) for r in raw]
        leftover = total - sum(base)
        by_fraction = sorted(
            range(workers), key=lambda i: raw[i] - base[i], reverse=True
        )
        for i in by_fraction[:leftover]:
            base[i] += 1
        spans: List[tuple[int, int]] = []
        cursor = 0
        for share in base:
            for start, stop in static_partition(share, self.shards_per_worker):
                spans.append((cursor + start, cursor + stop))
            cursor += share
        return spans
