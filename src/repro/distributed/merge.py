"""Deterministic merging of per-shard partial results.

Every shard reports its local top-k as plain *rows* — ``[score, snps,
snp_names]`` lists that survive both pickling across the process boundary
and the JSON round-trip through the checkpoint ledger without loss
(``float`` values round-trip exactly through ``json``'s ``repr``-based
encoding).  :func:`merge_rows` folds any number of partial row lists into
the global top-k under the explicit total order

    ``(score, snps)``

— equal scores break by the combination's SNP tuple, which for strictly
increasing tuples is precisely the lexicographic *combination rank* of the
candidate.  Because the order is total (no two distinct candidates compare
equal) the merged top-k is a pure function of the union of the partials:
shard boundaries, worker counts, completion order and resume cycles can
never reorder tied results.  This is the property behind the subsystem's
headline guarantee — ``workers=1`` and ``workers=8`` produce bit-identical
reports.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Sequence

import numpy as np

from repro.core.result import Interaction

__all__ = [
    "interaction_to_row",
    "row_to_interaction",
    "row_sort_key",
    "merge_rows",
    "snp_minima_accumulator",
    "minima_to_payload",
    "merge_minima",
]

#: A serialised interaction: ``[score, [snp, ...], [name, ...] | None]``.
Row = list


def interaction_to_row(interaction: Interaction) -> Row:
    """Serialise an interaction to a JSON/pickle-safe row."""
    return [
        float(interaction.score),
        [int(s) for s in interaction.snps],
        list(interaction.snp_names) if interaction.snp_names else None,
    ]


def row_to_interaction(row: Sequence) -> Interaction:
    """Rebuild an :class:`~repro.core.result.Interaction` from a row."""
    score, snps, names = row[0], row[1], row[2]
    return Interaction(
        snps=tuple(int(s) for s in snps),
        score=float(score),
        snp_names=tuple(names) if names else None,
    )


def row_sort_key(row: Sequence) -> tuple:
    """The explicit (score, combination-rank) tie-breaking key.

    The SNP tuple is the rank surrogate: candidate tuples are strictly
    increasing, so tuple-lexicographic order equals lexicographic
    combination-rank order over any shared universe.
    """
    return (float(row[0]), tuple(int(s) for s in row[1]))


def merge_rows(partials: Iterable[Sequence[Row]], top_k: int) -> List[Row]:
    """The global top-``k`` rows across per-shard partial top-k lists.

    Deterministic under the :func:`row_sort_key` total order; shards cover
    disjoint candidate slices, so no deduplication is needed.
    """
    if top_k < 1:
        raise ValueError("top_k must be positive")
    pooled: List[Row] = []
    for partial in partials:
        pooled.extend(partial)
    return heapq.nsmallest(top_k, pooled, key=row_sort_key)


def snp_minima_accumulator(n_snps: int):
    """A thread-safe per-SNP best-participating-score fold for engine runs.

    Returns ``(observe, finalize)``: ``observe(worker, combos, scores)``
    plugs into :meth:`EpistasisDetector.detect_candidates`'s per-chunk tap
    and credits every SNP of a scored combination with the combination's
    score (keeping the minimum); ``finalize()`` reduces the per-worker
    accumulators to one ``(n_snps,)`` array (``inf`` = SNP never seen).

    This is the single implementation behind the screening stage in both
    execution modes — the in-process sweep and each distributed shard use
    it, which is what keeps the ``workers=1`` vs ``workers=N`` screen
    bit-identical.  Workers only ever touch their own array, so the only
    shared state is the dict itself (guarded for concurrent first access).
    """
    import threading

    per_worker: dict[int, np.ndarray] = {}
    lock = threading.Lock()

    def observe(worker, combos: np.ndarray, scores: np.ndarray) -> None:
        best = per_worker.get(worker.worker_id)
        if best is None:
            with lock:
                best = per_worker.setdefault(
                    worker.worker_id, np.full(n_snps, np.inf)
                )
        np.minimum.at(best, combos.ravel(), np.repeat(scores, combos.shape[1]))

    def finalize() -> np.ndarray:
        best = np.full(n_snps, np.inf)
        for partial in per_worker.values():
            np.minimum(best, partial, out=best)
        return best

    return observe, finalize


def minima_to_payload(minima: np.ndarray) -> List[float | None]:
    """Serialise a per-SNP minima array for the JSON shard ledger.

    ``inf`` (SNP never seen by the shard) maps to JSON ``null`` — the
    ledger stays strictly valid JSON (``json.dump`` would otherwise emit
    the non-standard ``Infinity`` token).
    """
    return [None if not np.isfinite(v) else float(v) for v in minima]


def merge_minima(
    partials: Iterable[np.ndarray | Sequence[float | None]],
) -> np.ndarray | None:
    """Element-wise minimum of per-shard per-SNP score accumulators.

    Used by the distributed screening stage: each shard folds its own
    best-participating-score array and the coordinator reduces them.
    Accepts arrays and ledger payloads (``None`` elements read as ``inf``);
    returns ``None`` when no partial carried an accumulator.
    """
    merged: np.ndarray | None = None
    for partial in partials:
        if partial is None:
            continue
        arr = np.asarray(
            [np.inf if v is None else v for v in partial]
            if not isinstance(partial, np.ndarray)
            else partial,
            dtype=np.float64,
        )
        if merged is None:
            merged = arr.copy()
        else:
            np.minimum(merged, arr, out=merged)
    return merged
