"""Fault-tolerance policy and bookkeeping for sharded distributed runs.

The PR-6 runner could survive exactly one worker death (respawn once,
re-dispatch, give up on the second break) and had no defence at all
against a *hung* worker — a single stuck process stalled the run forever.
This module turns those seeds into a real policy layer:

* :class:`RetryPolicy` — bounded per-shard retries with exponential
  backoff.  Deterministic by construction: every decision (retry or
  quarantine, backoff length) is a pure function of the attempt count, so
  wall-clock never leaks into anything that affects results — backoff only
  paces *when* a shard re-runs, never *what* it computes.
* a **heartbeat watchdog** — shard completions are the heartbeat; when a
  run with a ``shard_deadline_seconds`` goes that long without any shard
  completing while work is in flight, the pool is declared hung, its
  workers are killed and the in-flight shards are re-dispatched under the
  same retry accounting as a crash.
* **poison-shard quarantine** — a shard whose failures exhaust the retry
  budget is quarantined and executed *inline in the coordinator*, the last
  rung of the degradation ladder (warm fleet → respawned fleet → fresh
  dedicated pool → inline), so a run always completes and — because the
  merge order is a total order — always bit-identically.
* :class:`ResilienceLog` — the per-run record of retries, watchdog kills,
  pool breaks, ladder position and quarantined shards; it feeds the
  telemetry metrics (``resilience.*``), the run statistics
  (``stats.extra["distributed"]["resilience"]``) and the checkpoint
  ledger's cross-resume history (a shard's failure count survives
  ``--resume``, so a shard that keeps killing workers across restarts is
  quarantined instead of re-breaking every resumed run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = [
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "ResilienceLog",
    "merge_history",
    "LADDER_RUNGS",
]

#: The degradation ladder, in escalation order.  ``warm`` is the configured
#: pool; each pool break climbs one rung: respawn the same fleet, then a
#: fresh dedicated pool, then inline execution in the coordinator.
LADDER_RUNGS = ("warm", "respawned", "fresh", "inline")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retry/backoff/deadline policy of one run.

    Attributes
    ----------
    max_attempts:
        Total execution attempts per shard (first run included) before the
        shard is quarantined and finished inline.  Attempt counts persist
        in the checkpoint ledger, so the budget spans resumes.
    backoff_seconds / backoff_factor / max_backoff_seconds:
        Exponential backoff before re-dispatching failed shards:
        ``backoff(n) = backoff_seconds * backoff_factor**(n-1)`` capped at
        ``max_backoff_seconds`` (``n`` = how often the shard has failed).
        Pure pacing — results never depend on it.
    shard_deadline_seconds:
        Heartbeat watchdog deadline: with shards in flight, this long
        without *any* shard completing declares the pool hung (workers are
        killed and in-flight shards re-dispatched).  ``None`` disables the
        watchdog (a hung worker then blocks forever, as before).
    poll_seconds:
        Watchdog heartbeat-check interval (bounded by the deadline).
    max_pool_breaks:
        Pool breaks tolerated before abandoning process pools entirely and
        finishing every remaining shard inline (the ladder's last rung).
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 2.0
    shard_deadline_seconds: float | None = None
    poll_seconds: float = 0.25
    max_pool_breaks: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.shard_deadline_seconds is not None and (
            self.shard_deadline_seconds <= 0
        ):
            raise ValueError("shard_deadline_seconds must be positive")
        if self.poll_seconds <= 0:
            raise ValueError("poll_seconds must be positive")
        if self.max_pool_breaks < 1:
            raise ValueError("max_pool_breaks must be positive")

    def backoff(self, failures: int) -> float:
        """Deterministic backoff before re-dispatching a shard.

        ``failures`` is the shard's failure count so far (>= 1 at the
        first retry).
        """
        if failures < 1:
            return 0.0
        delay = self.backoff_seconds * self.backoff_factor ** (failures - 1)
        return min(delay, self.max_backoff_seconds)

    def exhausted(self, attempts: int) -> bool:
        """Whether ``attempts`` executions used up this shard's budget."""
        return attempts >= self.max_attempts

    def wait_timeout(self) -> float | None:
        """The pool-wait timeout implementing the watchdog poll."""
        if self.shard_deadline_seconds is None:
            return None
        return min(self.poll_seconds, self.shard_deadline_seconds)


#: The policy distributed runs use when the caller passes none.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass
class ResilienceLog:
    """What one distributed run's fault-tolerance machinery actually did.

    ``attempts`` counts *failed* attempts per shard (a shard that succeeds
    first try never appears); seeded from the checkpoint ledger on resume
    so budgets span restarts.
    """

    attempts: Dict[int, int] = field(default_factory=dict)
    quarantined: List[int] = field(default_factory=list)
    retries: int = 0
    watchdog_kills: int = 0
    pool_breaks: int = 0
    ladder: str = LADDER_RUNGS[0]

    def record_failure(self, shard_id: int) -> int:
        """Count one failed attempt; returns the shard's failure total."""
        count = self.attempts.get(int(shard_id), 0) + 1
        self.attempts[int(shard_id)] = count
        return count

    def record_quarantine(self, shard_id: int) -> None:
        if int(shard_id) not in self.quarantined:
            self.quarantined.append(int(shard_id))

    @property
    def faulted(self) -> bool:
        """Whether any fault-handling path ran at all."""
        return bool(
            self.attempts
            or self.quarantined
            or self.retries
            or self.watchdog_kills
            or self.pool_breaks
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (run statistics, ledger history entries)."""
        return {
            "retries": int(self.retries),
            "watchdog_kills": int(self.watchdog_kills),
            "pool_breaks": int(self.pool_breaks),
            "ladder": self.ladder,
            "quarantined": sorted(self.quarantined),
            "attempts": {
                str(shard): int(count)
                for shard, count in sorted(self.attempts.items())
            },
        }

    @classmethod
    def from_history(cls, history: Dict[str, object] | None) -> "ResilienceLog":
        """Seed a fresh log from the ledger's persisted attempt history."""
        log = cls()
        if history:
            for shard, count in (history.get("attempts") or {}).items():
                log.attempts[int(shard)] = int(count)
            for shard in history.get("quarantined") or []:
                log.quarantined.append(int(shard))
        return log


def merge_history(
    history: Dict[str, object] | None, run_id: str | None, log: ResilienceLog
) -> Dict[str, object]:
    """Fold one run's log into the ledger's cross-resume history document.

    The history keeps cumulative per-shard attempt counts and quarantine
    membership (what :meth:`ResilienceLog.from_history` reloads) plus an
    append-only per-run event list correlated by ``run_id``.
    """
    doc: Dict[str, object] = dict(history or {})
    attempts = {
        str(shard): int(count)
        for shard, count in (doc.get("attempts") or {}).items()
    }
    for shard, count in log.attempts.items():
        attempts[str(shard)] = max(attempts.get(str(shard), 0), int(count))
    quarantined = {int(s) for s in (doc.get("quarantined") or [])}
    quarantined.update(log.quarantined)
    runs = list(doc.get("runs") or [])
    if log.faulted:
        runs.append({"run_id": run_id, **log.to_dict()})
    doc.update(
        {
            "attempts": attempts,
            "quarantined": sorted(quarantined),
            "runs": runs,
        }
    )
    return doc
