"""Crash-safe checkpoint ledgers for sharded runs.

A checkpoint is a single JSON document updated with an atomic
write-temp-then-:func:`os.replace` cycle after every shard completion, so a
killed run (OOM, pre-emption, ``kill -9``) always leaves either the previous
or the next consistent ledger on disk — never a torn file.  The ledger
records

* a **fingerprint** of the run (dataset digest, candidate-source *content*
  identity, search configuration, shard boundaries) so ``--resume`` refuses
  to splice partials from a different run into the result;
* the **per-shard records**: shard id, partial top-k rows, item/op/traffic
  counts and a reference to the shard's per-SNP screening minima, which
  live as write-once binary side files under ``<ledger>.minima/`` (keeping
  the per-shard JSON rewrite proportional to the shard count);
* free-form **state** sections used by non-sharded consumers (the
  permutation stage stores its RNG bit-generator state and exceedance
  counters here).

Scores are stored as JSON numbers; Python's ``json`` encodes floats via
``repr``, which round-trips ``float64`` exactly, so a resumed run merges
bit-identical values.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Dict, Iterable, List

import numpy as np

from repro.datasets.dataset import GenotypeDataset
from repro.distributed.shards import Shard

__all__ = [
    "dataset_fingerprint",
    "fingerprint_divergence",
    "JsonLedger",
    "CheckpointStore",
]

#: Ledger format version; bumped on incompatible layout changes.
LEDGER_VERSION = 1


def dataset_fingerprint(dataset: GenotypeDataset) -> Dict[str, object]:
    """Content digest of a dataset (shape plus SHA-1 of the raw arrays)."""
    return {
        "n_snps": int(dataset.n_snps),
        "n_samples": int(dataset.n_samples),
        "sha1": dataset.content_digest(),
    }


#: Friendly names of the standard fingerprint components, used when a
#: resume is refused so the error names *what* diverged instead of a flat
#: "fingerprint mismatch".
_COMPONENT_NAMES = {
    "dataset": "dataset",
    "dataset.sha1": "dataset content digest",
    "dataset.n_snps": "dataset SNP count",
    "dataset.n_samples": "dataset sample count",
    "source": "candidate source",
    "search": "search configuration",
    "config": "configuration",
}


def fingerprint_divergence(
    expected: Dict[str, object], found: Dict[str, object]
) -> List[str]:
    """Name each fingerprint component where a ledger diverges from a run.

    Walks both documents recursively and returns human-readable lines like
    ``"dataset content digest: ledger has 3f2a…, this run has 91bc…"`` —
    the substance of the resume-refusal error message.
    """

    def walk(exp, got, path: str, out: List[str]) -> None:
        if isinstance(exp, dict) and isinstance(got, dict):
            for key in sorted(set(exp) | set(got), key=str):
                child = f"{path}.{key}" if path else str(key)
                if key not in exp:
                    out.append(f"{_name(child)}: only in the ledger ({_short(got[key])})")
                elif key not in got:
                    out.append(f"{_name(child)}: only in this run ({_short(exp[key])})")
                else:
                    walk(exp[key], got[key], child, out)
            return
        if exp != got:
            out.append(
                f"{_name(path)}: ledger has {_short(got)}, "
                f"this run has {_short(exp)}"
            )

    def _name(path: str) -> str:
        return _COMPONENT_NAMES.get(path, path)

    def _short(value) -> str:
        text = json.dumps(value, sort_keys=True, default=str)
        return text if len(text) <= 60 else text[:57] + "..."

    lines: List[str] = []
    walk(expected, found, "", lines)
    return lines


class JsonLedger:
    """Atomic JSON document on disk (the base of every checkpoint format).

    The in-memory document is the single source of truth between writes;
    :meth:`write` serialises it to a temporary file in the same directory
    and atomically replaces the target, so readers (and crashed writers)
    only ever observe complete documents.  :meth:`begin` implements the
    shared open-or-initialise flow (version stamp + fingerprint
    validation) every concrete ledger — shard, pipeline stage-output,
    permutation RNG — builds on.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.doc: Dict[str, object] = {}

    def begin(
        self,
        fingerprint: Dict[str, object],
        resume: bool = False,
        label: str = "checkpoint",
    ) -> bool:
        """Open an existing ledger or initialise a fresh one.

        Returns ``True`` when ``resume`` found a valid on-disk ledger (its
        document is loaded); returns ``False`` after initialising a fresh
        in-memory document ``{"version", "fingerprint"}`` — the caller adds
        its sections and calls :meth:`write`.  A version or fingerprint
        mismatch raises ``ValueError`` (``label`` names the ledger kind in
        the message) rather than silently splicing state from a different
        run.
        """
        if resume and self.load() is not None:
            if self.doc.get("version") != LEDGER_VERSION:
                raise ValueError(
                    f"{self.path}: {label} version {self.doc.get('version')!r} "
                    f"is not {LEDGER_VERSION}; delete the file to start fresh"
                )
            recorded = self.doc.get("fingerprint")
            if recorded != fingerprint:
                diverged = fingerprint_divergence(
                    fingerprint, recorded if isinstance(recorded, dict) else {}
                )
                detail = "; ".join(diverged) if diverged else "fingerprint differs"
                raise ValueError(
                    f"{self.path}: cannot resume — this {label} belongs to a "
                    f"different run; its fingerprint diverged: {detail}. "
                    "Delete the file to start fresh, or rerun with the "
                    "original configuration."
                )
            return True
        self.doc = {"version": LEDGER_VERSION, "fingerprint": fingerprint}
        return False

    @property
    def exists(self) -> bool:
        """Whether a ledger file is present on disk."""
        return self.path.exists()

    def load(self) -> Dict[str, object] | None:
        """Read the on-disk document into memory (``None`` when absent)."""
        if not self.path.exists():
            return None
        with self.path.open("r", encoding="utf-8") as fh:
            self.doc = json.load(fh)
        return self.doc

    def write(self) -> None:
        """Atomically persist the in-memory document."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            prefix=self.path.name + ".", suffix=".tmp", dir=self.path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(self.doc, fh, indent=1)
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def delete(self) -> None:
        """Remove the ledger file (ignored when absent)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def note_run(self, run_id: str | None) -> None:
        """Append a run identity to the ledger's run history and persist.

        Exported trace files carry the same ``run_id`` in their manifest,
        so every run — fresh or resumed — that touched this ledger stays
        correlatable with its telemetry.  The history lives outside the
        fingerprint, so resuming under a new ``run_id`` never invalidates
        the ledger.
        """
        if not run_id:
            return
        runs = self.doc.setdefault("run_ids", [])
        if run_id not in runs:
            runs.append(run_id)
            self.write()


class CheckpointStore(JsonLedger):
    """Shard ledger of one distributed run.

    Life cycle: :meth:`begin` either starts a fresh ledger or — under
    ``resume=True`` — validates the on-disk fingerprint and returns the
    already-completed shard records; :meth:`record_shard` appends one
    shard's partial result and persists atomically; :meth:`finish` marks the
    run complete (purely informational — a complete ledger resumes to a
    no-op merge).
    """

    def begin(
        self,
        fingerprint: Dict[str, object],
        shards: Iterable[Shard],
        resume: bool = False,
    ) -> Dict[int, Dict[str, object]]:
        """Open the ledger and return the records of already-done shards.

        A fresh run (or ``resume=True`` with no ledger on disk) starts
        empty.  Resuming an existing ledger requires its fingerprint to
        match exactly; anything else raises ``ValueError`` rather than
        silently merging partials of a different dataset, candidate space
        or shard geometry.
        """
        boundaries = [[s.start, s.stop] for s in shards]
        if super().begin(fingerprint, resume=resume, label="shard checkpoint"):
            planned = self.doc.get("shards_planned")
            if planned != boundaries:
                if not isinstance(planned, list):
                    detail = "the ledger records no shard plan"
                elif len(planned) != len(boundaries):
                    detail = (
                        f"the ledger planned {len(planned)} shards, this run "
                        f"plans {len(boundaries)} (different worker count, "
                        "shard strategy or candidate total)"
                    )
                else:
                    diverged = next(
                        i
                        for i, (a, b) in enumerate(zip(planned, boundaries))
                        if a != b
                    )
                    detail = (
                        f"shard {diverged} covers ranks "
                        f"{planned[diverged]} in the ledger but "
                        f"{boundaries[diverged]} in this run"
                    )
                raise ValueError(
                    f"{self.path}: cannot resume — shard boundaries diverged: "
                    f"{detail}. Delete the checkpoint to start fresh, or rerun "
                    "with the original shard plan."
                )
            return self.done_records()
        self.doc.update(
            {
                "shards_planned": boundaries,
                "completed": False,
                "shards": {},
                "state": {},
            }
        )
        # A fresh ledger owns its side-file directory; drop leftovers of a
        # previous (overwritten) run so stale minima can never be read.
        shutil.rmtree(self.minima_dir, ignore_errors=True)
        self.write()
        return {}

    def record_shard(self, shard_id: int, record: Dict[str, object]) -> None:
        """Persist one completed shard's partial result atomically.

        Dense per-SNP minima payloads are written once to a side file under
        ``<ledger>.minima/`` (NPZ-style binary, atomic rename) and only
        referenced from the JSON document — the per-shard ledger rewrite
        stays proportional to the shard count, not to ``n_shards x
        n_snps``, on whole-genome screens.
        """
        record = dict(record)
        minima = record.pop("snp_minima", None)
        if minima is not None:
            record["snp_minima_file"] = self._write_minima(shard_id, minima)
        self.doc.setdefault("shards", {})[str(int(shard_id))] = record
        self.write()

    @property
    def minima_dir(self) -> Path:
        """Directory of the per-shard minima side files."""
        return self.path.with_name(self.path.name + ".minima")

    def _write_minima(self, shard_id: int, payload) -> str:
        """Atomically write one shard's minima array; returns the file name."""
        self.minima_dir.mkdir(parents=True, exist_ok=True)
        array = np.array(
            [np.inf if value is None else float(value) for value in payload],
            dtype=np.float64,
        )
        name = f"shard{int(shard_id):05d}.npy"
        fd, tmp_path = tempfile.mkstemp(
            prefix=name + ".", suffix=".tmp", dir=self.minima_dir
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.save(fh, array)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_path, self.minima_dir / name)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return name

    def shard_minima(self, shard_id: int, record: Dict[str, object]):
        """A restored shard's per-SNP minima (``None`` when not collected)."""
        if record.get("snp_minima") is not None:
            return record["snp_minima"]  # inline payload (legacy/small runs)
        name = record.get("snp_minima_file")
        if name is None:
            return None
        path = self.minima_dir / str(name)
        if not path.exists():
            raise ValueError(
                f"{self.path}: ledger records minima file {name} for shard "
                f"{shard_id} but it is missing; delete the checkpoint and "
                "restart"
            )
        return np.load(path)

    def done_records(self) -> Dict[int, Dict[str, object]]:
        """Completed shard records keyed by integer shard id."""
        return {
            int(shard_id): record
            for shard_id, record in self.doc.get("shards", {}).items()
        }

    def done_ids(self) -> List[int]:
        """Sorted ids of the completed shards."""
        return sorted(self.done_records())

    def finish(self) -> None:
        """Mark the run complete."""
        self.doc["completed"] = True
        self.write()

    # -- free-form state (RNG/permutation progress, ...) -------------------
    def get_state(self, key: str):
        """Read a free-form state entry (``None`` when absent)."""
        return self.doc.get("state", {}).get(key)

    def set_state(self, key: str, value) -> None:
        """Persist a free-form state entry atomically."""
        self.doc.setdefault("state", {})[key] = value
        self.write()
