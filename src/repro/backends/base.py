"""Execution-backend interface of the table-construction hot loop.

A backend implements the two kernel-family contracts of
:mod:`repro.core.approaches._kernels` — the naïve three-plane kernel and the
phenotype-split kernel — over packed bit-planes in either machine-word
layout.  Backends are *pure execution*: they return exact ``int64``
frequency counts and charge nothing.  All §IV instruction/traffic
accounting stays in the approach layer (modelled per paper word), so the
dynamic instruction counts, CARM traffic and performance-model inputs are
identical whichever backend produced the tables.

The contracts mirror the reference kernels bit for bit:

* ``naive_tables(planes, phenotype_words, combos)`` —
  ``(n_snps, 3, W)`` planes over all samples plus the packed phenotype →
  ``(n_combos, 3^k, 2)`` tables;
* ``split_class_counts(class_planes, padding_mask, combos)`` —
  ``(n_snps, 2, W)`` per-class planes (genotype 2 inferred by ``NOR``,
  padding masked off) → ``(n_combos, 3^k)`` counts for that class.

Every backend must be bit-exact against
:func:`repro.core.contingency.contingency_oracle`; the equivalence suite in
``tests/test_backends.py`` enforces this at several orders, both kernel
families and both word layouts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import lru_cache
from typing import ClassVar

import numpy as np

__all__ = ["ExecutionBackend", "cell_digits"]


@lru_cache(maxsize=None)
def cell_digits(order: int) -> np.ndarray:
    """``(3^k, k)`` radix-3 digits of every genotype cell, big-endian.

    Row ``c`` holds the genotype value of each combination position for
    cell ``c`` under the canonical cell order of
    :func:`repro.core.contingency.combination_cell_index` (the first SNP of
    the combination is the most significant digit).  Compiled backends
    consume this table instead of re-deriving the digit decomposition in
    their inner loops.
    """
    cells = 3**order
    digits = np.empty((cells, order), dtype=np.int64)
    for c in range(cells):
        value = c
        for t in range(order - 1, -1, -1):
            digits[c, t] = value % 3
            value //= 3
    digits.setflags(write=False)
    return digits


class ExecutionBackend(ABC):
    """One way of executing the popcount+contingency hot loop.

    Subclasses define the class attributes ``name`` (registry key),
    ``kind`` (``"cpu"`` or ``"gpu"``) and ``description`` and implement the
    two kernel-family methods.  Instances are stateless and shared
    process-wide (the registry hands out singletons); optional-dependency
    backends must import their dependency lazily so that merely importing
    :mod:`repro.backends` never requires numba or cupy.
    """

    #: Registry key, e.g. ``"numba"``.
    name: ClassVar[str] = "abstract"
    #: Device family the backend executes on.
    kind: ClassVar[str] = "cpu"
    #: One-line description used by ``repro backends`` and the docs.
    description: ClassVar[str] = ""
    #: Whether this is the always-available NumPy reference.  The blocked
    #: approach keeps its budgeted pass-splitting only for the reference
    #: backend (compiled kernels stream words with O(1) transients).
    is_reference: ClassVar[bool] = False

    # -- availability ----------------------------------------------------------
    @classmethod
    def is_available(cls) -> bool:
        """Whether the backend can execute on this host (deps importable)."""
        return cls.availability()[0]

    @classmethod
    @abstractmethod
    def availability(cls) -> tuple[bool, str]:
        """``(available, detail)`` — version string or the import failure."""

    @classmethod
    def version(cls) -> str | None:
        """Version of the backing library, or ``None`` when unavailable."""
        ok, detail = cls.availability()
        return detail if ok else None

    # -- kernel contracts ------------------------------------------------------
    @abstractmethod
    def naive_tables(
        self,
        planes: np.ndarray,
        phenotype_words: np.ndarray,
        combos: np.ndarray,
    ) -> np.ndarray:
        """``(n_combos, 3^k, 2)`` tables from the naïve three-plane encoding."""

    @abstractmethod
    def split_class_counts(
        self,
        class_planes: np.ndarray,
        padding_mask: np.ndarray,
        combos: np.ndarray,
    ) -> np.ndarray:
        """``(n_combos, 3^k)`` one-class counts from the split encoding."""

    def split_tables(
        self,
        control_planes: np.ndarray,
        case_planes: np.ndarray,
        control_mask: np.ndarray,
        case_mask: np.ndarray,
        combos: np.ndarray,
    ) -> np.ndarray:
        """``(n_combos, 3^k, 2)`` tables from both phenotype classes."""
        controls = self.split_class_counts(control_planes, control_mask, combos)
        cases = self.split_class_counts(case_planes, case_mask, combos)
        return np.stack([controls, cases], axis=-1)

    # -- fused build+score -----------------------------------------------------
    def score_combinations(
        self,
        family: str,
        combos: np.ndarray,
        objective,
        *,
        planes: np.ndarray | None = None,
        phenotype_words: np.ndarray | None = None,
        control_planes: np.ndarray | None = None,
        case_planes: np.ndarray | None = None,
        control_mask: np.ndarray | None = None,
        case_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Fused build+score: fold each combination's table into its score.

        ``objective`` is any object with ``score(tables) -> scores`` (and
        optionally ``fused_spec()``); the return value is the ``(n_combos,)``
        float64 score vector, bit-identical to materializing the tables and
        scoring them separately.

        This default *is* the tiled single-materialization fast path: it
        builds the table batch with this backend's own (bit-exact) kernels
        and scores it in one pass.  Callers tile the combination batch into
        SNP blocks first, so the materialization here is per-tile — the
        chunk-wide ``(n_combos, 3^k, 2)`` array of the classic path is never
        allocated.  Compiled backends override this to fold supported
        objectives straight into the counting loop (no table at all).
        """
        if family == "naive":
            tables = self.naive_tables(planes, phenotype_words, combos)
        elif family == "split":
            tables = self.split_tables(
                control_planes, case_planes, control_mask, case_mask, combos
            )
        else:
            raise ValueError(
                f"unknown kernel family {family!r}; expected 'naive' or 'split'"
            )
        return objective.score(tables)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, kind={self.kind!r})"
