"""Execution-backend registry.

The table-construction hot loop of every CPU approach runs on a pluggable
:class:`~repro.backends.base.ExecutionBackend`:

* ``numpy`` — the always-available vectorised reference (bit-exactness
  oracle for everything else);
* ``numba`` — JIT-compiled ``nopython`` + ``prange`` kernels
  (:mod:`repro.backends.numba_backend`);
* ``cupy`` — CUDA ``RawKernel`` execution on a physical device
  (:mod:`repro.backends.cupy_backend`; :mod:`repro.gpusim` stays the
  modelled twin for §IV counter accounting);
* ``auto`` — ``numba`` when importable, else ``numpy`` (``cupy`` is
  explicit opt-in: a real GPU changes where the data lives, never
  silently).

Selection flows through ``DetectorConfig(backend=...)`` / the CLI's
``--backend`` and reaches every approach instance a detector builds —
both lanes of a heterogeneous plan and the distributed worker processes.
The ``REPRO_BACKEND`` environment variable supplies the default when no
explicit selection is made.  Requesting an optional backend on a host
without the dependency degrades gracefully to ``numpy`` with a warning
(the §IV accounting is backend-independent, so results are unchanged).

All backends return bit-identical ``int64`` tables; op/traffic charging
stays in the approach layer, per paper (32-bit) word, whichever backend
executes.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, List, Type

from repro.backends.base import ExecutionBackend, cell_digits
from repro.backends.calibrate import (
    CalibrationRecord,
    CalibrationStore,
    calibrate,
    calibration_fingerprint,
    measured_throughput,
    run_probe,
)
from repro.backends.cupy_backend import CupyBackend
from repro.backends.numba_backend import NumbaBackend
from repro.backends.numpy_backend import NumpyBackend

__all__ = [
    "ExecutionBackend",
    "NumpyBackend",
    "NumbaBackend",
    "CupyBackend",
    "BACKENDS",
    "VALID_BACKEND_NAMES",
    "BACKEND_ENV",
    "check_backend_name",
    "default_backend_name",
    "resolve_backend_name",
    "get_backend",
    "list_backends",
    "cell_digits",
    "CalibrationRecord",
    "CalibrationStore",
    "calibrate",
    "calibration_fingerprint",
    "measured_throughput",
    "run_probe",
]

#: Environment variable supplying the default backend selection.
BACKEND_ENV = "REPRO_BACKEND"

#: Registry of backend classes by canonical name.
BACKENDS: Dict[str, Type[ExecutionBackend]] = {
    cls.name: cls for cls in (NumpyBackend, NumbaBackend, CupyBackend)
}

#: Names accepted by every selection surface (config, CLI, environment).
VALID_BACKEND_NAMES = ("auto",) + tuple(sorted(BACKENDS))

#: Process-wide backend singletons (backends are stateless or own caches
#: that benefit from sharing — compiled kernels, resident device arrays).
_INSTANCES: Dict[str, ExecutionBackend] = {}


def check_backend_name(name: str) -> str:
    """Validate a backend name, returning the canonical lowercase form.

    Raises a friendly :class:`ValueError` naming the valid values instead
    of failing deep inside kernel dispatch.
    """
    if isinstance(name, ExecutionBackend):
        return name.name
    key = str(name).strip().lower()
    if key not in VALID_BACKEND_NAMES:
        raise ValueError(
            f"unknown execution backend {name!r}; "
            f"valid values: {', '.join(VALID_BACKEND_NAMES)}"
        )
    return key


def default_backend_name() -> str:
    """The selection used when none is configured (``REPRO_BACKEND`` or auto)."""
    forced = os.environ.get(BACKEND_ENV, "").strip()
    if forced:
        try:
            return check_backend_name(forced)
        except ValueError:
            raise ValueError(
                f"{BACKEND_ENV}={forced!r} is not a known execution backend; "
                f"valid values: {', '.join(VALID_BACKEND_NAMES)}"
            ) from None
    return "auto"


def resolve_backend_name(name: str | None = None) -> str:
    """Resolve a selection (or the default) to a concrete, available name.

    ``auto`` prefers ``numba`` and falls back to ``numpy``; an explicitly
    requested optional backend that is unavailable also resolves to
    ``numpy`` (the graceful-degradation contract — results are identical).
    """
    key = check_backend_name(name) if name is not None else default_backend_name()
    if key == "auto":
        return "numba" if NumbaBackend.is_available() else "numpy"
    if not BACKENDS[key].is_available():
        return "numpy"
    return key


def get_backend(name: "str | ExecutionBackend | None" = None) -> ExecutionBackend:
    """The backend instance for a selection (instances pass through).

    ``None`` uses the configured default (``REPRO_BACKEND``, else auto).
    Requesting an unavailable optional backend warns once per call site
    and returns the NumPy reference, so a script written for a
    numba-equipped host still runs — bit-identically — anywhere.
    """
    if isinstance(name, ExecutionBackend):
        return name
    requested = check_backend_name(name) if name is not None else default_backend_name()
    resolved = resolve_backend_name(requested)
    if requested not in ("auto", resolved):
        _, detail = BACKENDS[requested].availability()
        warnings.warn(
            f"execution backend {requested!r} is not available on this host "
            f"({detail}); falling back to 'numpy'",
            RuntimeWarning,
            stacklevel=2,
        )
    instance = _INSTANCES.get(resolved)
    if instance is None:
        instance = BACKENDS[resolved]()
        _INSTANCES[resolved] = instance
    return instance


def list_backends() -> List[dict]:
    """Availability report of every registered backend (CLI / docs)."""
    rows = []
    for name in sorted(BACKENDS):
        cls = BACKENDS[name]
        available, detail = cls.availability()
        rows.append(
            {
                "name": name,
                "kind": cls.kind,
                "available": available,
                "detail": detail,
                "description": cls.description,
            }
        )
    return rows
