"""The NumPy reference backend.

Delegates straight to the vectorised kernels of
:mod:`repro.core.approaches._kernels` (without charging — the approach
layer owns the op/traffic accounting).  Always available; every other
backend is validated bit-exact against it, and the registry falls back to
it when an optional dependency is absent.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import ExecutionBackend
from repro.core.approaches._kernels import naive_tables, split_class_counts

__all__ = ["NumpyBackend"]


class NumpyBackend(ExecutionBackend):
    """Vectorised NumPy kernels (the bit-exactness reference)."""

    name = "numpy"
    kind = "cpu"
    description = "vectorised NumPy reference kernels (always available)"
    is_reference = True

    @classmethod
    def availability(cls) -> tuple[bool, str]:
        return True, np.__version__

    def naive_tables(
        self,
        planes: np.ndarray,
        phenotype_words: np.ndarray,
        combos: np.ndarray,
    ) -> np.ndarray:
        return naive_tables(planes, phenotype_words, combos, counter=None)

    def split_class_counts(
        self,
        class_planes: np.ndarray,
        padding_mask: np.ndarray,
        combos: np.ndarray,
    ) -> np.ndarray:
        return split_class_counts(class_planes, padding_mask, combos)
