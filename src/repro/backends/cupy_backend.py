"""CuPy backend: the table kernels on a real CUDA device.

One CUDA block computes one ``(combination, genotype cell)`` pair: the
block's threads stride the packed words, AND the selected planes (the
split family infers genotype 2 with ``NOR`` + padding mask on the fly),
accumulate ``__popc``/``__popcll`` results in registers and reduce through
shared memory.  The grid is ``(n_combos, 3^k)``, so a 2048-combination
chunk at ``k = 3`` launches 55k independent blocks — ample occupancy
without inter-block synchronisation, exactly the thread-per-triplet
independence of the paper's Algorithm 2.

Host planes are uploaded once per (array, device) pair through a small
keyed cache, so chunked detection re-uses the resident planes instead of
re-transferring them for every scheduler chunk.  Results come back as host
``int64`` counts, bit-exact with the NumPy reference.

:mod:`repro.gpusim` remains the *modelled* twin: it still owns the
coalescing/transaction accounting of §IV whatever backend executes, and the
``gpu-v*`` approaches keep running on it.  This backend plugs the split
kernel of the ``cpu-v2+`` approaches into a physical device instead.

Everything cupy is imported lazily; importing this module never requires a
GPU or the cupy package.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.backends.base import ExecutionBackend, cell_digits
from repro.bitops.packing import layout_of

__all__ = ["CupyBackend"]

#: Threads per block of the reduction kernels (power of two).
_BLOCK = 128

_KERNEL_SOURCE = r"""
extern "C" {{

__global__ void split_counts(
    const {word}* __restrict__ planes,
    const {word}* __restrict__ mask,
    const long long* __restrict__ combos,
    const long long* __restrict__ digits,
    long long* __restrict__ out,
    const int n_words,
    const int order,
    const int n_cells)
{{
    const int combo = blockIdx.x;
    const int cell = blockIdx.y;
    const long long* snps = combos + (long long)combo * order;
    const long long* dig = digits + (long long)cell * order;
    long long acc = 0;
    for (int w = threadIdx.x; w < n_words; w += blockDim.x) {{
        {word} value = ({word})(~({word})0);
        for (int t = 0; t < order; ++t) {{
            const {word}* snp = planes + snps[t] * 2LL * n_words;
            const {word} p0 = snp[w];
            const {word} p1 = snp[n_words + w];
            const long long d = dig[t];
            const {word} plane =
                (d == 0) ? p0 :
                (d == 1) ? p1 : ({word})(~(p0 | p1) & mask[w]);
            value &= plane;
        }}
        acc += {popc}(value);
    }}
    __shared__ long long partial[{block}];
    partial[threadIdx.x] = acc;
    __syncthreads();
    for (int stride = {block} / 2; stride > 0; stride >>= 1) {{
        if (threadIdx.x < stride)
            partial[threadIdx.x] += partial[threadIdx.x + stride];
        __syncthreads();
    }}
    if (threadIdx.x == 0)
        out[(long long)combo * n_cells + cell] = partial[0];
}}

__global__ void naive_tables(
    const {word}* __restrict__ planes,
    const {word}* __restrict__ phen,
    const long long* __restrict__ combos,
    const long long* __restrict__ digits,
    long long* __restrict__ out,
    const int n_words,
    const int order,
    const int n_cells)
{{
    const int combo = blockIdx.x;
    const int cell = blockIdx.y;
    const long long* snps = combos + (long long)combo * order;
    const long long* dig = digits + (long long)cell * order;
    long long controls = 0;
    long long cases = 0;
    for (int w = threadIdx.x; w < n_words; w += blockDim.x) {{
        {word} value = ({word})(~({word})0);
        for (int t = 0; t < order; ++t) {{
            const {word}* snp = planes + snps[t] * 3LL * n_words;
            value &= snp[dig[t] * (long long)n_words + w];
        }}
        const {word} ph = phen[w];
        cases += {popc}(({word})(value & ph));
        // Plane padding bits are zero, so ~phenotype cannot count padding.
        controls += {popc}(({word})(value & ({word})~ph));
    }}
    __shared__ long long partial[2 * {block}];
    partial[threadIdx.x] = controls;
    partial[{block} + threadIdx.x] = cases;
    __syncthreads();
    for (int stride = {block} / 2; stride > 0; stride >>= 1) {{
        if (threadIdx.x < stride) {{
            partial[threadIdx.x] += partial[threadIdx.x + stride];
            partial[{block} + threadIdx.x] += partial[{block} + threadIdx.x + stride];
        }}
        __syncthreads();
    }}
    if (threadIdx.x == 0) {{
        const long long base = ((long long)combo * n_cells + cell) * 2LL;
        out[base] = partial[0];
        out[base + 1] = partial[{block}];
    }}
}}

}}
"""


class CupyBackend(ExecutionBackend):
    """Split/naïve table kernels on a physical CUDA device via CuPy."""

    name = "cupy"
    kind = "gpu"
    description = "CUDA RawKernel execution on a real device (via cupy)"

    _availability: tuple[bool, str] | None = None

    #: Compiled RawKernel pairs keyed by layout name.
    _modules: Dict[str, Tuple[object, object]] = {}

    def __init__(self) -> None:
        # Uploaded device planes keyed by (host pointer, shape, dtype); a
        # bounded FIFO so long sweeps over one encoding never re-transfer,
        # while throw-away probe arrays cannot grow device memory unboundedly.
        self._device_cache: Dict[tuple, object] = {}
        self._device_cache_limit = 16

    @classmethod
    def availability(cls) -> tuple[bool, str]:
        if cls._availability is None:
            try:
                import cupy

                cupy.cuda.runtime.getDeviceCount()
                cls._availability = (True, cupy.__version__)
            except Exception as exc:  # pragma: no cover - host-dependent
                cls._availability = (False, f"cupy unavailable ({exc})")
        return cls._availability

    # -- device helpers --------------------------------------------------------
    def _kernels(self, layout_name: str) -> Tuple[object, object]:
        pair = self._modules.get(layout_name)
        if pair is None:
            import cupy

            from repro.telemetry import metric_inc, span_or_null

            word = "unsigned long long" if layout_name == "u64" else "unsigned int"
            popc = "__popcll" if layout_name == "u64" else "__popc"
            source = _KERNEL_SOURCE.format(word=word, popc=popc, block=_BLOCK)
            with span_or_null(
                "backend.compile", backend="cupy", layout=layout_name
            ):
                module = cupy.RawModule(code=source)
                pair = (
                    module.get_function("split_counts"),
                    module.get_function("naive_tables"),
                )
            metric_inc("backend.compiles")
            self._modules[layout_name] = pair
        return pair

    def _device_array(self, host: np.ndarray):
        """Upload ``host`` once; later calls return the resident copy."""
        import cupy

        host = np.ascontiguousarray(host)
        key = (host.__array_interface__["data"][0], host.shape, host.dtype.str)
        cached = self._device_cache.get(key)
        if cached is None:
            if len(self._device_cache) >= self._device_cache_limit:
                self._device_cache.pop(next(iter(self._device_cache)))
            cached = cupy.asarray(host)
            self._device_cache[key] = cached
        return cached

    # -- kernel contracts ------------------------------------------------------
    def naive_tables(
        self,
        planes: np.ndarray,
        phenotype_words: np.ndarray,
        combos: np.ndarray,
    ) -> np.ndarray:
        import cupy

        combos = np.ascontiguousarray(combos, dtype=np.int64)
        n_combos, order = combos.shape
        cells = 3 ** int(order)
        out = np.zeros((n_combos, cells, 2), dtype=np.int64)
        if n_combos == 0 or planes.shape[2] == 0:
            return out
        layout = layout_of(planes)
        _, kernel = self._kernels(layout.name)
        d_out = cupy.zeros((n_combos, cells, 2), dtype=cupy.int64)
        kernel(
            (n_combos, cells),
            (_BLOCK,),
            (
                self._device_array(planes),
                self._device_array(np.asarray(phenotype_words, dtype=planes.dtype)),
                cupy.asarray(combos),
                cupy.asarray(cell_digits(int(order))),
                d_out,
                np.int32(planes.shape[2]),
                np.int32(order),
                np.int32(cells),
            ),
        )
        return cupy.asnumpy(d_out)

    def split_class_counts(
        self,
        class_planes: np.ndarray,
        padding_mask: np.ndarray,
        combos: np.ndarray,
    ) -> np.ndarray:
        import cupy

        combos = np.ascontiguousarray(combos, dtype=np.int64)
        n_combos, order = combos.shape
        cells = 3 ** int(order)
        out = np.zeros((n_combos, cells), dtype=np.int64)
        if n_combos == 0 or class_planes.shape[2] == 0:
            return out
        layout = layout_of(class_planes)
        kernel, _ = self._kernels(layout.name)
        d_out = cupy.zeros((n_combos, cells), dtype=cupy.int64)
        kernel(
            (n_combos, cells),
            (_BLOCK,),
            (
                self._device_array(class_planes),
                self._device_array(
                    np.asarray(padding_mask, dtype=class_planes.dtype)
                ),
                cupy.asarray(combos),
                cupy.asarray(cell_digits(int(order))),
                d_out,
                np.int32(class_planes.shape[2]),
                np.int32(order),
                np.int32(cells),
            ),
        )
        return cupy.asnumpy(d_out)
