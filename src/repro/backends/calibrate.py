"""Micro-calibration: measured per-backend throughput for the CARM split.

The CARM-ratio policy sizes the CPU/GPU share of a heterogeneous plan by
device throughput.  The analytical models price the paper's catalogued
hardware; this module measures the *actual* host instead: a small probe
dataset is encoded, the backend's kernel is timed over a combination
batch, and the resulting combos/s (and the paper's combinations x samples
elements/s) are persisted to a per-host JSON store.

Records are keyed by a **fingerprint** — host identity, backend name and
version, kernel family, interaction order and word layout — so any change
that could shift throughput (a numba upgrade, a different word width,
another order) misses the store and falls back to the analytical model
until re-calibrated.  The store location defaults to
``~/.cache/repro-epistasis/calibration.json`` and is overridden by the
``REPRO_CALIBRATION_PATH`` environment variable (tests point it at a
temporary file so calibration never leaks between runs).
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List

import numpy as np

from repro.backends.base import ExecutionBackend
from repro.bitops.packing import WordLayout, get_layout

__all__ = [
    "CalibrationRecord",
    "CalibrationStore",
    "calibration_fingerprint",
    "default_store_path",
    "host_identity",
    "run_probe",
    "calibrate",
    "measured_throughput",
]

#: Environment variable overriding the calibration-store path.
STORE_PATH_ENV = "REPRO_CALIBRATION_PATH"

#: Schema version of the store document (bump to invalidate wholesale).
STORE_VERSION = 1

#: Probe shape: small enough to calibrate in well under a second per
#: backend, large enough that per-call dispatch overhead is amortised.
PROBE_SNPS = 48
PROBE_SAMPLES = 4096
PROBE_SEED = 7


def host_identity() -> str:
    """Stable identity of this host for fingerprinting (node + core count)."""
    return f"{platform.node() or 'unknown'}/{os.cpu_count() or 1}c"


def calibration_fingerprint(
    backend: str,
    backend_version: str,
    family: str,
    order: int,
    layout: str,
    host: str | None = None,
) -> str:
    """The store key of one measured configuration.

    Any component changing — a library upgrade, another word layout or
    order, a different machine — produces a different key, which is how
    stale measurements are invalidated (they are simply never found).
    """
    host = host or host_identity()
    return f"{host}|{backend}@{backend_version}|{family}|k{int(order)}|{layout}"


@dataclass
class CalibrationRecord:
    """One measured throughput point of one backend configuration."""

    backend: str
    backend_version: str
    family: str
    order: int
    layout: str
    combos_per_second: float
    elements_per_second: float
    probe_snps: int = PROBE_SNPS
    probe_samples: int = PROBE_SAMPLES
    probe_seconds: float = 0.0
    host: str = field(default_factory=host_identity)

    @property
    def fingerprint(self) -> str:
        return calibration_fingerprint(
            self.backend,
            self.backend_version,
            self.family,
            self.order,
            self.layout,
            host=self.host,
        )


def default_store_path() -> Path:
    """The per-host store path (env override, else the user cache dir)."""
    forced = os.environ.get(STORE_PATH_ENV, "").strip()
    if forced:
        return Path(forced)
    return Path.home() / ".cache" / "repro-epistasis" / "calibration.json"


class CalibrationStore:
    """Per-host JSON store of measured backend throughput.

    The on-disk document is ``{"version": 1, "records": {fingerprint:
    record}}``; writes are atomic (temp file + rename) and read/save
    failures degrade to an empty store (calibration is an optimisation,
    never a correctness dependency).
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else default_store_path()
        self._records: Dict[str, dict] | None = None

    # -- persistence -----------------------------------------------------------
    def _load(self) -> Dict[str, dict]:
        if self._records is None:
            try:
                doc = json.loads(self.path.read_text())
                if doc.get("version") == STORE_VERSION:
                    self._records = dict(doc.get("records", {}))
                else:
                    self._records = {}
            except (OSError, ValueError):
                self._records = {}
        return self._records

    def save(self) -> bool:
        """Atomically persist the store; ``False`` when the path is unwritable."""
        records = self._load()
        doc = {"version": STORE_VERSION, "records": records}
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
            )
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, self.path)
            return True
        except OSError:
            return False

    # -- record access ---------------------------------------------------------
    def get(self, fingerprint: str) -> CalibrationRecord | None:
        raw = self._load().get(fingerprint)
        if raw is None:
            return None
        return CalibrationRecord(**raw)

    def put(self, record: CalibrationRecord, save: bool = True) -> None:
        self._load()[record.fingerprint] = asdict(record)
        if save:
            self.save()

    def lookup(
        self,
        backend: str,
        backend_version: str,
        family: str,
        order: int,
        layout: str,
    ) -> CalibrationRecord | None:
        """Fingerprint-checked lookup for the current host."""
        return self.get(
            calibration_fingerprint(backend, backend_version, family, order, layout)
        )

    def records(self) -> List[CalibrationRecord]:
        return [CalibrationRecord(**raw) for raw in self._load().values()]

    def __len__(self) -> int:
        return len(self._load())


# -- probing -------------------------------------------------------------------


def _probe_dataset(n_snps: int, n_samples: int, seed: int):
    from repro.datasets.synthetic import SyntheticConfig, generate_dataset

    return generate_dataset(
        SyntheticConfig(n_snps=n_snps, n_samples=n_samples, seed=seed)
    )


def _probe_combos(n_snps: int, order: int, limit: int = 4096) -> np.ndarray:
    from itertools import combinations, islice

    return np.array(
        list(islice(combinations(range(n_snps), order), limit)), dtype=np.int64
    )


def run_probe(
    backend: ExecutionBackend,
    family: str = "split",
    order: int = 3,
    layout: WordLayout | str | None = None,
    *,
    n_snps: int = PROBE_SNPS,
    n_samples: int = PROBE_SAMPLES,
    repeats: int = 3,
    seed: int = PROBE_SEED,
    fused: bool = False,
) -> CalibrationRecord:
    """Measure one backend configuration on the probe workload.

    The first (untimed) kernel call absorbs one-off costs — JIT
    compilation, CUDA module build, device upload — so the record reflects
    steady-state throughput; the total wall time including that warm-up is
    reported as ``probe_seconds`` (the cost of calibrating).

    ``fused=True`` probes the fused build+score capability
    (:meth:`~repro.backends.base.ExecutionBackend.score_combinations`
    under the K2 objective) instead of bare table construction; the record
    is keyed under the ``"<family>+fused"`` family so fused and unfused
    measurements never collide in the store.
    """
    from repro.datasets.binarization import BinarizedDataset, PhenotypeSplitDataset

    layout = get_layout(layout)
    dataset = _probe_dataset(n_snps, n_samples, seed)
    combos = _probe_combos(n_snps, order)
    objective = None
    if fused:
        from repro.core.scoring import get_objective

        objective = get_objective("k2")
        objective.prepare(dataset)
    started = time.perf_counter()
    if family == "split":
        split = PhenotypeSplitDataset.from_dataset(dataset, layout=layout)

        if fused:

            def run() -> None:
                backend.score_combinations(
                    "split",
                    combos,
                    objective,
                    control_planes=split.control_planes,
                    case_planes=split.case_planes,
                    control_mask=split.padding_mask(0),
                    case_mask=split.padding_mask(1),
                )

        else:

            def run() -> None:
                backend.split_class_counts(
                    split.control_planes, split.padding_mask(0), combos
                )
                backend.split_class_counts(
                    split.case_planes, split.padding_mask(1), combos
                )

    elif family == "naive":
        binarized = BinarizedDataset.from_dataset(dataset, layout=layout)

        if fused:

            def run() -> None:
                backend.score_combinations(
                    "naive",
                    combos,
                    objective,
                    planes=binarized.planes,
                    phenotype_words=binarized.phenotype_words,
                )

        else:

            def run() -> None:
                backend.naive_tables(
                    binarized.planes, binarized.phenotype_words, combos
                )

    else:
        raise ValueError(f"unknown kernel family {family!r}; use 'split' or 'naive'")

    run()  # warm-up: JIT / module compilation, device upload
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - t0)
    probe_seconds = time.perf_counter() - started
    combos_per_second = len(combos) / max(best, 1e-9)
    return CalibrationRecord(
        backend=backend.name,
        backend_version=backend.version() or "unknown",
        family=f"{family}+fused" if fused else family,
        order=int(order),
        layout=layout.name,
        combos_per_second=combos_per_second,
        elements_per_second=combos_per_second * n_samples,
        probe_snps=n_snps,
        probe_samples=n_samples,
        probe_seconds=probe_seconds,
    )


def calibrate(
    backends: Iterable[str] | None = None,
    *,
    families: Iterable[str] = ("split",),
    orders: Iterable[int] = (3,),
    layout: WordLayout | str | None = None,
    store: CalibrationStore | None = None,
    repeats: int = 3,
) -> List[CalibrationRecord]:
    """Measure every available requested backend and persist the records.

    ``backends=None`` calibrates every *available* registered backend.
    Unavailable backends are skipped silently (calibration is best-effort);
    the records are written to ``store`` (default per-host store) and also
    returned for reporting.
    """
    from repro.backends import BACKENDS, get_backend

    if backends is None:
        names = [n for n, cls in BACKENDS.items() if cls.is_available()]
    else:
        names = list(backends)
    if store is None:  # NOT `store or ...`: an empty store is falsy (len 0)
        store = CalibrationStore()
    records: List[CalibrationRecord] = []
    for name in names:
        backend = get_backend(name)
        if backend.name != name:
            continue  # fell back: don't record the substitute under this name
        for family in families:
            for order in orders:
                record = run_probe(
                    backend, family=family, order=order, layout=layout,
                    repeats=repeats,
                )
                store.put(record, save=False)
                records.append(record)
    store.save()
    return records


def measured_throughput(
    kind: str = "cpu",
    backend: str | None = None,
    *,
    family: str = "split",
    order: int = 3,
    layout: WordLayout | str | None = None,
    store: CalibrationStore | None = None,
) -> float | None:
    """Measured elements/s for a device lane, or ``None`` without a record.

    A ``"cpu"`` lane resolves ``backend`` (default: the backend the
    registry would pick) and looks up its record; a ``"gpu"`` lane looks up
    the ``cupy`` record (gpusim is modelled, never measured).  The lookup
    is fingerprint-checked, so records from other hosts, library versions,
    layouts or orders never match.
    """
    from repro.backends import BACKENDS, resolve_backend_name

    if kind == "gpu":
        name = backend or "cupy"
    else:
        name = resolve_backend_name(backend)
    cls = BACKENDS.get(name)
    if cls is None:
        return None
    version = cls.version() or "unknown"
    if store is None:  # NOT `store or ...`: an empty store is falsy (len 0)
        store = CalibrationStore()
    record = store.lookup(
        name, version, family, int(order), get_layout(layout).name
    )
    if record is None:
        return None
    return record.elements_per_second
