"""Numba-JIT backend: compiled popcount+contingency hot loops.

Both kernel families are compiled to ``nopython`` machine code with
``prange`` parallelism over the combination batch.  The inner loop streams
the packed words of one combination once, keeps the ``3^k`` partial counts
in a thread-local accumulator and resolves each genotype cell through the
precomputed radix-3 digit table of :func:`repro.backends.base.cell_digits`
— no broadcast intermediates, O(1) transient memory per thread whatever
the sample count.

The population count is a SWAR (SIMD-within-a-register) sequence over
``uint64`` with explicitly typed constants: numba follows NumPy's scalar
promotion rules, where a ``uint64``/``int64`` mix decays to ``float64``, so
every mask and shift amount is pinned to ``np.uint64``.  ``uint32`` words
are zero-extended through the same path, which lets one compiled body
serve both word layouts (bit patterns are preserved either way).

Compilation is cached in-process, keyed by ``(family, order, layout)``;
the first call per key pays the JIT cost (~1 s), later calls dispatch
directly.  Everything numba is imported lazily: importing this module on a
host without numba succeeds, and :meth:`NumbaBackend.availability` reports
the reason.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.backends.base import ExecutionBackend, cell_digits
from repro.bitops.packing import layout_of

__all__ = ["NumbaBackend"]

#: Lazily built jit helpers shared by both kernel factories.
_TOOLS: Dict[str, object] = {}

#: Compiled dispatchers keyed by ``(family, order, layout_name)``.
_KERNEL_CACHE: Dict[Tuple[str, int, str], Callable] = {}


def _jit_tools() -> Dict[str, object]:
    """Import numba and build the shared jitted helpers (once)."""
    if _TOOLS:
        return _TOOLS
    from numba import njit

    # SWAR popcount constants, all pinned to uint64 so the arithmetic never
    # decays to float64 under NumPy promotion (uint64 op int64 -> float64).
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    s1 = np.uint64(1)
    s2 = np.uint64(2)
    s4 = np.uint64(4)
    s56 = np.uint64(56)

    @njit(inline="always")
    def popcount(word):
        v = np.uint64(word)
        v = v - ((v >> s1) & m1)
        v = (v & m2) + ((v >> s2) & m2)
        v = (v + (v >> s4)) & m4
        return np.int64((v * h01) >> s56)

    _TOOLS["njit"] = njit
    _TOOLS["popcount"] = popcount
    return _TOOLS


def _compile_split(order: int):
    """Compile the phenotype-split kernel for one interaction order."""
    tools = _jit_tools()
    njit, popcount = tools["njit"], tools["popcount"]
    from numba import prange

    cells = 3**order

    @njit(parallel=True, nogil=True)
    def kernel(planes, mask, combos, digits, out):
        n_combos = combos.shape[0]
        n_words = planes.shape[2]
        for i in prange(n_combos):
            g = np.empty((order, 3), dtype=planes.dtype)
            counts = np.zeros(cells, dtype=np.int64)
            for w in range(n_words):
                for t in range(order):
                    s = combos[i, t]
                    p0 = planes[s, 0, w]
                    p1 = planes[s, 1, w]
                    g[t, 0] = p0
                    g[t, 1] = p1
                    g[t, 2] = ~(p0 | p1) & mask[w]
                for c in range(cells):
                    word = g[0, digits[c, 0]]
                    for t in range(1, order):
                        word &= g[t, digits[c, t]]
                    counts[c] += popcount(word)
            for c in range(cells):
                out[i, c] = counts[c]

    return kernel


def _compile_naive(order: int):
    """Compile the naïve three-plane kernel for one interaction order."""
    tools = _jit_tools()
    njit, popcount = tools["njit"], tools["popcount"]
    from numba import prange

    cells = 3**order

    @njit(parallel=True, nogil=True)
    def kernel(planes, phen, combos, digits, out):
        n_combos = combos.shape[0]
        n_words = planes.shape[2]
        for i in prange(n_combos):
            g = np.empty((order, 3), dtype=planes.dtype)
            counts = np.zeros((cells, 2), dtype=np.int64)
            for w in range(n_words):
                ph = phen[w]
                # Plane padding bits are zero, so AND-ing with ~phenotype is
                # safe even though the complement sets the padding bits.
                nph = ~ph
                for t in range(order):
                    s = combos[i, t]
                    g[t, 0] = planes[s, 0, w]
                    g[t, 1] = planes[s, 1, w]
                    g[t, 2] = planes[s, 2, w]
                for c in range(cells):
                    word = g[0, digits[c, 0]]
                    for t in range(1, order):
                        word &= g[t, digits[c, t]]
                    counts[c, 0] += popcount(word & nph)
                    counts[c, 1] += popcount(word & ph)
            for c in range(cells):
                out[i, c, 0] = counts[c, 0]
                out[i, c, 1] = counts[c, 1]

    return kernel


class NumbaBackend(ExecutionBackend):
    """JIT-compiled CPU kernels (``nopython`` + ``prange``)."""

    name = "numba"
    kind = "cpu"
    description = "Numba nopython+parallel JIT of both kernel families"

    _availability: tuple[bool, str] | None = None

    @classmethod
    def availability(cls) -> tuple[bool, str]:
        if cls._availability is None:
            try:
                import numba

                cls._availability = (True, numba.__version__)
            except Exception as exc:  # pragma: no cover - host-dependent
                cls._availability = (False, f"numba unavailable ({exc})")
        return cls._availability

    # -- compilation cache -----------------------------------------------------
    @classmethod
    def kernel_for(cls, family: str, order: int, layout_name: str) -> Callable:
        """The compiled dispatcher for ``(family, order, layout)``.

        The layout keys the cache for explicitness even though one compiled
        body serves both word widths — each entry owns its specialisation,
        and the calibration fingerprints line up one-to-one with cache keys.
        """
        key = (family, int(order), layout_name)
        kernel = _KERNEL_CACHE.get(key)
        if kernel is None:
            factory = _compile_split if family == "split" else _compile_naive
            kernel = factory(int(order))
            _KERNEL_CACHE[key] = kernel
        return kernel

    # -- kernel contracts ------------------------------------------------------
    def naive_tables(
        self,
        planes: np.ndarray,
        phenotype_words: np.ndarray,
        combos: np.ndarray,
    ) -> np.ndarray:
        combos = np.ascontiguousarray(combos, dtype=np.int64)
        order = int(combos.shape[1])
        out = np.zeros((combos.shape[0], 3**order, 2), dtype=np.int64)
        if combos.shape[0] == 0 or planes.shape[2] == 0:
            return out
        kernel = self.kernel_for("naive", order, layout_of(planes).name)
        kernel(
            np.ascontiguousarray(planes),
            np.ascontiguousarray(phenotype_words),
            combos,
            cell_digits(order),
            out,
        )
        return out

    def split_class_counts(
        self,
        class_planes: np.ndarray,
        padding_mask: np.ndarray,
        combos: np.ndarray,
    ) -> np.ndarray:
        combos = np.ascontiguousarray(combos, dtype=np.int64)
        order = int(combos.shape[1])
        out = np.zeros((combos.shape[0], 3**order), dtype=np.int64)
        if combos.shape[0] == 0 or class_planes.shape[2] == 0:
            return out
        kernel = self.kernel_for("split", order, layout_of(class_planes).name)
        kernel(
            np.ascontiguousarray(class_planes),
            np.ascontiguousarray(padding_mask),
            combos,
            cell_digits(order),
            out,
        )
        return out
