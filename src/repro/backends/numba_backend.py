"""Numba-JIT backend: compiled popcount+contingency hot loops.

Both kernel families are compiled to ``nopython`` machine code with
``prange`` parallelism over the combination batch.  The inner loop streams
the packed words of one combination once, keeps the ``3^k`` partial counts
in a thread-local accumulator and resolves each genotype cell through the
precomputed radix-3 digit table of :func:`repro.backends.base.cell_digits`
— no broadcast intermediates, O(1) transient memory per thread whatever
the sample count.

The population count is a SWAR (SIMD-within-a-register) sequence over
``uint64`` with explicitly typed constants: numba follows NumPy's scalar
promotion rules, where a ``uint64``/``int64`` mix decays to ``float64``, so
every mask and shift amount is pinned to ``np.uint64``.  ``uint32`` words
are zero-extended through the same path, which lets one compiled body
serve both word layouts (bit patterns are preserved either way).

On top of the table-building kernels, the backend compiles **fused
build+score** variants of both families for the K2 and Gini objectives:
the per-combination cell counts stay in thread-local accumulators and are
folded straight into the score (K2 through the per-dataset log-factorial
table, Gini through exact rational cell arithmetic) using a verbatim
replica of NumPy's pairwise float64 summation — no table batch is ever
written, and the scores are bit-identical to materialize-then-score.

Compilation is cached in-process, keyed by ``(family, order, layout)``
(fused kernels add the objective kind to the key); the first call per key
pays the JIT cost (~1 s), later calls dispatch directly.  Everything numba is imported lazily: importing this module on a
host without numba succeeds, and :meth:`NumbaBackend.availability` reports
the reason.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.backends.base import ExecutionBackend, cell_digits
from repro.bitops.packing import layout_of

__all__ = ["NumbaBackend"]

#: Lazily built jit helpers shared by both kernel factories.
_TOOLS: Dict[str, object] = {}

#: Compiled dispatchers keyed by ``(family, order, layout_name)``.
_KERNEL_CACHE: Dict[Tuple[str, int, str], Callable] = {}

#: Compiled fused dispatchers keyed by ``(family, kind, order, layout_name)``.
_FUSED_CACHE: Dict[Tuple[str, str, int, str], Callable] = {}


def _jit_tools() -> Dict[str, object]:
    """Import numba and build the shared jitted helpers (once)."""
    if _TOOLS:
        return _TOOLS
    from numba import njit

    # SWAR popcount constants, all pinned to uint64 so the arithmetic never
    # decays to float64 under NumPy promotion (uint64 op int64 -> float64).
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    s1 = np.uint64(1)
    s2 = np.uint64(2)
    s4 = np.uint64(4)
    s56 = np.uint64(56)

    @njit(inline="always")
    def popcount(word):
        v = np.uint64(word)
        v = v - ((v >> s1) & m1)
        v = (v & m2) + ((v >> s2) & m2)
        v = (v + (v >> s4)) & m4
        return np.int64((v * h01) >> s56)

    # NumPy's pairwise float64 summation, replicated exactly so the fused
    # kernels' per-combination reductions are bit-identical to scoring a
    # materialized table batch with ``arr.sum(axis=-1)``.  The recursion of
    # the original bottoms out after one split for every cell count we sum
    # (``3^k <= 243`` cells at the maximum order 5), so the split is
    # unrolled once instead of recursing.
    @njit(inline="always")
    def pairwise_block(a, lo, n):
        # The <= 128 element body: 8-way accumulators, paired combine.
        if n < 8:
            res = 0.0
            for i in range(n):
                res += a[lo + i]
            return res
        r0 = a[lo]
        r1 = a[lo + 1]
        r2 = a[lo + 2]
        r3 = a[lo + 3]
        r4 = a[lo + 4]
        r5 = a[lo + 5]
        r6 = a[lo + 6]
        r7 = a[lo + 7]
        i = 8
        stop = n - (n % 8)
        while i < stop:
            r0 += a[lo + i]
            r1 += a[lo + i + 1]
            r2 += a[lo + i + 2]
            r3 += a[lo + i + 3]
            r4 += a[lo + i + 4]
            r5 += a[lo + i + 5]
            r6 += a[lo + i + 6]
            r7 += a[lo + i + 7]
            i += 8
        res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        while i < n:
            res += a[lo + i]
            i += 1
        return res

    @njit(inline="always")
    def pairwise_sum(a, n):
        if n <= 128:
            return pairwise_block(a, 0, n)
        n2 = n // 2
        n2 -= n2 % 8
        return pairwise_block(a, 0, n2) + pairwise_block(a, n2, n - n2)

    _TOOLS["njit"] = njit
    _TOOLS["popcount"] = popcount
    _TOOLS["pairwise_sum"] = pairwise_sum
    return _TOOLS


def _compile_split(order: int):
    """Compile the phenotype-split kernel for one interaction order."""
    tools = _jit_tools()
    njit, popcount = tools["njit"], tools["popcount"]
    from numba import prange

    cells = 3**order

    @njit(parallel=True, nogil=True)
    def kernel(planes, mask, combos, digits, out):
        n_combos = combos.shape[0]
        n_words = planes.shape[2]
        for i in prange(n_combos):
            g = np.empty((order, 3), dtype=planes.dtype)
            counts = np.zeros(cells, dtype=np.int64)
            for w in range(n_words):
                for t in range(order):
                    s = combos[i, t]
                    p0 = planes[s, 0, w]
                    p1 = planes[s, 1, w]
                    g[t, 0] = p0
                    g[t, 1] = p1
                    g[t, 2] = ~(p0 | p1) & mask[w]
                for c in range(cells):
                    word = g[0, digits[c, 0]]
                    for t in range(1, order):
                        word &= g[t, digits[c, t]]
                    counts[c] += popcount(word)
            for c in range(cells):
                out[i, c] = counts[c]

    return kernel


def _compile_naive(order: int):
    """Compile the naïve three-plane kernel for one interaction order."""
    tools = _jit_tools()
    njit, popcount = tools["njit"], tools["popcount"]
    from numba import prange

    cells = 3**order

    @njit(parallel=True, nogil=True)
    def kernel(planes, phen, combos, digits, out):
        n_combos = combos.shape[0]
        n_words = planes.shape[2]
        for i in prange(n_combos):
            g = np.empty((order, 3), dtype=planes.dtype)
            counts = np.zeros((cells, 2), dtype=np.int64)
            for w in range(n_words):
                ph = phen[w]
                # Plane padding bits are zero, so AND-ing with ~phenotype is
                # safe even though the complement sets the padding bits.
                nph = ~ph
                for t in range(order):
                    s = combos[i, t]
                    g[t, 0] = planes[s, 0, w]
                    g[t, 1] = planes[s, 1, w]
                    g[t, 2] = planes[s, 2, w]
                for c in range(cells):
                    word = g[0, digits[c, 0]]
                    for t in range(1, order):
                        word &= g[t, digits[c, t]]
                    counts[c, 0] += popcount(word & nph)
                    counts[c, 1] += popcount(word & ph)
            for c in range(cells):
                out[i, c, 0] = counts[c, 0]
                out[i, c, 1] = counts[c, 1]

    return kernel


def _compile_split_fused(order: int, is_k2: bool):
    """Compile the fused split kernel (count both classes, score in place)."""
    tools = _jit_tools()
    njit, popcount = tools["njit"], tools["popcount"]
    pairwise_sum = tools["pairwise_sum"]
    from numba import prange

    cells = 3**order

    @njit(parallel=True, nogil=True)
    def kernel(cplanes, cmask, aplanes, amask, combos, digits, logfact, out):
        n_combos = combos.shape[0]
        n_cwords = cplanes.shape[2]
        n_awords = aplanes.shape[2]
        for i in prange(n_combos):
            g = np.empty((order, 3), dtype=cplanes.dtype)
            controls = np.zeros(cells, dtype=np.int64)
            cases = np.zeros(cells, dtype=np.int64)
            for w in range(n_cwords):
                for t in range(order):
                    s = combos[i, t]
                    p0 = cplanes[s, 0, w]
                    p1 = cplanes[s, 1, w]
                    g[t, 0] = p0
                    g[t, 1] = p1
                    g[t, 2] = ~(p0 | p1) & cmask[w]
                for c in range(cells):
                    word = g[0, digits[c, 0]]
                    for t in range(1, order):
                        word &= g[t, digits[c, t]]
                    controls[c] += popcount(word)
            for w in range(n_awords):
                for t in range(order):
                    s = combos[i, t]
                    p0 = aplanes[s, 0, w]
                    p1 = aplanes[s, 1, w]
                    g[t, 0] = p0
                    g[t, 1] = p1
                    g[t, 2] = ~(p0 | p1) & amask[w]
                for c in range(cells):
                    word = g[0, digits[c, 0]]
                    for t in range(1, order):
                        word &= g[t, digits[c, t]]
                    cases[c] += popcount(word)
            terms = np.empty(cells, dtype=np.float64)
            if is_k2:
                for c in range(cells):
                    c0 = controls[c]
                    c1 = cases[c]
                    terms[c] = logfact[c0 + c1 + 1] - (logfact[c0] + logfact[c1])
                out[i] = pairwise_sum(terms, cells)
            else:
                for c in range(cells):
                    terms[c] = np.float64(controls[c]) + np.float64(cases[c])
                total = pairwise_sum(terms, cells)
                if total == 0.0:
                    total = 1.0
                weighted = np.empty(cells, dtype=np.float64)
                for c in range(cells):
                    ct = terms[c]
                    safe = ct if ct != 0.0 else 1.0
                    p_case = np.float64(cases[c]) / safe
                    gini_cell = 2.0 * p_case * (1.0 - p_case)
                    weighted[c] = (ct / total) * gini_cell
                out[i] = pairwise_sum(weighted, cells)

    return kernel


def _compile_naive_fused(order: int, is_k2: bool):
    """Compile the fused naïve kernel (count under the phenotype, score)."""
    tools = _jit_tools()
    njit, popcount = tools["njit"], tools["popcount"]
    pairwise_sum = tools["pairwise_sum"]
    from numba import prange

    cells = 3**order

    @njit(parallel=True, nogil=True)
    def kernel(planes, phen, combos, digits, logfact, out):
        n_combos = combos.shape[0]
        n_words = planes.shape[2]
        for i in prange(n_combos):
            g = np.empty((order, 3), dtype=planes.dtype)
            controls = np.zeros(cells, dtype=np.int64)
            cases = np.zeros(cells, dtype=np.int64)
            for w in range(n_words):
                ph = phen[w]
                # Plane padding bits are zero, so AND-ing with ~phenotype is
                # safe even though the complement sets the padding bits.
                nph = ~ph
                for t in range(order):
                    s = combos[i, t]
                    g[t, 0] = planes[s, 0, w]
                    g[t, 1] = planes[s, 1, w]
                    g[t, 2] = planes[s, 2, w]
                for c in range(cells):
                    word = g[0, digits[c, 0]]
                    for t in range(1, order):
                        word &= g[t, digits[c, t]]
                    controls[c] += popcount(word & nph)
                    cases[c] += popcount(word & ph)
            terms = np.empty(cells, dtype=np.float64)
            if is_k2:
                for c in range(cells):
                    c0 = controls[c]
                    c1 = cases[c]
                    terms[c] = logfact[c0 + c1 + 1] - (logfact[c0] + logfact[c1])
                out[i] = pairwise_sum(terms, cells)
            else:
                for c in range(cells):
                    terms[c] = np.float64(controls[c]) + np.float64(cases[c])
                total = pairwise_sum(terms, cells)
                if total == 0.0:
                    total = 1.0
                weighted = np.empty(cells, dtype=np.float64)
                for c in range(cells):
                    ct = terms[c]
                    safe = ct if ct != 0.0 else 1.0
                    p_case = np.float64(cases[c]) / safe
                    gini_cell = 2.0 * p_case * (1.0 - p_case)
                    weighted[c] = (ct / total) * gini_cell
                out[i] = pairwise_sum(weighted, cells)

    return kernel


class NumbaBackend(ExecutionBackend):
    """JIT-compiled CPU kernels (``nopython`` + ``prange``)."""

    name = "numba"
    kind = "cpu"
    description = "Numba nopython+parallel JIT of both kernel families"

    _availability: tuple[bool, str] | None = None

    @classmethod
    def availability(cls) -> tuple[bool, str]:
        if cls._availability is None:
            try:
                import numba

                cls._availability = (True, numba.__version__)
            except Exception as exc:  # pragma: no cover - host-dependent
                cls._availability = (False, f"numba unavailable ({exc})")
        return cls._availability

    # -- compilation cache -----------------------------------------------------
    @classmethod
    def kernel_for(cls, family: str, order: int, layout_name: str) -> Callable:
        """The compiled dispatcher for ``(family, order, layout)``.

        The layout keys the cache for explicitness even though one compiled
        body serves both word widths — each entry owns its specialisation,
        and the calibration fingerprints line up one-to-one with cache keys.
        """
        key = (family, int(order), layout_name)
        kernel = _KERNEL_CACHE.get(key)
        if kernel is None:
            from repro.telemetry import metric_inc, span_or_null

            factory = _compile_split if family == "split" else _compile_naive
            with span_or_null(
                "backend.compile",
                backend="numba",
                family=family,
                order=int(order),
                layout=layout_name,
            ):
                kernel = factory(int(order))
            metric_inc("backend.compiles")
            _KERNEL_CACHE[key] = kernel
        return kernel

    @classmethod
    def fused_kernel_for(
        cls, family: str, kind: str, order: int, layout_name: str
    ) -> Callable:
        """The compiled fused build+score dispatcher for one configuration."""
        key = (family, kind, int(order), layout_name)
        kernel = _FUSED_CACHE.get(key)
        if kernel is None:
            from repro.telemetry import metric_inc, span_or_null

            factory = (
                _compile_split_fused if family == "split" else _compile_naive_fused
            )
            with span_or_null(
                "backend.compile",
                backend="numba",
                family=family,
                kind=kind,
                order=int(order),
                layout=layout_name,
            ):
                kernel = factory(int(order), kind == "k2")
            metric_inc("backend.compiles")
            _FUSED_CACHE[key] = kernel
        return kernel

    # -- kernel contracts ------------------------------------------------------
    def naive_tables(
        self,
        planes: np.ndarray,
        phenotype_words: np.ndarray,
        combos: np.ndarray,
    ) -> np.ndarray:
        combos = np.ascontiguousarray(combos, dtype=np.int64)
        order = int(combos.shape[1])
        out = np.zeros((combos.shape[0], 3**order, 2), dtype=np.int64)
        if combos.shape[0] == 0 or planes.shape[2] == 0:
            return out
        kernel = self.kernel_for("naive", order, layout_of(planes).name)
        kernel(
            np.ascontiguousarray(planes),
            np.ascontiguousarray(phenotype_words),
            combos,
            cell_digits(order),
            out,
        )
        return out

    def split_class_counts(
        self,
        class_planes: np.ndarray,
        padding_mask: np.ndarray,
        combos: np.ndarray,
    ) -> np.ndarray:
        combos = np.ascontiguousarray(combos, dtype=np.int64)
        order = int(combos.shape[1])
        out = np.zeros((combos.shape[0], 3**order), dtype=np.int64)
        if combos.shape[0] == 0 or class_planes.shape[2] == 0:
            return out
        kernel = self.kernel_for("split", order, layout_of(class_planes).name)
        kernel(
            np.ascontiguousarray(class_planes),
            np.ascontiguousarray(padding_mask),
            combos,
            cell_digits(order),
            out,
        )
        return out

    # -- fused build+score -----------------------------------------------------
    def score_combinations(
        self,
        family: str,
        combos: np.ndarray,
        objective,
        *,
        planes: np.ndarray | None = None,
        phenotype_words: np.ndarray | None = None,
        control_planes: np.ndarray | None = None,
        case_planes: np.ndarray | None = None,
        control_mask: np.ndarray | None = None,
        case_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Fold K2/Gini scoring straight into the counting loop.

        Objectives that advertise a kernel-fusable spec (K2 via the
        per-dataset log-factorial table, Gini via exact rational cell
        arithmetic) are evaluated per combination inside the JIT kernel —
        no table batch exists even per tile.  The per-combination float64
        reduction replicates NumPy's pairwise summation, so the scores are
        bit-identical to the materialize-then-score path.  Everything else
        (mutual information, chi-squared, unprepared K2) delegates to the
        base-class per-tile materialization.
        """
        spec = objective.fused_spec() if hasattr(objective, "fused_spec") else None
        kind = spec.get("kind") if spec else None
        empty = combos.shape[0] == 0 or (
            planes.shape[2] == 0 if family == "naive" else
            control_planes.shape[2] == 0 and case_planes.shape[2] == 0
        )
        if kind not in ("k2", "gini") or empty:
            return super().score_combinations(
                family,
                combos,
                objective,
                planes=planes,
                phenotype_words=phenotype_words,
                control_planes=control_planes,
                case_planes=case_planes,
                control_mask=control_mask,
                case_mask=case_mask,
            )
        combos = np.ascontiguousarray(combos, dtype=np.int64)
        order = int(combos.shape[1])
        out = np.zeros(combos.shape[0], dtype=np.float64)
        if kind == "k2":
            logfact = np.ascontiguousarray(spec["logfact"], dtype=np.float64)
        else:
            logfact = np.zeros(1, dtype=np.float64)  # unused by the gini branch
        if family == "naive":
            kernel = self.fused_kernel_for(
                "naive", kind, order, layout_of(planes).name
            )
            kernel(
                np.ascontiguousarray(planes),
                np.ascontiguousarray(phenotype_words),
                combos,
                cell_digits(order),
                logfact,
                out,
            )
        else:
            kernel = self.fused_kernel_for(
                "split", kind, order, layout_of(control_planes).name
            )
            kernel(
                np.ascontiguousarray(control_planes),
                np.ascontiguousarray(control_mask),
                np.ascontiguousarray(case_planes),
                np.ascontiguousarray(case_mask),
                combos,
                cell_digits(order),
                logfact,
                out,
            )
        return out
