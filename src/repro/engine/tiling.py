"""SNP-block tiling of combination batches (the fused path's enumerator).

A scheduler chunk enumerates combinations in rank order, so consecutive
combinations share most of their SNPs: at order ``k`` the trailing column
cycles fastest and the leading columns change only every few hundred
rows.  The fused scoring path exploits that by cutting each chunk into
**tiles** of consecutive combinations, gathering the packed bit-planes of
each tile's distinct SNPs once, and running the kernels against the
compact gathered planes with locally remapped combination indices — the
CPU analogue of the paper's tiled GPU kernel.  Every combination in a
tile reuses the same small plane block (typically a handful of SNPs for
hundreds of combinations), which keeps the kernel working set in cache
and bounds the per-tile table materialization of backends without true
in-kernel fusion.

Tiling is pure integer indexing: gathering planes and remapping the
(strictly increasing) combination rows through the sorted unique-SNP
array changes nothing about which exact words are popcounted, so counts
and scores are bit-identical to the untiled path.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

__all__ = ["DEFAULT_TILE_COMBOS", "iter_snp_tiles"]

#: Combinations per tile.  Large enough that per-tile overhead (unique,
#: gather, kernel dispatch) is noise, small enough that a tile's distinct
#: SNP set stays compact and a materialized per-tile table batch is a few
#: hundred KiB instead of the chunk-wide array.
DEFAULT_TILE_COMBOS = 512


def iter_snp_tiles(
    combos: np.ndarray,
    tile_combos: int = DEFAULT_TILE_COMBOS,
) -> Iterator[Tuple[slice, np.ndarray, np.ndarray]]:
    """Yield ``(tile_slice, unique_snps, local_combos)`` over a chunk.

    ``unique_snps`` is the sorted distinct SNP index vector of the tile
    (use it to gather plane rows once); ``local_combos`` is the tile's
    combination block re-expressed in gathered-row indices.  The mapping
    is monotone, so rows stay strictly increasing and every kernel's
    combination contract keeps holding.
    """
    combos = np.asarray(combos)
    n_combos = combos.shape[0]
    tile_combos = max(1, int(tile_combos))
    for start in range(0, n_combos, tile_combos):
        stop = min(n_combos, start + tile_combos)
        tile = combos[start:stop]
        unique_snps = np.unique(tile)
        local = np.searchsorted(unique_snps, tile).astype(np.int64)
        yield slice(start, stop), unique_snps, local
