"""Adaptive chunk-size autotuning for the execution engine.

The unit of dynamic scheduling — how many combinations a worker claims per
chunk — trades scheduler overhead against load balance and per-batch kernel
efficiency, and the right value differs by device lane (a simulated-GPU
launch stream amortises far more per claim than a CPU thread), by dataset
shape and by interaction order.  Rather than asking the user to guess,
``chunk_size="auto"`` lets every worker *measure* its own per-chunk
duration and steer the claim size geometrically toward a target chunk
duration between hard bounds:

* a chunk that completed much faster than the target grows the next claim
  by the growth factor (amortising claim/dispatch overhead);
* a chunk that overshot the target shrinks it (restoring load balance and
  progress/cancellation granularity at the tail);
* partially filled tail claims are ignored (their duration says nothing
  about the chosen size).

The tuner lives entirely in the work-source layer: an
:class:`AdaptiveChunkSource` is a per-worker
:class:`~repro.engine.scheduling.WorkSource` view over a shared
:class:`SharedCursor`, so any scheduling policy can opt in per device lane
without changing workers or the executor — the worker just reports
``feedback(n_items, seconds)`` after each chunk (see
:meth:`repro.engine.worker.DeviceWorker.run`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Tuple

__all__ = [
    "AUTO_CHUNK",
    "AutotuneConfig",
    "CPU_AUTOTUNE",
    "GPU_AUTOTUNE",
    "SharedCursor",
    "AdaptiveChunkSource",
    "FixedChunkSource",
    "adaptive_lane_sources",
    "autotune_config_for",
    "is_auto_chunk",
    "resolve_chunk_size",
]

#: The sentinel accepted wherever a chunk size is configured.
AUTO_CHUNK = "auto"


def is_auto_chunk(chunk_size) -> bool:
    """Whether a configured chunk size requests autotuning."""
    return isinstance(chunk_size, str) and chunk_size.strip().lower() == AUTO_CHUNK


def resolve_chunk_size(chunk_size, default: int = 2048) -> int:
    """A concrete integer for contexts that cannot autotune (models, shards)."""
    if is_auto_chunk(chunk_size):
        return int(default)
    return int(chunk_size)


@dataclass(frozen=True)
class AutotuneConfig:
    """Bounds and pacing of one lane's chunk autotuner.

    Attributes
    ----------
    initial_chunk:
        First claim size of every worker on the lane.
    min_chunk / max_chunk:
        Hard bounds of the geometric walk.
    growth:
        Multiplicative step (grow by ``growth``, shrink by ``1/growth``).
    target_seconds:
        Per-chunk duration the tuner steers toward.
    deadband:
        Relative half-width of the no-adjustment zone around the target: a
        chunk lasting within ``[target/ (1+deadband), target * (1+deadband)]``
        leaves the size unchanged, preventing oscillation.
    """

    initial_chunk: int = 1024
    min_chunk: int = 256
    max_chunk: int = 65536
    growth: float = 2.0
    target_seconds: float = 0.05
    deadband: float = 0.5

    def __post_init__(self) -> None:
        if self.min_chunk < 1 or self.max_chunk < self.min_chunk:
            raise ValueError("need 1 <= min_chunk <= max_chunk")
        if not self.min_chunk <= self.initial_chunk <= self.max_chunk:
            raise ValueError("initial_chunk must lie within [min_chunk, max_chunk]")
        if self.growth <= 1.0:
            raise ValueError("growth must be > 1")
        if self.target_seconds <= 0 or self.deadband < 0:
            raise ValueError("target_seconds must be positive and deadband >= 0")


#: Lane defaults: CPU threads favour balance (small floor), a simulated-GPU
#: launch stream amortises more per claim.
CPU_AUTOTUNE = AutotuneConfig(initial_chunk=1024, min_chunk=256, max_chunk=65536)
GPU_AUTOTUNE = AutotuneConfig(initial_chunk=4096, min_chunk=1024, max_chunk=262144)


def autotune_config_for(kind: str) -> AutotuneConfig:
    """The per-device-lane tuner defaults (``"cpu"`` or ``"gpu"``)."""
    return GPU_AUTOTUNE if kind == "gpu" else CPU_AUTOTUNE


class SharedCursor:
    """Thread-safe variable-size claim cursor over ``[start, total)``.

    The generalisation of :class:`~repro.engine.scheduling.DynamicScheduler`
    to caller-chosen claim sizes: each :meth:`claim` hands out the next
    ``size`` items.  Coverage is exact — claims partition the range — no
    matter how sizes vary between calls or callers.
    """

    def __init__(self, total: int, start: int = 0) -> None:
        if total < 0:
            raise ValueError("total must be non-negative")
        if start < 0 or start > total:
            raise ValueError(f"start must lie in [0, {total}]")
        self.total = int(total)
        self.start = int(start)
        self._cursor = self.start
        self._lock = threading.Lock()

    def claim(self, size: int) -> Tuple[int, int] | None:
        """Claim the next ``size`` items, or ``None`` when exhausted."""
        if size < 1:
            raise ValueError("claim size must be positive")
        with self._lock:
            if self._cursor >= self.total:
                return None
            begin = self._cursor
            end = min(begin + int(size), self.total)
            self._cursor = end
            return begin, end

    @property
    def remaining(self) -> int:
        """Number of unclaimed work items."""
        with self._lock:
            return max(0, self.total - self._cursor)

    def reset(self) -> None:
        """Rewind the cursor (e.g. between benchmark repetitions)."""
        with self._lock:
            self._cursor = self.start


class FixedChunkSource:
    """A fixed-size claim view over a :class:`SharedCursor` (a ``WorkSource``).

    Lets a lane with an explicit integer chunk size share a cursor with
    autotuned lanes (the dynamic policy's pooled schedule) without its
    pinned granularity being overridden.
    """

    def __init__(self, cursor: SharedCursor, chunk_size: int) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.cursor = cursor
        self.chunk_size = int(chunk_size)

    def next_range(self) -> Tuple[int, int] | None:
        return self.cursor.claim(self.chunk_size)

    @property
    def remaining(self) -> int:
        return self.cursor.remaining


class AdaptiveChunkSource:
    """One worker's autotuning view over a shared cursor (a ``WorkSource``).

    ``next_range`` claims the worker's current chunk size from the cursor;
    ``feedback`` (called by the worker after evaluating the chunk) walks the
    size geometrically toward the configured target duration.  Each worker
    owns its view, so lanes and workers converge independently — a slow
    simulated-GPU stream and a fast CPU thread settle on different sizes
    even when they drain the same cursor.
    """

    def __init__(self, cursor: SharedCursor, config: AutotuneConfig | None = None) -> None:
        self.cursor = cursor
        self.config = config or AutotuneConfig()
        self.chunk_size = self.config.initial_chunk
        self.adjustments = 0
        self.min_seen = self.chunk_size
        self.max_seen = self.chunk_size

    def next_range(self) -> Tuple[int, int] | None:
        """Claim ``chunk_size`` items from the shared cursor."""
        return self.cursor.claim(self.chunk_size)

    def feedback(self, n_items: int, seconds: float) -> None:
        """Steer the chunk size from one completed chunk's measurement."""
        if n_items < self.chunk_size:
            return  # tail claim: duration says nothing about the chosen size
        cfg = self.config
        if seconds < 0:
            return
        new_size = self.chunk_size
        if seconds * (1.0 + cfg.deadband) < cfg.target_seconds:
            new_size = min(cfg.max_chunk, int(self.chunk_size * cfg.growth))
        elif seconds > cfg.target_seconds * (1.0 + cfg.deadband):
            new_size = max(cfg.min_chunk, int(self.chunk_size / cfg.growth))
        if new_size != self.chunk_size:
            self.chunk_size = new_size
            self.adjustments += 1
            self.min_seen = min(self.min_seen, new_size)
            self.max_seen = max(self.max_seen, new_size)

    @property
    def remaining(self) -> int:
        """Unclaimed items of the underlying cursor."""
        return self.cursor.remaining

    def describe(self) -> dict:
        """Tuner state snapshot for the per-device run statistics."""
        return {
            "chunk_size": self.chunk_size,
            "initial_chunk": self.config.initial_chunk,
            "adjustments": self.adjustments,
            "min_chunk_seen": self.min_seen,
            "max_chunk_seen": self.max_seen,
        }


def adaptive_lane_sources(
    total: int,
    n_workers: int,
    start: int = 0,
    config: AutotuneConfig | None = None,
    cursor: SharedCursor | None = None,
) -> List[AdaptiveChunkSource]:
    """Per-worker adaptive views over one lane-shared cursor.

    ``cursor`` lets several lanes share a single cursor (the dynamic policy
    pooling all devices) while each lane's workers keep their own tuner
    configuration; by default the lane gets a private cursor over
    ``[start, total)`` (the CARM-ratio policy's contiguous shares, a static
    worker span).
    """
    if cursor is None:
        cursor = SharedCursor(total, start=start)
    return [AdaptiveChunkSource(cursor, config) for _ in range(max(1, n_workers))]
