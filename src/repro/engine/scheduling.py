"""Work sources over the combination-rank space.

Work units are half-open ranges ``[start, stop)`` of lexicographic
combination ranks (see :mod:`repro.core.combinations`); a work source never
touches the combinations themselves, so the same machinery drives CPU
threads, simulated GPU launches and simulated cluster ranks.

Three concrete sources implement the classic OpenMP schedules the paper's
host runtime is modelled after:

* :class:`DynamicScheduler` — fixed-size chunks from a shared atomic cursor
  (``schedule(dynamic)``), the paper's choice for the CPU search;
* :class:`GuidedScheduler` — exponentially decreasing chunks
  (``schedule(guided)``), large chunks early to amortise dispatch, small
  chunks late to rebalance the tail;
* :class:`ChunkedRange` — a private cursor over a pre-assigned contiguous
  span (``schedule(static)`` and the MPI3SNP-style rank partition).

:func:`static_partition` produces the contiguous near-equal spans consumed
by the static schedule and the simulated cluster.
"""

from __future__ import annotations

import threading
from typing import Iterator, List, Protocol, Tuple

__all__ = [
    "Range",
    "WorkSource",
    "DynamicScheduler",
    "GuidedScheduler",
    "ChunkedRange",
    "static_partition",
]

Range = Tuple[int, int]


class WorkSource(Protocol):
    """Anything a worker can repeatedly claim ``[start, stop)`` ranges from."""

    def next_range(self) -> Range | None:  # pragma: no cover - protocol
        ...


class DynamicScheduler:
    """Thread-safe dynamic chunk scheduler (OpenMP ``schedule(dynamic)``).

    Parameters
    ----------
    total:
        End of the work-item range; items are claimed from ``[start, total)``.
    chunk_size:
        Number of items handed out per request.
    start:
        First work item (default 0); non-zero starts let a policy run a
        dynamic schedule inside a contiguous device share.

    Notes
    -----
    The scheduler is intentionally minimal: a single atomic cursor protected
    by a lock.  Contention is negligible because a chunk of thousands of
    combinations amortises the lock acquisition, matching the granularity
    the paper uses for its dynamic OpenMP schedule.
    """

    def __init__(self, total: int, chunk_size: int = 4096, start: int = 0) -> None:
        if total < 0:
            raise ValueError("total must be non-negative")
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if start < 0 or start > total:
            raise ValueError(f"start must lie in [0, {total}]")
        self.total = int(total)
        self.chunk_size = int(chunk_size)
        self.start = int(start)
        self._cursor = self.start
        self._lock = threading.Lock()

    def next_range(self) -> Range | None:
        """Claim the next chunk, or ``None`` when the space is exhausted."""
        with self._lock:
            if self._cursor >= self.total:
                return None
            start = self._cursor
            stop = min(start + self.chunk_size, self.total)
            self._cursor = stop
            return start, stop

    def __iter__(self) -> Iterator[Range]:
        while True:
            r = self.next_range()
            if r is None:
                return
            yield r

    @property
    def remaining(self) -> int:
        """Number of unclaimed work items."""
        with self._lock:
            return max(0, self.total - self._cursor)

    def reset(self) -> None:
        """Rewind the scheduler (e.g. between benchmark repetitions)."""
        with self._lock:
            self._cursor = self.start


class GuidedScheduler:
    """Thread-safe guided chunk scheduler (OpenMP ``schedule(guided)``).

    Each claim receives ``max(min_chunk, remaining // (2 * n_workers))``
    items: early chunks are large (amortising dispatch overhead), late chunks
    shrink towards ``min_chunk`` so stragglers can rebalance the tail.

    Parameters
    ----------
    total:
        End of the work-item range.
    n_workers:
        Number of consumers the decay is sized for.
    min_chunk:
        Smallest chunk handed out (and the floor of the decay).
    start:
        First work item (default 0).
    """

    def __init__(
        self,
        total: int,
        n_workers: int = 1,
        min_chunk: int = 256,
        start: int = 0,
    ) -> None:
        if total < 0:
            raise ValueError("total must be non-negative")
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        if min_chunk < 1:
            raise ValueError("min_chunk must be positive")
        if start < 0 or start > total:
            raise ValueError(f"start must lie in [0, {total}]")
        self.total = int(total)
        self.n_workers = int(n_workers)
        self.min_chunk = int(min_chunk)
        self.start = int(start)
        self._cursor = self.start
        self._lock = threading.Lock()

    def next_range(self) -> Range | None:
        with self._lock:
            remaining = self.total - self._cursor
            if remaining <= 0:
                return None
            size = max(self.min_chunk, remaining // (2 * self.n_workers))
            size = min(size, remaining)
            start = self._cursor
            self._cursor = start + size
            return start, start + size

    def __iter__(self) -> Iterator[Range]:
        while True:
            r = self.next_range()
            if r is None:
                return
            yield r

    @property
    def remaining(self) -> int:
        with self._lock:
            return max(0, self.total - self._cursor)

    def reset(self) -> None:
        with self._lock:
            self._cursor = self.start


class ChunkedRange:
    """A private chunked cursor over a fixed span (one worker's static share).

    Unlike the shared schedulers this source is owned by a single worker, but
    claiming is still locked so misuse cannot corrupt the cursor.
    """

    def __init__(self, span: Range, chunk_size: int) -> None:
        start, stop = span
        if start < 0 or stop < start:
            raise ValueError(f"invalid span {span}")
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.span = (int(start), int(stop))
        self.chunk_size = int(chunk_size)
        self._cursor = int(start)
        self._lock = threading.Lock()

    def next_range(self) -> Range | None:
        with self._lock:
            if self._cursor >= self.span[1]:
                return None
            start = self._cursor
            stop = min(start + self.chunk_size, self.span[1])
            self._cursor = stop
            return start, stop

    @property
    def remaining(self) -> int:
        with self._lock:
            return max(0, self.span[1] - self._cursor)


def static_partition(total: int, n_parts: int) -> List[Range]:
    """Split ``[0, total)`` into ``n_parts`` contiguous, near-equal ranges.

    This is the static decomposition used by the MPI3SNP-style baseline: the
    first ``total % n_parts`` ranks receive one extra item.  Empty ranges are
    returned (rather than dropped) so the rank <-> range mapping stays
    positional.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be positive")
    if total < 0:
        raise ValueError("total must be non-negative")
    base, extra = divmod(total, n_parts)
    ranges: List[Range] = []
    start = 0
    for rank in range(n_parts):
        size = base + (1 if rank < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges
