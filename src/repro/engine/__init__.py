"""Unified heterogeneous execution engine.

Every exhaustive search entry point of the library — the three-way
:class:`~repro.core.detector.EpistasisDetector`, the pairwise screen, the
MPI3SNP-style baseline and the CLI — executes through this package instead
of rolling its own loop:

* :mod:`repro.engine.candidates` — the :class:`CandidateSource` work model:
  dense rank ranges, explicit rank/combination arrays and subset-restricted
  enumeration (the geometries of the staged search pipeline);
* :mod:`repro.engine.plan` — :class:`EngineDevice` lanes and the
  declarative :class:`ExecutionPlan`;
* :mod:`repro.engine.policies` — the pluggable :class:`SchedulingPolicy`
  family (``dynamic``, ``static``, ``guided`` and the CARM-ratio
  heterogeneous splitter of §V-D);
* :mod:`repro.engine.scheduling` — the underlying thread-safe work sources
  over the combination-rank space;
* :mod:`repro.engine.worker` — per-thread :class:`DeviceWorker` with the
  bounded-memory streaming top-k reduction;
* :mod:`repro.engine.executor` — :class:`HeterogeneousExecutor`, which runs
  a plan with per-device statistics, progress reporting and cooperative
  cancellation.
"""

from repro.engine.autotune import (
    AUTO_CHUNK,
    AdaptiveChunkSource,
    AutotuneConfig,
    SharedCursor,
    is_auto_chunk,
    resolve_chunk_size,
)
from repro.engine.scheduling import (
    ChunkedRange,
    DynamicScheduler,
    GuidedScheduler,
    Range,
    WorkSource,
    static_partition,
)
from repro.engine.plan import (
    DEFAULT_CATALOG_KEYS,
    DEVICE_KINDS,
    EngineDevice,
    ExecutionPlan,
    parse_devices,
)
from repro.engine.policies import (
    CarmRatioPolicy,
    DeviceAssignment,
    DynamicPolicy,
    GuidedPolicy,
    POLICIES,
    SchedulingPolicy,
    StaticPolicy,
    get_policy,
    list_policies,
)
from repro.engine.candidates import (
    CandidateSource,
    DenseRangeSource,
    ExplicitCombinationSource,
    ExplicitRankSource,
    SubsetSource,
)
from repro.engine.worker import DeviceWorker, TopKHeap, source_evaluator
from repro.engine.executor import (
    CancellationToken,
    EngineResult,
    HeterogeneousExecutor,
)
from repro.engine.mapreduce import WorkerResult, parallel_map_reduce

__all__ = [
    "AUTO_CHUNK",
    "AdaptiveChunkSource",
    "AutotuneConfig",
    "SharedCursor",
    "is_auto_chunk",
    "resolve_chunk_size",
    "Range",
    "WorkSource",
    "DynamicScheduler",
    "GuidedScheduler",
    "ChunkedRange",
    "static_partition",
    "DEVICE_KINDS",
    "DEFAULT_CATALOG_KEYS",
    "EngineDevice",
    "ExecutionPlan",
    "parse_devices",
    "SchedulingPolicy",
    "DeviceAssignment",
    "DynamicPolicy",
    "StaticPolicy",
    "GuidedPolicy",
    "CarmRatioPolicy",
    "POLICIES",
    "get_policy",
    "list_policies",
    "CandidateSource",
    "DenseRangeSource",
    "ExplicitRankSource",
    "ExplicitCombinationSource",
    "SubsetSource",
    "TopKHeap",
    "DeviceWorker",
    "source_evaluator",
    "CancellationToken",
    "EngineResult",
    "HeterogeneousExecutor",
    "WorkerResult",
    "parallel_map_reduce",
]
