"""Execution plans: which devices run a search, and how.

An :class:`ExecutionPlan` is the declarative input of the
:class:`~repro.engine.executor.HeterogeneousExecutor`: the work-item space
(a dense combination-rank range, or any
:class:`~repro.engine.candidates.CandidateSource`), the participating
:class:`EngineDevice` lanes and the
:class:`~repro.engine.policies.SchedulingPolicy` that carves the space
across them.  Every search entry point (k-way detector, staged pipeline
stages, MPI3SNP-style baseline, CLI) builds one of these instead of rolling
its own execution loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.engine.candidates import CandidateSource
    from repro.engine.policies import SchedulingPolicy

__all__ = ["DEVICE_KINDS", "DEFAULT_CATALOG_KEYS", "EngineDevice", "parse_devices", "ExecutionPlan"]

#: Device families the engine knows how to drive.
DEVICE_KINDS = ("cpu", "gpu")

#: Default Table I/II catalog entries used for CARM throughput estimates when
#: a device lane does not name one: the Ice Lake SP Xeon and the Titan Xp —
#: the CPU+GPU pairing of the paper's §V-D heterogeneous projection.
DEFAULT_CATALOG_KEYS = {"cpu": "CI3", "gpu": "GN4"}


@dataclass
class EngineDevice:
    """One device lane of an execution plan.

    Attributes
    ----------
    kind:
        Device family, ``"cpu"`` or ``"gpu"``.
    n_workers:
        Host threads driving this lane.  A simulated GPU is fed by a single
        host thread (one stream of kernel launches); a CPU lane typically
        runs one worker per core.
    chunk_size:
        Work items per claimed chunk on this lane (the unit of dynamic
        scheduling and of the vectorised kernel batch), or the string
        ``"auto"`` to let each worker of the lane tune its claim size from
        measured per-chunk throughput
        (:mod:`repro.engine.autotune`).
    catalog_key:
        Optional Table I/II key (``"CI3"``, ``"GN4"``, ...) identifying the
        modelled hardware; the CARM-ratio policy uses it to estimate the
        lane's throughput.  Defaults per ``kind`` via
        :data:`DEFAULT_CATALOG_KEYS`.
    """

    kind: str = "cpu"
    n_workers: int = 1
    chunk_size: int | str = 2048
    catalog_key: str | None = None

    def __post_init__(self) -> None:
        from repro.engine.autotune import is_auto_chunk

        if self.kind not in DEVICE_KINDS:
            raise ValueError(f"unknown device kind {self.kind!r}; expected one of {DEVICE_KINDS}")
        if self.n_workers < 1:
            raise ValueError("n_workers must be positive")
        if isinstance(self.chunk_size, str):
            if not is_auto_chunk(self.chunk_size):
                raise ValueError(
                    f"chunk_size must be a positive integer or 'auto'; "
                    f"got {self.chunk_size!r}"
                )
        elif self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")

    @property
    def autotune(self) -> bool:
        """Whether this lane's chunk size is autotuned."""
        from repro.engine.autotune import is_auto_chunk

        return is_auto_chunk(self.chunk_size)

    def spec(self):
        """The catalogued device spec backing this lane (for CARM estimates)."""
        from repro.devices.catalog import device

        return device(self.catalog_key or DEFAULT_CATALOG_KEYS[self.kind])


def parse_devices(
    spec: str,
    n_workers: int = 1,
    chunk_size: int | str = 2048,
    gpu_workers: int = 1,
) -> List[EngineDevice]:
    """Parse a CLI-style device expression into engine device lanes.

    ``"cpu"`` and ``"gpu"`` yield a single lane; ``"cpu+gpu"`` (in either
    order) yields a heterogeneous two-lane plan.  CPU lanes receive
    ``n_workers`` host threads, GPU lanes ``gpu_workers`` (default one — a
    simulated GPU is a single launch stream).
    """
    kinds = [part.strip().lower() for part in spec.split("+") if part.strip()]
    if not kinds:
        raise ValueError(f"empty device expression {spec!r}")
    if len(set(kinds)) != len(kinds):
        raise ValueError(f"duplicate device kind in {spec!r}")
    for kind in kinds:
        if kind not in DEVICE_KINDS:
            raise ValueError(
                f"unknown device kind {kind!r} in {spec!r}; expected combinations of {DEVICE_KINDS}"
            )
    return [
        EngineDevice(
            kind=kind,
            n_workers=n_workers if kind == "cpu" else gpu_workers,
            chunk_size=chunk_size,
        )
        for kind in kinds
    ]


@dataclass
class ExecutionPlan:
    """Declarative description of one engine run.

    Attributes
    ----------
    total:
        Number of work items to cover.  May be omitted when ``source`` is
        given (it is derived from the source); when both are given they
        must agree.
    devices:
        Participating device lanes.
    policy:
        Scheduling policy instance carving ``[0, total)`` across the lanes.
    top_k:
        Number of best-scoring interactions retained by the streaming
        reduction.
    source:
        Optional :class:`~repro.engine.candidates.CandidateSource` mapping
        work items to SNP k-tuples.  A plan without a source keeps the
        legacy dense work model, where the chunk kernel interprets the
        claimed ranks itself; a plan with a source lets the executor
        materialise candidates on the workers' behalf
        (:meth:`~repro.engine.executor.HeterogeneousExecutor.run` with a
        ``scorer``).
    """

    total: int | None = None
    devices: List[EngineDevice] = field(default_factory=lambda: [EngineDevice()])
    policy: "SchedulingPolicy | None" = None
    top_k: int = 10
    source: "CandidateSource | None" = None

    def __post_init__(self) -> None:
        if self.total is None:
            if self.source is None:
                raise ValueError("an execution plan needs a total or a candidate source")
            self.total = self.source.total
        elif self.source is not None and self.total != self.source.total:
            raise ValueError(
                f"plan total {self.total} disagrees with candidate source "
                f"total {self.source.total}"
            )
        if self.total < 0:
            raise ValueError("total must be non-negative")
        if not self.devices:
            raise ValueError("an execution plan needs at least one device")
        if self.top_k < 1:
            raise ValueError("top_k must be positive")
        if self.policy is None:
            from repro.engine.policies import DynamicPolicy

            self.policy = DynamicPolicy()

    @property
    def total_workers(self) -> int:
        """Host threads across all device lanes."""
        return sum(d.n_workers for d in self.devices)

    def device_labels(self) -> List[str]:
        """Stable per-lane labels: the kind, suffixed when kinds repeat."""
        labels: List[str] = []
        counts: dict[str, int] = {}
        for dev in self.devices:
            counts[dev.kind] = counts.get(dev.kind, 0) + 1
        seen: dict[str, int] = {}
        for dev in self.devices:
            if counts[dev.kind] == 1:
                labels.append(dev.kind)
            else:
                idx = seen.get(dev.kind, 0)
                seen[dev.kind] = idx + 1
                labels.append(f"{dev.kind}{idx}")
        return labels
