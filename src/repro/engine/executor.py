"""The heterogeneous executor: one run loop for every search path.

:class:`HeterogeneousExecutor` turns an :class:`~repro.engine.plan.ExecutionPlan`
plus a chunk kernel into a complete exhaustive search: the plan's policy
carves the rank space across the device lanes, one :class:`DeviceWorker`
per host thread streams chunks through the kernel into its bounded top-k
heap, and the executor merges the heaps, aggregates per-device statistics
(chunk counts, items, busy time, utilization) and reports wall-clock time.

The executor also provides the two control-plane features later PRs build
on: cooperative cancellation (a :class:`CancellationToken` checked at every
chunk boundary, set automatically when any worker raises) and progress
reporting (a callback invoked with monotonically increasing completed-item
counts).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Sequence

from repro.engine.plan import EngineDevice, ExecutionPlan
from repro.engine.worker import (
    ChunkEvaluator,
    ChunkScorer,
    DeviceWorker,
    TopKHeap,
    source_evaluator,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.result import Interaction

__all__ = ["CancellationToken", "EngineResult", "HeterogeneousExecutor"]

#: Factory building per-worker state (e.g. an approach instance + encoding).
WorkerFactory = Callable[[EngineDevice, int], Any]

#: Progress callback: ``progress(items_done, items_total)``.
ProgressCallback = Callable[[int, int], None]


class CancellationToken:
    """Cooperative cancellation flag shared by all workers of a run.

    Setting the token (from any thread — a signal handler, a watchdog, a
    failing sibling worker) makes every worker stop at its next chunk
    boundary; the engine then returns the partial result with
    ``cancelled=True`` instead of raising.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request the run to stop at the next chunk boundary."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()


@dataclass
class EngineResult:
    """Outcome of one engine run.

    Attributes
    ----------
    top:
        The merged ``top_k`` best interactions (ascending score order).
    elapsed_seconds:
        Wall-clock time of the run loop.
    n_items:
        Work items actually evaluated (equals the plan total unless the run
        was cancelled).
    device_stats:
        Per-device-label execution statistics: worker count, chunk count,
        items, busy seconds, utilization and share of the evaluated items.
    workers:
        The worker objects, exposing per-worker bookkeeping and states.
    cancelled:
        ``True`` when the run stopped early through a cancellation token.
    """

    top: List["Interaction"]
    elapsed_seconds: float
    n_items: int
    device_stats: Dict[str, Dict[str, object]] = field(default_factory=dict)
    workers: List[DeviceWorker] = field(default_factory=list)
    cancelled: bool = False

    @property
    def best(self) -> Interaction | None:
        """The best interaction, or ``None`` for an empty run."""
        return self.top[0] if self.top else None


class HeterogeneousExecutor:
    """Runs an execution plan over its device lanes.

    Parameters
    ----------
    plan:
        The declarative run description (total items, devices, policy,
        top_k).
    cancel:
        Optional externally owned cancellation token; one is created
        internally when omitted (workers still use it to stop siblings on
        failure).
    """

    def __init__(self, plan: ExecutionPlan, cancel: CancellationToken | None = None) -> None:
        self.plan = plan
        self.cancel = cancel or CancellationToken()

    def run(
        self,
        worker_factory: WorkerFactory,
        evaluate: ChunkEvaluator | None = None,
        snp_names: Sequence[str] | None = None,
        progress: ProgressCallback | None = None,
        *,
        scorer: ChunkScorer | None = None,
    ) -> EngineResult:
        """Execute the plan and return the merged result.

        Parameters
        ----------
        worker_factory:
            ``worker_factory(device, worker_id) -> state`` builds the
            per-worker state handed to the kernel (mutable state such as
            operation counters must not be shared across workers).
        evaluate:
            ``evaluate(worker, start, stop) -> (combos, scores)`` chunk
            kernel; must be thread-safe with respect to shared read-only
            data.  Plans without a candidate source interpret the items as
            dense combination ranks.
        snp_names:
            Optional SNP names resolved into the produced interactions.
        progress:
            Optional callback invoked after every chunk with
            ``(items_done, items_total)``; calls are serialised.
        scorer:
            ``scorer(worker, combos) -> scores`` alternative kernel for
            plans carrying a :class:`~repro.engine.candidates.CandidateSource`:
            the executor materialises each claimed chunk through the plan's
            source and the scorer only evaluates the combinations.  Exactly
            one of ``evaluate`` and ``scorer`` must be given.
        """
        plan = self.plan
        if (evaluate is None) == (scorer is None):
            raise ValueError("exactly one of evaluate= and scorer= must be given")
        if scorer is not None:
            if plan.source is None:
                raise ValueError(
                    "a scorer kernel requires the plan to carry a candidate source"
                )
            evaluate = source_evaluator(plan.source, scorer)
        assignments = plan.policy.assign(plan.total, plan.devices)
        labels = plan.device_labels()

        # Telemetry: join the ambient run, if any.  ``off`` leaves both
        # hooks unset — the chunk loop runs the exact pre-telemetry code.
        from repro.telemetry import current_run

        session = current_run()
        if session is not None and session.full:
            evaluate = _traced_kernel(session.tracer, evaluate)

        workers: List[DeviceWorker] = []
        jobs: List[tuple[DeviceWorker, Any]] = []  # (worker, source)
        worker_id = 0
        for label, assignment in zip(labels, assignments):
            for source in assignment.sources:
                worker = DeviceWorker(
                    worker_id=worker_id,
                    device=assignment.device,
                    label=label,
                    state=worker_factory(assignment.device, worker_id),
                    top_k=plan.top_k,
                )
                workers.append(worker)
                jobs.append((worker, source))
                worker_id += 1

        on_chunk = None
        if progress is not None:
            done = 0
            progress_lock = threading.Lock()

            def on_chunk(n_items: int) -> None:
                nonlocal done
                with progress_lock:
                    done += n_items
                    progress(done, plan.total)

        def run_worker(worker: DeviceWorker, source: Any) -> None:
            worker.run(source, evaluate, snp_names, self.cancel, on_chunk)

        if session is not None:
            tracer = session.tracer
            # Lane jobs run in pool threads with empty span stacks; parent
            # them explicitly under the caller's current span (``detect``).
            run_parent = tracer.current_span_id()
            plain_run = run_worker

            def run_worker(worker: DeviceWorker, source: Any) -> None:
                with tracer.span(
                    "device.run",
                    parent_id=run_parent,
                    worker_id=worker.worker_id,
                    label=worker.label,
                    device=worker.device.kind,
                ) as span:
                    plain_run(worker, source)
                    span.set("chunks", worker.chunks)
                    span.set("items", worker.items)

        started = time.perf_counter()
        if len(jobs) == 1:
            # Inline execution keeps single-threaded profiling runs free of
            # executor noise (and of spurious thread-switch jitter).
            worker, source = jobs[0]
            run_worker(worker, source)
        elif jobs:
            with ThreadPoolExecutor(max_workers=len(jobs)) as pool:
                futures = [
                    pool.submit(run_worker, w, src) for w, src in jobs
                ]
                wait(futures, return_when=FIRST_EXCEPTION)
                for fut in futures:
                    fut.result()  # re-raises worker exceptions with worker_id attached
        elapsed = time.perf_counter() - started

        merged = TopKHeap(plan.top_k)
        for worker in workers:
            merged.push_interactions(worker.heap.items)

        n_items = sum(w.items for w in workers)
        device_stats = self._device_stats(
            labels, assignments, workers, elapsed, n_items
        )
        return EngineResult(
            top=merged.items,
            elapsed_seconds=elapsed,
            n_items=n_items,
            device_stats=device_stats,
            workers=workers,
            cancelled=self.cancel.cancelled and n_items < plan.total,
        )

    @staticmethod
    def _device_stats(
        labels: Sequence[str],
        assignments: Sequence[Any],
        workers: Sequence[DeviceWorker],
        elapsed: float,
        n_items: int,
    ) -> Dict[str, Dict[str, object]]:
        stats: Dict[str, Dict[str, object]] = {}
        for label, assignment in zip(labels, assignments):
            lane_workers = [w for w in workers if w.label == label]
            busy = sum(w.busy_seconds for w in lane_workers)
            capacity = elapsed * max(1, len(lane_workers))
            items = sum(w.items for w in lane_workers)
            entry: Dict[str, object] = {
                "kind": assignment.device.kind,
                "workers": len(lane_workers),
                "chunks": sum(w.chunks for w in lane_workers),
                "items": items,
                "busy_seconds": busy,
                "utilization": busy / capacity if capacity > 0 else 0.0,
                "share": items / n_items if n_items else 0.0,
            }
            if assignment.planned_items is not None:
                entry["planned_items"] = assignment.planned_items
            tuners = [
                src.describe()
                for src in assignment.sources
                if hasattr(src, "feedback") and hasattr(src, "describe")
            ]
            if tuners:
                entry["autotune"] = {
                    "workers": tuners,
                    "final_chunk_sizes": sorted(t["chunk_size"] for t in tuners),
                }
            stats[label] = entry
        return stats


def _traced_kernel(tracer, evaluate: ChunkEvaluator) -> ChunkEvaluator:
    """Wrap a chunk kernel with per-chunk ``kernel`` span samples.

    Only installed in ``telemetry="full"`` mode; the span parents under
    the calling thread's open ``device.run`` span automatically.
    """

    def traced(worker: DeviceWorker, start: int, stop: int):
        with tracer.span(
            "kernel", items=stop - start, worker_id=worker.worker_id
        ):
            return evaluate(worker, start, stop)

    return traced
