"""Device workers and the streaming top-k reduction.

A :class:`DeviceWorker` is one host thread of a device lane: it repeatedly
claims ``[start, stop)`` rank ranges from its work source, evaluates them
through the caller-supplied kernel and folds the chunk's scores into a
bounded :class:`TopKHeap` — so memory stays O(top_k) per worker no matter
how large the combination space is, replacing the old list-of-lists
reduction.
"""

from __future__ import annotations

import heapq
import time
from typing import TYPE_CHECKING, Any, Callable, List, Sequence, Tuple

import numpy as np

from repro.engine.plan import EngineDevice
from repro.engine.scheduling import WorkSource

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.result import Interaction
    from repro.engine.candidates import CandidateSource
    from repro.engine.executor import CancellationToken

__all__ = ["TopKHeap", "DeviceWorker", "ChunkEvaluator", "ChunkScorer", "source_evaluator"]

#: Kernel signature: evaluate work items ``[start, stop)`` and return the
#: materialised combinations plus their objective scores.  Plans without a
#: candidate source interpret the items as dense combination ranks.
ChunkEvaluator = Callable[["DeviceWorker", int, int], Tuple[np.ndarray, np.ndarray]]

#: Scorer signature for source-backed plans: score already-materialised
#: combinations (the engine resolves work items through the plan's
#: :class:`~repro.engine.candidates.CandidateSource` first).
ChunkScorer = Callable[["DeviceWorker", np.ndarray], np.ndarray]


def source_evaluator(source: "CandidateSource", scorer: ChunkScorer) -> ChunkEvaluator:
    """Adapt a candidate source plus a combination scorer into a chunk kernel.

    This is the bridge between the engine's two work models: workers keep
    claiming opaque item ranges ``[start, stop)`` from their scheduling
    sources, and the returned kernel materialises the corresponding
    k-tuples through ``source`` before handing them to ``scorer`` — so the
    same scheduling policies, heaps and statistics drive dense, explicit
    and subset-restricted searches.
    """

    def evaluate(worker: "DeviceWorker", start: int, stop: int):
        combos = source.materialize(start, stop)
        return combos, scorer(worker, combos)

    return evaluate


class TopKHeap:
    """Bounded container of the ``k`` best (lowest-scoring) interactions.

    Chunks are folded in one batch at a time: the batch's local top-k is
    selected under the *total* order ``(score, snps)`` — equal scores break
    by the combination's SNP tuple, which for sorted tuples is exactly the
    global lexicographic combination rank — and merged with the retained
    set via a heap selection, keeping memory bounded by ``k`` entries
    regardless of the number of chunks streamed through.

    Tie-breaking by combination rank (rather than by position within the
    chunk) is what makes the retained set a pure function of the evaluated
    candidate *set*: chunk boundaries, worker counts and shard counts can
    never reorder or swap tied combinations, so a sharded multi-process run
    merges to the bit-identical top-k of a single-process sweep.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = int(k)
        self._items: List["Interaction"] = []

    def push_batch(
        self,
        combos: np.ndarray,
        scores: np.ndarray,
        snp_names: Sequence[str] | None = None,
    ) -> None:
        """Fold one chunk of scored combinations into the retained top-k."""
        # Imported here (not at module scope) to keep the engine importable
        # without repro.core, whose package init imports the engine back.
        from repro.core.result import Interaction

        combos = np.asarray(combos)
        scores = np.asarray(scores)
        if combos.shape[0] != scores.shape[0]:
            raise ValueError("combos and scores must have the same length")
        if combos.shape[0] == 0:
            return
        # Select the batch top-k under the total order (score, snps): the
        # last lexsort key is the primary one, then the SNP columns left to
        # right.  A plain stable argsort on the scores would break ties by
        # chunk position, letting chunk/shard boundaries decide which of the
        # tied combinations survives the truncation to k.
        keys = tuple(
            combos[:, col] for col in range(combos.shape[1] - 1, -1, -1)
        ) + (scores,)
        order = np.lexsort(keys)[: self.k]
        candidates = [
            Interaction(
                snps=tuple(int(s) for s in combos[i]),
                score=float(scores[i]),
                snp_names=(
                    tuple(snp_names[s] for s in combos[i])
                    if snp_names is not None
                    else None
                ),
            )
            for i in order
        ]
        self._items = heapq.nsmallest(self.k, self._items + candidates)

    def push_interactions(self, interactions: Sequence["Interaction"]) -> None:
        """Fold pre-built interactions (used when merging worker heaps)."""
        if interactions:
            self._items = heapq.nsmallest(self.k, list(self._items) + list(interactions))

    @property
    def items(self) -> List["Interaction"]:
        """The retained interactions in ascending (score, snps) order."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)


class DeviceWorker:
    """One host thread of a device lane.

    Attributes
    ----------
    worker_id:
        Global worker index across the whole plan.
    device:
        The lane this worker belongs to.
    label:
        The lane's display label (``"cpu"``, ``"gpu"``, ...).
    state:
        Caller-owned per-worker state (typically an approach instance plus
        its encoded dataset); created by the executor's worker factory.
    heap:
        The worker-local streaming top-k reduction.
    chunks / items / busy_seconds:
        Execution bookkeeping consumed by the per-device statistics.
    """

    def __init__(
        self,
        worker_id: int,
        device: EngineDevice,
        label: str,
        state: Any,
        top_k: int,
    ) -> None:
        self.worker_id = worker_id
        self.device = device
        self.label = label
        self.state = state
        self.heap = TopKHeap(top_k)
        self.chunks = 0
        self.items = 0
        self.busy_seconds = 0.0

    def run(
        self,
        source: WorkSource,
        evaluate: ChunkEvaluator,
        snp_names: Sequence[str] | None,
        cancel: "CancellationToken | None" = None,
        on_chunk: Callable[[int], None] | None = None,
    ) -> None:
        """Drain ``source`` through ``evaluate`` until exhausted or cancelled.

        Exceptions raised by the kernel are re-raised with ``worker_id`` and
        ``device_label`` attributes attached, and the shared cancellation
        token is set so sibling workers stop at their next chunk boundary.
        """
        try:
            while True:
                if cancel is not None and cancel.cancelled:
                    return
                claimed = source.next_range()
                if claimed is None:
                    return
                start, stop = claimed
                began = time.perf_counter()
                combos, scores = evaluate(self, start, stop)
                self.heap.push_batch(combos, scores, snp_names)
                chunk_seconds = time.perf_counter() - began
                self.busy_seconds += chunk_seconds
                self.chunks += 1
                self.items += stop - start
                # Autotuning sources (repro.engine.autotune) steer their
                # claim size from the measured per-chunk duration.
                feedback = getattr(source, "feedback", None)
                if feedback is not None:
                    feedback(stop - start, chunk_seconds)
                if on_chunk is not None:
                    on_chunk(stop - start)
        except Exception as exc:
            if not hasattr(exc, "worker_id"):
                exc.worker_id = self.worker_id  # type: ignore[attr-defined]
                exc.device_label = self.label  # type: ignore[attr-defined]
            if cancel is not None:
                cancel.cancel()
            raise
