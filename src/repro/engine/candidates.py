"""Candidate sources: the engine's generalized work model.

The original engine only knew how to run *dense* searches — work items were
lexicographic ranks of the full ``nCr(M, k)`` combination space, and every
kernel unranked them itself.  The staged search pipeline needs the same
machinery (device lanes, scheduling policies, streaming top-k reduction,
statistics) over three more candidate geometries, so the work model is
factored into :class:`CandidateSource`: a mapping from the contiguous item
space ``[0, total)`` the schedulers carve up to the actual SNP k-tuples a
chunk evaluates.

Four concrete sources cover the pipeline stages:

* :class:`DenseRangeSource` — the classic exhaustive space: item ``i`` is
  lexicographic rank ``i`` of ``nCr(M, k)``;
* :class:`ExplicitRankSource` — an arbitrary array of dense ranks (sampled
  candidates, resumed partial sweeps, externally supplied shortlists);
* :class:`ExplicitCombinationSource` — pre-materialised k-tuples (the
  refine and permutation stages re-score a handful of finalists);
* :class:`SubsetSource` — the ``nCr(m, k)`` combinations over a retained
  SNP subset, translated back to global indices on materialisation (the
  expand stage of a screen-then-expand search).

All sources materialise lazily and per chunk, so the bounded-memory
streaming property of the engine is preserved no matter the geometry.
Imports from :mod:`repro.core.combinations` happen inside methods to keep
the engine importable without :mod:`repro.core` (whose package init imports
the engine back).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "CandidateSource",
    "DenseRangeSource",
    "ExplicitRankSource",
    "ExplicitCombinationSource",
    "SubsetSource",
]


class CandidateSource(ABC):
    """Mapping from scheduler items ``[0, total)`` to SNP k-tuples.

    A source is read-only after construction and safe to share across the
    workers of a run; :meth:`materialize` is called concurrently from every
    worker thread with disjoint ``[start, stop)`` ranges claimed from the
    scheduling policy's work sources.
    """

    #: Interaction order ``k`` of the produced combinations.
    order: int

    @property
    @abstractmethod
    def total(self) -> int:
        """Number of candidate combinations (the schedulers' item space)."""

    @abstractmethod
    def materialize(self, start: int, stop: int) -> np.ndarray:
        """The ``(stop - start, order)`` global k-tuples of items ``[start, stop)``."""

    @property
    def effective_snps(self) -> int | None:
        """SNP-universe size of this source, for per-stage cost models.

        Model-driven scheduling policies (the CARM-ratio splitter) and the
        staged-plan cost estimates use this as the ``n_snps`` of the stage's
        analytic throughput model, so a subset-restricted stage is sized by
        its retained universe rather than the full dataset.  ``None`` when
        the source cannot tell (callers fall back to the dataset shape).
        """
        return None

    def describe(self) -> str:
        """One-line human-readable description (stage reports, exports)."""
        return f"{type(self).__name__}(total={self.total}, order={self.order})"

    def fingerprint(self) -> dict:
        """Content identity of the candidate set (checkpoint validation).

        Sources whose identity is not fully determined by their geometry
        (explicit ranks/tuples, retained subsets) extend this with a digest
        of their defining arrays, so a resumed distributed run can refuse
        to splice partial results evaluated over a *different* candidate
        set that merely has the same shape.
        """
        return {
            "describe": self.describe(),
            "total": int(self.total),
            "order": int(self.order),
        }

    @staticmethod
    def _digest(array: np.ndarray) -> str:
        """SHA-1 of an array's raw bytes (stable content key)."""
        import hashlib

        return hashlib.sha1(np.ascontiguousarray(array).tobytes()).hexdigest()

    def _check_range(self, start: int, stop: int) -> None:
        if not 0 <= start <= stop <= self.total:
            raise ValueError(
                f"invalid item range [{start}, {stop}) for {self.total} candidates"
            )

    def __len__(self) -> int:
        return self.total

    def __repr__(self) -> str:
        return self.describe()


class DenseRangeSource(CandidateSource):
    """The exhaustive ``nCr(n_snps, order)`` combination space.

    Item ``i`` is the combination of lexicographic rank ``i``; this is
    exactly the work model every search path used before candidate sources
    existed, so a dense-source run is bit-identical to the legacy engine.
    """

    def __init__(self, n_snps: int, order: int = 3) -> None:
        from repro.core.combinations import combination_count

        if n_snps < order:
            raise ValueError(f"{n_snps} SNPs cannot form order-{order} combinations")
        self.n_snps = int(n_snps)
        self.order = int(order)
        self._total = combination_count(self.n_snps, self.order)

    @property
    def total(self) -> int:
        return self._total

    @property
    def effective_snps(self) -> int:
        return self.n_snps

    def materialize(self, start: int, stop: int) -> np.ndarray:
        from repro.core.combinations import generate_combinations

        self._check_range(start, stop)
        return generate_combinations(
            self.n_snps, self.order, start_rank=start, count=stop - start
        )

    def describe(self) -> str:
        return f"dense[C({self.n_snps},{self.order}) = {self.total}]"

    def fingerprint(self) -> dict:
        return {**super().fingerprint(), "n_snps": self.n_snps}


class ExplicitRankSource(CandidateSource):
    """An explicit array of dense lexicographic ranks.

    Ranks may arrive in any order and are evaluated positionally: item ``i``
    is ``ranks[i]`` unranked against the full ``nCr(n_snps, order)`` space.
    Useful for sampled sweeps and resumable partial searches.
    """

    def __init__(self, ranks: np.ndarray, n_snps: int, order: int = 3) -> None:
        from repro.core.combinations import combination_count

        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.ndim != 1:
            raise ValueError(f"ranks must be 1-D; got shape {ranks.shape}")
        space = combination_count(n_snps, order)
        if ranks.size and (ranks.min() < 0 or ranks.max() >= space):
            raise ValueError(f"ranks must lie in [0, {space})")
        self.ranks = ranks
        self.n_snps = int(n_snps)
        self.order = int(order)

    @classmethod
    def from_combinations(
        cls, combos: np.ndarray, n_snps: int
    ) -> "ExplicitRankSource":
        """Build a rank source from materialised combinations."""
        from repro.core.combinations import combination_ranks

        combos = np.asarray(combos)
        ranks = combination_ranks(combos, n_snps)
        return cls(ranks, n_snps=n_snps, order=int(combos.shape[1]))

    @property
    def total(self) -> int:
        return int(self.ranks.size)

    @property
    def effective_snps(self) -> int:
        return self.n_snps

    def materialize(self, start: int, stop: int) -> np.ndarray:
        from repro.core.combinations import combinations_from_ranks

        self._check_range(start, stop)
        return combinations_from_ranks(
            self.ranks[start:stop], self.n_snps, self.order
        )

    def describe(self) -> str:
        return f"ranks[{self.total} of C({self.n_snps},{self.order})]"

    def fingerprint(self) -> dict:
        return {
            **super().fingerprint(),
            "n_snps": self.n_snps,
            "sha1": self._digest(self.ranks),
        }


class ExplicitCombinationSource(CandidateSource):
    """Pre-materialised k-tuples (finalist re-scoring, permutation nulls)."""

    def __init__(self, combos: np.ndarray) -> None:
        combos = np.ascontiguousarray(combos, dtype=np.int64)
        if combos.ndim != 2 or combos.shape[1] < 1:
            raise ValueError(
                f"combos must be 2-D (n, order); got shape {combos.shape}"
            )
        if combos.shape[1] > 1 and not (combos[:, 1:] > combos[:, :-1]).all():
            raise ValueError("combinations must be strictly increasing along rows")
        self.combos = combos
        self.order = int(combos.shape[1])

    @property
    def total(self) -> int:
        return int(self.combos.shape[0])

    @property
    def effective_snps(self) -> int | None:
        if self.combos.size == 0:
            return None
        return int(np.unique(self.combos).size)

    def materialize(self, start: int, stop: int) -> np.ndarray:
        self._check_range(start, stop)
        return self.combos[start:stop]

    def describe(self) -> str:
        return f"explicit[{self.total} order-{self.order} tuples]"

    def fingerprint(self) -> dict:
        return {**super().fingerprint(), "sha1": self._digest(self.combos)}


class SubsetSource(CandidateSource):
    """``nCr(m, order)`` combinations over a retained SNP subset.

    Item ``i`` is the local lexicographic rank ``i`` over the ``m`` retained
    SNPs; materialisation maps local positions back to global indices
    through the sorted subset array
    (:func:`repro.core.combinations.subset_combinations`).  This is the
    expand stage of a screen-then-expand search: the engine sweeps the
    reduced ``nCr(m, k)`` space, but every produced interaction carries
    global SNP indices and names.
    """

    def __init__(self, snp_indices: np.ndarray, order: int = 3) -> None:
        from repro.core.combinations import combination_count

        indices = np.asarray(snp_indices, dtype=np.int64)
        if indices.ndim != 1:
            raise ValueError(f"snp_indices must be 1-D; got shape {indices.shape}")
        if indices.size and indices.min() < 0:
            raise ValueError("snp_indices must be non-negative")
        if indices.size > 1 and not (indices[1:] > indices[:-1]).all():
            raise ValueError(
                "snp_indices must be strictly increasing (sorted, no duplicates)"
            )
        if indices.size < order:
            raise ValueError(
                f"{indices.size} retained SNPs cannot form order-{order} combinations"
            )
        self.snp_indices = indices
        self.order = int(order)
        self._total = combination_count(int(indices.size), self.order)

    @property
    def total(self) -> int:
        return self._total

    @property
    def effective_snps(self) -> int:
        return int(self.snp_indices.size)

    def materialize(self, start: int, stop: int) -> np.ndarray:
        from repro.core.combinations import subset_combinations

        self._check_range(start, stop)
        return subset_combinations(
            self.snp_indices, self.order, start_rank=start, count=stop - start
        )

    def describe(self) -> str:
        return (
            f"subset[C({self.snp_indices.size},{self.order}) = {self.total} "
            f"over retained SNPs]"
        )

    def fingerprint(self) -> dict:
        return {**super().fingerprint(), "sha1": self._digest(self.snp_indices)}
