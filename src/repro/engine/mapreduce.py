"""Thread-pool map/reduce over a work scheduler (legacy entry point).

.. deprecated::
    New code should build an :class:`~repro.engine.plan.ExecutionPlan` and
    run it through :class:`~repro.engine.executor.HeterogeneousExecutor`
    (single machine) or :func:`repro.distributed.run_distributed`
    (multi-process), which add device lanes, scheduling policies, streaming
    top-k reduction, per-device statistics, cooperative cancellation and
    checkpoint/resume.  :func:`parallel_map_reduce` remains for callers that
    only need the original map/reduce shape; it moved here from the
    long-removed ``repro.parallel`` package.

The execution model mirrors §IV-A: every worker repeatedly claims a chunk of
combinations from the dynamic scheduler, evaluates it with its own approach
instance (so operation counters are never shared), keeps its best scores
*locally* and the partial results are reduced once at the end — no
synchronisation barriers inside the search.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Sequence, TypeVar

from repro.engine.scheduling import DynamicScheduler

__all__ = ["WorkerResult", "parallel_map_reduce"]

T = TypeVar("T")


@dataclass
class WorkerResult:
    """Partial result produced by one worker.

    Attributes
    ----------
    worker_id:
        Index of the worker that produced the partial result.
    chunks_processed:
        Number of scheduler chunks the worker claimed.
    payload:
        The worker's partial results, in the order its chunks were claimed
        (a list of ``worker_fn`` return values).
    """

    worker_id: int
    chunks_processed: int = 0
    payload: List[object] = field(default_factory=list)


def parallel_map_reduce(
    scheduler: DynamicScheduler,
    worker_fn: Callable[[int, int, int], T],
    reduce_fn: Callable[[Sequence[T]], T],
    n_workers: int = 1,
) -> tuple[T, List[WorkerResult]]:
    """Run ``worker_fn`` over scheduler chunks and reduce the partial results.

    Parameters
    ----------
    scheduler:
        Source of ``[start, stop)`` work ranges.
    worker_fn:
        ``worker_fn(worker_id, start, stop) -> partial`` — must be thread
        safe with respect to shared read-only data (the encoded dataset);
        anything mutable must be per-worker.
    reduce_fn:
        Combines the per-chunk partial results (from *all* workers) into the
        final result.  Called once, on the calling thread.
    n_workers:
        Number of host threads.  ``1`` executes inline (no pool), which keeps
        single-threaded profiling runs free of executor noise.

    Returns
    -------
    (result, worker_results):
        The reduced result and per-worker bookkeeping (chunk counts and the
        per-worker partial payloads).

    Raises
    ------
    Exception
        A ``worker_fn`` exception propagates to the caller with a
        ``worker_id`` attribute attached identifying the originating worker.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be positive")

    stats = [WorkerResult(worker_id=i) for i in range(n_workers)]

    def _run(worker_id: int) -> List[T]:
        local: List[T] = []
        try:
            while True:
                claimed = scheduler.next_range()
                if claimed is None:
                    return local
                start, stop = claimed
                local.append(worker_fn(worker_id, start, stop))
                stats[worker_id].chunks_processed += 1
        except Exception as exc:
            if not hasattr(exc, "worker_id"):
                exc.worker_id = worker_id  # type: ignore[attr-defined]
            raise
        finally:
            stats[worker_id].payload = local

    if n_workers == 1:
        partials = _run(0)
        return reduce_fn(partials), stats

    partials: List[T] = []
    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        futures = [pool.submit(_run, i) for i in range(n_workers)]
        errors = [exc for exc in (fut.exception() for fut in futures) if exc is not None]
        if errors:
            # Every worker has finished (pool shutdown waits); surface the
            # first failure instead of silently dropping its context.
            raise errors[0]
        for fut in futures:
            partials.extend(fut.result())
    return reduce_fn(partials), stats
