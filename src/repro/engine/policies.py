"""Pluggable scheduling policies of the heterogeneous execution engine.

A policy decides how the combination-rank space ``[0, total)`` is carved
across the workers of an execution plan's device lanes.  The four concrete
policies correspond to the host schedules discussed by the paper and its
baselines:

* :class:`DynamicPolicy` — all workers pull fixed-size chunks from one
  shared cursor (the paper's OpenMP ``schedule(dynamic)`` CPU runtime);
* :class:`StaticPolicy` — the space is pre-partitioned into contiguous
  near-equal per-worker spans (the MPI3SNP-style rank decomposition);
* :class:`GuidedPolicy` — exponentially decreasing shared chunks;
* :class:`CarmRatioPolicy` — the heterogeneous splitter of §V-D: each
  device lane receives a contiguous share sized proportionally to its
  CARM/performance-model throughput estimate
  (:func:`repro.perfmodel.efficiency.device_throughput`), and the lane's
  workers drain their share with a lane-local dynamic schedule.

Policies are instantiated by name through :func:`get_policy` so the CLI and
config layers can select them declaratively.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Dict, List, Sequence, Type

from repro.engine.plan import EngineDevice

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.candidates import CandidateSource
from repro.engine.autotune import (
    FixedChunkSource,
    SharedCursor,
    adaptive_lane_sources,
    autotune_config_for,
    is_auto_chunk,
)
from repro.engine.scheduling import (
    ChunkedRange,
    DynamicScheduler,
    GuidedScheduler,
    WorkSource,
    static_partition,
)

__all__ = [
    "DeviceAssignment",
    "SchedulingPolicy",
    "DynamicPolicy",
    "StaticPolicy",
    "GuidedPolicy",
    "CarmRatioPolicy",
    "POLICIES",
    "get_policy",
    "list_policies",
]


@dataclass
class DeviceAssignment:
    """Work sources assigned to one device lane.

    Attributes
    ----------
    device:
        The lane the assignment belongs to.
    sources:
        One work source per worker of the lane.  Sources may be shared
        between workers (and between lanes) when the policy schedules from a
        common pool.
    planned_items:
        Size of the lane's pre-assigned contiguous share, or ``None`` when
        the lane competes for work from a shared pool.
    """

    device: EngineDevice
    sources: List[WorkSource]
    planned_items: int | None = None


class SchedulingPolicy(ABC):
    """Strategy that carves ``[0, total)`` across device lanes."""

    #: Registry name of the policy.
    name: ClassVar[str] = "abstract"

    @abstractmethod
    def assign(
        self, total: int, devices: Sequence[EngineDevice]
    ) -> List[DeviceAssignment]:
        """Produce per-lane work sources covering ``[0, total)`` exactly once."""

    def configure(self, n_snps: int, n_samples: int, order: int = 3) -> None:
        """Late-bind the problem shape (used by model-driven policies).

        ``order`` is the interaction order of the search; model-driven
        policies feed it to the analytic throughput estimates so the
        CPU/GPU split stays honest away from the paper's ``k = 3``.
        """

    def configure_source(
        self,
        source: "CandidateSource",
        n_samples: int,
        default_snps: int | None = None,
    ) -> None:
        """Late-bind the problem shape from a candidate source.

        Staged searches run one engine pass per pipeline stage, each over a
        different candidate geometry; the stage's *effective* SNP universe
        (the retained subset for an expand stage, the full dataset for a
        dense screen) and interaction order are what the analytic
        throughput models must see, otherwise the CARM-ratio split would be
        sized for the wrong stage shape.  ``default_snps`` is the fallback
        universe (typically the dataset's SNP count) for sources that
        cannot report one.
        """
        n_snps = source.effective_snps
        if n_snps is None:
            n_snps = default_snps
        if n_snps is None:
            raise ValueError(
                f"{source!r} has no effective SNP universe and no default was given"
            )
        self.configure(n_snps=n_snps, n_samples=n_samples, order=source.order)

    def configure_execution(
        self, backend: str | None = None, word_layout: str | None = None
    ) -> None:
        """Late-bind the execution identity (used by measurement-driven policies).

        The detector reports the backend that will actually run the CPU
        kernels and the word layout of the encoding; the CARM-ratio policy
        uses both to look up fingerprint-matched calibration records.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class DynamicPolicy(SchedulingPolicy):
    """All workers share one dynamic chunk cursor (OpenMP ``dynamic``).

    With ``chunk_size="auto"`` (on the policy or any device lane) the
    workers still drain one shared cursor, but each owns an adaptive view
    that tunes its claim size from measured per-chunk throughput, with
    per-lane bounds (:func:`repro.engine.autotune.autotune_config_for`).
    """

    name = "dynamic"

    def __init__(self, chunk_size: int | str | None = None) -> None:
        self.chunk_size = chunk_size

    def assign(
        self, total: int, devices: Sequence[EngineDevice]
    ) -> List[DeviceAssignment]:
        policy_auto = is_auto_chunk(self.chunk_size)
        if policy_auto or any(d.autotune for d in devices):
            cursor = SharedCursor(total)
            assignments: List[DeviceAssignment] = []
            for d in devices:
                if policy_auto or d.autotune:
                    sources: List[WorkSource] = adaptive_lane_sources(
                        total,
                        d.n_workers,
                        config=autotune_config_for(d.kind),
                        cursor=cursor,
                    )
                else:
                    # A non-auto lane keeps a pinned granularity while
                    # draining the shared cursor; an integer policy-level
                    # chunk size takes precedence over the device's, as in
                    # the all-integer path below.
                    fixed = FixedChunkSource(cursor, self.chunk_size or d.chunk_size)
                    sources = [fixed] * d.n_workers
                assignments.append(DeviceAssignment(device=d, sources=sources))
            return assignments
        chunk = self.chunk_size or min(d.chunk_size for d in devices)
        shared = DynamicScheduler(total, chunk_size=chunk)
        return [
            DeviceAssignment(device=d, sources=[shared] * d.n_workers)
            for d in devices
        ]


class StaticPolicy(SchedulingPolicy):
    """Contiguous near-equal per-worker spans (MPI3SNP-style partition)."""

    name = "static"

    def assign(
        self, total: int, devices: Sequence[EngineDevice]
    ) -> List[DeviceAssignment]:
        n_workers = sum(d.n_workers for d in devices)
        parts = static_partition(total, n_workers)
        assignments: List[DeviceAssignment] = []
        cursor = 0
        for d in devices:
            spans = parts[cursor : cursor + d.n_workers]
            cursor += d.n_workers
            if d.autotune:
                # Each worker keeps its pre-assigned contiguous span but
                # walks it with an adaptive claim size.
                sources: List[WorkSource] = [
                    adaptive_lane_sources(
                        stop, 1, start=start, config=autotune_config_for(d.kind)
                    )[0]
                    for start, stop in spans
                ]
            else:
                sources = [ChunkedRange(span, d.chunk_size) for span in spans]
            assignments.append(
                DeviceAssignment(
                    device=d,
                    sources=sources,
                    planned_items=sum(stop - start for start, stop in spans),
                )
            )
        return assignments


class GuidedPolicy(SchedulingPolicy):
    """Shared cursor with exponentially decreasing chunks (OpenMP ``guided``)."""

    name = "guided"

    def __init__(self, min_chunk: int | None = None) -> None:
        self.min_chunk = min_chunk

    #: Floor of the guided decay when the configured chunk size is "auto"
    #: (the guided schedule is already self-pacing, so "auto" only needs a
    #: sensible minimum).
    AUTO_MIN_CHUNK = 256

    def assign(
        self, total: int, devices: Sequence[EngineDevice]
    ) -> List[DeviceAssignment]:
        n_workers = sum(d.n_workers for d in devices)
        fixed = [d.chunk_size for d in devices if not d.autotune]
        min_chunk = self.min_chunk or (min(fixed) if fixed else self.AUTO_MIN_CHUNK)
        shared = GuidedScheduler(total, n_workers=n_workers, min_chunk=min_chunk)
        return [
            DeviceAssignment(device=d, sources=[shared] * d.n_workers)
            for d in devices
        ]


class CarmRatioPolicy(SchedulingPolicy):
    """Heterogeneous splitter sized by CARM/performance-model throughput.

    Each device lane receives a contiguous share of the combination space
    proportional to the analytical throughput of its catalogued hardware
    (§V-D: the optimal static split for independent combinations assigns
    work proportionally to device throughput).  Within a lane, workers drain
    the share with a lane-local dynamic schedule, so multi-core CPU lanes
    keep the paper's dynamic load balancing.

    Parameters
    ----------
    n_snps / n_samples / order:
        Problem shape fed to the analytical models.  Left unset, the shape
        is late-bound by :meth:`configure` (the detector passes the actual
        dataset shape and interaction order) and falls back to the paper's
        reference workload (third order).
    ratios:
        Explicit per-lane share weights overriding the model estimates
        (useful for tests and for measured re-calibration).
    use_measured:
        Whether to prefer measured calibration records
        (:mod:`repro.backends.calibrate`) over the analytical model when
        sizing the split.  ``None`` (the default) and ``True`` consult the
        per-host store and fall back to the model lane-by-lane when no
        fingerprint-matched record exists; ``False`` always prices the
        catalogued hardware analytically.  The per-lane decision taken on
        the last :meth:`assign` is recorded in :attr:`weight_sources`.
    """

    name = "carm"

    #: Reference workload of the paper's throughput figures, used when no
    #: problem shape was provided.
    DEFAULT_SHAPE = (8192, 16384)

    def __init__(
        self,
        n_snps: int | None = None,
        n_samples: int | None = None,
        ratios: Sequence[float] | None = None,
        order: int | None = None,
        use_measured: bool | None = None,
    ) -> None:
        self.n_snps = n_snps
        self.n_samples = n_samples
        self.order = order if order is not None else 3
        self.ratios = list(ratios) if ratios is not None else None
        self.use_measured = use_measured
        #: Where each lane's weight came from on the last assignment:
        #: "measured", "model" or "ratio" per device lane.
        self.weight_sources: List[str] = []
        self._exec_backend: str | None = None
        self._exec_layout: str | None = None
        # Shape values given explicitly at construction are pinned; values
        # late-bound by configure() rebind on every call, so a reused policy
        # instance follows each dataset's actual shape.
        self._pinned_snps = n_snps is not None
        self._pinned_samples = n_samples is not None
        self._pinned_order = order is not None

    def configure(self, n_snps: int, n_samples: int, order: int = 3) -> None:
        if not self._pinned_snps:
            self.n_snps = n_snps
        if not self._pinned_samples:
            self.n_samples = n_samples
        if not self._pinned_order:
            self.order = order

    def configure_execution(
        self, backend: str | None = None, word_layout: str | None = None
    ) -> None:
        if backend is not None:
            self._exec_backend = backend
        if word_layout is not None:
            self._exec_layout = word_layout

    def _weights(self, devices: Sequence[EngineDevice]) -> List[float]:
        if self.ratios is not None:
            if len(self.ratios) != len(devices):
                raise ValueError(
                    f"{len(self.ratios)} ratios for {len(devices)} devices"
                )
            if any(r < 0 for r in self.ratios) or sum(self.ratios) <= 0:
                raise ValueError("ratios must be non-negative and sum to > 0")
            self.weight_sources = ["ratio"] * len(devices)
            return list(self.ratios)
        from repro.perfmodel.efficiency import (
            calibrated_device_throughput,
            device_throughput,
        )

        n_snps, n_samples = self.DEFAULT_SHAPE
        n_snps = self.n_snps or n_snps
        n_samples = self.n_samples or n_samples
        weights: List[float] = []
        sources: List[str] = []
        for d in devices:
            if self.use_measured is False:
                weight = device_throughput(
                    d.spec(), n_snps=n_snps, n_samples=n_samples, order=self.order
                )
                source = "model"
            else:
                weight, source = calibrated_device_throughput(
                    d.spec(),
                    n_snps=n_snps,
                    n_samples=n_samples,
                    order=self.order,
                    backend=self._exec_backend if d.kind == "cpu" else None,
                    layout=self._exec_layout,
                )
            weights.append(weight)
            sources.append(source)
        self.weight_sources = sources
        return weights

    def shares(self, total: int, devices: Sequence[EngineDevice]) -> List[int]:
        """Per-lane item counts (largest-remainder apportionment of ``total``)."""
        weights = self._weights(devices)
        scale = sum(weights)
        raw = [total * w / scale for w in weights]
        base = [int(r) for r in raw]
        leftover = total - sum(base)
        by_fraction = sorted(
            range(len(devices)), key=lambda i: raw[i] - base[i], reverse=True
        )
        for i in by_fraction[:leftover]:
            base[i] += 1
        return base

    def assign(
        self, total: int, devices: Sequence[EngineDevice]
    ) -> List[DeviceAssignment]:
        shares = self.shares(total, devices)
        assignments: List[DeviceAssignment] = []
        start = 0
        for d, share in zip(devices, shares):
            stop = start + share
            if d.autotune:
                # Lane-local cursor over the contiguous share; each of the
                # lane's workers tunes its own claim size.
                sources: List[WorkSource] = adaptive_lane_sources(
                    stop,
                    d.n_workers,
                    start=start,
                    config=autotune_config_for(d.kind),
                )
            else:
                lane = DynamicScheduler(stop, chunk_size=d.chunk_size, start=start)
                sources = [lane] * d.n_workers
            assignments.append(
                DeviceAssignment(
                    device=d,
                    sources=sources,
                    planned_items=share,
                )
            )
            start = stop
        return assignments


#: Registry of policy classes by canonical name.
POLICIES: Dict[str, Type[SchedulingPolicy]] = {
    cls.name: cls
    for cls in (DynamicPolicy, StaticPolicy, GuidedPolicy, CarmRatioPolicy)
}

_ALIASES: Dict[str, str] = {
    "carm-ratio": "carm",
    "heterogeneous": "carm",
}


def get_policy(name: "str | SchedulingPolicy", **kwargs) -> SchedulingPolicy:
    """Instantiate a scheduling policy by name (pass-through for instances)."""
    if isinstance(name, SchedulingPolicy):
        return name
    key = name.lower()
    key = _ALIASES.get(key, key)
    if key not in POLICIES:
        raise KeyError(
            f"unknown scheduling policy {name!r}; available: {sorted(POLICIES)} "
            f"(aliases: {sorted(_ALIASES)})"
        )
    return POLICIES[key](**kwargs)


def list_policies(include_aliases: bool = False) -> List[str]:
    """Registered policy names (optionally with the accepted aliases)."""
    names = sorted(POLICIES)
    if include_aliases:
        names = names + sorted(_ALIASES)
    return names
