"""GPU memory layouts for the phenotype-split encoding.

§IV-B describes three data layouts for the GPU kernels:

* **SNP-major** (the CPU layout): each SNP's words are contiguous; adjacent
  GPU threads (which work on different SNP triplets) therefore load words
  that are ``n_words`` apart — uncoalesced accesses.
* **Transposed / sample-major** (approach V3): words are stored with the
  sample-word index as the slowest-varying dimension and the SNP index as
  the fastest-varying one; adjacent threads reading the same word index of
  consecutive SNPs hit consecutive addresses — coalesced accesses.
* **SNP-tiled** (approach V4): SNPs are grouped into blocks of ``BS`` and the
  ``BS`` words of a block for the same sample-word index are adjacent;
  work-groups of size ``BS`` then achieve coalescing *and* better cache
  reuse because each sample-word index touches one contiguous block.

All three layouts carry exactly the same words; only the address mapping
changes.  :class:`GpuLayout` records enough metadata for the coalescing
analysis of the GPU simulator and the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.datasets.binarization import PhenotypeSplitDataset

__all__ = ["GpuLayout", "snp_major_layout", "transposed_layout", "tiled_layout"]

LayoutKind = Literal["snp-major", "transposed", "tiled"]


@dataclass
class GpuLayout:
    """A device-resident arrangement of the phenotype-split planes.

    Attributes
    ----------
    kind:
        Layout family (``"snp-major"``, ``"transposed"`` or ``"tiled"``).
    control / case:
        The packed word arrays for each phenotype class.  Shapes depend on
        the layout:

        * snp-major: ``(n_snps, 2, n_words)``
        * transposed: ``(n_words, 2, n_snps)``
        * tiled: ``(n_blocks, n_words, 2, block_size)``
    n_controls / n_cases:
        Valid sample-bit counts per class.
    block_size:
        SNP-block size ``BS`` (tiled layout only, else 1).
    n_snps:
        Number of SNPs represented (the tiled layout may pad the final block;
        padded SNP slots contain zero words and are never indexed by the
        kernels).
    """

    kind: LayoutKind
    control: np.ndarray
    case: np.ndarray
    n_controls: int
    n_cases: int
    n_snps: int
    block_size: int = 1

    def words(self, phenotype_class: int) -> np.ndarray:
        """Word array for phenotype 0 (controls) or 1 (cases)."""
        if phenotype_class == 0:
            return self.control
        if phenotype_class == 1:
            return self.case
        raise ValueError("phenotype_class must be 0 or 1")

    def samples(self, phenotype_class: int) -> int:
        """Valid sample count for the class."""
        return self.n_controls if phenotype_class == 0 else self.n_cases

    def plane(self, phenotype_class: int, snp: int, genotype: int) -> np.ndarray:
        """Return the packed plane of ``snp`` / ``genotype`` (a copy-free view
        where the layout allows, a gathered copy otherwise).

        ``genotype`` must be 0 or 1 — genotype 2 is always inferred by the
        kernels.
        """
        if genotype not in (0, 1):
            raise ValueError("stored planes exist only for genotypes 0 and 1")
        arr = self.words(phenotype_class)
        if self.kind == "snp-major":
            return arr[snp, genotype]
        if self.kind == "transposed":
            return arr[:, genotype, snp]
        block, offset = divmod(snp, self.block_size)
        return arr[block, :, genotype, offset]

    def address_stride_between_threads(self) -> int:
        """Word-address distance between planes of *adjacent* SNPs.

        This is the quantity that decides coalescing: 1 means consecutive
        threads (assigned to consecutive SNPs) read consecutive words.
        """
        if self.kind == "snp-major":
            # Each SNP is 2 planes x n_words away from the next.
            return int(self.control.shape[2]) * 2 if self.control.ndim == 3 else 1
        if self.kind == "transposed":
            return 1
        return 1  # tiled: adjacent SNPs of a block are adjacent words

    def nbytes(self) -> int:
        """Device-memory footprint in bytes."""
        return int(self.control.nbytes + self.case.nbytes)


def snp_major_layout(split: PhenotypeSplitDataset) -> GpuLayout:
    """SNP-major layout: the CPU arrangement copied verbatim (GPU V2)."""
    return GpuLayout(
        kind="snp-major",
        control=np.ascontiguousarray(split.control_planes),
        case=np.ascontiguousarray(split.case_planes),
        n_controls=split.n_controls,
        n_cases=split.n_cases,
        n_snps=split.n_snps,
        block_size=1,
    )


def transposed_layout(split: PhenotypeSplitDataset) -> GpuLayout:
    """Transposed layout: sample-word major, SNP minor (GPU V3).

    ``control[w, g, i]`` is word ``w`` of genotype ``g`` of SNP ``i`` — SNP
    is the fastest-varying index, so threads mapped to consecutive SNPs load
    consecutive addresses.
    """
    ctrl = np.ascontiguousarray(np.transpose(split.control_planes, (2, 1, 0)))
    case = np.ascontiguousarray(np.transpose(split.case_planes, (2, 1, 0)))
    return GpuLayout(
        kind="transposed",
        control=ctrl,
        case=case,
        n_controls=split.n_controls,
        n_cases=split.n_cases,
        n_snps=split.n_snps,
        block_size=1,
    )


def tiled_layout(split: PhenotypeSplitDataset, block_size: int = 32) -> GpuLayout:
    """SNP-tiled layout: blocks of ``BS`` SNPs stored adjacently (GPU V4).

    ``control[b, w, g, s]`` is word ``w`` of genotype ``g`` of SNP
    ``b * BS + s``.  The SNP count is padded to a multiple of ``BS`` with
    zero planes; kernels never index the padded SNPs.

    Parameters
    ----------
    block_size:
        ``BS``; the paper uses multiples of 32 or 64 depending on the GPU.
    """
    if block_size < 1:
        raise ValueError("block_size must be >= 1")

    def _tile(planes: np.ndarray) -> np.ndarray:
        n_snps, _, n_words = planes.shape
        n_blocks = (n_snps + block_size - 1) // block_size
        padded = np.zeros((n_blocks * block_size, 2, n_words), dtype=planes.dtype)
        padded[:n_snps] = planes
        # (blocks, BS, 2, words) -> (blocks, words, 2, BS)
        tiles = padded.reshape(n_blocks, block_size, 2, n_words)
        return np.ascontiguousarray(np.transpose(tiles, (0, 3, 2, 1)))

    return GpuLayout(
        kind="tiled",
        control=_tile(split.control_planes),
        case=_tile(split.case_planes),
        n_controls=split.n_controls,
        n_cases=split.n_cases,
        n_snps=split.n_snps,
        block_size=block_size,
    )
