"""BOOST-style binarised dataset encodings.

Two encodings are used by the paper's kernels:

:class:`BinarizedDataset`
    The naïve encoding of Figure 1: three bit-planes per SNP (one per
    genotype value) over *all* samples, plus a packed phenotype bit vector.
    Frequency-table cells are produced by ``AND``-ing three genotype planes
    with either the phenotype (cases) or its negation (controls).  Used by
    approach V1.

:class:`PhenotypeSplitDataset`
    The optimised encoding of §IV: the samples are split into controls and
    cases, each SNP keeps only the genotype-0 and genotype-1 planes (the
    genotype-2 plane is recovered on the fly with a ``NOR``), and the
    phenotype vector disappears entirely.  Memory traffic drops by roughly
    one third and the per-word instruction count drops from 162 to 57.
    Used by approaches V2–V4 on both CPU and GPU.

Both encodings are parametric in the **execution word layout**
(:class:`~repro.bitops.packing.WordLayout`): the paper's ``uint32`` word or
the wide ``uint64`` word, which halves the element count of every kernel
operation without changing a single resulting bit.  The default is
:data:`~repro.bitops.packing.DEFAULT_LAYOUT` (``uint64`` on NumPy >= 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.bitops.packing import (
    DEFAULT_LAYOUT,
    WordLayout,
    get_layout,
    layout_of,
    pack_bitplanes,
    pack_bits,
)
from repro.datasets.dataset import GenotypeDataset

__all__ = ["BinarizedDataset", "PhenotypeSplitDataset"]


@dataclass
class BinarizedDataset:
    """Naïve binarised encoding: 3 planes/SNP + packed phenotype.

    Attributes
    ----------
    planes:
        ``(n_snps, 3, n_words)`` packed words; ``planes[i, g]`` has the bit
        of sample ``s`` set iff SNP ``i`` of sample ``s`` has genotype ``g``.
    phenotype_words:
        ``(n_words,)`` packed words with the bit of sample ``s`` set iff
        sample ``s`` is a case.
    n_samples:
        Number of valid sample bits (the packed tail is zero-padded).
    """

    planes: np.ndarray
    phenotype_words: np.ndarray
    n_samples: int

    @classmethod
    def from_dataset(
        cls,
        dataset: GenotypeDataset,
        layout: str | WordLayout | None = None,
    ) -> "BinarizedDataset":
        """Binarise a :class:`GenotypeDataset` (keeps the sample order)."""
        word_layout = get_layout(layout) if layout is not None else DEFAULT_LAYOUT
        planes = pack_bitplanes(dataset.genotypes, n_genotypes=3, layout=word_layout)
        phen_words = pack_bits(dataset.phenotypes.astype(bool), word_layout)
        return cls(planes=planes, phenotype_words=phen_words, n_samples=dataset.n_samples)

    # -- geometry ------------------------------------------------------------
    @property
    def layout(self) -> WordLayout:
        """The machine-word layout the planes were packed with."""
        return layout_of(self.planes)

    @property
    def n_snps(self) -> int:
        """Number of SNPs."""
        return int(self.planes.shape[0])

    @property
    def n_words(self) -> int:
        """Packed machine words per plane."""
        return int(self.planes.shape[2])

    @property
    def n_cases(self) -> int:
        """Number of case samples, recovered from the phenotype words."""
        from repro.bitops.popcount import popcount

        return int(popcount(self.phenotype_words).sum())

    @property
    def n_controls(self) -> int:
        """Number of control samples."""
        return self.n_samples - self.n_cases

    def nbytes(self) -> int:
        """Total size of the encoding in bytes."""
        return int(self.planes.nbytes + self.phenotype_words.nbytes)

    def snp_plane(self, snp: int, genotype: int) -> np.ndarray:
        """View of one bit-plane (no copy)."""
        return self.planes[snp, genotype]

    def validate(self) -> None:
        """Check structural invariants (each sample set in exactly one plane)."""
        word_layout = self.layout
        union = np.bitwise_or.reduce(self.planes, axis=1)
        expected = word_layout.padding_mask(self.n_samples)
        if not np.array_equal(union, np.broadcast_to(expected, union.shape)):
            raise ValueError("bit-planes do not partition the sample set")
        pairwise = (
            (self.planes[:, 0] & self.planes[:, 1])
            | (self.planes[:, 0] & self.planes[:, 2])
            | (self.planes[:, 1] & self.planes[:, 2])
        )
        if pairwise.any():
            raise ValueError("bit-planes overlap: some sample has two genotypes")


@dataclass
class PhenotypeSplitDataset:
    """Optimised encoding: case/control split, genotype-2 plane elided.

    Attributes
    ----------
    control_planes / case_planes:
        ``(n_snps, 2, n_words_class)`` packed word arrays holding the
        genotype-0 and genotype-1 planes of the control and case samples
        respectively.  The genotype-2 plane is implicitly
        ``NOR(plane0, plane1)`` (with the padding bits masked off).
    n_controls / n_cases:
        Number of valid sample bits in each class.
    control_order / case_order:
        Original sample indices of each class in packed order; kept so that
        results can be traced back to the input dataset.
    """

    control_planes: np.ndarray
    case_planes: np.ndarray
    n_controls: int
    n_cases: int
    control_order: np.ndarray
    case_order: np.ndarray
    #: Cached per-class padding masks (built lazily — see :meth:`padding_mask`).
    _masks: dict = field(default_factory=dict, repr=False, compare=False)

    @classmethod
    def from_dataset(
        cls,
        dataset: GenotypeDataset,
        layout: str | WordLayout | None = None,
    ) -> "PhenotypeSplitDataset":
        """Split a dataset by phenotype and binarise each class separately."""
        word_layout = get_layout(layout) if layout is not None else DEFAULT_LAYOUT
        controls = dataset.control_indices
        cases = dataset.case_indices
        geno_ctrl = dataset.genotypes[:, controls]
        geno_case = dataset.genotypes[:, cases]
        # Only genotype 0 and 1 planes are stored; genotype 2 is inferred.
        ctrl_planes = pack_bitplanes(geno_ctrl, n_genotypes=3, layout=word_layout)[:, :2, :]
        case_planes = pack_bitplanes(geno_case, n_genotypes=3, layout=word_layout)[:, :2, :]
        return cls(
            control_planes=np.ascontiguousarray(ctrl_planes),
            case_planes=np.ascontiguousarray(case_planes),
            n_controls=int(controls.size),
            n_cases=int(cases.size),
            control_order=controls,
            case_order=cases,
        )

    # -- geometry ------------------------------------------------------------
    @property
    def layout(self) -> WordLayout:
        """The machine-word layout the planes were packed with."""
        return layout_of(self.control_planes)

    @property
    def n_snps(self) -> int:
        """Number of SNPs."""
        return int(self.control_planes.shape[0])

    @property
    def n_samples(self) -> int:
        """Total number of samples across both classes."""
        return self.n_controls + self.n_cases

    @property
    def words_per_class(self) -> Tuple[int, int]:
        """(control words, case words) per plane."""
        return (
            int(self.control_planes.shape[2]),
            int(self.case_planes.shape[2]),
        )

    def nbytes(self) -> int:
        """Total size of the encoding in bytes."""
        return int(self.control_planes.nbytes + self.case_planes.nbytes)

    def planes_for_class(self, phenotype_class: int) -> tuple[np.ndarray, int]:
        """Return ``(planes, n_valid_samples)`` for phenotype 0 or 1."""
        if phenotype_class == 0:
            return self.control_planes, self.n_controls
        if phenotype_class == 1:
            return self.case_planes, self.n_cases
        raise ValueError("phenotype_class must be 0 (controls) or 1 (cases)")

    def padding_mask(self, phenotype_class: int) -> np.ndarray:
        """Per-word mask of valid sample bits for the given class.

        The genotype-2 plane produced by ``NOR`` would otherwise set the
        padding bits of the last word (NOR of two zero bits is one); the
        kernels AND the inferred plane with this mask, which is exactly what
        the reference C implementation achieves by keeping the padding
        samples out of the loaded range.  The mask is built once per class
        and cached (it is read on every kernel batch).
        """
        mask = self._masks.get(phenotype_class)
        if mask is None:
            _, n_valid = self.planes_for_class(phenotype_class)
            mask = self.layout.padding_mask(n_valid)
            self._masks[phenotype_class] = mask
        return mask

    def memory_reduction_vs_naive(self) -> float:
        """Fraction of bytes saved relative to :class:`BinarizedDataset`.

        §IV-A states the optimisations "reduce the amount of memory
        transfers by 1/3"; this helper lets tests and benchmarks verify the
        claim on concrete datasets.
        """
        word_layout = self.layout
        naive_words = self.n_snps * 3 * word_layout.word_count(self.n_samples)
        naive_words += word_layout.word_count(self.n_samples)  # phenotype vector
        split_words = self.n_snps * 2 * (
            word_layout.word_count(self.n_controls)
            + word_layout.word_count(self.n_cases)
        )
        return 1.0 - split_words / naive_words

    def validate(self) -> None:
        """Check that the two stored planes never overlap."""
        if (self.control_planes[:, 0] & self.control_planes[:, 1]).any():
            raise ValueError("control planes overlap")
        if (self.case_planes[:, 0] & self.case_planes[:, 1]).any():
            raise ValueError("case planes overlap")
