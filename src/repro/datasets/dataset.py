"""The case/control genotype dataset container.

A :class:`GenotypeDataset` is the uncompressed, analysis-friendly view of the
data: an ``(n_snps, n_samples)`` genotype matrix with values ``{0, 1, 2}``
plus a binary phenotype vector.  All kernels operate on binarised encodings
derived from it (:mod:`repro.datasets.binarization`), but the uncompressed
matrix remains the single source of truth for correctness oracles and for
dataset manipulation (subsetting, shuffling, merging).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = ["GenotypeDataset"]

#: Valid genotype codes: homozygous major, heterozygous, homozygous minor.
GENOTYPE_VALUES = (0, 1, 2)


@dataclass
class GenotypeDataset:
    """Case/control SNP dataset.

    Parameters
    ----------
    genotypes:
        ``(n_snps, n_samples)`` integer matrix; entry ``[i, j]`` is the
        genotype of SNP ``i`` in sample ``j`` (0, 1 or 2).
    phenotypes:
        ``(n_samples,)`` vector of disease states: 0 = control, 1 = case.
    snp_names:
        Optional SNP identifiers; defaults to ``snp0000``, ``snp0001``, …

    Notes
    -----
    The genotype matrix is stored as ``int8`` (the values fit comfortably)
    and C-contiguous SNP-major, matching the row-per-SNP storage the paper
    assumes for its CPU kernels.
    """

    genotypes: np.ndarray
    phenotypes: np.ndarray
    snp_names: Sequence[str] | None = field(default=None)

    def __post_init__(self) -> None:
        self.genotypes = np.ascontiguousarray(self.genotypes, dtype=np.int8)
        self.phenotypes = np.ascontiguousarray(self.phenotypes, dtype=np.int8)
        if self.genotypes.ndim != 2:
            raise ValueError("genotypes must be 2-D (n_snps, n_samples)")
        if self.phenotypes.ndim != 1:
            raise ValueError("phenotypes must be 1-D (n_samples,)")
        if self.genotypes.shape[1] != self.phenotypes.shape[0]:
            raise ValueError(
                f"sample-count mismatch: genotypes has {self.genotypes.shape[1]} "
                f"columns, phenotypes has {self.phenotypes.shape[0]} entries"
            )
        if self.genotypes.size:
            gmin, gmax = int(self.genotypes.min()), int(self.genotypes.max())
            if gmin < 0 or gmax > 2:
                raise ValueError(
                    f"genotype values must be in {{0, 1, 2}}; found [{gmin}, {gmax}]"
                )
        if self.phenotypes.size:
            pvals = np.unique(self.phenotypes)
            if not np.isin(pvals, (0, 1)).all():
                raise ValueError("phenotype values must be 0 (control) or 1 (case)")
        if self.snp_names is None:
            width = max(4, len(str(max(self.n_snps - 1, 0))))
            self.snp_names = [f"snp{i:0{width}d}" for i in range(self.n_snps)]
        elif len(self.snp_names) != self.n_snps:
            raise ValueError(
                f"snp_names has {len(self.snp_names)} entries for {self.n_snps} SNPs"
            )
        else:
            self.snp_names = list(self.snp_names)

    # -- basic geometry ------------------------------------------------------
    @property
    def n_snps(self) -> int:
        """Number of SNPs (``M`` in the paper)."""
        return int(self.genotypes.shape[0])

    @property
    def n_samples(self) -> int:
        """Number of samples (``N`` in the paper)."""
        return int(self.genotypes.shape[1])

    @property
    def n_cases(self) -> int:
        """Number of case samples (phenotype 1)."""
        return int(np.count_nonzero(self.phenotypes))

    @property
    def n_controls(self) -> int:
        """Number of control samples (phenotype 0)."""
        return self.n_samples - self.n_cases

    @property
    def case_indices(self) -> np.ndarray:
        """Indices of case samples (ascending)."""
        return np.flatnonzero(self.phenotypes == 1)

    @property
    def control_indices(self) -> np.ndarray:
        """Indices of control samples (ascending)."""
        return np.flatnonzero(self.phenotypes == 0)

    # -- identity --------------------------------------------------------------
    def content_digest(self) -> str:
        """SHA-1 digest of the genotype and phenotype arrays, cached.

        Datasets are treated as immutable after construction (every
        manipulation helper returns a new instance), so the digest is
        computed once and reused — it keys the detector-level encoding
        cache and the distributed checkpoint fingerprints.
        """
        digest = getattr(self, "_content_digest", None)
        if digest is None:
            import hashlib

            h = hashlib.sha1()
            h.update(np.ascontiguousarray(self.genotypes).tobytes())
            h.update(np.ascontiguousarray(self.phenotypes).tobytes())
            digest = h.hexdigest()
            self._content_digest = digest
        return digest

    # -- combinatorics --------------------------------------------------------
    def n_combinations(self, order: int = 3) -> int:
        """Number of distinct SNP combinations of the given interaction order.

        This is ``nCr(M, k)`` — the size of the exhaustive search space.
        """
        from math import comb

        return comb(self.n_snps, order)

    def n_elements(self, order: int = 3) -> int:
        """Paper's throughput unit: ``nCr(M, k) * N`` processed elements."""
        return self.n_combinations(order) * self.n_samples

    # -- manipulation ---------------------------------------------------------
    def subset_snps(self, indices: Iterable[int]) -> "GenotypeDataset":
        """Return a new dataset restricted to the given SNP indices."""
        idx = np.asarray(list(indices), dtype=np.int64)
        return GenotypeDataset(
            genotypes=self.genotypes[idx].copy(),
            phenotypes=self.phenotypes.copy(),
            snp_names=[self.snp_names[i] for i in idx],
        )

    def subset_samples(self, indices: Iterable[int]) -> "GenotypeDataset":
        """Return a new dataset restricted to the given sample indices."""
        idx = np.asarray(list(indices), dtype=np.int64)
        return GenotypeDataset(
            genotypes=self.genotypes[:, idx].copy(),
            phenotypes=self.phenotypes[idx].copy(),
            snp_names=list(self.snp_names),
        )

    def sorted_by_phenotype(self) -> "GenotypeDataset":
        """Return a copy with controls first, cases last.

        The optimised kernels split the data set by phenotype; sorting the
        samples first makes that split a contiguous slice.
        """
        order = np.argsort(self.phenotypes, kind="stable")
        return self.subset_samples(order)

    def genotype_counts(self, snp: int) -> np.ndarray:
        """Per-genotype sample counts ``(3,)`` for one SNP (sanity checks)."""
        return np.bincount(self.genotypes[snp], minlength=3)[:3]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GenotypeDataset):
            return NotImplemented
        return (
            np.array_equal(self.genotypes, other.genotypes)
            and np.array_equal(self.phenotypes, other.phenotypes)
            and list(self.snp_names) == list(other.snp_names)
        )

    def __repr__(self) -> str:
        return (
            f"GenotypeDataset(n_snps={self.n_snps}, n_samples={self.n_samples}, "
            f"cases={self.n_cases}, controls={self.n_controls})"
        )
