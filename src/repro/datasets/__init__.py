"""Case/control SNP dataset substrate.

The paper evaluates exhaustive three-way epistasis detection on case/control
data sets ``D`` of ``N`` samples by ``M`` SNPs, where each entry is a genotype
in ``{0, 1, 2}`` and each sample carries a binary phenotype (0 = control,
1 = case).  This package provides everything needed to create, store and
re-encode such data sets:

* :mod:`repro.datasets.dataset` — the :class:`GenotypeDataset` container.
* :mod:`repro.datasets.synthetic` — synthetic generators: null datasets drawn
  from per-SNP minor-allele frequencies and datasets with a *planted* k-way
  epistatic interaction described by a penetrance table, so that detection
  accuracy can be validated against ground truth.
* :mod:`repro.datasets.binarization` — the BOOST binarised encoding used by
  all kernels (per-genotype bit-planes packed into 32-bit words), both in the
  naïve form (3 planes + phenotype mask) and in the optimised form
  (case/control split, genotype-2 plane elided).
* :mod:`repro.datasets.layouts` — the GPU memory layouts of §IV-B
  (SNP-major, transposed/coalesced, SNP-tiled).
* :mod:`repro.datasets.io` — NPZ and text round-trip of datasets.
"""

from repro.datasets.dataset import GenotypeDataset
from repro.datasets.synthetic import (
    PlantedInteraction,
    SyntheticConfig,
    generate_dataset,
    generate_null_dataset,
    penetrance_table,
)
from repro.datasets.binarization import BinarizedDataset, PhenotypeSplitDataset
from repro.datasets.layouts import (
    GpuLayout,
    snp_major_layout,
    tiled_layout,
    transposed_layout,
)
from repro.datasets.io import load_dataset, load_npz, save_npz, save_text, load_text
from repro.datasets.qc import (
    QcReport,
    apply_qc,
    call_rates,
    filter_by_maf,
    hardy_weinberg_pvalues,
    impute_missing,
    minor_allele_frequencies,
)

__all__ = [
    "GenotypeDataset",
    "SyntheticConfig",
    "PlantedInteraction",
    "generate_dataset",
    "generate_null_dataset",
    "penetrance_table",
    "BinarizedDataset",
    "PhenotypeSplitDataset",
    "GpuLayout",
    "snp_major_layout",
    "transposed_layout",
    "tiled_layout",
    "save_npz",
    "load_npz",
    "save_text",
    "load_text",
    "load_dataset",
    "QcReport",
    "apply_qc",
    "call_rates",
    "filter_by_maf",
    "hardy_weinberg_pvalues",
    "impute_missing",
    "minor_allele_frequencies",
]
