"""Quality-control and preprocessing of case/control datasets.

Real GWAS inputs are never handed to the detection kernels raw: SNPs with a
too-low minor-allele frequency carry no statistical power (and blow up the
multiple-testing burden), samples or SNPs with missing genotypes must be
imputed or dropped, and markers grossly out of Hardy–Weinberg equilibrium in
the controls usually indicate genotyping artefacts.  The paper's evaluation
uses pre-cleaned synthetic data, but a usable library needs the cleaning
step; this module provides it.

The missing-genotype code is ``-1`` (the only value outside the 0/1/2 range);
:class:`GenotypeDataset` itself rejects negative values, so raw matrices with
missing entries enter through :func:`impute_missing` / :func:`apply_qc`
*before* a dataset object is constructed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np
from scipy.stats import chi2

from repro.datasets.dataset import GenotypeDataset

__all__ = [
    "QcReport",
    "minor_allele_frequencies",
    "call_rates",
    "hardy_weinberg_pvalues",
    "impute_missing",
    "filter_by_maf",
    "apply_qc",
]

#: Genotype code marking a missing call in raw matrices.
MISSING: int = -1


@dataclass
class QcReport:
    """Summary of one quality-control pass.

    Attributes
    ----------
    n_snps_in / n_snps_out:
        SNP counts before and after filtering.
    removed_low_maf / removed_low_call_rate / removed_hwe:
        Indices of the SNPs removed by each criterion (relative to the input).
    n_missing_imputed:
        Number of genotype calls replaced by the per-SNP major genotype.
    kept:
        Indices of the SNPs that survived (relative to the input).
    """

    n_snps_in: int
    n_snps_out: int
    removed_low_maf: List[int] = field(default_factory=list)
    removed_low_call_rate: List[int] = field(default_factory=list)
    removed_hwe: List[int] = field(default_factory=list)
    n_missing_imputed: int = 0
    kept: List[int] = field(default_factory=list)

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"QC: {self.n_snps_in} SNPs in, {self.n_snps_out} kept "
            f"({len(self.removed_low_maf)} low-MAF, "
            f"{len(self.removed_low_call_rate)} low call-rate, "
            f"{len(self.removed_hwe)} HWE failures removed); "
            f"{self.n_missing_imputed} missing calls imputed"
        )


def _as_matrix(genotypes: np.ndarray) -> np.ndarray:
    arr = np.asarray(genotypes)
    if arr.ndim != 2:
        raise ValueError("genotypes must be a 2-D (n_snps, n_samples) matrix")
    return arr


def minor_allele_frequencies(genotypes: np.ndarray) -> np.ndarray:
    """Per-SNP minor-allele frequency, ignoring missing calls.

    The frequency of the coded (minor) allele is ``(n1 + 2 n2) / (2 n_called)``;
    the *minor*-allele frequency folds it to ``min(f, 1 - f)`` so that a SNP
    whose coding happens to be flipped is still treated symmetrically.
    """
    arr = _as_matrix(genotypes).astype(np.float64)
    called = arr >= 0
    n_called = called.sum(axis=1)
    allele_counts = np.where(called, arr, 0.0).sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        freq = np.where(n_called > 0, allele_counts / (2.0 * n_called), 0.0)
    return np.minimum(freq, 1.0 - freq)


def call_rates(genotypes: np.ndarray) -> np.ndarray:
    """Per-SNP fraction of non-missing genotype calls."""
    arr = _as_matrix(genotypes)
    if arr.shape[1] == 0:
        return np.zeros(arr.shape[0])
    return (arr >= 0).mean(axis=1)


def hardy_weinberg_pvalues(genotypes: np.ndarray) -> np.ndarray:
    """Per-SNP chi-squared Hardy–Weinberg equilibrium p-value.

    A one-degree-of-freedom goodness-of-fit test of the observed genotype
    counts against the expectation from the allele frequency.  Missing calls
    are ignored; monomorphic SNPs receive a p-value of 1.0.
    """
    arr = _as_matrix(genotypes)
    n_snps = arr.shape[0]
    pvalues = np.ones(n_snps)
    for i in range(n_snps):
        row = arr[i]
        row = row[row >= 0]
        n = row.size
        if n == 0:
            continue
        counts = np.bincount(row, minlength=3)[:3].astype(np.float64)
        p = (counts[1] + 2 * counts[2]) / (2 * n)
        if p <= 0.0 or p >= 1.0:
            continue  # monomorphic: trivially in equilibrium
        expected = n * np.array([(1 - p) ** 2, 2 * p * (1 - p), p**2])
        with np.errstate(invalid="ignore", divide="ignore"):
            stat = np.where(expected > 0, (counts - expected) ** 2 / expected, 0.0).sum()
        pvalues[i] = float(chi2.sf(stat, df=1))
    return pvalues


def impute_missing(genotypes: np.ndarray) -> tuple[np.ndarray, int]:
    """Replace missing calls by the per-SNP most frequent genotype.

    Returns the imputed matrix (a copy) and the number of imputed calls.
    Major-genotype imputation is the standard cheap choice for exhaustive
    interaction scans, where per-SNP model-based imputation would dominate
    the runtime.
    """
    arr = _as_matrix(genotypes).copy()
    n_imputed = 0
    for i in range(arr.shape[0]):
        missing = arr[i] < 0
        if not missing.any():
            continue
        observed = arr[i][~missing]
        fill = int(np.bincount(observed, minlength=3)[:3].argmax()) if observed.size else 0
        arr[i, missing] = fill
        n_imputed += int(missing.sum())
    return arr, n_imputed


def filter_by_maf(dataset: GenotypeDataset, min_maf: float = 0.05) -> GenotypeDataset:
    """Return a dataset containing only SNPs with MAF >= ``min_maf``."""
    maf = minor_allele_frequencies(dataset.genotypes)
    keep = np.flatnonzero(maf >= min_maf)
    if keep.size == 0:
        raise ValueError(f"no SNP passes the MAF >= {min_maf} filter")
    return dataset.subset_snps(keep)


def apply_qc(
    genotypes: np.ndarray,
    phenotypes: np.ndarray,
    snp_names: Sequence[str] | None = None,
    *,
    min_maf: float = 0.05,
    min_call_rate: float = 0.95,
    hwe_alpha: float | None = 1e-6,
    hwe_controls_only: bool = True,
) -> tuple[GenotypeDataset, QcReport]:
    """Full QC pipeline: impute, then filter by call rate, MAF and HWE.

    Parameters
    ----------
    genotypes:
        Raw ``(n_snps, n_samples)`` matrix; missing calls coded as ``-1``.
    phenotypes:
        0/1 phenotype vector.
    min_maf / min_call_rate:
        Inclusion thresholds (set either to 0 to disable the filter).
    hwe_alpha:
        Significance threshold of the Hardy–Weinberg filter; ``None``
        disables it.
    hwe_controls_only:
        Test HWE in the control samples only (the conventional choice — a
        true disease association may legitimately distort HWE in cases).

    Returns
    -------
    (dataset, report):
        The cleaned :class:`GenotypeDataset` and a :class:`QcReport`.
    """
    raw = _as_matrix(genotypes)
    phen = np.asarray(phenotypes, dtype=np.int8)
    if raw.shape[1] != phen.shape[0]:
        raise ValueError("genotypes and phenotypes disagree on the sample count")
    n_snps = raw.shape[0]
    names = list(snp_names) if snp_names is not None else None

    rates = call_rates(raw)
    removed_call = np.flatnonzero(rates < min_call_rate)

    imputed, n_imputed = impute_missing(raw)
    maf = minor_allele_frequencies(imputed)
    removed_maf = np.flatnonzero(maf < min_maf)

    removed_hwe = np.array([], dtype=np.int64)
    if hwe_alpha is not None:
        hwe_matrix = imputed[:, phen == 0] if hwe_controls_only else imputed
        pvalues = hardy_weinberg_pvalues(hwe_matrix)
        removed_hwe = np.flatnonzero(pvalues < hwe_alpha)

    removed = set(removed_call.tolist()) | set(removed_maf.tolist()) | set(removed_hwe.tolist())
    kept = [i for i in range(n_snps) if i not in removed]
    if not kept:
        raise ValueError("quality control removed every SNP")

    dataset = GenotypeDataset(
        genotypes=imputed[kept],
        phenotypes=phen,
        snp_names=[names[i] for i in kept] if names is not None else None,
    )
    report = QcReport(
        n_snps_in=n_snps,
        n_snps_out=len(kept),
        removed_low_maf=sorted(set(removed_maf.tolist()) - set(removed_call.tolist())),
        removed_low_call_rate=removed_call.tolist(),
        removed_hwe=sorted(set(removed_hwe.tolist()) - set(removed_call.tolist()) - set(removed_maf.tolist())),
        n_missing_imputed=n_imputed,
        kept=kept,
    )
    return dataset, report
