"""Synthetic case/control dataset generators.

The paper evaluates its kernels on "synthetic data sets equivalent to real
case scenarios, containing SNPs ranging from 2048 to 8192 and 16384 samples"
(§V).  This module produces such datasets in two flavours:

* **null datasets** (:func:`generate_null_dataset`) — genotypes drawn
  independently per SNP under Hardy–Weinberg equilibrium from a
  minor-allele-frequency (MAF) sampled uniformly in a configurable range, and
  phenotypes assigned independently of the genotypes.  These exercise the
  kernels under realistic genotype distributions without any signal.
* **planted-interaction datasets** (:func:`generate_dataset` with a
  :class:`PlantedInteraction`) — the phenotype is drawn from a penetrance
  table over the genotype combination of ``k`` designated SNPs, so the
  detector has a ground-truth triplet to recover.  Several standard epistasis
  penetrance shapes are provided (threshold, multiplicative, XOR-like).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.dataset import GenotypeDataset

__all__ = [
    "PlantedInteraction",
    "SyntheticConfig",
    "penetrance_table",
    "generate_null_dataset",
    "generate_dataset",
]

#: Penetrance-model names accepted by :func:`penetrance_table`.
PENETRANCE_MODELS = ("threshold", "multiplicative", "xor")


def penetrance_table(
    model: str,
    order: int = 3,
    baseline: float = 0.05,
    effect: float = 0.8,
) -> np.ndarray:
    """Build a ``3**order`` penetrance table for a planted interaction.

    Parameters
    ----------
    model:
        One of ``"threshold"`` (disease risk jumps when every interacting SNP
        carries at least one minor allele), ``"multiplicative"`` (risk grows
        multiplicatively with the number of minor alleles across the
        interacting SNPs) or ``"xor"`` (risk is high when the parity of
        heterozygous genotypes is odd — a purely epistatic model with no
        marginal effects, the hardest case for filtering approaches and the
        motivating example for exhaustive search).
    order:
        Interaction order ``k`` (3 for the paper's study).
    baseline:
        Penetrance of the lowest-risk genotype combinations.
    effect:
        Penetrance of the highest-risk combinations (must satisfy
        ``0 <= baseline <= effect <= 1``).

    Returns
    -------
    numpy.ndarray
        Array of shape ``(3,) * order`` with the probability of being a case
        for every genotype combination.
    """
    if model not in PENETRANCE_MODELS:
        raise ValueError(f"unknown penetrance model {model!r}; choose from {PENETRANCE_MODELS}")
    if not (0.0 <= baseline <= effect <= 1.0):
        raise ValueError("penetrance must satisfy 0 <= baseline <= effect <= 1")
    shape = (3,) * order
    table = np.full(shape, baseline, dtype=np.float64)
    grid = np.indices(shape)  # (order, 3, 3, ..., 3)
    if model == "threshold":
        mask = (grid >= 1).all(axis=0)
        table[mask] = effect
    elif model == "multiplicative":
        minor_alleles = grid.sum(axis=0).astype(np.float64)
        frac = minor_alleles / (2.0 * order)
        table = baseline + (effect - baseline) * frac
    else:  # xor
        parity = (grid == 1).sum(axis=0) % 2
        table[parity == 1] = effect
    return table


@dataclass(frozen=True)
class PlantedInteraction:
    """Ground-truth epistatic interaction embedded in a synthetic dataset.

    Attributes
    ----------
    snps:
        Indices of the interacting SNPs (length = interaction order).
    model:
        Penetrance-model name (see :func:`penetrance_table`).
    baseline / effect:
        Penetrance extremes passed to :func:`penetrance_table`.
    """

    snps: tuple[int, ...]
    model: str = "threshold"
    baseline: float = 0.05
    effect: float = 0.8

    def __post_init__(self) -> None:
        if len(self.snps) < 2:
            raise ValueError("an interaction involves at least two SNPs")
        if len(set(self.snps)) != len(self.snps):
            raise ValueError("interacting SNP indices must be distinct")

    @property
    def order(self) -> int:
        """Interaction order ``k``."""
        return len(self.snps)

    def table(self) -> np.ndarray:
        """Penetrance table of this interaction."""
        return penetrance_table(self.model, self.order, self.baseline, self.effect)


@dataclass
class SyntheticConfig:
    """Configuration of a synthetic dataset.

    Attributes
    ----------
    n_snps / n_samples:
        Dataset dimensions ``M`` and ``N``.
    maf_range:
        Minor-allele frequencies are drawn uniformly from this interval for
        every SNP (default 0.05–0.5, the conventional GWAS inclusion range).
    case_fraction:
        Target fraction of case samples for the *null* phenotype model; for
        planted interactions the case fraction emerges from the penetrance.
    interaction:
        Optional :class:`PlantedInteraction`.
    balance_phenotype:
        If ``True`` (default) the generator resamples phenotypes so that the
        realised case count matches ``round(case_fraction * n_samples)``
        exactly; balanced case/control splits are what the paper's datasets
        use and what keeps both word streams equally long.
    seed:
        Seed of the :class:`numpy.random.Generator` used throughout.
    """

    n_snps: int
    n_samples: int
    maf_range: tuple[float, float] = (0.05, 0.5)
    case_fraction: float = 0.5
    interaction: PlantedInteraction | None = None
    balance_phenotype: bool = True
    seed: int = 0
    snp_name_prefix: str = "snp"

    def __post_init__(self) -> None:
        if self.n_snps < 1 or self.n_samples < 1:
            raise ValueError("n_snps and n_samples must be positive")
        lo, hi = self.maf_range
        if not (0.0 < lo <= hi <= 0.5):
            raise ValueError("maf_range must satisfy 0 < low <= high <= 0.5")
        if not (0.0 < self.case_fraction < 1.0):
            raise ValueError("case_fraction must lie strictly between 0 and 1")
        if self.interaction is not None:
            bad = [s for s in self.interaction.snps if not 0 <= s < self.n_snps]
            if bad:
                raise ValueError(f"interaction SNP indices out of range: {bad}")


def _draw_genotypes(rng: np.random.Generator, n_snps: int, n_samples: int,
                    maf_range: tuple[float, float]) -> np.ndarray:
    """Draw a Hardy–Weinberg genotype matrix, one MAF per SNP."""
    maf = rng.uniform(maf_range[0], maf_range[1], size=n_snps)
    # Genotype = number of minor alleles ~ Binomial(2, maf): vectorised draw.
    geno = rng.binomial(2, maf[:, None], size=(n_snps, n_samples)).astype(np.int8)
    return geno


def _balanced_phenotype(rng: np.random.Generator, probs: np.ndarray,
                        n_cases_target: int) -> np.ndarray:
    """Assign exactly ``n_cases_target`` cases, biased by per-sample risk.

    Samples are ranked by ``risk + Gumbel noise`` which realises a weighted
    sampling without replacement — samples with higher penetrance are more
    likely to be selected as cases, but the total count is exact.
    """
    n = probs.shape[0]
    n_cases_target = int(np.clip(n_cases_target, 0, n))
    probs = np.clip(probs, 1e-9, 1 - 1e-9)
    gumbel = rng.gumbel(size=n)
    keys = np.log(probs / (1 - probs)) + gumbel
    case_idx = np.argpartition(-keys, n_cases_target - 1)[:n_cases_target] \
        if n_cases_target > 0 else np.empty(0, dtype=np.int64)
    phen = np.zeros(n, dtype=np.int8)
    phen[case_idx] = 1
    return phen


def generate_null_dataset(
    n_snps: int,
    n_samples: int,
    *,
    seed: int = 0,
    maf_range: tuple[float, float] = (0.05, 0.5),
    case_fraction: float = 0.5,
) -> GenotypeDataset:
    """Generate a dataset with no genotype/phenotype association."""
    config = SyntheticConfig(
        n_snps=n_snps,
        n_samples=n_samples,
        maf_range=maf_range,
        case_fraction=case_fraction,
        interaction=None,
        seed=seed,
    )
    return generate_dataset(config)


def generate_dataset(config: SyntheticConfig) -> GenotypeDataset:
    """Generate a synthetic dataset according to ``config``.

    The genotype matrix is always drawn under Hardy–Weinberg equilibrium; the
    phenotype is either independent of the genotypes (null model) or drawn
    from the penetrance table of the planted interaction.
    """
    rng = np.random.default_rng(config.seed)
    geno = _draw_genotypes(rng, config.n_snps, config.n_samples, config.maf_range)

    if config.interaction is None:
        probs = np.full(config.n_samples, config.case_fraction)
    else:
        table = config.interaction.table()
        combo = tuple(geno[s] for s in config.interaction.snps)
        probs = table[combo]

    n_cases_target = int(round(config.case_fraction * config.n_samples))
    if config.balance_phenotype:
        phen = _balanced_phenotype(rng, probs, n_cases_target)
    else:
        phen = (rng.uniform(size=config.n_samples) < probs).astype(np.int8)
        # Guard against degenerate all-case / all-control draws, which would
        # break the case/control split kernels.
        if phen.all() or not phen.any():
            flip = rng.integers(0, config.n_samples)
            phen[flip] = 1 - phen[flip]

    width = max(4, len(str(config.n_snps - 1)))
    names = [f"{config.snp_name_prefix}{i:0{width}d}" for i in range(config.n_snps)]
    return GenotypeDataset(genotypes=geno, phenotypes=phen, snp_names=names)
