"""Dataset persistence.

Two interchange formats are supported:

* **NPZ** — compressed NumPy archive holding the genotype matrix, phenotype
  vector and SNP names; lossless and fast, the preferred format for the
  benchmark harness.
* **Text** — a simple whitespace/comma separated table compatible with the
  layout used by the MPI3SNP sample files the paper benchmarks against: one
  row per SNP with one genotype column per sample, and a final row holding
  the phenotype of every sample.  Comment lines start with ``#``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.datasets.dataset import GenotypeDataset

__all__ = ["save_npz", "load_npz", "save_text", "load_text", "load_dataset"]

PathLike = Union[str, os.PathLike]


def save_npz(dataset: GenotypeDataset, path: PathLike) -> None:
    """Save a dataset to a compressed ``.npz`` archive.

    ``snp_names`` is stored only when the dataset actually carries names;
    ``np.asarray(None)`` would otherwise be written as a 0-d ``'None'``
    string that corrupts the names field on reload.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {
        "genotypes": dataset.genotypes,
        "phenotypes": dataset.phenotypes,
    }
    if dataset.snp_names is not None:
        arrays["snp_names"] = np.asarray(list(dataset.snp_names), dtype=np.str_)
    np.savez_compressed(path, **arrays)


def load_npz(path: PathLike) -> GenotypeDataset:
    """Load a dataset written by :func:`save_npz`.

    A missing ``snp_names`` array — or the 0-d scalar a pre-fix
    :func:`save_npz` produced for ``snp_names=None`` — is restored as
    ``None`` cleanly (the dataset then regenerates its default names).
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        missing = {"genotypes", "phenotypes"} - set(archive.files)
        if missing:
            raise ValueError(f"{path}: missing arrays {sorted(missing)}")
        names = None
        if "snp_names" in archive.files:
            names_arr = archive["snp_names"]
            if names_arr.ndim == 1:
                names = names_arr.tolist()
        return GenotypeDataset(
            genotypes=archive["genotypes"],
            phenotypes=archive["phenotypes"],
            snp_names=names,
        )


def save_text(dataset: GenotypeDataset, path: PathLike, delimiter: str = ",") -> None:
    """Save a dataset as a delimited text table.

    Layout: one header comment, then one row per SNP (``M`` rows of ``N``
    genotype values), then a final row with the ``N`` phenotype values —
    mirroring the ``N x (M + 1)`` formulation of §III transposed to the
    row-per-SNP storage the kernels use.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(f"# repro epistasis dataset: {dataset.n_snps} SNPs, "
                 f"{dataset.n_samples} samples; last row is the phenotype\n")
        for row in dataset.genotypes:
            fh.write(delimiter.join(str(int(v)) for v in row))
            fh.write("\n")
        fh.write(delimiter.join(str(int(v)) for v in dataset.phenotypes))
        fh.write("\n")


def load_text(path: PathLike, delimiter: str = ",") -> GenotypeDataset:
    """Load a dataset written by :func:`save_text` (or hand-authored)."""
    rows: list[list[int]] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            sep = delimiter if delimiter in line else None
            rows.append([int(tok) for tok in line.split(sep)])
    if len(rows) < 2:
        raise ValueError(f"{path}: expected at least one SNP row and a phenotype row")
    widths = {len(r) for r in rows}
    if len(widths) != 1:
        raise ValueError(f"{path}: ragged rows with lengths {sorted(widths)}")
    matrix = np.asarray(rows, dtype=np.int8)
    return GenotypeDataset(genotypes=matrix[:-1], phenotypes=matrix[-1])


def load_dataset(path: PathLike) -> GenotypeDataset:
    """Load a dataset, dispatching on the file extension (.npz or text)."""
    path = Path(path)
    if path.suffix == ".npz":
        return load_npz(path)
    return load_text(path)
